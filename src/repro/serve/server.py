"""The ``repro serve`` daemon: an asyncio HTTP/JSON front end over a
resident :class:`~repro.flow.executor.FlowExecutor`.

Stdlib only. The event loop owns connections, the request queue, and
metrics; flow execution happens in a single worker thread that drains
the queue in priority order and submits to the executor (whose warm
memos — elaboration memo, artifact cache, SA table — persist for the
daemon's whole lifetime, so repeated queries are served from
incremental shared structure instead of recomputed).

Endpoints (see docs/serving.md):

* ``POST /estimate`` — one cell of the partial flow (stops after
  tech-map); responds with the cell's metrics, byte-identical to a
  direct :func:`~repro.flow.run.run_estimate`.
* ``POST /flow`` — one cell of the full measurement chain.
* ``POST /sweep`` — a full :class:`~repro.flow.grid.SweepSpec` grid;
  the response streams one NDJSON line per cell as it lands (the
  executor's fingerprint-grouped simulation batching applies), then a
  summary line.
* ``GET /metrics`` — JSON counters: per-endpoint request counts,
  queue depth, in-flight dedup hits, executor and artifact-cache
  stats.
* ``GET /healthz`` — liveness probe.

Queueing: every request carries an integer ``priority`` (lower runs
sooner; default 0 for single-cell requests, 10 for sweeps), and
identical in-flight single-cell requests — same normalized spec, see
:func:`~repro.serve.api.request_key` — are deduplicated onto one
pending computation whose result every waiter shares. Sweeps stream,
so they are never coalesced with each other.

Shutdown: SIGTERM/SIGINT stop accepting connections, drain the
in-flight request, persist the SA table if file-backed, and exit 0.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import json
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.binding import SATable
from repro.errors import ConfigError, ReproError
from repro.flow.executor import DEFAULT_CACHE_ENTRIES, FlowExecutor
from repro.flow.grid import SweepSpec, expand_grid
from repro.serve.api import (
    RequestError,
    cell_payload,
    ingest_spec,
    request_key,
    request_priority,
    single_cell_spec,
    sweep_spec,
)

#: Default queue priorities (lower runs sooner).
PRIORITY_SINGLE = 0
PRIORITY_SWEEP = 10

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_LINES = 100


@dataclass
class ServeConfig:
    """Construction knobs of one daemon instance."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (tests); the bound port is
    #: published as ``FlowServer.port`` after ``start()``.
    port: int = 8791
    jobs: int = 1
    cache_entries: int = DEFAULT_CACHE_ENTRIES
    #: Sharded on-disk artifact store shared across restarts/processes.
    cache_dir: Optional[str] = None
    #: File-backed SA table, saved once at shutdown.
    sa_table: Optional[str] = None
    #: Requests queued beyond this respond 503 immediately.
    queue_limit: int = 10000


@dataclass
class _Pending:
    """One queued (possibly shared) computation."""

    kind: str
    spec: SweepSpec
    future: "asyncio.Future[Any]"
    #: Per-cell stream for sweep requests (None for single cells).
    stream: Optional["asyncio.Queue[Any]"] = None
    #: How many requests ride this computation (1 + dedup hits).
    waiters: int = 1


class FlowServer:
    """The daemon: HTTP front end + priority queue + resident executor.

    Owns its executor unless one is injected (tests share a pre-warmed
    one); an injected executor is not shut down by :meth:`stop`.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        executor: Optional[FlowExecutor] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._table = (
            SATable(path=self.config.sa_table)
            if self.config.sa_table else None
        )
        self._owns_executor = executor is None
        self.executor = executor or FlowExecutor(
            jobs=self.config.jobs,
            sa_table=self._table if self._table is not None else None,
            cache_entries=self.config.cache_entries,
            cache_dir=self.config.cache_dir,
        )
        self.port: Optional[int] = None
        self.requests: Dict[str, int] = {
            "estimate": 0, "flow": 0, "sweep": 0, "ingest": 0,
            "metrics": 0, "healthz": 0, "errors": 0,
        }
        self.deduped = 0
        self.cells_served = 0
        self._started_at: Optional[float] = None
        self._seq = itertools.count()
        self._heap: List[Tuple[int, int, str]] = []
        self._queued = asyncio.Event()
        self._inflight: Dict[str, _Pending] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._scheduler_task: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self.executor.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._scheduler_task = asyncio.create_task(self._scheduler())

    async def stop(self) -> None:
        """Stop accepting, drain the running request, release workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._scheduler_task is not None:
            # Let the currently-executing submission finish; anything
            # still queued is abandoned (clients see the connection
            # close — they never got a response line).
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        for pending in self._inflight.values():
            if not pending.future.done():
                pending.future.cancel()
        self._inflight.clear()
        if self._table is not None:
            self._table.save_if_dirty()
        if self._owns_executor:
            self.executor.shutdown()

    # -- queue + scheduler -------------------------------------------------

    def _submit(
        self,
        kind: str,
        spec: SweepSpec,
        priority: int,
        stream: Optional["asyncio.Queue[Any]"] = None,
    ) -> "asyncio.Future[Any]":
        """Enqueue one computation, deduplicating single-cell requests.

        Returns the future every identical in-flight request shares.
        Dedup covers the whole in-flight window — queued *and*
        executing — and ends when the future resolves; a later
        identical request recomputes (and hits the warm cache).
        """
        key = request_key(kind, spec)
        if stream is None:
            pending = self._inflight.get(key)
            if pending is not None:
                pending.waiters += 1
                self.deduped += 1
                return pending.future
        else:
            # Streaming responses are tied to one connection: never
            # share them.
            key = f"{key}:{next(self._seq)}"
        if len(self._heap) >= self.config.queue_limit:
            raise _Overloaded()
        pending = _Pending(
            kind=kind,
            spec=spec,
            future=asyncio.get_running_loop().create_future(),
            stream=stream,
        )
        self._inflight[key] = pending
        heapq.heappush(self._heap, (priority, next(self._seq), key))
        self._queued.set()
        return pending.future

    async def _scheduler(self) -> None:
        """Drain the queue in priority order, one submission at a time.

        Single worker by design: the executor serializes submissions
        anyway (its warm state must not be mutated concurrently), and
        a single drain point keeps completion order deterministic.
        """
        loop = asyncio.get_running_loop()
        while True:
            while not self._heap:
                self._queued.clear()
                await self._queued.wait()
            _, _, key = heapq.heappop(self._heap)
            pending = self._inflight.get(key)
            if pending is None or pending.future.cancelled():
                continue
            progress = None
            if pending.stream is not None:
                queue = pending.stream

                def progress(cell, _queue=queue):
                    loop.call_soon_threadsafe(_queue.put_nowait, cell)

            try:
                job_list = expand_grid(pending.spec)
                submission = await asyncio.to_thread(
                    self.executor.run_jobs, pending.spec, job_list,
                    progress=progress,
                )
                self.cells_served += len(submission.cells)
                if not pending.future.cancelled():
                    pending.future.set_result(submission)
            except Exception as exc:  # surfaced per-waiter as 4xx/5xx
                if not pending.future.cancelled():
                    pending.future.set_exception(exc)
            finally:
                self._inflight.pop(key, None)
                if pending.stream is not None:
                    loop.call_soon_threadsafe(
                        pending.stream.put_nowait, _EndOfStream
                    )

    # -- HTTP --------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _BadRequest as exc:
                self.requests["errors"] += 1
                await _respond_json(
                    writer, 400, {"error": str(exc) or "bad request"}
                )
                return
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception:
            self.requests["errors"] += 1
            try:
                await _respond_json(
                    writer, 500, {"error": "internal server error"}
                )
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise _BadRequest("empty request")
        try:
            method, target, _version = (
                request_line.decode("ascii").split(None, 2)
            )
        except (UnicodeDecodeError, ValueError):
            raise _BadRequest("malformed request line")
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many headers")
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            raise _BadRequest(f"bad Content-Length {length_raw!r}")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _BadRequest("body too large")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    async def _route(
        self, method: str, path: str, body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/metrics" and method == "GET":
            self.requests["metrics"] += 1
            await _respond_json(writer, 200, self.metrics())
            return
        if path == "/healthz" and method == "GET":
            self.requests["healthz"] += 1
            await _respond_json(writer, 200, {"status": "ok"})
            return
        if path in ("/estimate", "/flow", "/sweep", "/ingest"):
            if method != "POST":
                self.requests["errors"] += 1
                await _respond_json(
                    writer, 405, {"error": f"{path} expects POST"}
                )
                return
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                self.requests["errors"] += 1
                await _respond_json(
                    writer, 400, {"error": f"bad JSON body: {exc}"}
                )
                return
            if path == "/sweep":
                await self._handle_sweep(payload, writer)
            else:
                await self._handle_single(path[1:], payload, writer)
            return
        self.requests["errors"] += 1
        await _respond_json(writer, 404, {"error": f"no route {path}"})

    async def _handle_single(
        self, kind: str, payload: Any, writer: asyncio.StreamWriter
    ) -> None:
        try:
            if kind == "ingest":
                # External-design estimate: same submission path, the
                # spec is a one-design grid instead of a one-benchmark
                # one (see repro.ingest for the frontend).
                spec = ingest_spec(payload)
            else:
                spec = single_cell_spec(
                    payload, "estimate" if kind == "estimate" else "full"
                )
            priority = request_priority(payload, PRIORITY_SINGLE)
            future = self._submit(kind, spec, priority)
        except RequestError as exc:
            self.requests["errors"] += 1
            await _respond_json(writer, 400, {"error": str(exc)})
            return
        except _Overloaded:
            self.requests["errors"] += 1
            await _respond_json(
                writer, 503, {"error": "queue full, retry later"}
            )
            return
        self.requests[kind] += 1
        try:
            submission = await asyncio.shield(future)
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            self.requests["errors"] += 1
            await _respond_json(writer, 400, {"error": str(exc)})
            return
        except Exception:
            self.requests["errors"] += 1
            await _respond_json(
                writer, 500, {"error": "flow execution failed"}
            )
            return
        (cell,) = submission.cells
        await _respond_json(writer, 200, cell_payload(cell))

    async def _handle_sweep(
        self, payload: Any, writer: asyncio.StreamWriter
    ) -> None:
        stream: "asyncio.Queue[Any]" = asyncio.Queue()
        try:
            spec = sweep_spec(payload)
            priority = request_priority(payload, PRIORITY_SWEEP)
            future = self._submit("sweep", spec, priority, stream=stream)
        except RequestError as exc:
            self.requests["errors"] += 1
            await _respond_json(writer, 400, {"error": str(exc)})
            return
        except _Overloaded:
            self.requests["errors"] += 1
            await _respond_json(
                writer, 503, {"error": "queue full, retry later"}
            )
            return
        self.requests["sweep"] += 1
        await _start_chunked(writer, 200, "application/x-ndjson")
        while True:
            item = await stream.get()
            if item is _EndOfStream:
                break
            await _write_chunk(
                writer, _json_line({"cell": cell_payload(item)})
            )
        try:
            submission = future.result() if future.done() else await future
            summary = {
                "summary": {
                    "cells": len(submission.cells),
                    "sa_new_entries": submission.sa_new_entries,
                    "sim_batches": submission.sim_batches,
                    "sim_batched_cells": submission.sim_batched_cells,
                    "sim_batch_wall_s": submission.sim_batch_wall_s,
                    "cache": submission.cache.to_dict(),
                }
            }
        except ReproError as exc:
            self.requests["errors"] += 1
            summary = {"error": str(exc)}
        except Exception:
            self.requests["errors"] += 1
            summary = {"error": "flow execution failed"}
        await _write_chunk(writer, _json_line(summary))
        await _end_chunked(writer)

    # -- metrics -----------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None else 0.0
        )
        return {
            "uptime_s": uptime,
            "requests": dict(self.requests),
            "deduped": self.deduped,
            "cells_served": self.cells_served,
            "queue_depth": len(self._heap),
            "inflight": len(self._inflight),
            "executor": self.executor.stats.to_dict(),
        }


class _BadRequest(Exception):
    """Unparseable HTTP request (maps to 400)."""


class _Overloaded(Exception):
    """Queue at capacity (maps to 503)."""


#: Sentinel closing a sweep's per-cell stream.
_EndOfStream = object()


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _json_line(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True).encode() + b"\n"


async def _respond_json(
    writer: asyncio.StreamWriter, status: int, payload: Any
) -> None:
    body = json.dumps(payload, sort_keys=True).encode() + b"\n"
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("ascii")
    writer.write(head + body)
    await writer.drain()


async def _start_chunked(
    writer: asyncio.StreamWriter, status: int, content_type: str
) -> None:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Transfer-Encoding: chunked\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("ascii")
    writer.write(head)
    await writer.drain()


async def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
    await writer.drain()


async def _end_chunked(writer: asyncio.StreamWriter) -> None:
    writer.write(b"0\r\n\r\n")
    await writer.drain()


async def serve_forever(config: ServeConfig) -> int:
    """Run the daemon until SIGTERM/SIGINT, then drain and exit 0."""
    server = FlowServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    stopping = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stopping.set)
        except (NotImplementedError, RuntimeError):
            pass
    print(
        f"repro serve: listening on http://{server.config.host}:"
        f"{server.port} (jobs={config.jobs}, "
        f"cache_dir={config.cache_dir or '-'})",
        flush=True,
    )
    try:
        await stopping.wait()
    finally:
        await server.stop()
    print("repro serve: shut down cleanly", flush=True)
    return 0


def main(args: Any) -> int:
    """CLI entry point (``repro serve``)."""
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_entries=args.cache_entries,
        cache_dir=args.cache_dir,
        sa_table=args.sa_table,
    )
    try:
        return asyncio.run(serve_forever(config))
    except ConfigError as exc:
        raise SystemExit(f"error: {exc}")
