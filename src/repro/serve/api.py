"""Request model of the ``repro serve`` daemon.

Every HTTP request is normalized into the same declarative model the
sweep engine runs on (:mod:`repro.flow.grid`): a single-cell
:class:`~repro.flow.grid.SweepSpec` for ``/estimate`` and ``/flow``,
a full client-supplied spec for ``/sweep``. Normalizing first is what
makes deduplication sound — :func:`request_key` fingerprints the
normalized spec (the same content-addressing machinery the artifact
cache uses), so two requests that differ only in JSON key order or in
spelling out a default map to the same in-flight key, and their
results are byte-for-byte the cells a direct
:func:`~repro.flow.batch.run_sweep` / :func:`~repro.flow.run.run_flow`
call would produce.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from repro.errors import ConfigError, ReproError
from repro.flow.cache import fingerprint
from repro.flow.grid import BinderConfig, SweepCell, SweepSpec


class RequestError(ConfigError):
    """A malformed request body (maps to HTTP 400)."""


#: Accepted fields of a single-cell request, with defaults matching
#: :class:`~repro.flow.run.FlowConfig` so an empty request body means
#: exactly what a default ``run_flow`` call means. ``/estimate``
#: accepts only the fields upstream of the simulate stage.
_FLOW_FIELDS: Dict[str, Any] = {
    "benchmark": None,  # required
    "binder": "hlpower",
    "alpha": 0.5,
    "width": 8,
    "k": 4,
    "scheduler": "list",
    "map_effort": "fast",
    "bind_engine": "fast",
    "n_vectors": 256,
    "vector_seed": 7,
    "idle_selects": "zero",
    "delay_jitter": 0,
    "sim_kernel": "event",
    "check_function": True,
    "mcts_budget": 256,
    "mcts_seed": 1,
}
_ESTIMATE_ONLY_EXCLUDED = (
    "n_vectors", "vector_seed", "idle_selects", "delay_jitter",
    "sim_kernel",
)
#: Request fields consumed by the queue, not the spec.
_CONTROL_FIELDS = ("priority",)

_TYPES: Dict[str, Tuple[type, ...]] = {
    "benchmark": (str,),
    "binder": (str,),
    "alpha": (int, float),
    "width": (int,),
    "k": (int,),
    "scheduler": (str,),
    "map_effort": (str,),
    "bind_engine": (str,),
    "n_vectors": (int,),
    "vector_seed": (int,),
    "idle_selects": (str,),
    "delay_jitter": (int,),
    "sim_kernel": (str,),
    "check_function": (bool,),
    "mcts_budget": (int,),
    "mcts_seed": (int,),
}


def _single_cell_fields(body: Mapping[str, Any],
                        flow: str) -> Dict[str, Any]:
    if not isinstance(body, Mapping):
        raise RequestError("request body must be a JSON object")
    allowed = dict(_FLOW_FIELDS)
    if flow == "estimate":
        for field in _ESTIMATE_ONLY_EXCLUDED:
            del allowed[field]
    unknown = sorted(
        key for key in body
        if key not in allowed and key not in _CONTROL_FIELDS
    )
    if unknown:
        raise RequestError(
            f"unknown request field(s) {unknown}; accepted: "
            f"{sorted(allowed)}"
        )
    fields = dict(allowed)
    for key, value in body.items():
        if key in _CONTROL_FIELDS:
            continue
        expected = _TYPES[key]
        # bool is an int subclass: reject true where an int is wanted.
        if not isinstance(value, expected) or (
            isinstance(value, bool) and bool not in expected
        ):
            raise RequestError(
                f"field {key!r} expects "
                f"{'/'.join(t.__name__ for t in expected)}, "
                f"got {value!r}"
            )
        fields[key] = value
    if fields["benchmark"] is None:
        raise RequestError("field 'benchmark' is required")
    return fields


def single_cell_spec(body: Mapping[str, Any], flow: str) -> SweepSpec:
    """A one-cell grid for an ``/estimate`` or ``/flow`` request.

    The spec is validated eagerly so malformed requests fail at parse
    time with a 400, never inside the executor.
    """
    fields = _single_cell_fields(body, flow)
    defaults = _FLOW_FIELDS
    try:
        # Construction itself validates eagerly too (unknown binder
        # names raise in SweepSpec.__post_init__), so it stays inside
        # the 400 boundary.
        spec = SweepSpec(
            benchmarks=[fields["benchmark"]],
            configs=[BinderConfig(
                label=fields["binder"],
                binder=fields["binder"],
                alpha=float(fields["alpha"]),
            )],
            widths=(fields["width"],),
            vector_seeds=(fields.get("vector_seed",
                                     defaults["vector_seed"]),),
            n_vectors=fields.get("n_vectors", defaults["n_vectors"]),
            k=fields["k"],
            scheduler=fields["scheduler"],
            check_function=fields["check_function"],
            sim_kernel=fields.get("sim_kernel", defaults["sim_kernel"]),
            map_effort=fields["map_effort"],
            bind_engine=fields["bind_engine"],
            baseline="none",
            idle_modes=(fields.get("idle_selects",
                                   defaults["idle_selects"]),),
            jitters=(fields.get("delay_jitter",
                                defaults["delay_jitter"]),),
            flow=flow,
            mcts_budget=fields["mcts_budget"],
            mcts_seed=fields["mcts_seed"],
        )
        spec.validate()
    except ReproError as exc:  # ConfigError, unknown-benchmark, ...
        raise RequestError(str(exc)) from exc
    return spec


#: Accepted fields of a ``POST /ingest`` request: the design itself
#: plus the only flow knobs an external design consumes (it has no
#: schedule or binder, so the rest of ``_FLOW_FIELDS`` does not apply).
_INGEST_FIELDS: Dict[str, Any] = {
    "design": None,  # required: module JSON object/text or flat BLIF text
    "name": None,  # default: the design's own declared name
    "k": 4,
    "map_effort": "fast",
}


def ingest_spec(body: Mapping[str, Any]) -> SweepSpec:
    """A one-cell external-design grid for a ``POST /ingest`` request.

    ``design`` is either a ``repro-module-v1`` JSON object inline, or a
    string holding module JSON / flat BLIF text. Validation (format,
    widths, drivers, cycles) happens here, eagerly, so malformed
    designs are a 400 — never an executor crash.
    """
    import json

    if not isinstance(body, Mapping):
        raise RequestError("request body must be a JSON object")
    unknown = sorted(
        key for key in body
        if key not in _INGEST_FIELDS and key not in _CONTROL_FIELDS
    )
    if unknown:
        raise RequestError(
            f"unknown request field(s) {unknown}; accepted: "
            f"{sorted(_INGEST_FIELDS)}"
        )
    fields = dict(_INGEST_FIELDS)
    fields.update(
        (key, value) for key, value in body.items()
        if key not in _CONTROL_FIELDS
    )
    design = fields["design"]
    if isinstance(design, Mapping):
        design = json.dumps(design)
    if not isinstance(design, str) or not design.strip():
        raise RequestError(
            "field 'design' is required: a repro-module-v1 object, "
            "module JSON text, or flat BLIF text"
        )
    name = fields["name"]
    if name is None:
        from repro.ingest import load_design_text

        try:
            name = load_design_text(design).name
        except ReproError as exc:
            raise RequestError(str(exc))
    if not isinstance(name, str) or not name:
        raise RequestError(f"field 'name' expects a non-empty str, "
                           f"got {name!r}")
    if not isinstance(fields["k"], int) or isinstance(fields["k"], bool):
        raise RequestError(f"field 'k' expects int, got {fields['k']!r}")
    if not isinstance(fields["map_effort"], str):
        raise RequestError(
            f"field 'map_effort' expects str, got {fields['map_effort']!r}"
        )
    spec = SweepSpec(
        benchmarks=[],
        designs={name: design},
        k=fields["k"],
        map_effort=fields["map_effort"],
        baseline="none",
        flow="estimate",
    )
    try:
        spec.validate()
    except ReproError as exc:  # IngestError, NetlistError, ConfigError...
        raise RequestError(str(exc)) from exc
    return spec


def sweep_spec(body: Mapping[str, Any]) -> SweepSpec:
    """A full grid for a ``/sweep`` request.

    The body is either a :meth:`SweepSpec.to_dict` payload directly or
    wrapped under a ``"spec"`` key (so control fields like
    ``priority`` can ride alongside).
    """
    if not isinstance(body, Mapping):
        raise RequestError("request body must be a JSON object")
    payload = body.get("spec", None)
    if payload is None:
        payload = {
            key: value for key, value in body.items()
            if key not in _CONTROL_FIELDS
        }
    if not isinstance(payload, Mapping):
        raise RequestError("'spec' must be a JSON object")
    try:
        spec = SweepSpec.from_dict(payload)
    except (TypeError, ConfigError) as exc:
        raise RequestError(f"bad sweep spec: {exc}") from exc
    try:
        spec.validate()
    except ReproError as exc:
        raise RequestError(str(exc)) from exc
    return spec


def request_priority(body: Mapping[str, Any], default: int) -> int:
    """The queue priority of a request (lower runs sooner)."""
    priority = body.get("priority", default)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise RequestError(
            f"field 'priority' expects int, got {priority!r}"
        )
    return priority


def request_key(kind: str, spec: SweepSpec) -> str:
    """The in-flight deduplication key of a normalized request.

    Built from the same content-addressing primitive as the pipeline's
    stage fingerprints: the spec's serialized form fully determines
    every stage fingerprint of every cell in the request, so equal
    keys guarantee byte-identical work.
    """
    return fingerprint("serve", kind, spec.to_dict())


def cell_payload(cell: SweepCell) -> Dict[str, Any]:
    """The JSON shape of one result cell."""
    return {
        "benchmark": cell.benchmark,
        "config": cell.config,
        "binder": cell.binder,
        "alpha": cell.alpha,
        "width": cell.width,
        "vector_seed": cell.vector_seed,
        "idle_selects": cell.idle_selects,
        "delay_jitter": cell.delay_jitter,
        "sim_kernel": cell.sim_kernel,
        "map_effort": cell.map_effort,
        "bind_engine": cell.bind_engine,
        "metrics": cell.metrics,
        "runtime_s": cell.runtime_s,
        "cache_hits": list(cell.cache_hits),
    }
