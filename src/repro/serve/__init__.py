"""Long-lived power-estimation service (``repro serve``).

The service layer of the flow (see docs/serving.md): an asyncio
HTTP/JSON daemon (:mod:`repro.serve.server`) fronting a resident
:class:`~repro.flow.executor.FlowExecutor`, with a priority request
queue that deduplicates identical in-flight requests by their
content fingerprint (:mod:`repro.serve.api`).
"""

from repro.serve.api import (
    RequestError,
    cell_payload,
    request_key,
    single_cell_spec,
    sweep_spec,
)
from repro.serve.server import (
    PRIORITY_SINGLE,
    PRIORITY_SWEEP,
    FlowServer,
    ServeConfig,
    serve_forever,
)

__all__ = [
    "RequestError",
    "cell_payload",
    "request_key",
    "single_cell_spec",
    "sweep_spec",
    "PRIORITY_SINGLE",
    "PRIORITY_SWEEP",
    "FlowServer",
    "ServeConfig",
    "serve_forever",
]
