"""Parallel sweep engine for the experiment flow.

The paper's results are all grids of the same measurement: every table
and figure is ``benchmark x binder x alpha x seed`` cells of
:func:`~repro.flow.run.run_flow`. This module turns that shape into a
first-class subsystem:

* :class:`SweepSpec` — a declarative grid (benchmarks, binder
  configurations, alphas, widths, vector seeds, idle policies, delay
  jitters, sim kernels) plus the shared flow knobs;
* :func:`expand_grid` — spec -> concrete :class:`SweepJob` list;
* :func:`run_sweep` — executes the jobs across a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=1`` is a
  fully in-process deterministic mode used by the tests and the bench
  fixtures) and collects per-cell records into a JSON-serializable
  :class:`SweepResult`.

Four performance layers keep the grid cheap:

* a per-worker **artifact cache** — every cell runs through the staged
  pipeline (:mod:`repro.flow.pipeline`), whose stage artifacts are
  content-fingerprinted into an
  :class:`~repro.flow.cache.ArtifactCache`. Cells that share a prefix
  (same binder+alpha but a different vector seed / jitter / idle mode
  / kernel) reuse the bound-and-mapped design and become
  simulate-only work; per-stage hits and wall clock land in each
  :class:`SweepCell`;
* a content-keyed **elaboration memo** — schedule, register binding
  and port assignment depend only on ``(benchmark, scheduler,
  constraints)``, so each worker process computes them once per
  benchmark and every binder/alpha/seed job on that benchmark reuses
  them (cache hits are counted per cell);
* **batched simulation dispatch** — event-kernel cells in a chunk
  that share everything upstream of the simulate stage (they differ
  only in seed / idle mode / jitter) are grouped by
  :func:`_batch_key` and simulated together in one
  :func:`~repro.fpga.simulate.simulate_batch` kernel pass of up to
  ``SweepSpec.sim_batch`` configurations; the per-cell flows then hit
  the cache. Batch sizes and per-config kernel wall clock land in
  :attr:`SweepCell.sim_batch` / :attr:`SweepCell.sim_batch_s`;
* **shared SA-table state** — the parent precalculates/loads the
  Section 5.2.2 table once per sweep, ships the values to every worker
  via the pool initializer, and merges any entries a worker still had
  to compute back into the master table, which is saved once
  (atomically) at the end instead of once per job.

Partial flows are first-class: ``SweepSpec(flow="estimate")`` stops
every cell after tech-map and records the Equation-(3) estimates —
no vectors, no simulation — which is what ``repro estimate`` drives.

Determinism: every per-cell ``metrics`` record is a pure function of
the cell's inputs — SA-table values are themselves deterministic, so
cache state cannot influence binding decisions; the artifact cache
only ever substitutes byte-identical recomputations — and ``jobs=N``
(cached or cold) produces byte-identical metrics to ``jobs=1``.
"""

from __future__ import annotations

import json
import statistics
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.binding import BIND_ENGINES, SATable
from repro.cdfg import Schedule, benchmark_spec, load_benchmark
from repro.errors import ConfigError
from repro.flow.cache import ArtifactCache
from repro.flow.pipeline import batch_simulate_pipelines
from repro.flow.run import (
    FlowConfig,
    FlowResult,
    build_pipeline,
    execute_flow,
    prepare_flow_inputs,
)
from repro.scheduling import force_directed_schedule, list_schedule
from repro.techmap import MAP_EFFORTS

#: Default in-memory artifact-cache capacity per worker process.
DEFAULT_CACHE_ENTRIES = 64


@dataclass(frozen=True)
class BinderConfig:
    """One binder column of the grid.

    ``label`` names the column in records and reports ("lopass",
    "hlpower_a05", ...); ``alpha`` is Equation (4)'s weight and is
    ignored by binders that do not consume it (LOPASS).
    """

    label: str
    binder: str
    alpha: float = 0.5


@dataclass
class SweepSpec:
    """Declarative description of one experiment grid.

    The grid is the cross product ``benchmarks x binder_configs x
    widths x bind engines x map efforts x idle_modes x jitters x
    sim kernels x vector_seeds``.
    Binder configurations come either from the ``binders x alphas``
    cross product (the default) or from an explicit ``configs`` list
    when the columns are not a product — e.g. the bench suite's
    ``lopass / hlpower_a1 / hlpower_a05``. The simulation-only axes
    (idle mode, jitter, kernel, seed) vary nothing before the simulate
    stage, so the pipeline cache turns them into simulate-only work.
    """

    benchmarks: Sequence[str]
    binders: Sequence[str] = ("lopass", "hlpower")
    alphas: Sequence[float] = (0.5,)
    widths: Sequence[int] = (8,)
    vector_seeds: Sequence[int] = (7,)
    configs: Optional[Sequence[BinderConfig]] = None
    n_vectors: int = 256
    k: int = 4
    scheduler: str = "list"
    check_function: bool = True
    #: Simulation kernel for every cell: "event" (default) or
    #: "reference" (the differential-testing oracle; several-fold
    #: slower, byte-identical metrics). ``sim_kernels`` overrides this
    #: scalar with a grid axis.
    sim_kernel: str = "event"
    #: Technology-mapper effort for every cell: "fast" (default,
    #: byte-identical to the seed mapper), "exhaustive", or
    #: "reference" (the seed mapper; the differential oracle).
    #: ``map_efforts`` overrides this scalar with a grid axis.
    map_effort: str = "fast"
    #: Binding engine for every cell: "fast" (default, the vectorized
    #: engines — byte-identical solutions) or "reference" (the seed
    #: binders; the differential oracle). ``bind_engines`` overrides
    #: this scalar with a grid axis.
    bind_engine: str = "fast"
    #: Binder label (or binder name) used as the reference for
    #: percentage changes; "none" (or empty) disables the comparison.
    baseline: str = "lopass"
    #: Idle-step control policies to sweep ("zero" and/or "hold").
    idle_modes: Sequence[str] = ("zero",)
    #: Per-gate delay-jitter values to sweep (0 = pure unit delay).
    jitters: Sequence[int] = (0,)
    #: Optional kernel axis; ``None`` means ``(sim_kernel,)``.
    sim_kernels: Optional[Sequence[str]] = None
    #: Optional mapper-effort axis; ``None`` means ``(map_effort,)``.
    map_efforts: Optional[Sequence[str]] = None
    #: Optional bind-engine axis; ``None`` means ``(bind_engine,)``.
    bind_engines: Optional[Sequence[str]] = None
    #: "full" runs the paper's measurement chain; "estimate" stops
    #: every cell after tech-map (Equation-(3) numbers, no simulator).
    flow: str = "full"
    #: Maximum configurations per batched simulation kernel pass.
    #: Event-kernel cells that share the mapped design (same benchmark
    #: / binder / width / effort / engine, differing only in seed,
    #: idle mode or jitter) are dispatched through
    #: :func:`~repro.flow.pipeline.batch_simulate_pipelines` in groups
    #: of up to this many; ``1`` disables batching (every cell runs
    #: the solo kernel). Metrics are byte-identical either way. Kernel
    #: wall clock is strongly sublinear in batch width (the union of
    #: scheduled events grows much slower than the config count), so
    #: wider is cheaper until word width dominates; 32 is the sweet
    #: spot measured on the chem benchmark (BENCH_flow.json).
    sim_batch: int = 32

    def binder_configs(self) -> List[BinderConfig]:
        if self.configs is not None:
            return list(self.configs)
        out = []
        for binder in self.binders:
            for alpha in self.alphas:
                label = binder if len(self.alphas) == 1 else (
                    f"{binder}_a{alpha:g}"
                )
                out.append(BinderConfig(label, binder, alpha))
        return out

    def kernels(self) -> List[str]:
        """The kernel axis (the scalar ``sim_kernel`` unless overridden)."""
        if self.sim_kernels is not None:
            return list(self.sim_kernels)
        return [self.sim_kernel]

    def efforts(self) -> List[str]:
        """The mapper-effort axis (scalar unless overridden)."""
        if self.map_efforts is not None:
            return list(self.map_efforts)
        return [self.map_effort]

    def engines(self) -> List[str]:
        """The bind-engine axis (scalar unless overridden)."""
        if self.bind_engines is not None:
            return list(self.bind_engines)
        return [self.bind_engine]

    def validate(self) -> None:
        if not self.benchmarks:
            raise ConfigError("sweep spec has no benchmarks")
        for name in self.benchmarks:
            benchmark_spec(name)  # raises on unknown names
        if self.scheduler not in ("list", "force"):
            raise ConfigError(f"unknown scheduler {self.scheduler!r}")
        for kernel in [self.sim_kernel] + self.kernels():
            if kernel not in ("event", "reference"):
                raise ConfigError(
                    f"unknown simulation kernel {kernel!r}; choose "
                    f"from ('event', 'reference')"
                )
        for effort in [self.map_effort] + self.efforts():
            if effort not in MAP_EFFORTS:
                raise ConfigError(
                    f"unknown mapper effort {effort!r}; choose from "
                    f"{MAP_EFFORTS}"
                )
        for engine in [self.bind_engine] + self.engines():
            if engine not in BIND_ENGINES:
                raise ConfigError(
                    f"unknown bind engine {engine!r}; choose from "
                    f"{BIND_ENGINES}"
                )
        if self.flow not in ("full", "estimate"):
            raise ConfigError(
                f"unknown flow mode {self.flow!r}; choose from "
                f"('full', 'estimate')"
            )
        if self.sim_batch < 1:
            raise ConfigError(
                f"sim_batch must be >= 1, got {self.sim_batch}"
            )
        if not self.idle_modes:
            raise ConfigError("sweep spec needs >= 1 idle mode")
        for idle in self.idle_modes:
            if idle not in ("zero", "hold"):
                raise ConfigError(
                    f"unknown idle policy {idle!r}; choose from "
                    f"('zero', 'hold')"
                )
        if not self.jitters:
            raise ConfigError("sweep spec needs >= 1 jitter value")
        for jitter in self.jitters:
            if jitter < 0:
                raise ConfigError(f"delay jitter must be >= 0, got {jitter}")
        configs = self.binder_configs()
        if not configs:
            raise ConfigError("sweep spec has no binder configurations")
        for config in configs:
            if config.binder not in ("lopass", "hlpower"):
                raise ConfigError(
                    f"unknown binder {config.binder!r}; choose from "
                    f"('lopass', 'hlpower')"
                )
        labels = [config.label for config in configs]
        if len(set(labels)) != len(labels):
            raise ConfigError(f"duplicate binder labels: {labels}")
        if not self.widths or not self.vector_seeds:
            raise ConfigError("sweep spec needs >= 1 width and seed")
        if self.baseline and self.baseline != "none":
            if self.baseline not in labels:
                matches = [
                    c for c in configs if c.binder == self.baseline
                ]
                if not matches:
                    raise ConfigError(
                        f"baseline {self.baseline!r} matches no binder "
                        f"configuration; choose from {sorted(labels)} or "
                        f"pass 'none'"
                    )
                # LOPASS ignores alpha, so all its grid columns hold
                # identical cells and any of them can anchor the
                # comparison; an alpha-sensitive binder must be named
                # by its exact label.
                if len(matches) > 1 and self.baseline != "lopass":
                    raise ConfigError(
                        f"baseline {self.baseline!r} is ambiguous across "
                        f"alphas; use an explicit label such as "
                        f"{matches[0].label!r}"
                    )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["benchmarks"] = list(self.benchmarks)
        data["binders"] = list(self.binders)
        data["alphas"] = list(self.alphas)
        data["widths"] = list(self.widths)
        data["vector_seeds"] = list(self.vector_seeds)
        data["idle_modes"] = list(self.idle_modes)
        data["jitters"] = list(self.jitters)
        if self.sim_kernels is not None:
            data["sim_kernels"] = list(self.sim_kernels)
        if self.map_efforts is not None:
            data["map_efforts"] = list(self.map_efforts)
        if self.bind_engines is not None:
            data["bind_engines"] = list(self.bind_engines)
        if self.configs is not None:
            data["configs"] = [asdict(config) for config in self.configs]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        kwargs = dict(data)
        if kwargs.get("configs") is not None:
            kwargs["configs"] = [
                BinderConfig(**config) for config in kwargs["configs"]
            ]
        return cls(**kwargs)


@dataclass(frozen=True)
class SweepJob:
    """One expanded grid cell, ready to run."""

    index: int
    benchmark: str
    config: BinderConfig
    width: int
    vector_seed: int
    idle_selects: str = "zero"
    delay_jitter: int = 0
    sim_kernel: str = "event"
    map_effort: str = "fast"
    bind_engine: str = "fast"


@dataclass
class SweepCell:
    """The record one job produces."""

    benchmark: str
    config: str
    binder: str
    alpha: float
    width: int
    vector_seed: int
    #: Deterministic measurements (see :meth:`FlowResult.metrics` /
    #: :meth:`EstimateResult.metrics` depending on the spec's flow).
    metrics: Dict[str, float]
    runtime_s: float
    schedule_cache_hit: bool
    sa_new_entries: int
    idle_selects: str = "zero"
    delay_jitter: int = 0
    sim_kernel: str = "event"
    map_effort: str = "fast"
    bind_engine: str = "fast"
    #: Per-pipeline-stage wall clock of this cell's flow run.
    stage_timings: Dict[str, float] = field(default_factory=dict)
    #: Pipeline stages served from the worker's artifact cache.
    cache_hits: List[str] = field(default_factory=list)
    #: Size of the batched simulation pass that produced this cell's
    #: trace (0 = solo kernel run, batching off or group too small).
    sim_batch: int = 0
    #: This cell's share of its batched pass's kernel wall clock
    #: (total pass seconds / configurations in the pass).
    sim_batch_s: float = 0.0

    @property
    def key(self) -> Tuple[str, str, int, int, str, int, str, str, str]:
        return (
            self.benchmark, self.config, self.width, self.vector_seed,
            self.idle_selects, self.delay_jitter, self.sim_kernel,
            self.map_effort, self.bind_engine,
        )


def expand_grid(spec: SweepSpec) -> List[SweepJob]:
    """Expand the spec into jobs, benchmark-major.

    Benchmark-major order keeps jobs that share an elaboration-memo key
    adjacent, and simulation-only axes (idle/jitter/kernel/seed)
    innermost so consecutive jobs share the longest cached pipeline
    prefix. In estimate mode the simulation-only axes are collapsed to
    their first value — they cannot move any estimate metric, so
    multiplying cells over them would only duplicate records.
    """
    spec.validate()
    idle_modes: Sequence[str] = spec.idle_modes
    jitters: Sequence[int] = spec.jitters
    kernels: Sequence[str] = spec.kernels()
    seeds: Sequence[int] = spec.vector_seeds
    if spec.flow == "estimate":
        idle_modes = idle_modes[:1]
        jitters = jitters[:1]
        kernels = kernels[:1]
        seeds = seeds[:1]
    jobs: List[SweepJob] = []
    for benchmark in spec.benchmarks:
        for config in spec.binder_configs():
            for width in spec.widths:
                # The bind-engine axis is outermost (bind is the
                # pipeline root: engine cells share no cached
                # prefix), then the mapper-effort axis outside the
                # simulation-only axes: cells that share (benchmark,
                # binder, width, engine, effort) still share the
                # mapped prefix.
                for engine in spec.engines():
                    for effort in spec.efforts():
                        for idle in idle_modes:
                            for jitter in jitters:
                                for kernel in kernels:
                                    for seed in seeds:
                                        jobs.append(SweepJob(
                                            len(jobs), benchmark,
                                            config, width, seed, idle,
                                            jitter, kernel, effort,
                                            engine,
                                        ))
    return jobs


# ---------------------------------------------------------------------------
# Worker side. One module-level state dict per process, filled by the pool
# initializer (or directly for jobs=1 in-process mode).
# ---------------------------------------------------------------------------


@dataclass
class _WorkerPayload:
    """Everything a worker process needs, shipped once at pool start."""

    spec: SweepSpec
    sa_table: SATable  # preloaded values travel inside
    use_cache: bool = True
    cache_entries: int = DEFAULT_CACHE_ENTRIES
    cache_dir: Optional[str] = None


_WORKER: Dict[str, Any] = {}


def _init_worker(payload: _WorkerPayload) -> None:
    _WORKER["spec"] = payload.spec
    _WORKER["sa_table"] = payload.sa_table
    _WORKER["sa_known"] = set(payload.sa_table.snapshot())
    _WORKER["memo"] = {}
    _WORKER["cache"] = (
        ArtifactCache(payload.cache_entries, payload.cache_dir)
        if payload.use_cache
        else None
    )


def _elaborate(benchmark: str, spec: SweepSpec,
               prefetch: bool = False) -> Tuple[Schedule, Dict[str, int], Any, Any, bool]:
    """Memoized schedule + registers + ports for one benchmark.

    Keyed by the content that determines them: benchmark name,
    scheduler, and the resource constraints. Returns the cached tuple
    plus whether this call was a hit.

    ``prefetch=True`` marks a call from the batched-simulation
    prefetch pass: a miss it fills is billed to the *first per-cell
    consumer* instead, so the sweep's hit/miss accounting reads the
    same whether or not batching ran first.

    With the list scheduler the Table 2 constraints drive the
    schedule; with the force-directed scheduler the binding
    constraints are the balanced schedule's own lower bound
    (``min_resources``), matching :func:`repro.hls.synthesize` — the
    Table 2 numbers need not be feasible for a latency-balanced
    schedule.
    """
    bench = benchmark_spec(benchmark)
    key = (
        benchmark,
        spec.scheduler,
        tuple(sorted(bench.constraints.items())),
    )
    memo: Dict[Any, Any] = _WORKER["memo"]
    unbilled: set = _WORKER.setdefault("prefetch_misses", set())
    hit = key in memo
    if not hit:
        cdfg = load_benchmark(benchmark)
        if spec.scheduler == "force":
            schedule = force_directed_schedule(cdfg)
            constraints = schedule.min_resources()
        else:
            constraints = bench.constraints
            schedule = list_schedule(cdfg, constraints)
        registers, ports = prepare_flow_inputs(schedule)
        memo[key] = (schedule, constraints, registers, ports)
        if prefetch:
            unbilled.add(key)
    if not prefetch and key in unbilled:
        unbilled.discard(key)
        hit = False
    schedule, constraints, registers, ports = memo[key]
    return schedule, constraints, registers, ports, hit


def _flow_config(job: SweepJob, spec: SweepSpec, table: SATable) -> FlowConfig:
    """The FlowConfig of one job — shared by execution and prefetch, so
    batched pipelines fingerprint identically to the per-cell flows."""
    return FlowConfig(
        width=job.width,
        k=spec.k,
        n_vectors=spec.n_vectors,
        vector_seed=job.vector_seed,
        alpha=job.config.alpha,
        sa_table=table,
        check_function=spec.check_function,
        idle_selects=job.idle_selects,
        delay_jitter=job.delay_jitter,
        sim_kernel=job.sim_kernel,
        map_effort=job.map_effort,
        bind_engine=job.bind_engine,
        flow=spec.flow,
    )


def _execute(job: SweepJob) -> Tuple[SweepCell, Any, Dict[Any, float]]:
    """Run one job against this process's shared state."""
    spec: SweepSpec = _WORKER["spec"]
    table: SATable = _WORKER["sa_table"]
    schedule, constraints, registers, ports, hit = _elaborate(
        job.benchmark, spec
    )
    config = _flow_config(job, spec, table)
    result = execute_flow(
        schedule, constraints, job.config.binder, config, registers, ports,
        cache=_WORKER["cache"],
    )
    known: set = _WORKER["sa_known"]
    new_entries = {
        key: value
        for key, value in table.snapshot().items()
        if key not in known
    }
    known.update(new_entries)
    cell = SweepCell(
        benchmark=job.benchmark,
        config=job.config.label,
        binder=job.config.binder,
        alpha=job.config.alpha,
        width=job.width,
        vector_seed=job.vector_seed,
        metrics=result.metrics(),
        runtime_s=result.runtime_s,
        schedule_cache_hit=hit,
        sa_new_entries=len(new_entries),
        idle_selects=job.idle_selects,
        delay_jitter=job.delay_jitter,
        sim_kernel=job.sim_kernel,
        map_effort=job.map_effort,
        bind_engine=job.bind_engine,
        stage_timings=dict(result.stage_timings),
        cache_hits=list(result.cache_hits),
    )
    return cell, result, new_entries


def _batch_key(job: SweepJob, spec: SweepSpec) -> Optional[Tuple]:
    """Grouping key for batched simulation, or None if ineligible.

    Jobs sharing a key share everything upstream of the simulate stage
    (same benchmark, binder config, width, mapper effort and bind
    engine), so their techmap fingerprints coincide and they can ride
    one batched kernel pass. Only full-flow event-kernel cells qualify.
    """
    if spec.flow != "full" or job.sim_kernel != "event":
        return None
    return (
        job.benchmark, job.config.label, job.width, job.map_effort,
        job.bind_engine,
    )


def _prefetch_batches(
    chunk: Sequence[SweepJob],
) -> Tuple[Dict[int, Tuple[int, float]], Dict[str, Any]]:
    """Run batched simulation passes for a chunk of jobs.

    Groups the chunk's eligible jobs by :func:`_batch_key`, builds one
    pipeline per job over the worker's shared cache, and lets
    :func:`~repro.flow.pipeline.batch_simulate_pipelines` store their
    simulate artifacts; the per-job flows then hit the cache instead of
    running the solo kernel. Returns per-job-index ``(batch size,
    kernel-wall share)`` annotations plus chunk-level batching stats.
    """
    annotations: Dict[int, Tuple[int, float]] = {}
    stats = {"batches": 0, "batched_cells": 0, "batch_wall_s": 0.0}
    spec: SweepSpec = _WORKER["spec"]
    cache: Optional[ArtifactCache] = _WORKER["cache"]
    if cache is None or spec.sim_batch <= 1 or spec.flow != "full":
        return annotations, stats
    table: SATable = _WORKER["sa_table"]
    groups: Dict[Tuple, List[SweepJob]] = {}
    for job in chunk:
        key = _batch_key(job, spec)
        if key is not None:
            groups.setdefault(key, []).append(job)
    for group_jobs in groups.values():
        if len(group_jobs) < 2:
            continue
        pipes = []
        for job in group_jobs:
            schedule, constraints, registers, ports, _ = _elaborate(
                job.benchmark, spec, prefetch=True
            )
            pipes.append(build_pipeline(
                schedule, constraints, job.config.binder,
                _flow_config(job, spec, table), registers, ports,
                cache=cache,
            ))
        passes = batch_simulate_pipelines(pipes, max_batch=spec.sim_batch)
        for member_indices, wall in passes:
            share = wall / len(member_indices)
            for member in member_indices:
                annotations[group_jobs[member].index] = (
                    len(member_indices), share,
                )
            stats["batches"] += 1
            stats["batched_cells"] += len(member_indices)
            stats["batch_wall_s"] += wall
    return annotations, stats


def _run_chunk(
    chunk: Sequence[SweepJob],
    keep_results: bool = False,
    progress: Optional[Callable[["SweepCell"], None]] = None,
) -> Tuple[List[Tuple[SweepCell, Any, Dict[Any, float]]], Dict[str, Any]]:
    """Batched prefetch + per-job flows for one chunk of jobs."""
    annotations, stats = _prefetch_batches(chunk)
    out = []
    for job in chunk:
        cell, result, new_entries = _execute(job)
        note = annotations.get(job.index)
        if note is not None:
            cell.sim_batch, cell.sim_batch_s = note
        out.append((cell, result if keep_results else None, new_entries))
        if progress is not None:
            progress(cell)
    return out, stats


def _execute_chunk_remote(
    chunk: List[SweepJob],
) -> Tuple[List[Tuple[SweepCell, Dict[Any, float]]], Dict[str, Any]]:
    """Pool entry point: drop the heavyweight FlowResults before pickling."""
    executed, stats = _run_chunk(chunk)
    return (
        [(cell, new_entries) for cell, _, new_entries in executed],
        stats,
    )


# ---------------------------------------------------------------------------
# Result store.
# ---------------------------------------------------------------------------


@dataclass
class SweepResult:
    """Structured store of one sweep's per-cell records and stats."""

    spec: SweepSpec
    cells: List[SweepCell]
    jobs: int
    wall_s: float
    schedule_cache_hits: int
    schedule_cache_misses: int
    sa_precalc_entries: int
    sa_new_entries: int
    #: Pipeline-stage cache traffic summed over all cells.
    stage_cache_hits: int = 0
    stage_cache_misses: int = 0
    #: Batched-simulation dispatch: kernel passes run, cells served by
    #: them, and their total kernel wall clock (see SweepSpec.sim_batch).
    sim_batches: int = 0
    sim_batched_cells: int = 0
    sim_batch_wall_s: float = 0.0
    #: Full FlowResults keyed by cell key; only populated when
    #: ``run_sweep(..., keep_results=True)``.
    results: Dict[Tuple, Any] = field(default_factory=dict, repr=False)

    def cell(
        self,
        benchmark: str,
        config: str,
        width: Optional[int] = None,
        vector_seed: Optional[int] = None,
        idle_selects: Optional[str] = None,
        delay_jitter: Optional[int] = None,
        sim_kernel: Optional[str] = None,
        map_effort: Optional[str] = None,
        bind_engine: Optional[str] = None,
    ) -> SweepCell:
        """The unique cell matching the given coordinates."""
        matches = [
            c
            for c in self.cells
            if c.benchmark == benchmark
            and c.config == config
            and (width is None or c.width == width)
            and (vector_seed is None or c.vector_seed == vector_seed)
            and (idle_selects is None or c.idle_selects == idle_selects)
            and (delay_jitter is None or c.delay_jitter == delay_jitter)
            and (sim_kernel is None or c.sim_kernel == sim_kernel)
            and (map_effort is None or c.map_effort == map_effort)
            and (bind_engine is None or c.bind_engine == bind_engine)
        ]
        if not matches:
            raise KeyError(
                (benchmark, config, width, vector_seed, idle_selects,
                 delay_jitter, sim_kernel, map_effort, bind_engine)
            )
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous cell {(benchmark, config)}: {len(matches)} "
                f"matches; pass width/vector_seed/idle_selects/"
                f"delay_jitter/sim_kernel/map_effort/bind_engine"
            )
        return matches[0]

    def result_of(
        self,
        benchmark: str,
        config: str,
        width: Optional[int] = None,
        vector_seed: Optional[int] = None,
        idle_selects: Optional[str] = None,
        delay_jitter: Optional[int] = None,
        sim_kernel: Optional[str] = None,
        map_effort: Optional[str] = None,
        bind_engine: Optional[str] = None,
    ) -> FlowResult:
        """The retained FlowResult for a cell (needs keep_results)."""
        cell = self.cell(
            benchmark, config, width, vector_seed, idle_selects,
            delay_jitter, sim_kernel, map_effort, bind_engine,
        )
        return self.results[cell.key]

    # -- aggregation -------------------------------------------------------

    def aggregates(self) -> List[Dict[str, Any]]:
        """Per-group stats across vector seeds.

        Groups are ``(benchmark, config, width, idle, jitter, kernel,
        map effort)`` — everything but the seed axis. Full-flow groups report
        mean/stdev dynamic power and toggle rate (the seed-sensitive
        metrics); estimate-flow groups report the Equation-(3)
        switching-activity estimate and glitch fraction instead (keys
        ``sa_mean`` / ``sa_stdev`` / ``glitch_fraction``). Both carry
        the seed-invariant area/mux/clock numbers and the percentage
        change of the primary metric versus the spec's baseline binder
        on the same group coordinates — ``None`` when the sweep
        contains no baseline cells.
        """
        from repro.flow.report import percent_change
        estimate = self.spec.flow == "estimate"
        primary_key = "estimated_sa" if estimate else "dynamic_power_mw"
        groups: Dict[Tuple, List[SweepCell]] = {}
        for cell in self.cells:
            group = (
                cell.benchmark, cell.config, cell.width,
                cell.idle_selects, cell.delay_jitter, cell.sim_kernel,
                cell.map_effort, cell.bind_engine,
            )
            groups.setdefault(group, []).append(cell)

        baseline = self.spec.baseline
        baseline_primary: Dict[Tuple, float] = {}
        if baseline and baseline != "none":
            for group, cells in groups.items():
                coords = (group[0],) + group[2:]  # all but the config
                if group[1] == baseline or (
                    cells[0].binder == baseline
                    and coords not in baseline_primary
                ):
                    baseline_primary[coords] = statistics.fmean(
                        c.metrics[primary_key] for c in cells
                    )

        out = []
        for group, cells in groups.items():
            (benchmark, config, width, idle, jitter, kernel,
             map_effort, bind_engine) = group
            primary = [c.metrics[primary_key] for c in cells]
            base = baseline_primary.get((benchmark,) + group[2:])
            mean_primary = statistics.fmean(primary)
            record = {
                "benchmark": benchmark,
                "config": config,
                "width": width,
                "idle_selects": idle,
                "delay_jitter": jitter,
                "sim_kernel": kernel,
                "map_effort": map_effort,
                "bind_engine": bind_engine,
                "n_seeds": len(cells),
                "area_luts": cells[0].metrics["area_luts"],
                "largest_mux": cells[0].metrics["largest_mux"],
                "clock_period_ns": cells[0].metrics["clock_period_ns"],
                "runtime_s": sum(c.runtime_s for c in cells),
            }
            if estimate:
                record["sa_mean"] = mean_primary
                record["sa_stdev"] = (
                    statistics.stdev(primary) if len(primary) > 1 else 0.0
                )
                record["glitch_fraction"] = statistics.fmean(
                    c.metrics["glitch_fraction"] for c in cells
                )
                record["d_sa_vs_baseline_pct"] = (
                    percent_change(base, mean_primary)
                    if base is not None
                    else None
                )
            else:
                rates = [c.metrics["toggle_rate_mhz"] for c in cells]
                record["power_mean_mw"] = mean_primary
                record["power_stdev_mw"] = (
                    statistics.stdev(primary) if len(primary) > 1 else 0.0
                )
                record["toggle_rate_mean_mhz"] = statistics.fmean(rates)
                record["toggle_rate_stdev_mhz"] = (
                    statistics.stdev(rates) if len(rates) > 1 else 0.0
                )
                record["d_power_vs_baseline_pct"] = (
                    percent_change(base, mean_primary)
                    if base is not None
                    else None
                )
            out.append(record)
        return out

    def stage_time_totals(self) -> Dict[str, float]:
        """Wall clock per pipeline stage summed over all cells."""
        totals: Dict[str, float] = {}
        for cell in self.cells:
            for stage, seconds in cell.stage_timings.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "schedule_cache_hits": self.schedule_cache_hits,
            "schedule_cache_misses": self.schedule_cache_misses,
            "sa_precalc_entries": self.sa_precalc_entries,
            "sa_new_entries": self.sa_new_entries,
            "stage_cache_hits": self.stage_cache_hits,
            "stage_cache_misses": self.stage_cache_misses,
            "sim_batches": self.sim_batches,
            "sim_batched_cells": self.sim_batched_cells,
            "sim_batch_wall_s": self.sim_batch_wall_s,
            "stage_time_totals": self.stage_time_totals(),
            "cells": [asdict(cell) for cell in self.cells],
            "aggregates": self.aggregates(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        return cls(
            spec=SweepSpec.from_dict(data["spec"]),
            cells=[SweepCell(**cell) for cell in data["cells"]],
            jobs=data["jobs"],
            wall_s=data["wall_s"],
            schedule_cache_hits=data["schedule_cache_hits"],
            schedule_cache_misses=data["schedule_cache_misses"],
            sa_precalc_entries=data["sa_precalc_entries"],
            sa_new_entries=data["sa_new_entries"],
            stage_cache_hits=data.get("stage_cache_hits", 0),
            stage_cache_misses=data.get("stage_cache_misses", 0),
            sim_batches=data.get("sim_batches", 0),
            sim_batched_cells=data.get("sim_batched_cells", 0),
            sim_batch_wall_s=data.get("sim_batch_wall_s", 0.0),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "SweepResult":
        with open(path) as handle:
            return cls.from_json(handle.read())


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    sa_table: Optional[SATable] = None,
    precalc_max_mux: int = 0,
    keep_results: bool = False,
    progress: Optional[Callable[[SweepCell], None]] = None,
    use_cache: bool = True,
    cache_entries: int = DEFAULT_CACHE_ENTRIES,
    cache_dir: Optional[str] = None,
) -> SweepResult:
    """Expand ``spec`` and run every cell, ``jobs`` at a time.

    ``jobs=1`` runs everything in-process (no pickling, deterministic,
    what the tests and bench fixtures use); ``jobs>1`` fans out over a
    process pool. Per-cell ``metrics`` are identical either way.

    ``sa_table`` is the shared Section 5.2.2 table; pass a file-backed
    one to persist across sweeps (the caller saves it — typically via
    ``save_if_dirty()`` — exactly once, after the sweep). With
    ``precalc_max_mux > 0`` the table is bulk-filled up to that mux
    size before any job runs, so workers start fully warm.

    ``use_cache`` controls the per-worker pipeline artifact cache
    (``cache_entries`` bounds it; ``cache_dir`` adds a persistent
    on-disk layer shared across worker processes and sweeps). Metrics
    are byte-identical with the cache on or off — ``use_cache=False``
    exists for differential tests and benchmarking the speedup.

    ``keep_results`` retains the full :class:`FlowResult` objects in
    :attr:`SweepResult.results`; it requires ``jobs=1`` (the objects
    are deliberately not shipped across process boundaries).
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if keep_results and jobs > 1:
        raise ConfigError("keep_results requires jobs=1 (in-process mode)")
    if cache_dir is not None and not use_cache:
        raise ConfigError(
            "cache_dir requires use_cache=True (the disk layer lives "
            "inside the artifact cache)"
        )
    started = time.perf_counter()
    job_list = expand_grid(spec)
    table = sa_table if sa_table is not None else SATable()
    precalc_entries = (
        table.precalculate(precalc_max_mux) if precalc_max_mux > 0 else 0
    )

    payload = _WorkerPayload(
        spec=spec,
        sa_table=table,
        use_cache=use_cache,
        cache_entries=cache_entries,
        cache_dir=cache_dir,
    )
    cells: List[SweepCell] = []
    results: Dict[Tuple, Any] = {}
    sa_new_total = 0
    batch_stats = {"batches": 0, "batched_cells": 0, "batch_wall_s": 0.0}

    if jobs == 1 or len(job_list) == 1:
        _init_worker(payload)
        executed, batch_stats = _run_chunk(
            job_list, keep_results=keep_results, progress=progress
        )
        for cell, result, new_entries in executed:
            sa_new_total += len(new_entries)
            cells.append(cell)
            if keep_results:
                results[cell.key] = result
    else:
        # Explicit chunks keep same-benchmark jobs on one worker (memo
        # locality) and give each worker whole batchable groups — the
        # simulation-only axes are innermost in expand_grid, so a chunk
        # holds consecutive cells over the same mapped design.
        chunksize = max(1, len(job_list) // (jobs * 4))
        chunks = [
            list(job_list[start:start + chunksize])
            for start in range(0, len(job_list), chunksize)
        ]
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            for executed, stats in pool.map(
                _execute_chunk_remote, chunks, chunksize=1
            ):
                for key in batch_stats:
                    batch_stats[key] += stats[key]
                for cell, new_entries in executed:
                    sa_new_total += table.merge(new_entries)
                    cells.append(cell)
                    if progress is not None:
                        progress(cell)

    hits = sum(1 for cell in cells if cell.schedule_cache_hit)
    stage_hits = sum(len(cell.cache_hits) for cell in cells)
    stage_total = sum(len(cell.stage_timings) for cell in cells)
    return SweepResult(
        spec=spec,
        cells=cells,
        jobs=jobs,
        wall_s=time.perf_counter() - started,
        schedule_cache_hits=hits,
        schedule_cache_misses=len(cells) - hits,
        sa_precalc_entries=precalc_entries,
        sa_new_entries=sa_new_total,
        stage_cache_hits=stage_hits,
        stage_cache_misses=stage_total - stage_hits,
        sim_batches=batch_stats["batches"],
        sim_batched_cells=batch_stats["batched_cells"],
        sim_batch_wall_s=batch_stats["batch_wall_s"],
        results=results,
    )
