"""Parallel sweep engine for the experiment flow.

The paper's results are all grids of the same measurement: every table
and figure is ``benchmark x binder x alpha x seed`` cells of
:func:`~repro.flow.run.run_flow`. This module turns that shape into a
first-class subsystem:

* :class:`SweepSpec` — a declarative grid (benchmarks, binder
  configurations, alphas, widths, vector seeds) plus the shared flow
  knobs;
* :func:`expand_grid` — spec -> concrete :class:`SweepJob` list;
* :func:`run_sweep` — executes the jobs across a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=1`` is a
  fully in-process deterministic mode used by the tests and the bench
  fixtures) and collects per-cell records into a JSON-serializable
  :class:`SweepResult`.

Two performance layers keep the grid cheap:

* a content-keyed **elaboration memo** — schedule, register binding
  and port assignment depend only on ``(benchmark, scheduler,
  constraints)``, so each worker process computes them once per
  benchmark and every binder/alpha/seed job on that benchmark reuses
  them (cache hits are counted per cell);
* **shared SA-table state** — the parent precalculates/loads the
  Section 5.2.2 table once per sweep, ships the values to every worker
  via the pool initializer, and merges any entries a worker still had
  to compute back into the master table, which is saved once
  (atomically) at the end instead of once per job.

Determinism: every per-cell ``metrics`` record is a pure function of
the cell's inputs — SA-table values are themselves deterministic, so
cache state cannot influence binding decisions — and ``jobs=N``
produces byte-identical metrics to ``jobs=1``.
"""

from __future__ import annotations

import json
import statistics
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.binding import SATable
from repro.cdfg import Schedule, benchmark_spec, load_benchmark
from repro.errors import ConfigError
from repro.flow.run import FlowConfig, FlowResult, prepare_flow_inputs, run_flow
from repro.scheduling import force_directed_schedule, list_schedule


@dataclass(frozen=True)
class BinderConfig:
    """One binder column of the grid.

    ``label`` names the column in records and reports ("lopass",
    "hlpower_a05", ...); ``alpha`` is Equation (4)'s weight and is
    ignored by binders that do not consume it (LOPASS).
    """

    label: str
    binder: str
    alpha: float = 0.5


@dataclass
class SweepSpec:
    """Declarative description of one experiment grid.

    The grid is the cross product ``benchmarks x binder_configs x
    widths x vector_seeds``. Binder configurations come either from the
    ``binders x alphas`` cross product (the default) or from an
    explicit ``configs`` list when the columns are not a product — e.g.
    the bench suite's ``lopass / hlpower_a1 / hlpower_a05``.
    """

    benchmarks: Sequence[str]
    binders: Sequence[str] = ("lopass", "hlpower")
    alphas: Sequence[float] = (0.5,)
    widths: Sequence[int] = (8,)
    vector_seeds: Sequence[int] = (7,)
    configs: Optional[Sequence[BinderConfig]] = None
    n_vectors: int = 256
    k: int = 4
    scheduler: str = "list"
    check_function: bool = True
    #: Simulation kernel for every cell: "event" (default) or
    #: "reference" (the differential-testing oracle; several-fold
    #: slower, byte-identical metrics).
    sim_kernel: str = "event"
    #: Binder label (or binder name) used as the reference for
    #: percentage changes; "none" (or empty) disables the comparison.
    baseline: str = "lopass"

    def binder_configs(self) -> List[BinderConfig]:
        if self.configs is not None:
            return list(self.configs)
        out = []
        for binder in self.binders:
            for alpha in self.alphas:
                label = binder if len(self.alphas) == 1 else (
                    f"{binder}_a{alpha:g}"
                )
                out.append(BinderConfig(label, binder, alpha))
        return out

    def validate(self) -> None:
        if not self.benchmarks:
            raise ConfigError("sweep spec has no benchmarks")
        for name in self.benchmarks:
            benchmark_spec(name)  # raises on unknown names
        if self.scheduler not in ("list", "force"):
            raise ConfigError(f"unknown scheduler {self.scheduler!r}")
        if self.sim_kernel not in ("event", "reference"):
            raise ConfigError(
                f"unknown simulation kernel {self.sim_kernel!r}; choose "
                f"from ('event', 'reference')"
            )
        configs = self.binder_configs()
        if not configs:
            raise ConfigError("sweep spec has no binder configurations")
        for config in configs:
            if config.binder not in ("lopass", "hlpower"):
                raise ConfigError(
                    f"unknown binder {config.binder!r}; choose from "
                    f"('lopass', 'hlpower')"
                )
        labels = [config.label for config in configs]
        if len(set(labels)) != len(labels):
            raise ConfigError(f"duplicate binder labels: {labels}")
        if not self.widths or not self.vector_seeds:
            raise ConfigError("sweep spec needs >= 1 width and seed")
        if self.baseline and self.baseline != "none":
            if self.baseline not in labels:
                matches = [
                    c for c in configs if c.binder == self.baseline
                ]
                if not matches:
                    raise ConfigError(
                        f"baseline {self.baseline!r} matches no binder "
                        f"configuration; choose from {sorted(labels)} or "
                        f"pass 'none'"
                    )
                # LOPASS ignores alpha, so all its grid columns hold
                # identical cells and any of them can anchor the
                # comparison; an alpha-sensitive binder must be named
                # by its exact label.
                if len(matches) > 1 and self.baseline != "lopass":
                    raise ConfigError(
                        f"baseline {self.baseline!r} is ambiguous across "
                        f"alphas; use an explicit label such as "
                        f"{matches[0].label!r}"
                    )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["benchmarks"] = list(self.benchmarks)
        data["binders"] = list(self.binders)
        data["alphas"] = list(self.alphas)
        data["widths"] = list(self.widths)
        data["vector_seeds"] = list(self.vector_seeds)
        if self.configs is not None:
            data["configs"] = [asdict(config) for config in self.configs]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        kwargs = dict(data)
        if kwargs.get("configs") is not None:
            kwargs["configs"] = [
                BinderConfig(**config) for config in kwargs["configs"]
            ]
        return cls(**kwargs)


@dataclass(frozen=True)
class SweepJob:
    """One expanded grid cell, ready to run."""

    index: int
    benchmark: str
    config: BinderConfig
    width: int
    vector_seed: int


@dataclass
class SweepCell:
    """The record one job produces."""

    benchmark: str
    config: str
    binder: str
    alpha: float
    width: int
    vector_seed: int
    #: Deterministic measurements (see :meth:`FlowResult.metrics`).
    metrics: Dict[str, float]
    runtime_s: float
    schedule_cache_hit: bool
    sa_new_entries: int

    @property
    def key(self) -> Tuple[str, str, int, int]:
        return (self.benchmark, self.config, self.width, self.vector_seed)


def expand_grid(spec: SweepSpec) -> List[SweepJob]:
    """Expand the spec into jobs, benchmark-major.

    Benchmark-major order keeps jobs that share an elaboration-memo key
    adjacent, so pool chunking hands workers runs of cache hits.
    """
    spec.validate()
    jobs: List[SweepJob] = []
    for benchmark in spec.benchmarks:
        for config in spec.binder_configs():
            for width in spec.widths:
                for seed in spec.vector_seeds:
                    jobs.append(
                        SweepJob(len(jobs), benchmark, config, width, seed)
                    )
    return jobs


# ---------------------------------------------------------------------------
# Worker side. One module-level state dict per process, filled by the pool
# initializer (or directly for jobs=1 in-process mode).
# ---------------------------------------------------------------------------


@dataclass
class _WorkerPayload:
    """Everything a worker process needs, shipped once at pool start."""

    spec: SweepSpec
    sa_table: SATable  # preloaded values travel inside


_WORKER: Dict[str, Any] = {}


def _init_worker(payload: _WorkerPayload) -> None:
    _WORKER["spec"] = payload.spec
    _WORKER["sa_table"] = payload.sa_table
    _WORKER["sa_known"] = set(payload.sa_table.snapshot())
    _WORKER["memo"] = {}


def _elaborate(benchmark: str, spec: SweepSpec) -> Tuple[Schedule, Dict[str, int], Any, Any, bool]:
    """Memoized schedule + registers + ports for one benchmark.

    Keyed by the content that determines them: benchmark name,
    scheduler, and the resource constraints. Returns the cached tuple
    plus whether this call was a hit.

    With the list scheduler the Table 2 constraints drive the
    schedule; with the force-directed scheduler the binding
    constraints are the balanced schedule's own lower bound
    (``min_resources``), matching :func:`repro.hls.synthesize` — the
    Table 2 numbers need not be feasible for a latency-balanced
    schedule.
    """
    bench = benchmark_spec(benchmark)
    key = (
        benchmark,
        spec.scheduler,
        tuple(sorted(bench.constraints.items())),
    )
    memo: Dict[Any, Any] = _WORKER["memo"]
    hit = key in memo
    if not hit:
        cdfg = load_benchmark(benchmark)
        if spec.scheduler == "force":
            schedule = force_directed_schedule(cdfg)
            constraints = schedule.min_resources()
        else:
            constraints = bench.constraints
            schedule = list_schedule(cdfg, constraints)
        registers, ports = prepare_flow_inputs(schedule)
        memo[key] = (schedule, constraints, registers, ports)
    schedule, constraints, registers, ports = memo[key]
    return schedule, constraints, registers, ports, hit


def _execute(job: SweepJob) -> Tuple[SweepCell, FlowResult, Dict[Any, float]]:
    """Run one job against this process's shared state."""
    spec: SweepSpec = _WORKER["spec"]
    table: SATable = _WORKER["sa_table"]
    schedule, constraints, registers, ports, hit = _elaborate(
        job.benchmark, spec
    )
    config = FlowConfig(
        width=job.width,
        k=spec.k,
        n_vectors=spec.n_vectors,
        vector_seed=job.vector_seed,
        alpha=job.config.alpha,
        sa_table=table,
        check_function=spec.check_function,
        sim_kernel=spec.sim_kernel,
    )
    result = run_flow(
        schedule, constraints, job.config.binder, config, registers, ports
    )
    known: set = _WORKER["sa_known"]
    new_entries = {
        key: value
        for key, value in table.snapshot().items()
        if key not in known
    }
    known.update(new_entries)
    cell = SweepCell(
        benchmark=job.benchmark,
        config=job.config.label,
        binder=job.config.binder,
        alpha=job.config.alpha,
        width=job.width,
        vector_seed=job.vector_seed,
        metrics=result.metrics(),
        runtime_s=result.runtime_s,
        schedule_cache_hit=hit,
        sa_new_entries=len(new_entries),
    )
    return cell, result, new_entries


def _execute_remote(job: SweepJob) -> Tuple[SweepCell, Dict[Any, float]]:
    """Pool entry point: drop the heavyweight FlowResult before pickling."""
    cell, _, new_entries = _execute(job)
    return cell, new_entries


# ---------------------------------------------------------------------------
# Result store.
# ---------------------------------------------------------------------------


@dataclass
class SweepResult:
    """Structured store of one sweep's per-cell records and stats."""

    spec: SweepSpec
    cells: List[SweepCell]
    jobs: int
    wall_s: float
    schedule_cache_hits: int
    schedule_cache_misses: int
    sa_precalc_entries: int
    sa_new_entries: int
    #: Full FlowResults keyed by cell key; only populated when
    #: ``run_sweep(..., keep_results=True)``.
    results: Dict[Tuple[str, str, int, int], FlowResult] = field(
        default_factory=dict, repr=False
    )

    def cell(
        self,
        benchmark: str,
        config: str,
        width: Optional[int] = None,
        vector_seed: Optional[int] = None,
    ) -> SweepCell:
        """The unique cell matching the given coordinates."""
        matches = [
            c
            for c in self.cells
            if c.benchmark == benchmark
            and c.config == config
            and (width is None or c.width == width)
            and (vector_seed is None or c.vector_seed == vector_seed)
        ]
        if not matches:
            raise KeyError((benchmark, config, width, vector_seed))
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous cell {(benchmark, config)}: {len(matches)} "
                f"matches; pass width/vector_seed"
            )
        return matches[0]

    def result_of(
        self,
        benchmark: str,
        config: str,
        width: Optional[int] = None,
        vector_seed: Optional[int] = None,
    ) -> FlowResult:
        """The retained FlowResult for a cell (needs keep_results)."""
        cell = self.cell(benchmark, config, width, vector_seed)
        return self.results[cell.key]

    # -- aggregation -------------------------------------------------------

    def aggregates(self) -> List[Dict[str, Any]]:
        """Per (benchmark, config, width) stats across vector seeds.

        Each group reports mean/stdev dynamic power and toggle rate
        (the seed-sensitive metrics), the seed-invariant area/mux/clock
        numbers, and the percentage change of mean power versus the
        spec's baseline binder on the same (benchmark, width) —
        ``None`` when the sweep contains no baseline cells.
        """
        from repro.flow.report import percent_change
        groups: Dict[Tuple[str, str, int], List[SweepCell]] = {}
        for cell in self.cells:
            groups.setdefault(
                (cell.benchmark, cell.config, cell.width), []
            ).append(cell)

        baseline = self.spec.baseline
        baseline_power: Dict[Tuple[str, int], float] = {}
        if baseline and baseline != "none":
            for (benchmark, config, width), cells in groups.items():
                if config == baseline or (
                    cells[0].binder == baseline
                    and (benchmark, width) not in baseline_power
                ):
                    baseline_power[(benchmark, width)] = statistics.fmean(
                        c.metrics["dynamic_power_mw"] for c in cells
                    )

        out = []
        for (benchmark, config, width), cells in groups.items():
            powers = [c.metrics["dynamic_power_mw"] for c in cells]
            rates = [c.metrics["toggle_rate_mhz"] for c in cells]
            base = baseline_power.get((benchmark, width))
            mean_power = statistics.fmean(powers)
            record = {
                "benchmark": benchmark,
                "config": config,
                "width": width,
                "n_seeds": len(cells),
                "power_mean_mw": mean_power,
                "power_stdev_mw": (
                    statistics.stdev(powers) if len(powers) > 1 else 0.0
                ),
                "toggle_rate_mean_mhz": statistics.fmean(rates),
                "toggle_rate_stdev_mhz": (
                    statistics.stdev(rates) if len(rates) > 1 else 0.0
                ),
                "area_luts": cells[0].metrics["area_luts"],
                "largest_mux": cells[0].metrics["largest_mux"],
                "clock_period_ns": cells[0].metrics["clock_period_ns"],
                "runtime_s": sum(c.runtime_s for c in cells),
                "d_power_vs_baseline_pct": (
                    percent_change(base, mean_power)
                    if base is not None
                    else None
                ),
            }
            out.append(record)
        return out

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "schedule_cache_hits": self.schedule_cache_hits,
            "schedule_cache_misses": self.schedule_cache_misses,
            "sa_precalc_entries": self.sa_precalc_entries,
            "sa_new_entries": self.sa_new_entries,
            "cells": [asdict(cell) for cell in self.cells],
            "aggregates": self.aggregates(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        return cls(
            spec=SweepSpec.from_dict(data["spec"]),
            cells=[SweepCell(**cell) for cell in data["cells"]],
            jobs=data["jobs"],
            wall_s=data["wall_s"],
            schedule_cache_hits=data["schedule_cache_hits"],
            schedule_cache_misses=data["schedule_cache_misses"],
            sa_precalc_entries=data["sa_precalc_entries"],
            sa_new_entries=data["sa_new_entries"],
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "SweepResult":
        with open(path) as handle:
            return cls.from_json(handle.read())


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    sa_table: Optional[SATable] = None,
    precalc_max_mux: int = 0,
    keep_results: bool = False,
    progress: Optional[Callable[[SweepCell], None]] = None,
) -> SweepResult:
    """Expand ``spec`` and run every cell, ``jobs`` at a time.

    ``jobs=1`` runs everything in-process (no pickling, deterministic,
    what the tests and bench fixtures use); ``jobs>1`` fans out over a
    process pool. Per-cell ``metrics`` are identical either way.

    ``sa_table`` is the shared Section 5.2.2 table; pass a file-backed
    one to persist across sweeps (the caller saves it — typically via
    ``save_if_dirty()`` — exactly once, after the sweep). With
    ``precalc_max_mux > 0`` the table is bulk-filled up to that mux
    size before any job runs, so workers start fully warm.

    ``keep_results`` retains the full :class:`FlowResult` objects in
    :attr:`SweepResult.results`; it requires ``jobs=1`` (the objects
    are deliberately not shipped across process boundaries).
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if keep_results and jobs > 1:
        raise ConfigError("keep_results requires jobs=1 (in-process mode)")
    started = time.perf_counter()
    job_list = expand_grid(spec)
    table = sa_table if sa_table is not None else SATable()
    precalc_entries = (
        table.precalculate(precalc_max_mux) if precalc_max_mux > 0 else 0
    )

    payload = _WorkerPayload(spec=spec, sa_table=table)
    cells: List[SweepCell] = []
    results: Dict[Tuple[str, str, int, int], FlowResult] = {}
    sa_new_total = 0

    if jobs == 1 or len(job_list) == 1:
        _init_worker(payload)
        for job in job_list:
            cell, result, new_entries = _execute(job)
            sa_new_total += len(new_entries)
            cells.append(cell)
            if keep_results:
                results[cell.key] = result
            if progress is not None:
                progress(cell)
    else:
        # Chunks keep same-benchmark jobs on one worker (memo locality)
        # while still splitting every benchmark across workers.
        chunksize = max(1, len(job_list) // (jobs * 4))
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            for cell, new_entries in pool.map(
                _execute_remote, job_list, chunksize=chunksize
            ):
                sa_new_total += table.merge(new_entries)
                cells.append(cell)
                if progress is not None:
                    progress(cell)

    hits = sum(1 for cell in cells if cell.schedule_cache_hit)
    return SweepResult(
        spec=spec,
        cells=cells,
        jobs=jobs,
        wall_s=time.perf_counter() - started,
        schedule_cache_hits=hits,
        schedule_cache_misses=len(cells) - hits,
        sa_precalc_entries=precalc_entries,
        sa_new_entries=sa_new_total,
        results=results,
    )
