"""Sweep driver and result store for the experiment flow.

The paper's results are all grids of the same measurement: every table
and figure is ``benchmark x binder x alpha x seed`` cells of
:func:`~repro.flow.run.run_flow`. The sweep subsystem splits that
shape across three layers:

* :mod:`repro.flow.grid` — the declarative model
  (:class:`SweepSpec` / :func:`expand_grid` / :class:`SweepJob` /
  :class:`SweepCell`), re-exported here for compatibility;
* :mod:`repro.flow.executor` — the resident execution layer: a
  :class:`~repro.flow.executor.FlowExecutor` owns the warm per-worker
  state (elaboration memo, artifact cache, SA-table snapshot, process
  pool) and survives across submissions;
* this module — :func:`run_sweep`, a thin client that expands a spec,
  submits it to an executor, and collects the per-cell records into a
  JSON-serializable :class:`SweepResult`.

By default :func:`run_sweep` builds a **transient** executor per call,
preserving the historical semantics (every sweep starts with fresh
in-process worker state, so only an explicit ``cache_dir`` carries
artifacts across calls). Pass a resident
:class:`~repro.flow.executor.FlowExecutor` via ``executor=`` to reuse
warm memos across many sweeps — that is what the ``repro serve``
daemon does.

Determinism: every per-cell ``metrics`` record is a pure function of
the cell's inputs — SA-table values are themselves deterministic, so
cache state cannot influence binding decisions; the artifact cache
only ever substitutes byte-identical recomputations — and ``jobs=N``
(cached or cold, transient or resident) produces byte-identical
metrics to ``jobs=1``.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.binding import SATable
from repro.errors import ConfigError
from repro.flow.executor import DEFAULT_CACHE_ENTRIES, FlowExecutor
from repro.flow.grid import (  # noqa: F401  (compatibility re-exports)
    BinderConfig,
    SweepCell,
    SweepJob,
    SweepSpec,
    expand_grid,
)
from repro.flow.run import FlowResult


# ---------------------------------------------------------------------------
# Result store.
# ---------------------------------------------------------------------------


@dataclass
class SweepResult:
    """Structured store of one sweep's per-cell records and stats."""

    spec: SweepSpec
    cells: List[SweepCell]
    jobs: int
    wall_s: float
    schedule_cache_hits: int
    schedule_cache_misses: int
    sa_precalc_entries: int
    sa_new_entries: int
    #: Pipeline-stage cache traffic summed over all cells.
    stage_cache_hits: int = 0
    stage_cache_misses: int = 0
    #: Batched-simulation dispatch: kernel passes run, cells served by
    #: them, and their total kernel wall clock (see SweepSpec.sim_batch).
    sim_batches: int = 0
    sim_batched_cells: int = 0
    sim_batch_wall_s: float = 0.0
    #: Full FlowResults keyed by cell key; only populated when
    #: ``run_sweep(..., keep_results=True)``.
    results: Dict[Tuple, Any] = field(default_factory=dict, repr=False)

    def cell(
        self,
        benchmark: str,
        config: str,
        width: Optional[int] = None,
        vector_seed: Optional[int] = None,
        idle_selects: Optional[str] = None,
        delay_jitter: Optional[int] = None,
        sim_kernel: Optional[str] = None,
        map_effort: Optional[str] = None,
        bind_engine: Optional[str] = None,
        elab_engine: Optional[str] = None,
    ) -> SweepCell:
        """The unique cell matching the given coordinates."""
        matches = [
            c
            for c in self.cells
            if c.benchmark == benchmark
            and c.config == config
            and (width is None or c.width == width)
            and (vector_seed is None or c.vector_seed == vector_seed)
            and (idle_selects is None or c.idle_selects == idle_selects)
            and (delay_jitter is None or c.delay_jitter == delay_jitter)
            and (sim_kernel is None or c.sim_kernel == sim_kernel)
            and (map_effort is None or c.map_effort == map_effort)
            and (bind_engine is None or c.bind_engine == bind_engine)
            and (elab_engine is None or c.elab_engine == elab_engine)
        ]
        if not matches:
            raise KeyError(
                (benchmark, config, width, vector_seed, idle_selects,
                 delay_jitter, sim_kernel, map_effort, bind_engine,
                 elab_engine)
            )
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous cell {(benchmark, config)}: {len(matches)} "
                f"matches; pass width/vector_seed/idle_selects/"
                f"delay_jitter/sim_kernel/map_effort/bind_engine/"
                f"elab_engine"
            )
        return matches[0]

    def result_of(
        self,
        benchmark: str,
        config: str,
        width: Optional[int] = None,
        vector_seed: Optional[int] = None,
        idle_selects: Optional[str] = None,
        delay_jitter: Optional[int] = None,
        sim_kernel: Optional[str] = None,
        map_effort: Optional[str] = None,
        bind_engine: Optional[str] = None,
        elab_engine: Optional[str] = None,
    ) -> FlowResult:
        """The retained FlowResult for a cell (needs keep_results)."""
        cell = self.cell(
            benchmark, config, width, vector_seed, idle_selects,
            delay_jitter, sim_kernel, map_effort, bind_engine,
            elab_engine,
        )
        return self.results[cell.key]

    # -- aggregation -------------------------------------------------------

    def aggregates(self) -> List[Dict[str, Any]]:
        """Per-group stats across vector seeds.

        Groups are ``(benchmark, config, width, idle, jitter, kernel,
        map effort)`` — everything but the seed axis. Full-flow groups report
        mean/stdev dynamic power and toggle rate (the seed-sensitive
        metrics); estimate-flow groups report the Equation-(3)
        switching-activity estimate and glitch fraction instead (keys
        ``sa_mean`` / ``sa_stdev`` / ``glitch_fraction``). Both carry
        the seed-invariant area/mux/clock numbers and the percentage
        change of the primary metric versus the spec's baseline binder
        on the same group coordinates — ``None`` when the sweep
        contains no baseline cells.
        """
        from repro.flow.report import percent_change
        estimate = self.spec.flow == "estimate"
        primary_key = "estimated_sa" if estimate else "dynamic_power_mw"
        groups: Dict[Tuple, List[SweepCell]] = {}
        for cell in self.cells:
            group = (
                cell.benchmark, cell.config, cell.width,
                cell.idle_selects, cell.delay_jitter, cell.sim_kernel,
                cell.map_effort, cell.bind_engine, cell.elab_engine,
            )
            groups.setdefault(group, []).append(cell)

        baseline = self.spec.baseline
        baseline_primary: Dict[Tuple, float] = {}
        if baseline and baseline != "none":
            for group, cells in groups.items():
                coords = (group[0],) + group[2:]  # all but the config
                if group[1] == baseline or (
                    cells[0].binder == baseline
                    and coords not in baseline_primary
                ):
                    baseline_primary[coords] = statistics.fmean(
                        c.metrics[primary_key] for c in cells
                    )

        out = []
        for group, cells in groups.items():
            (benchmark, config, width, idle, jitter, kernel,
             map_effort, bind_engine, elab_engine) = group
            primary = [c.metrics[primary_key] for c in cells]
            base = baseline_primary.get((benchmark,) + group[2:])
            mean_primary = statistics.fmean(primary)
            record = {
                "benchmark": benchmark,
                "config": config,
                "width": width,
                "idle_selects": idle,
                "delay_jitter": jitter,
                "sim_kernel": kernel,
                "map_effort": map_effort,
                "bind_engine": bind_engine,
                "elab_engine": elab_engine,
                "n_seeds": len(cells),
                "area_luts": cells[0].metrics["area_luts"],
                "largest_mux": cells[0].metrics["largest_mux"],
                "clock_period_ns": cells[0].metrics["clock_period_ns"],
                "runtime_s": sum(c.runtime_s for c in cells),
            }
            if estimate:
                record["sa_mean"] = mean_primary
                record["sa_stdev"] = (
                    statistics.stdev(primary) if len(primary) > 1 else 0.0
                )
                record["glitch_fraction"] = statistics.fmean(
                    c.metrics["glitch_fraction"] for c in cells
                )
                record["d_sa_vs_baseline_pct"] = (
                    percent_change(base, mean_primary)
                    if base is not None
                    else None
                )
            else:
                rates = [c.metrics["toggle_rate_mhz"] for c in cells]
                record["power_mean_mw"] = mean_primary
                record["power_stdev_mw"] = (
                    statistics.stdev(primary) if len(primary) > 1 else 0.0
                )
                record["toggle_rate_mean_mhz"] = statistics.fmean(rates)
                record["toggle_rate_stdev_mhz"] = (
                    statistics.stdev(rates) if len(rates) > 1 else 0.0
                )
                record["d_power_vs_baseline_pct"] = (
                    percent_change(base, mean_primary)
                    if base is not None
                    else None
                )
            out.append(record)
        return out

    def stage_time_totals(self) -> Dict[str, float]:
        """Wall clock per pipeline stage summed over all cells."""
        totals: Dict[str, float] = {}
        for cell in self.cells:
            for stage, seconds in cell.stage_timings.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "schedule_cache_hits": self.schedule_cache_hits,
            "schedule_cache_misses": self.schedule_cache_misses,
            "sa_precalc_entries": self.sa_precalc_entries,
            "sa_new_entries": self.sa_new_entries,
            "stage_cache_hits": self.stage_cache_hits,
            "stage_cache_misses": self.stage_cache_misses,
            "sim_batches": self.sim_batches,
            "sim_batched_cells": self.sim_batched_cells,
            "sim_batch_wall_s": self.sim_batch_wall_s,
            "stage_time_totals": self.stage_time_totals(),
            "cells": [asdict(cell) for cell in self.cells],
            "aggregates": self.aggregates(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        return cls(
            spec=SweepSpec.from_dict(data["spec"]),
            cells=[SweepCell(**cell) for cell in data["cells"]],
            jobs=data["jobs"],
            wall_s=data["wall_s"],
            schedule_cache_hits=data["schedule_cache_hits"],
            schedule_cache_misses=data["schedule_cache_misses"],
            sa_precalc_entries=data["sa_precalc_entries"],
            sa_new_entries=data["sa_new_entries"],
            stage_cache_hits=data.get("stage_cache_hits", 0),
            stage_cache_misses=data.get("stage_cache_misses", 0),
            sim_batches=data.get("sim_batches", 0),
            sim_batched_cells=data.get("sim_batched_cells", 0),
            sim_batch_wall_s=data.get("sim_batch_wall_s", 0.0),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "SweepResult":
        with open(path) as handle:
            return cls.from_json(handle.read())


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    sa_table: Optional[SATable] = None,
    precalc_max_mux: int = 0,
    keep_results: bool = False,
    progress: Optional[Callable[[SweepCell], None]] = None,
    use_cache: bool = True,
    cache_entries: int = DEFAULT_CACHE_ENTRIES,
    cache_dir: Optional[str] = None,
    executor: Optional[FlowExecutor] = None,
) -> SweepResult:
    """Expand ``spec`` and run every cell, ``jobs`` at a time.

    ``jobs=1`` runs everything in-process (no pickling, deterministic,
    what the tests and bench fixtures use); ``jobs>1`` fans out over a
    process pool. Per-cell ``metrics`` are identical either way.

    ``sa_table`` is the shared Section 5.2.2 table; pass a file-backed
    one to persist across sweeps (the caller saves it — typically via
    ``save_if_dirty()`` — exactly once, after the sweep). With
    ``precalc_max_mux > 0`` the table is bulk-filled up to that mux
    size before any job runs, so workers start fully warm.

    ``use_cache`` controls the per-worker pipeline artifact cache
    (``cache_entries`` bounds it; ``cache_dir`` adds a persistent
    on-disk layer shared across worker processes and sweeps). Metrics
    are byte-identical with the cache on or off — ``use_cache=False``
    exists for differential tests and benchmarking the speedup.

    ``keep_results`` retains the full :class:`FlowResult` objects in
    :attr:`SweepResult.results`; it requires ``jobs=1`` (the objects
    are deliberately not shipped across process boundaries).

    ``executor`` submits the sweep to a **resident**
    :class:`~repro.flow.executor.FlowExecutor` instead of a transient
    one, so warm memos carry across calls. The executor then owns all
    execution knobs — passing ``jobs``/``sa_table``/cache arguments
    alongside it is a configuration conflict and raises.
    """
    if executor is not None:
        if (jobs != 1 or sa_table is not None or not use_cache
                or cache_entries != DEFAULT_CACHE_ENTRIES
                or cache_dir is not None):
            raise ConfigError(
                "run_sweep(executor=...) conflicts with jobs/sa_table/"
                "use_cache/cache_entries/cache_dir — the resident "
                "executor owns those knobs"
            )
        if keep_results and executor.jobs > 1:
            raise ConfigError(
                "keep_results requires jobs=1 (in-process mode)"
            )
    else:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if keep_results and jobs > 1:
            raise ConfigError(
                "keep_results requires jobs=1 (in-process mode)"
            )
        if cache_dir is not None and not use_cache:
            raise ConfigError(
                "cache_dir requires use_cache=True (the disk layer lives "
                "inside the artifact cache)"
            )
    started = time.perf_counter()
    job_list = expand_grid(spec)

    transient: Optional[FlowExecutor] = None
    if executor is None:
        table = sa_table if sa_table is not None else SATable()
        transient = FlowExecutor(
            jobs=jobs,
            sa_table=table,
            use_cache=use_cache,
            cache_entries=cache_entries,
            cache_dir=cache_dir,
        )
        executor = transient
    table = executor.sa_table
    precalc_entries = (
        table.precalculate(precalc_max_mux) if precalc_max_mux > 0 else 0
    )

    try:
        submission = executor.run_jobs(
            spec, job_list, keep_results=keep_results, progress=progress,
        )
    finally:
        if transient is not None:
            transient.shutdown()

    cells = submission.cells
    hits = sum(1 for cell in cells if cell.schedule_cache_hit)
    stage_hits = sum(len(cell.cache_hits) for cell in cells)
    stage_total = sum(len(cell.stage_timings) for cell in cells)
    return SweepResult(
        spec=spec,
        cells=cells,
        jobs=executor.jobs,
        wall_s=time.perf_counter() - started,
        schedule_cache_hits=hits,
        schedule_cache_misses=len(cells) - hits,
        sa_precalc_entries=precalc_entries,
        sa_new_entries=submission.sa_new_entries,
        stage_cache_hits=stage_hits,
        stage_cache_misses=stage_total - stage_hits,
        sim_batches=submission.sim_batches,
        sim_batched_cells=submission.sim_batched_cells,
        sim_batch_wall_s=submission.sim_batch_wall_s,
        results=submission.results,
    )
