"""Resident execution layer for the experiment flow.

This module owns *where flow state lives*: a :class:`FlowExecutor` is a
long-lived execution engine whose per-worker warm state — the
elaboration memo, the pipeline artifact cache (and through it the
cross-cell ConeMemo / BindMemo / golden-output memos that live inside
cached stage artifacts), and the SA-table snapshot — survives across
submissions instead of dying with each :func:`~repro.flow.batch.run_sweep`
call. ``run_sweep`` is a thin client that spins up a transient executor
per call (preserving the historical fresh-state semantics); the
``repro serve`` daemon holds one resident executor for its whole
lifetime, so the ten-thousandth estimate request reuses the memos the
first one built.

Two execution modes share one code path:

* ``jobs=1`` — fully in-process: worker state is an instance-scoped
  dict on the executor (``self._state``), so a resident executor's
  warmth is never clobbered by a transient ``run_sweep`` running in
  the same process;
* ``jobs>1`` — a resident :class:`~concurrent.futures.ProcessPoolExecutor`
  whose children build their state once in the pool initializer
  (module-level ``_WORKER``, one dict per child process) and keep it
  across submissions; the grid spec travels with each chunk, so one
  pool serves many different specs.

Determinism contract (inherited from the staged pipeline): per-cell
metrics are a pure function of the cell's inputs. Warm state only ever
substitutes byte-identical recomputations, so a cold executor, a warm
executor, and the pre-refactor ``run_sweep`` all produce identical
cells.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.binding import SATable
from repro.cdfg import Schedule, benchmark_spec, load_benchmark
from repro.errors import ConfigError
from repro.flow.cache import ArtifactCache, CacheStats
from repro.flow.grid import SweepCell, SweepJob, SweepSpec, expand_grid
from repro.flow.pipeline import batch_simulate_pipelines
from repro.flow.run import (
    FlowConfig,
    build_pipeline,
    execute_flow,
    prepare_flow_inputs,
)
from repro.scheduling import force_directed_schedule, list_schedule

#: Default in-memory artifact-cache capacity per worker process.
DEFAULT_CACHE_ENTRIES = 64


@dataclass
class _WorkerPayload:
    """Everything a worker needs at start — spec-independent, so one
    resident worker can serve submissions of many different specs."""

    sa_table: SATable  # preloaded values travel inside
    use_cache: bool = True
    cache_entries: int = DEFAULT_CACHE_ENTRIES
    cache_dir: Optional[str] = None


def _fresh_state(payload: _WorkerPayload) -> Dict[str, Any]:
    """One worker's warm state: memos + artifact cache + SA snapshot."""
    return {
        "sa_table": payload.sa_table,
        "sa_known": set(payload.sa_table.snapshot()),
        "memo": {},
        "prefetch_misses": set(),
        "cache": (
            ArtifactCache(payload.cache_entries, payload.cache_dir)
            if payload.use_cache
            else None
        ),
    }


# One module-level state dict per pool child process, filled by the
# pool initializer. In-process (jobs=1) execution never touches it —
# the executor instance owns its own state dict instead.
_WORKER: Dict[str, Any] = {}


def _init_worker(payload: _WorkerPayload) -> None:
    _WORKER.clear()
    _WORKER.update(_fresh_state(payload))


def _elaborate(state: Dict[str, Any], benchmark: str, spec: SweepSpec,
               prefetch: bool = False) -> Tuple[Schedule, Dict[str, int], Any, Any, bool]:
    """Memoized schedule + registers + ports for one benchmark.

    Keyed by the content that determines them: benchmark name,
    scheduler, and the resource constraints. Returns the cached tuple
    plus whether this call was a hit.

    ``prefetch=True`` marks a call from the batched-simulation
    prefetch pass: a miss it fills is billed to the *first per-cell
    consumer* instead, so the sweep's hit/miss accounting reads the
    same whether or not batching ran first.

    With the list scheduler the Table 2 constraints drive the
    schedule; with the force-directed scheduler the binding
    constraints are the balanced schedule's own lower bound
    (``min_resources``), matching :func:`repro.hls.synthesize` — the
    Table 2 numbers need not be feasible for a latency-balanced
    schedule.
    """
    bench = benchmark_spec(benchmark)
    key = (
        benchmark,
        spec.scheduler,
        tuple(sorted(bench.constraints.items())),
    )
    memo: Dict[Any, Any] = state["memo"]
    unbilled: set = state["prefetch_misses"]
    hit = key in memo
    if not hit:
        cdfg = load_benchmark(benchmark)
        if spec.scheduler == "force":
            schedule = force_directed_schedule(cdfg)
            constraints = schedule.min_resources()
        else:
            constraints = bench.constraints
            schedule = list_schedule(cdfg, constraints)
        registers, ports = prepare_flow_inputs(schedule)
        memo[key] = (schedule, constraints, registers, ports)
        if prefetch:
            unbilled.add(key)
    if not prefetch and key in unbilled:
        unbilled.discard(key)
        hit = False
    schedule, constraints, registers, ports = memo[key]
    return schedule, constraints, registers, ports, hit


def _flow_config(job: SweepJob, spec: SweepSpec, table: SATable) -> FlowConfig:
    """The FlowConfig of one job — shared by execution and prefetch, so
    batched pipelines fingerprint identically to the per-cell flows."""
    return FlowConfig(
        width=job.width,
        k=spec.k,
        n_vectors=spec.n_vectors,
        vector_seed=job.vector_seed,
        alpha=job.config.alpha,
        sa_table=table,
        check_function=spec.check_function,
        idle_selects=job.idle_selects,
        delay_jitter=job.delay_jitter,
        sim_kernel=job.sim_kernel,
        map_effort=job.map_effort,
        bind_engine=job.bind_engine,
        elab_engine=job.elab_engine,
        flow=spec.flow,
        mcts_budget=spec.mcts_budget,
        mcts_seed=spec.mcts_seed,
    )


def _load_design(state: Dict[str, Any], name: str, text: str):
    """Memoized parse + canonicalization of one external design."""
    key = ("design", name, text)
    memo = state["memo"]
    hit = key in memo
    if not hit:
        from repro.ingest import load_design_text

        memo[key] = load_design_text(text, name=name)
    return memo[key], hit


def _execute_design(state: Dict[str, Any], job: SweepJob,
                    spec: SweepSpec) -> Tuple[SweepCell, Any, Dict[Any, float]]:
    """Run one external-design job (estimate flow, no schedule/binder)."""
    from repro.ingest import run_design_estimate

    design, hit = _load_design(state, job.design, spec.designs[job.design])
    cfg = FlowConfig(k=spec.k, map_effort=job.map_effort, flow="estimate")
    result = run_design_estimate(design, cfg, cache=state["cache"])
    cell = SweepCell(
        benchmark=job.benchmark,
        config=job.config.label,
        binder=job.config.binder,
        alpha=job.config.alpha,
        width=job.width,
        vector_seed=job.vector_seed,
        metrics=result.metrics(),
        runtime_s=result.runtime_s,
        schedule_cache_hit=hit,
        sa_new_entries=0,
        idle_selects=job.idle_selects,
        delay_jitter=job.delay_jitter,
        sim_kernel=job.sim_kernel,
        map_effort=job.map_effort,
        bind_engine=job.bind_engine,
        elab_engine=job.elab_engine,
        stage_timings=dict(result.stage_timings),
        cache_hits=list(result.cache_hits),
    )
    return cell, result, {}


def _execute(state: Dict[str, Any], job: SweepJob,
             spec: SweepSpec) -> Tuple[SweepCell, Any, Dict[Any, float]]:
    """Run one job against a worker's shared state."""
    if job.design is not None:
        return _execute_design(state, job, spec)
    table: SATable = state["sa_table"]
    schedule, constraints, registers, ports, hit = _elaborate(
        state, job.benchmark, spec
    )
    config = _flow_config(job, spec, table)
    result = execute_flow(
        schedule, constraints, job.config.binder, config, registers, ports,
        cache=state["cache"],
    )
    known: set = state["sa_known"]
    new_entries = {
        key: value
        for key, value in table.snapshot().items()
        if key not in known
    }
    known.update(new_entries)
    cell = SweepCell(
        benchmark=job.benchmark,
        config=job.config.label,
        binder=job.config.binder,
        alpha=job.config.alpha,
        width=job.width,
        vector_seed=job.vector_seed,
        metrics=result.metrics(),
        runtime_s=result.runtime_s,
        schedule_cache_hit=hit,
        sa_new_entries=len(new_entries),
        idle_selects=job.idle_selects,
        delay_jitter=job.delay_jitter,
        sim_kernel=job.sim_kernel,
        map_effort=job.map_effort,
        bind_engine=job.bind_engine,
        elab_engine=job.elab_engine,
        stage_timings=dict(result.stage_timings),
        cache_hits=list(result.cache_hits),
    )
    return cell, result, new_entries


def _batch_key(job: SweepJob, spec: SweepSpec) -> Optional[Tuple]:
    """Grouping key for batched simulation, or None if ineligible.

    Jobs sharing a key share everything upstream of the simulate stage
    (same benchmark, binder config, width, mapper effort, bind and
    elab engines), so their techmap fingerprints coincide and they can
    ride one batched kernel pass. Only full-flow event-kernel cells
    qualify.
    """
    if spec.flow != "full" or job.sim_kernel != "event":
        return None
    return (
        job.benchmark, job.config.label, job.width, job.map_effort,
        job.bind_engine, job.elab_engine,
    )


def _prefetch_batches(
    state: Dict[str, Any],
    chunk: Sequence[SweepJob],
    spec: SweepSpec,
) -> Tuple[Dict[int, Tuple[int, float]], Dict[str, Any]]:
    """Run batched simulation passes for a chunk of jobs.

    Groups the chunk's eligible jobs by :func:`_batch_key`, builds one
    pipeline per job over the worker's shared cache, and lets
    :func:`~repro.flow.pipeline.batch_simulate_pipelines` store their
    simulate artifacts; the per-job flows then hit the cache instead of
    running the solo kernel. Returns per-job-index ``(batch size,
    kernel-wall share)`` annotations plus chunk-level batching stats.
    """
    annotations: Dict[int, Tuple[int, float]] = {}
    stats = {"batches": 0, "batched_cells": 0, "batch_wall_s": 0.0}
    cache: Optional[ArtifactCache] = state["cache"]
    if cache is None or spec.sim_batch <= 1 or spec.flow != "full":
        return annotations, stats
    table: SATable = state["sa_table"]
    groups: Dict[Tuple, List[SweepJob]] = {}
    for job in chunk:
        key = _batch_key(job, spec)
        if key is not None:
            groups.setdefault(key, []).append(job)
    for group_jobs in groups.values():
        if len(group_jobs) < 2:
            continue
        pipes = []
        for job in group_jobs:
            schedule, constraints, registers, ports, _ = _elaborate(
                state, job.benchmark, spec, prefetch=True
            )
            pipes.append(build_pipeline(
                schedule, constraints, job.config.binder,
                _flow_config(job, spec, table), registers, ports,
                cache=cache,
            ))
        passes = batch_simulate_pipelines(pipes, max_batch=spec.sim_batch)
        for member_indices, wall in passes:
            share = wall / len(member_indices)
            for member in member_indices:
                annotations[group_jobs[member].index] = (
                    len(member_indices), share,
                )
            stats["batches"] += 1
            stats["batched_cells"] += len(member_indices)
            stats["batch_wall_s"] += wall
    return annotations, stats


def _run_chunk(
    state: Dict[str, Any],
    chunk: Sequence[SweepJob],
    spec: SweepSpec,
    keep_results: bool = False,
    progress: Optional[Callable[[SweepCell], None]] = None,
) -> Tuple[List[Tuple[SweepCell, Any, Dict[Any, float]]], Dict[str, Any]]:
    """Batched prefetch + per-job flows for one chunk of jobs.

    Alongside the batching stats the returned dict carries a
    ``"cache"`` :class:`CacheStats` delta covering exactly this chunk's
    artifact-cache traffic — computed here so pool children can ship it
    back without the parent ever seeing their cache objects.
    """
    cache: Optional[ArtifactCache] = state["cache"]
    before = cache.stats_typed() if cache is not None else None
    annotations, stats = _prefetch_batches(state, chunk, spec)
    out = []
    for job in chunk:
        cell, result, new_entries = _execute(state, job, spec)
        note = annotations.get(job.index)
        if note is not None:
            cell.sim_batch, cell.sim_batch_s = note
        out.append((cell, result if keep_results else None, new_entries))
        if progress is not None:
            progress(cell)
    stats["cache"] = (
        cache.stats_typed().since(before) if cache is not None
        else CacheStats()
    )
    return out, stats


def _execute_chunk_remote(
    work: Tuple[SweepSpec, List[SweepJob]],
) -> Tuple[List[Tuple[SweepCell, Dict[Any, float]]], Dict[str, Any]]:
    """Pool entry point: drop the heavyweight FlowResults before pickling."""
    spec, chunk = work
    executed, stats = _run_chunk(_WORKER, chunk, spec)
    return (
        [(cell, new_entries) for cell, _, new_entries in executed],
        stats,
    )


@dataclass
class ExecutorStats:
    """Lifetime counters of one :class:`FlowExecutor`."""

    submissions: int = 0
    cells: int = 0
    chunks: int = 0
    schedule_cache_hits: int = 0
    schedule_cache_misses: int = 0
    sa_new_entries: int = 0
    sim_batches: int = 0
    sim_batched_cells: int = 0
    sim_batch_wall_s: float = 0.0
    wall_s: float = 0.0
    #: Artifact-cache traffic accumulated over every submission (pool
    #: children included — their per-chunk deltas merge in here).
    cache: CacheStats = field(default_factory=CacheStats)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "submissions": self.submissions,
            "cells": self.cells,
            "chunks": self.chunks,
            "schedule_cache_hits": self.schedule_cache_hits,
            "schedule_cache_misses": self.schedule_cache_misses,
            "sa_new_entries": self.sa_new_entries,
            "sim_batches": self.sim_batches,
            "sim_batched_cells": self.sim_batched_cells,
            "sim_batch_wall_s": self.sim_batch_wall_s,
            "wall_s": self.wall_s,
            "cache": self.cache.to_dict(),
        }


@dataclass
class Submission:
    """What one :meth:`FlowExecutor.run_jobs` call produced."""

    cells: List[SweepCell]
    #: Full FlowResults keyed by cell key (only with keep_results).
    results: Dict[Tuple, Any]
    sa_new_entries: int
    sim_batches: int
    sim_batched_cells: int
    sim_batch_wall_s: float
    #: Artifact-cache traffic of exactly this submission.
    cache: CacheStats


class FlowExecutor:
    """A resident execution engine with warm per-worker state.

    Construct once, submit many times: elaboration memos, the pipeline
    artifact cache (and the ConeMemo/BindMemo/golden memos riding in
    its artifacts), and the SA table stay warm across
    :meth:`run_jobs` calls. ``jobs=1`` executes in-process against an
    instance-owned state dict; ``jobs>1`` keeps a process pool alive
    whose children were warmed by the pool initializer.

    Submissions are serialized by an internal lock — callers from
    multiple threads (the serve daemon's scheduler) get exclusive
    access per submission, and the warm state is never mutated
    concurrently.
    """

    def __init__(
        self,
        jobs: int = 1,
        sa_table: Optional[SATable] = None,
        use_cache: bool = True,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        cache_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if cache_dir is not None and not use_cache:
            raise ConfigError(
                "cache_dir requires use_cache=True (the disk layer lives "
                "inside the artifact cache)"
            )
        self.jobs = jobs
        self.sa_table = sa_table if sa_table is not None else SATable()
        self.use_cache = use_cache
        self.cache_entries = cache_entries
        self.cache_dir = cache_dir
        self.stats = ExecutorStats()
        self._lock = threading.Lock()
        self._state: Optional[Dict[str, Any]] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def _payload(self) -> _WorkerPayload:
        return _WorkerPayload(
            sa_table=self.sa_table,
            use_cache=self.use_cache,
            cache_entries=self.cache_entries,
            cache_dir=self.cache_dir,
        )

    def start(self) -> "FlowExecutor":
        """Warm up eagerly (otherwise the first submission does it)."""
        if self._closed:
            raise ConfigError("executor has been shut down")
        if self._state is None:
            self._state = _fresh_state(self._payload())
        if self.jobs > 1 and self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self._payload(),),
            )
        return self

    def shutdown(self) -> None:
        """Release the pool and drop the warm state."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._state = None

    def __enter__(self) -> "FlowExecutor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- introspection -----------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Lifetime artifact-cache traffic (in-process + pool deltas)."""
        return self.stats.cache

    # -- submission --------------------------------------------------------

    def run_jobs(
        self,
        spec: SweepSpec,
        job_list: Optional[Sequence[SweepJob]] = None,
        keep_results: bool = False,
        progress: Optional[Callable[[SweepCell], None]] = None,
    ) -> Submission:
        """Execute one grid (or an explicit job list) to completion.

        Routing matches the historical ``run_sweep`` behavior: a
        single job, or ``jobs=1``, runs fully in-process (no pickling,
        deterministic ordering); anything larger fans out over the
        resident pool in memo-local chunks. ``keep_results`` retains
        the full FlowResult objects and therefore requires the
        in-process mode.
        """
        if self._closed:
            raise ConfigError("executor has been shut down")
        if keep_results and self.jobs > 1:
            raise ConfigError(
                "keep_results requires jobs=1 (in-process mode)"
            )
        if job_list is None:
            job_list = expand_grid(spec)
        else:
            spec.validate()
        with self._lock:
            started = time.perf_counter()
            self.start()
            cells: List[SweepCell] = []
            results: Dict[Tuple, Any] = {}
            sa_new_total = 0
            batch_stats: Dict[str, Any] = {
                "batches": 0, "batched_cells": 0, "batch_wall_s": 0.0,
            }
            cache_delta = CacheStats()
            n_chunks = 0

            if self.jobs == 1 or len(job_list) <= 1:
                assert self._state is not None
                executed, stats = _run_chunk(
                    self._state, job_list, spec,
                    keep_results=keep_results, progress=progress,
                )
                n_chunks = 1
                for key in batch_stats:
                    batch_stats[key] += stats[key]
                cache_delta.merge(stats["cache"])
                for cell, result, new_entries in executed:
                    sa_new_total += len(new_entries)
                    cells.append(cell)
                    if keep_results:
                        results[cell.key] = result
            else:
                # Explicit chunks keep same-benchmark jobs on one
                # worker (memo locality) and give each worker whole
                # batchable groups — the simulation-only axes are
                # innermost in expand_grid, so a chunk holds
                # consecutive cells over the same mapped design.
                assert self._pool is not None
                chunksize = max(1, len(job_list) // (self.jobs * 4))
                chunks = [
                    (spec, list(job_list[start:start + chunksize]))
                    for start in range(0, len(job_list), chunksize)
                ]
                n_chunks = len(chunks)
                table = self.sa_table
                for executed, stats in self._pool.map(
                    _execute_chunk_remote, chunks, chunksize=1
                ):
                    for key in batch_stats:
                        batch_stats[key] += stats[key]
                    cache_delta.merge(stats["cache"])
                    for cell, new_entries in executed:
                        sa_new_total += table.merge(new_entries)
                        cells.append(cell)
                        if progress is not None:
                            progress(cell)

            hits = sum(1 for cell in cells if cell.schedule_cache_hit)
            self.stats.submissions += 1
            self.stats.cells += len(cells)
            self.stats.chunks += n_chunks
            self.stats.schedule_cache_hits += hits
            self.stats.schedule_cache_misses += len(cells) - hits
            self.stats.sa_new_entries += sa_new_total
            self.stats.sim_batches += batch_stats["batches"]
            self.stats.sim_batched_cells += batch_stats["batched_cells"]
            self.stats.sim_batch_wall_s += batch_stats["batch_wall_s"]
            self.stats.wall_s += time.perf_counter() - started
            self.stats.cache.merge(cache_delta)
            return Submission(
                cells=cells,
                results=results,
                sa_new_entries=sa_new_total,
                sim_batches=batch_stats["batches"],
                sim_batched_cells=batch_stats["batched_cells"],
                sim_batch_wall_s=batch_stats["batch_wall_s"],
                cache=cache_delta,
            )
