"""The staged flow pipeline (bind → … → power) behind every driver.

The measurement flow is a fixed chain of pure stages, each reading a
declared subset of :class:`~repro.flow.run.FlowConfig`:

====================  ===========================  ========================
stage                 inputs                       config fields read
====================  ===========================  ========================
``bind``              schedule/constraints/        ``bind_engine, alpha``
                      registers/ports/binder       (+ SA-table settings,
                                                   hlpower only)
``datapath``          ``bind``                     ``width``
``elaborate``         ``datapath``                 ``elab_engine``
``techmap``           ``elaborate``                ``k, control_activity,
                                                   map_effort``
``timing``            ``techmap``                  ``device``
``vectors``           #primary inputs              ``width, n_vectors,
                                                   vector_seed``
``simulate``          ``techmap, vectors``         ``idle_selects,
                                                   delay_jitter,
                                                   sim_kernel``
``power``             ``simulate, techmap``        ``sim_clock_ns, device``
====================  ===========================  ========================

Each :class:`Stage` fingerprints its inputs — upstream fingerprints
chained with the config subset — and stores its artifact in a
content-addressed :class:`~repro.flow.cache.ArtifactCache`. Two runs
that differ only in late-stage knobs (vector seed, jitter, idle
policy, sim kernel) therefore share the bound-and-mapped prefix, which
is exactly the dominant sweep shape; the sweep engine
(:mod:`repro.flow.batch`) keeps one cache per worker process.

Partial flows are first-class: a :class:`Pipeline` materializes only
the stages a driver asks for, so the ``estimate`` entry point
(:func:`repro.flow.run.run_estimate`) stops after ``timing`` and
reports the Equation-(3) activity estimate without ever building
vectors or invoking the simulator.

Custom binder callables are supported but uncacheable (their behavior
is not content-addressable); every downstream stage then recomputes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.errors import ConfigError, SimulationError
from repro.binding import (
    BINDER_NAMES,
    BindingSolution,
    HLPowerConfig,
    MCTSConfig,
    PortAssignment,
    RegisterBinding,
    bind_hlpower,
    bind_lopass,
    bind_mcts,
)
from repro.binding.compile import (
    BindMemo,
    bind_hlpower_fast,
    bind_lopass_fast,
)
from repro.binding.sa_table import SATableConfig
from repro.cdfg.schedule import Schedule
from repro.flow.cache import ArtifactCache, fingerprint
from repro.fpga.compile import elaborate_design
from repro.fpga.elaborate import ElaboratedDesign
from repro.fpga.power import PowerReport, power_report
from repro.fpga.simulate import (
    BatchConfig,
    SimulationResult,
    golden_outputs,
    simulate_batch,
    simulate_design,
)
from repro.fpga.timing import TimingReport, timing_report
from repro.fpga.vectors import VectorSet, random_vectors
from repro.rtl.datapath import Datapath, build_datapath
from repro.techmap import ConeMemo, MapResult, map_netlist

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flow.run import FlowConfig

Binder = Union[str, Callable[..., BindingSolution]]

#: Salt mixed into every stage fingerprint. Bump the suffix whenever a
#: stage's *behavior* changes (new mapper heuristic, simulator fix, …)
#: so persisted on-disk caches from older code cannot serve stale
#: artifacts that no longer match a fresh recomputation.
CACHE_SALT = "repro-pipeline-v1"


def run_binder(
    binder: Binder,
    schedule: Schedule,
    constraints: Mapping[str, int],
    registers: RegisterBinding,
    ports: PortAssignment,
    alpha: float = 0.5,
    sa_table=None,
    engine: str = "fast",
    bind_memo: Optional[BindMemo] = None,
    mcts_budget: int = 256,
    mcts_seed: int = 1,
) -> BindingSolution:
    """Dispatch one binder by name or callable (shared with repro.hls).

    ``engine`` selects the bind implementation: "fast" (the vectorized
    engines of :mod:`repro.binding.compile`, decision-identical) or
    "reference" (the seed binders verbatim, the differential-testing
    oracle). ``bind_memo`` is the fast HLPower engine's cross-round /
    cross-cell weight-block memo; the reference engine ignores it.
    ``mcts_budget``/``mcts_seed`` only reach the ``"mcts"`` binder (its
    heuristic incumbents honor ``engine`` and share ``bind_memo``).
    """
    if callable(binder):
        return binder(schedule, constraints, registers, ports)
    if engine not in ("fast", "reference"):
        raise ConfigError(
            f"unknown bind engine {engine!r}; choose from "
            f"('fast', 'reference')"
        )
    if binder == "hlpower":
        hl_cfg = HLPowerConfig(alpha=alpha, sa_table=sa_table)
        if engine == "fast":
            return bind_hlpower_fast(
                schedule, constraints, registers, ports, hl_cfg,
                memo=bind_memo,
            )
        return bind_hlpower(schedule, constraints, registers, ports, hl_cfg)
    if binder == "lopass":
        if engine == "fast":
            return bind_lopass_fast(schedule, constraints, registers, ports)
        return bind_lopass(schedule, constraints, registers, ports)
    if binder == "mcts":
        return bind_mcts(
            schedule, constraints, registers, ports,
            MCTSConfig(
                budget=mcts_budget, seed=mcts_seed, alpha=alpha,
                sa_table=sa_table, engine=engine, bind_memo=bind_memo,
            ),
        )
    raise ConfigError(
        f"unknown binder {binder!r}; choose from {BINDER_NAMES}"
    )


# ---------------------------------------------------------------------------
# Composite artifacts.
# ---------------------------------------------------------------------------


@dataclass
class MappedDesign:
    """The tech-map stage's artifact: the mapping plus the remapped
    design (same name maps, LUT netlist) the simulator consumes."""

    mapping: MapResult
    design: ElaboratedDesign


@dataclass
class SimulatedDesign:
    """The simulate stage's artifact.

    ``checked`` records whether the trace was verified against CDFG
    semantics, so a cache hit coming from an unchecked run still gets
    the golden-output comparison when the consumer asks for it.
    """

    result: SimulationResult
    checked: bool


# ---------------------------------------------------------------------------
# Input fingerprints.
# ---------------------------------------------------------------------------


def schedule_token(schedule: Schedule) -> Tuple:
    """Content token of a scheduled CDFG (graph + start times)."""
    cdfg = schedule.cdfg
    return (
        "schedule",
        cdfg.name,
        tuple(cdfg.primary_inputs),
        tuple(cdfg.primary_outputs),
        tuple(
            (op.op_id, op.op_type, op.inputs, op.output)
            for _, op in sorted(cdfg.operations.items())
        ),
        tuple(sorted(schedule.start.items())),
        tuple(sorted(schedule.latencies.items())),
    )


def registers_token(registers: RegisterBinding) -> Tuple:
    return (
        "registers",
        registers.n_registers,
        tuple(sorted(registers.assignment.items())),
    )


def ports_token(ports: PortAssignment) -> Tuple:
    return ("ports", tuple(sorted(ports.ports.items())))


def binder_token(binder: Binder, cfg: "FlowConfig") -> Optional[Tuple]:
    """Content token of the binder choice, or None when uncacheable.

    LOPASS ignores ``alpha`` and the SA table, so neither enters its
    token (an alpha grid over LOPASS columns hits the same artifact);
    HLPower's token carries ``alpha`` plus the SA-table *settings* —
    table values are deterministic functions of those settings, so the
    table's fill state cannot change the binding and stays out of the
    fingerprint. The MCTS binder extends the HLPower token with its
    node budget and playout seed: both change the search's decisions,
    so both must enter the digest. Callables have no content identity.
    """
    if callable(binder):
        return None
    if binder == "lopass":
        return ("lopass",)
    table_config = (
        cfg.sa_table.config if cfg.sa_table is not None else SATableConfig()
    )
    if binder == "mcts":
        return (binder, cfg.alpha, table_config, cfg.mcts_budget,
                cfg.mcts_seed)
    return (binder, cfg.alpha, table_config)


# ---------------------------------------------------------------------------
# Stage registry.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stage:
    """One typed pipeline stage.

    ``config_fields`` is the subset of FlowConfig the stage reads — it
    is the stage's config fingerprint; ``extra`` contributes
    input-derived tokens (or ``None`` to mark this run uncacheable);
    ``uses_flow_inputs`` mixes the schedule/constraints/registers/
    ports token into a root stage's fingerprint (the vectors stage
    opts out — it reads nothing but the primary-input count, carried
    by its ``extra`` token, so identical stimuli are shared across
    designs); ``on_hit`` post-processes a cache hit (the simulate
    stage uses it to honor ``check_function`` on artifacts cached
    unchecked).
    """

    name: str
    deps: Tuple[str, ...]
    config_fields: Tuple[str, ...]
    run: Callable[["Pipeline"], Any]
    extra: Optional[Callable[["Pipeline"], Optional[Tuple]]] = None
    uses_flow_inputs: bool = True
    on_hit: Optional[Callable[["Pipeline", Any], None]] = None
    #: Publish to the cache's on-disk layer. Off for the simulate and
    #: power stages: their artifacts are unique per (seed, jitter,
    #: idle, kernel) cell — the dominant sweep shape would only fill
    #: the directory with large write-only pickles.
    persist_to_disk: bool = True


def _bind_memo(p: "Pipeline") -> Optional[BindMemo]:
    """The fast HLPower engine's weight-block memo, shared via the cache.

    Keyed by the bind stage's *inputs* (schedule/constraints/registers/
    ports plus the SA-table settings) but not by ``alpha`` or the
    binder: blocks are the alpha-independent part of Equation (4), so
    every hlpower cell of an alpha grid reuses the rounds whose node
    sets coincide. Memory-only, exactly like the tech mapper's
    ConeMemo (the memo mutates in place as cells add rounds).
    """
    if p.cfg.bind_engine != "fast" or callable(p.binder):
        return None
    table_config = (
        p.cfg.sa_table.config
        if p.cfg.sa_table is not None
        else SATableConfig()
    )
    key = fingerprint(
        CACHE_SALT, "bind-memo", p._input_token, table_config
    )
    hit, memo = p.cache.lookup(key)
    if not hit:
        memo = BindMemo()
        p.cache.store(key, memo, persist=False)
    return memo


def _run_bind(p: "Pipeline") -> BindingSolution:
    return run_binder(
        p.binder, p.schedule, p.constraints, p.registers, p.ports,
        alpha=p.cfg.alpha, sa_table=p.cfg.sa_table,
        engine=p.cfg.bind_engine, bind_memo=_bind_memo(p),
        mcts_budget=p.cfg.mcts_budget, mcts_seed=p.cfg.mcts_seed,
    )


def _run_datapath(p: "Pipeline") -> Datapath:
    return build_datapath(p.artifact("bind"), p.cfg.width)


def _run_elaborate(p: "Pipeline") -> ElaboratedDesign:
    return elaborate_design(p.artifact("datapath"), p.cfg.elab_engine)


def _cone_memo(p: "Pipeline") -> Optional[ConeMemo]:
    """The per-netlist cone-evaluation memo, shared via the cache.

    Keyed by the elaborate stage's fingerprint alone: memo entries are
    exact-match evaluations, so they stay valid across every ``k`` /
    ``map_effort`` / ``control_activity`` cell mapping the same
    netlist — which is precisely the sweep shape that re-runs the
    techmap stage. Memory-only (like bind/simulate): the memo mutates
    in place as cells add entries, which an on-disk pickle would
    snapshot pointlessly.
    """
    if p.cfg.map_effort == "reference":
        return None  # the seed mapper takes no memo
    elaborate_fp = p.stage_fingerprint("elaborate")
    if elaborate_fp is None:
        return None  # uncacheable run (custom binder)
    key = fingerprint(CACHE_SALT, "cone-memo", elaborate_fp)
    hit, memo = p.cache.lookup(key)
    if not hit:
        memo = ConeMemo()
        p.cache.store(key, memo, persist=False)
    return memo


def _run_techmap(p: "Pipeline") -> MappedDesign:
    design = p.artifact("elaborate")
    input_activities = {
        net: p.cfg.control_activity
        for nets in design.control_nets.values()
        for net in nets
    }
    mapping = map_netlist(
        design.netlist, k=p.cfg.k, input_activities=input_activities,
        effort=p.cfg.map_effort, cone_memo=_cone_memo(p),
    )
    mapped = ElaboratedDesign(
        datapath=design.datapath,
        netlist=mapping.netlist,
        pad_nets=design.pad_nets,
        register_nets=design.register_nets,
        fu_nets=design.fu_nets,
        control_nets=design.control_nets,
        output_nets=design.output_nets,
    )
    return MappedDesign(mapping=mapping, design=mapped)


def _run_timing(p: "Pipeline") -> TimingReport:
    return timing_report(p.artifact("techmap").mapping.netlist, p.cfg.device)


def _run_vectors(p: "Pipeline") -> VectorSet:
    return random_vectors(
        len(p.schedule.cdfg.primary_inputs),
        p.cfg.width,
        p.cfg.n_vectors,
        p.cfg.vector_seed,
    )


def _golden_outputs_memo(p: "Pipeline", mapped: MappedDesign):
    """CDFG-semantics outputs, shared via the cache.

    Keyed by the techmap and vectors fingerprints: the expected outputs
    depend on nothing else, so every simulation knob cell of a sweep
    (idle x jitter x kernel over the same design and stimulus) verifies
    against one computation instead of re-deriving it per cell.
    Memory-only, like the artifacts it checks.
    """
    techmap_fp = p.stage_fingerprint("techmap")
    vectors_fp = p.stage_fingerprint("vectors")
    if techmap_fp is None or vectors_fp is None:
        return golden_outputs(mapped.design, p.artifact("vectors"))
    key = fingerprint(CACHE_SALT, "golden-outputs", techmap_fp, vectors_fp)
    hit, expected = p.cache.lookup(key)
    if not hit:
        expected = golden_outputs(mapped.design, p.artifact("vectors"))
        p.cache.store(key, expected, persist=False)
    return expected


def _check_simulation(p: "Pipeline", artifact: SimulatedDesign) -> None:
    if not p.cfg.check_function or artifact.checked:
        return
    mapped = p.artifact("techmap")
    expected = _golden_outputs_memo(p, mapped)
    if expected != artifact.result.outputs:
        solution = p.artifact("bind")
        raise SimulationError(
            f"simulated outputs disagree with CDFG semantics for "
            f"{p.schedule.cdfg.name!r} ({solution.algorithm})"
        )
    artifact.checked = True


def _run_simulate(p: "Pipeline") -> SimulatedDesign:
    mapped = p.artifact("techmap")
    simulation = simulate_design(
        mapped.design,
        p.artifact("vectors"),
        idle_selects=p.cfg.idle_selects,
        delay_jitter=p.cfg.delay_jitter,
        kernel=p.cfg.sim_kernel,
    )
    artifact = SimulatedDesign(result=simulation, checked=False)
    _check_simulation(p, artifact)
    return artifact


def _run_power(p: "Pipeline") -> PowerReport:
    mapping = p.artifact("techmap").mapping
    n_design_nets = mapping.area + len(mapping.netlist.latches)
    return power_report(
        p.artifact("simulate").result,
        p.cfg.sim_clock_ns,
        p.cfg.device,
        n_nets=n_design_nets,
    )


#: The stage graph, in topological order.
STAGES: Dict[str, Stage] = {
    stage.name: stage
    for stage in (
        Stage(
            # ``bind_engine`` is in the fingerprint even though fast
            # and reference produce byte-identical solutions — the
            # same convention as ``sim_kernel``/``map_effort``, so a
            # differential sweep's reference cells never silently
            # reuse fast-engine artifacts (or vice versa).
            "bind", deps=(), config_fields=("bind_engine",), run=_run_bind,
            extra=lambda p: binder_token(p.binder, p.cfg),
            # Memory-only: binding has a side effect the artifact does
            # not carry — HLPower populates the run's persistent SA
            # table. An in-process hit is fine (the same table object
            # was filled by the computing cell), but a disk hit from a
            # previous process would leave the caller's table empty.
            persist_to_disk=False,
        ),
        Stage("datapath", deps=("bind",), config_fields=("width",),
              run=_run_datapath),
        # ``elab_engine`` follows the ``bind_engine`` convention: in
        # the fingerprint despite byte-identical outputs, so
        # differential sweeps keep the engines' artifacts apart.
        Stage("elaborate", deps=("datapath",),
              config_fields=("elab_engine",), run=_run_elaborate),
        Stage("techmap", deps=("elaborate",),
              config_fields=("k", "control_activity", "map_effort"),
              run=_run_techmap),
        Stage("timing", deps=("techmap",), config_fields=("device",),
              run=_run_timing),
        Stage(
            "vectors", deps=(),
            config_fields=("width", "n_vectors", "vector_seed"),
            run=_run_vectors, uses_flow_inputs=False,
            extra=lambda p: (len(p.schedule.cdfg.primary_inputs),),
        ),
        Stage(
            "simulate", deps=("techmap", "vectors"),
            config_fields=("idle_selects", "delay_jitter", "sim_kernel"),
            run=_run_simulate, on_hit=_check_simulation,
            persist_to_disk=False,
        ),
        Stage("power", deps=("simulate", "techmap"),
              config_fields=("sim_clock_ns", "device"), run=_run_power,
              persist_to_disk=False),
    )
}

#: Stage names in execution order (the public stage vocabulary).
STAGE_NAMES: Tuple[str, ...] = tuple(STAGES)

#: Stages the estimate (no-simulation) flow materializes.
ESTIMATE_STAGES: Tuple[str, ...] = (
    "bind", "datapath", "elaborate", "techmap", "timing"
)


class Pipeline:
    """One flow execution: lazy stage artifacts over a shared cache.

    Ask for artifacts with :meth:`artifact`; only the requested stages
    (plus their transitive dependencies) ever run, which is what makes
    partial flows — estimate-only, map-only — first-class. Per-stage
    wall clock lands in :attr:`timings` and cache outcomes in
    :attr:`cache_hits` (both keyed by stage name, only for stages that
    were materialized).
    """

    def __init__(
        self,
        schedule: Schedule,
        constraints: Mapping[str, int],
        binder: Binder,
        cfg: "FlowConfig",
        registers: RegisterBinding,
        ports: PortAssignment,
        cache: Optional[ArtifactCache] = None,
    ):
        self.schedule = schedule
        self.constraints = dict(constraints)
        self.binder = binder
        self.cfg = cfg
        self.registers = registers
        self.ports = ports
        self.cache = cache if cache is not None else ArtifactCache()
        self.timings: Dict[str, float] = {}
        self.cache_hits: Dict[str, bool] = {}
        self._artifacts: Dict[str, Any] = {}
        self._fingerprints: Dict[str, Optional[str]] = {}
        self._input_token = (
            schedule_token(schedule),
            tuple(sorted(self.constraints.items())),
            registers_token(registers),
            ports_token(ports),
        )

    # -- fingerprints ------------------------------------------------------

    def stage_fingerprint(self, name: str) -> Optional[str]:
        """The content digest addressing ``name``'s artifact.

        ``None`` marks the stage uncacheable for this run (a custom
        binder callable somewhere in its dependency cone).
        """
        if name in self._fingerprints:
            return self._fingerprints[name]
        stage = _stage(name)
        parts: List[Any] = [CACHE_SALT, stage.name]
        uncacheable = False
        for dep in stage.deps:
            dep_fp = self.stage_fingerprint(dep)
            if dep_fp is None:
                uncacheable = True
                break
            parts.append(dep_fp)
        if not uncacheable:
            if not stage.deps and stage.uses_flow_inputs:
                parts.append(self._input_token)
            for field_name in stage.config_fields:
                parts.append(getattr(self.cfg, field_name))
            if stage.extra is not None:
                extra = stage.extra(self)
                if extra is None:
                    uncacheable = True
                else:
                    parts.append(extra)
        digest = None if uncacheable else fingerprint(*parts)
        self._fingerprints[name] = digest
        return digest

    # -- execution ---------------------------------------------------------

    def artifact(self, name: str) -> Any:
        """Materialize (or fetch) the artifact of stage ``name``."""
        if name in self._artifacts:
            return self._artifacts[name]
        stage = _stage(name)
        for dep in stage.deps:
            self.artifact(dep)
        digest = self.stage_fingerprint(name)
        started = time.perf_counter()
        hit = False
        value: Any = None
        if digest is not None:
            hit, value = self.cache.lookup(digest)
        if hit and stage.on_hit is not None:
            stage.on_hit(self, value)
        if not hit:
            value = stage.run(self)
            if digest is not None:
                self.cache.store(digest, value,
                                 persist=stage.persist_to_disk)
        self.timings[name] = (
            self.timings.get(name, 0.0) + time.perf_counter() - started
        )
        self.cache_hits[name] = hit
        self._artifacts[name] = value
        return value

    def run_stages(self, names: Tuple[str, ...]) -> None:
        """Materialize each named stage (dependencies included)."""
        for name in names:
            self.artifact(name)

    @property
    def hit_stages(self) -> List[str]:
        """Names of materialized stages served from the cache."""
        return [name for name in STAGE_NAMES if self.cache_hits.get(name)]


def _stage(name: str) -> Stage:
    try:
        return STAGES[name]
    except KeyError:
        raise ConfigError(
            f"unknown pipeline stage {name!r}; choose from {STAGE_NAMES}"
        )


def batch_simulate_pipelines(
    pipes: List[Pipeline], max_batch: int = 16
) -> List[Tuple[List[int], float]]:
    """Materialize missing simulate artifacts in batched kernel passes.

    Groups the given pipelines by their ``techmap`` stage fingerprint —
    equal fingerprints mean a byte-identical mapped design — and runs
    each group of two or more through :func:`simulate_batch` in chunks
    of at most ``max_batch`` configurations, storing one
    :class:`SimulatedDesign` per pipeline under its own ``simulate``
    fingerprint. A pipeline whose ``artifact("simulate")`` is asked for
    afterwards gets a cache hit instead of a solo kernel run.

    Only event-kernel pipelines with a cacheable simulate stage
    participate; ones whose artifact is already cached, or that share a
    simulate fingerprint with an earlier pipeline in the list, are
    skipped. Each batched result passes the same golden-output
    verification a solo run would (honoring ``check_function``).

    Returns ``(member indices into pipes, kernel wall seconds)`` per
    executed batched pass — the kernel time only, excluding any
    upstream stages materialized to build the batch inputs.
    """
    if max_batch < 1:
        raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
    groups: Dict[str, List[Tuple[int, str, Pipeline]]] = {}
    seen: set = set()
    for index, pipe in enumerate(pipes):
        if pipe.cfg.flow != "full" or pipe.cfg.sim_kernel != "event":
            continue
        sim_fp = pipe.stage_fingerprint("simulate")
        if sim_fp is None or sim_fp in seen or sim_fp in pipe.cache:
            continue
        seen.add(sim_fp)
        techmap_fp = pipe.stage_fingerprint("techmap")
        groups.setdefault(techmap_fp, []).append((index, sim_fp, pipe))

    passes: List[Tuple[List[int], float]] = []
    for members in groups.values():
        for start in range(0, len(members), max_batch):
            batch = members[start:start + max_batch]
            if len(batch) < 2:
                continue  # a solo run is no better than the plain stage
            design = batch[0][2].artifact("techmap").design
            configs = [
                BatchConfig(
                    vectors=pipe.artifact("vectors"),
                    idle_selects=pipe.cfg.idle_selects,
                    delay_jitter=pipe.cfg.delay_jitter,
                )
                for _, _, pipe in batch
            ]
            started = time.perf_counter()
            results = simulate_batch(design, configs)
            wall = time.perf_counter() - started
            for (index, sim_fp, pipe), result in zip(batch, results):
                artifact = SimulatedDesign(result=result, checked=False)
                _check_simulation(pipe, artifact)
                # Pinned: the consumer flow may run many cells later
                # in the chunk, after enough cache traffic to evict an
                # unprotected entry (the pin drops on first lookup).
                pipe.cache.store(sim_fp, artifact, persist=False, pin=True)
            passes.append(([index for index, _, _ in batch], wall))
    return passes
