"""Content-addressed artifact store for the staged flow pipeline.

Every pipeline stage (see :mod:`repro.flow.pipeline`) produces one
artifact — a binding solution, an elaborated netlist, a simulation
trace — whose identity is fully determined by its inputs: the upstream
artifacts' fingerprints plus the subset of
:class:`~repro.flow.run.FlowConfig` fields the stage actually reads.
:func:`fingerprint` reduces that identity to a SHA-256 digest;
:class:`ArtifactCache` maps digests to artifacts so two flow runs that
share a prefix of the stage graph share the expensive prefix work.

The cache is in-memory with LRU eviction (artifacts can be large —
a mapped ``chem`` netlist is tens of thousands of gates) and an
optional on-disk pickle layer for cross-process sweeps: worker
processes that miss in memory probe the shared directory before
recomputing, and publish what they had to compute. Disk I/O is
strictly best-effort — a corrupt, unreadable or unpicklable entry
degrades to a cache miss, never to an error.

Determinism contract: the cache only ever substitutes an artifact for
a byte-identical recomputation, so cached and cold pipeline runs
produce identical :meth:`~repro.flow.run.FlowResult.metrics`. The
differential suite in ``tests/flow/test_pipeline.py`` enforces this
across binders, idle policies, delay jitter and both sim kernels.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

_MISSING = object()

#: A ``.tmp`` file older than this is an orphan from a writer that died
#: between ``mkstemp`` and ``os.replace``; younger ones may still belong
#: to a live writer mid-publish and are left alone.
STALE_TMP_SECONDS = 300.0


def _update(hasher: "hashlib._Hash", value: Any) -> None:
    """Feed one value into the hash with an unambiguous type tag."""
    if value is None:
        hasher.update(b"N;")
    elif isinstance(value, bool):  # before int: bool is an int subclass
        hasher.update(b"b%d;" % value)
    elif isinstance(value, int):
        hasher.update(b"i" + str(value).encode() + b";")
    elif isinstance(value, float):
        # repr() round-trips doubles exactly in Python 3.
        hasher.update(b"f" + repr(value).encode() + b";")
    elif isinstance(value, str):
        raw = value.encode()
        hasher.update(b"s%d:" % len(raw) + raw + b";")
    elif isinstance(value, bytes):
        hasher.update(b"y%d:" % len(value) + value + b";")
    elif isinstance(value, (tuple, list)):
        hasher.update(b"(")
        for item in value:
            _update(hasher, item)
        hasher.update(b")")
    elif isinstance(value, (set, frozenset)):
        hasher.update(b"{")
        for item in sorted(value, key=repr):
            _update(hasher, item)
        hasher.update(b"}")
    elif isinstance(value, dict):
        hasher.update(b"[")
        for key in sorted(value, key=repr):
            _update(hasher, key)
            _update(hasher, value[key])
        hasher.update(b"]")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        hasher.update(b"d" + type(value).__name__.encode() + b":")
        for field in dataclasses.fields(value):
            _update(hasher, field.name)
            _update(hasher, getattr(value, field.name))
        hasher.update(b";")
    else:
        raise TypeError(
            f"cannot fingerprint {type(value).__name__!r} values; pass a "
            f"primitive, container, or dataclass token instead"
        )


def fingerprint(*parts: Any) -> str:
    """Stable SHA-256 digest of a tree of primitive/container tokens.

    Stability matters more than speed here: the same logical inputs
    must hash identically across processes and sessions (the on-disk
    layer persists digests), so only deterministic-repr types are
    accepted and dict/set iteration order never leaks into the digest.
    """
    hasher = hashlib.sha256()
    _update(hasher, parts)
    return hasher.hexdigest()


class ArtifactCache:
    """Content-addressed artifact store with LRU eviction.

    ``max_entries`` bounds the in-memory layer (``None`` = unbounded);
    ``disk_dir`` enables the persistent layer shared across processes,
    bounded to ``disk_max_entries`` pickles (oldest-by-mtime pruned on
    write, so a long-lived shared directory cannot grow without
    bound).
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        disk_dir: Optional[str] = None,
        disk_max_entries: int = 512,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if disk_max_entries < 1:
            raise ValueError(
                f"disk_max_entries must be >= 1, got {disk_max_entries}"
            )
        self.max_entries = max_entries
        self.disk_dir = disk_dir
        self.disk_max_entries = disk_max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._pinned: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership across *both* layers.

        Unlike :meth:`lookup`, a membership probe is read-only: it never
        refreshes LRU order, promotes disk entries into memory, or
        touches the hit/miss counters — so ``key in cache`` always
        agrees with what ``lookup(key)[0]`` *would* return, without the
        side effects.
        """
        if key in self._entries:
            return True
        if self.disk_dir is None:
            return False
        return self._disk_read(key) is not _MISSING

    # -- lookup / store ----------------------------------------------------

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for ``key``; value is ``None`` on a miss."""
        value = self._entries.get(key, _MISSING)
        if value is not _MISSING:
            self._entries.move_to_end(key)
            self._pinned.discard(key)
            self.hits += 1
            return True, value
        if self.disk_dir is not None:
            value = self._disk_read(key)
            if value is not _MISSING:
                self._insert(key, value)
                self.hits += 1
                self.disk_hits += 1
                return True, value
        self.misses += 1
        return False, None

    def store(self, key: str, value: Any, persist: bool = True,
              pin: bool = False) -> None:
        """Insert an artifact (and publish it to disk when enabled).

        ``persist=False`` keeps the artifact memory-only even when the
        disk layer is active — used for per-run-unique artifacts (a
        simulation trace is keyed by its exact seed/jitter/idle/kernel
        combination) that would otherwise fill the directory with
        write-only pickles.

        ``pin=True`` protects the entry from LRU eviction until its
        first :meth:`lookup` hit. Batched simulation passes prefetch
        many artifacts before any consumer runs; without the pin,
        unrelated cache traffic in between could silently evict them
        and the consumers would fall back to recomputing — correct,
        but the whole batched pass would have been wasted work.
        """
        self._insert(key, value, pin=pin)
        if persist and self.disk_dir is not None:
            self._disk_write(key, value)

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries survive)."""
        self._entries.clear()
        self._pinned.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
        }

    # -- internals ---------------------------------------------------------

    def _insert(self, key: str, value: Any, pin: bool = False) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if pin:
            self._pinned.add(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                victim = next(
                    (k for k in self._entries if k not in self._pinned),
                    None,
                )
                if victim is None:
                    # Everything still pinned: tolerate the overflow
                    # rather than evict an unconsumed prefetch.
                    break
                del self._entries[victim]
                self.evictions += 1

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, key + ".pkl")

    def _disk_read(self, key: str) -> Any:
        try:
            with open(self._disk_path(key), "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return _MISSING

    def _disk_write(self, key: str, value: Any) -> None:
        # Atomic publish (temp + rename) so concurrent workers never
        # observe a half-written artifact; failures degrade to a miss
        # for future readers, never to an error for this writer.
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.disk_dir, prefix=key[:16], suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._disk_path(key))
            except BaseException:
                os.unlink(tmp)
                raise
            self._disk_prune()
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            pass

    def _disk_prune(self) -> None:
        """Bound the pickle count and sweep orphaned temp files."""
        now = time.time()
        entries = []
        for item in os.scandir(self.disk_dir):
            if item.name.endswith(".pkl"):
                entries.append(item)
            elif item.name.endswith(".tmp"):
                try:
                    if now - item.stat().st_mtime > STALE_TMP_SECONDS:
                        os.unlink(item.path)
                except OSError:
                    pass
        if len(entries) <= self.disk_max_entries:
            return
        entries.sort(key=lambda item: item.stat().st_mtime)
        for item in entries[: len(entries) - self.disk_max_entries]:
            try:
                os.unlink(item.path)
            except OSError:
                pass
