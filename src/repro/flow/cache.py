"""Content-addressed artifact store for the staged flow pipeline.

Every pipeline stage (see :mod:`repro.flow.pipeline`) produces one
artifact — a binding solution, an elaborated netlist, a simulation
trace — whose identity is fully determined by its inputs: the upstream
artifacts' fingerprints plus the subset of
:class:`~repro.flow.run.FlowConfig` fields the stage actually reads.
:func:`fingerprint` reduces that identity to a SHA-256 digest;
:class:`ArtifactCache` maps digests to artifacts so two flow runs that
share a prefix of the stage graph share the expensive prefix work.

The cache is in-memory with LRU eviction (artifacts can be large —
a mapped ``chem`` netlist is tens of thousands of gates) and an
optional on-disk layer for cross-process sweeps and the resident
``repro serve`` daemon. The disk layer is a **sharded store**: pickles
fan out into 256 subdirectories keyed by the first two fingerprint
hex digits (so a long-lived directory of thousands of artifacts never
degrades into one giant flat listing), writes are atomic
(temp + ``os.replace``), reads are corruption-tolerant (a truncated or
mangled entry is quarantined with a ``.corrupt`` suffix and counted,
never raised), and the whole tree is bounded both by entry count and
by total bytes with oldest-first eviction (disk reads refresh the
mtime, so the bound approximates LRU across *all* processes sharing
the directory).

Counters — hits, misses, evictions, corrupt quarantines, and the wall
clock spent in lookups and disk I/O — are surfaced as a typed
:class:`CacheStats`, which the sweep summary and the ``repro serve``
``/metrics`` endpoint report.

Determinism contract: the cache only ever substitutes an artifact for
a byte-identical recomputation, so cached and cold pipeline runs
produce identical :meth:`~repro.flow.run.FlowResult.metrics`. The
differential suite in ``tests/flow/test_pipeline.py`` enforces this
across binders, idle policies, delay jitter and both sim kernels.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

_MISSING = object()

#: A ``.tmp`` file older than this is an orphan from a writer that died
#: between ``mkstemp`` and ``os.replace``; younger ones may still belong
#: to a live writer mid-publish and are left alone. Quarantined
#: ``.corrupt`` entries use the same horizon before they are swept.
STALE_TMP_SECONDS = 300.0


def _update(hasher: "hashlib._Hash", value: Any) -> None:
    """Feed one value into the hash with an unambiguous type tag."""
    if value is None:
        hasher.update(b"N;")
    elif isinstance(value, bool):  # before int: bool is an int subclass
        hasher.update(b"b%d;" % value)
    elif isinstance(value, int):
        hasher.update(b"i" + str(value).encode() + b";")
    elif isinstance(value, float):
        # repr() round-trips doubles exactly in Python 3.
        hasher.update(b"f" + repr(value).encode() + b";")
    elif isinstance(value, str):
        raw = value.encode()
        hasher.update(b"s%d:" % len(raw) + raw + b";")
    elif isinstance(value, bytes):
        hasher.update(b"y%d:" % len(value) + value + b";")
    elif isinstance(value, (tuple, list)):
        hasher.update(b"(")
        for item in value:
            _update(hasher, item)
        hasher.update(b")")
    elif isinstance(value, (set, frozenset)):
        hasher.update(b"{")
        for item in sorted(value, key=repr):
            _update(hasher, item)
        hasher.update(b"}")
    elif isinstance(value, dict):
        hasher.update(b"[")
        for key in sorted(value, key=repr):
            _update(hasher, key)
            _update(hasher, value[key])
        hasher.update(b"]")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        hasher.update(b"d" + type(value).__name__.encode() + b":")
        for field in dataclasses.fields(value):
            _update(hasher, field.name)
            _update(hasher, getattr(value, field.name))
        hasher.update(b";")
    else:
        raise TypeError(
            f"cannot fingerprint {type(value).__name__!r} values; pass a "
            f"primitive, container, or dataclass token instead"
        )


def fingerprint(*parts: Any) -> str:
    """Stable SHA-256 digest of a tree of primitive/container tokens.

    Stability matters more than speed here: the same logical inputs
    must hash identically across processes and sessions (the on-disk
    layer persists digests), so only deterministic-repr types are
    accepted and dict/set iteration order never leaks into the digest.
    """
    hasher = hashlib.sha256()
    _update(hasher, parts)
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """One snapshot of an :class:`ArtifactCache`'s counters.

    Counter fields are cumulative since construction; latency fields
    (``*_s``) are wall-clock totals. Snapshots subtract
    (:meth:`since`), so callers can report per-request or per-chunk
    deltas from cumulative counters.
    """

    entries: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_hits: int = 0
    disk_corrupt: int = 0
    disk_evictions: int = 0
    #: Wall clock spent inside lookup() calls (both layers).
    lookup_s: float = 0.0
    #: Wall clock spent reading / writing the disk layer.
    disk_read_s: float = 0.0
    disk_write_s: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 when nothing was ever looked up."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The counter delta between this snapshot and an older one.

        ``entries`` is a gauge, not a counter — the delta keeps the
        newer snapshot's value.
        """
        return CacheStats(
            entries=self.entries,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            stores=self.stores - earlier.stores,
            disk_hits=self.disk_hits - earlier.disk_hits,
            disk_corrupt=self.disk_corrupt - earlier.disk_corrupt,
            disk_evictions=self.disk_evictions - earlier.disk_evictions,
            lookup_s=self.lookup_s - earlier.lookup_s,
            disk_read_s=self.disk_read_s - earlier.disk_read_s,
            disk_write_s=self.disk_write_s - earlier.disk_write_s,
        )

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another snapshot's counters into this one."""
        self.entries = max(self.entries, other.entries)
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.stores += other.stores
        self.disk_hits += other.disk_hits
        self.disk_corrupt += other.disk_corrupt
        self.disk_evictions += other.disk_evictions
        self.lookup_s += other.lookup_s
        self.disk_read_s += other.disk_read_s
        self.disk_write_s += other.disk_write_s

    def to_dict(self) -> Dict[str, float]:
        data = dataclasses.asdict(self)
        data["hit_rate"] = self.hit_rate
        return data


class ArtifactCache:
    """Content-addressed artifact store with LRU eviction.

    ``max_entries`` bounds the in-memory layer (``None`` = unbounded);
    ``disk_dir`` enables the sharded persistent layer shared across
    processes, bounded to ``disk_max_entries`` pickles and (when set)
    ``disk_max_bytes`` total bytes — oldest-by-mtime entries are
    evicted on write, and reads refresh the mtime, so a long-lived
    shared directory behaves as a size-bounded LRU.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        disk_dir: Optional[str] = None,
        disk_max_entries: int = 512,
        disk_max_bytes: Optional[int] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if disk_max_entries < 1:
            raise ValueError(
                f"disk_max_entries must be >= 1, got {disk_max_entries}"
            )
        if disk_max_bytes is not None and disk_max_bytes < 1:
            raise ValueError(
                f"disk_max_bytes must be >= 1, got {disk_max_bytes}"
            )
        self.max_entries = max_entries
        self.disk_dir = disk_dir
        self.disk_max_entries = disk_max_entries
        self.disk_max_bytes = disk_max_bytes
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._pinned: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0
        self.disk_hits = 0
        self.disk_corrupt = 0
        self.disk_evictions = 0
        self.lookup_s = 0.0
        self.disk_read_s = 0.0
        self.disk_write_s = 0.0
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership across *both* layers.

        Unlike :meth:`lookup`, a membership probe is read-only: it never
        refreshes LRU order, promotes disk entries into memory, or
        touches the hit/miss counters — so ``key in cache`` always
        agrees with what ``lookup(key)[0]`` *would* return, without the
        side effects.
        """
        if key in self._entries:
            return True
        if self.disk_dir is None:
            return False
        return self._disk_read(key, quarantine=False, touch=False) \
            is not _MISSING

    # -- lookup / store ----------------------------------------------------

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for ``key``; value is ``None`` on a miss."""
        started = time.perf_counter()
        try:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self._pinned.discard(key)
                self.hits += 1
                return True, value
            if self.disk_dir is not None:
                value = self._disk_read(key)
                if value is not _MISSING:
                    self._insert(key, value)
                    self.hits += 1
                    self.disk_hits += 1
                    return True, value
            self.misses += 1
            return False, None
        finally:
            self.lookup_s += time.perf_counter() - started

    def store(self, key: str, value: Any, persist: bool = True,
              pin: bool = False) -> None:
        """Insert an artifact (and publish it to disk when enabled).

        ``persist=False`` keeps the artifact memory-only even when the
        disk layer is active — used for per-run-unique artifacts (a
        simulation trace is keyed by its exact seed/jitter/idle/kernel
        combination) that would otherwise fill the directory with
        write-only pickles.

        ``pin=True`` protects the entry from LRU eviction until its
        first :meth:`lookup` hit. Batched simulation passes prefetch
        many artifacts before any consumer runs; without the pin,
        unrelated cache traffic in between could silently evict them
        and the consumers would fall back to recomputing — correct,
        but the whole batched pass would have been wasted work.
        """
        self.stores += 1
        self._insert(key, value, pin=pin)
        if persist and self.disk_dir is not None:
            self._disk_write(key, value)

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries survive)."""
        self._entries.clear()
        self._pinned.clear()

    def stats(self) -> Dict[str, int]:
        """Flat dict view of the headline counters (see also
        :meth:`stats_typed` for the full set, latencies included)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
        }

    def stats_typed(self) -> CacheStats:
        """A :class:`CacheStats` snapshot of every counter."""
        return CacheStats(
            entries=len(self._entries),
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            stores=self.stores,
            disk_hits=self.disk_hits,
            disk_corrupt=self.disk_corrupt,
            disk_evictions=self.disk_evictions,
            lookup_s=self.lookup_s,
            disk_read_s=self.disk_read_s,
            disk_write_s=self.disk_write_s,
        )

    # -- internals ---------------------------------------------------------

    def _insert(self, key: str, value: Any, pin: bool = False) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if pin:
            self._pinned.add(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                victim = next(
                    (k for k in self._entries if k not in self._pinned),
                    None,
                )
                if victim is None:
                    # Everything still pinned: tolerate the overflow
                    # rather than evict an unconsumed prefetch.
                    break
                del self._entries[victim]
                self.evictions += 1

    def _disk_path(self, key: str) -> str:
        # Shard by fingerprint prefix: 256-way fan-out keeps any one
        # directory listing small however many artifacts accumulate.
        return os.path.join(self.disk_dir, key[:2], key + ".pkl")

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside so no reader trips on it again.

        The ``.corrupt`` suffix takes the file out of the ``.pkl``
        namespace (readers and the pruner skip it); the rename is
        atomic, so a concurrent reader sees either the corrupt pickle
        (and quarantines it itself — the second rename is a no-op) or
        nothing. Swept by :meth:`_disk_prune` once stale.
        """
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            pass
        self.disk_corrupt += 1

    def _disk_read(self, key: str, quarantine: bool = True,
                   touch: bool = True) -> Any:
        started = time.perf_counter()
        path = self._disk_path(key)
        try:
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                return _MISSING
            except (pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError, ValueError, MemoryError):
                # Truncated or mangled entry — e.g. a reader racing a
                # non-atomic copy, or bit rot. Quarantine it (count as
                # a miss, never an error) so the slot can be rewritten.
                if quarantine:
                    self._quarantine(path)
                return _MISSING
            except OSError:
                return _MISSING
            if touch:
                try:
                    os.utime(path)  # refresh mtime: disk LRU recency
                except OSError:
                    pass
            return value
        finally:
            self.disk_read_s += time.perf_counter() - started

    def _disk_write(self, key: str, value: Any) -> None:
        # Atomic publish (temp + rename) so concurrent workers never
        # observe a half-written artifact; failures degrade to a miss
        # for future readers, never to an error for this writer.
        started = time.perf_counter()
        try:
            path = self._disk_path(key)
            shard = os.path.dirname(path)
            os.makedirs(shard, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=shard, prefix=key[:16], suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
            self._disk_prune()
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            pass
        finally:
            self.disk_write_s += time.perf_counter() - started

    def _disk_entries(self) -> Tuple[List[os.DirEntry], List[os.DirEntry]]:
        """``(pickles, stale debris)`` across the whole sharded tree.

        Walks the root and every shard subdirectory, so directories
        written by the pre-sharding flat layout stay bounded too.
        Debris is ``.tmp`` / ``.corrupt`` files past the staleness
        horizon — younger ones may belong to a live writer (or a
        just-quarantined entry someone is inspecting) and are left
        alone.
        """
        now = time.time()
        pickles: List[os.DirEntry] = []
        debris: List[os.DirEntry] = []
        dirs = [self.disk_dir]
        try:
            with os.scandir(self.disk_dir) as root:
                dirs += [item.path for item in root if item.is_dir()]
        except OSError:
            return pickles, debris
        for directory in dirs:
            try:
                with os.scandir(directory) as items:
                    for item in items:
                        if item.is_dir():
                            continue
                        if item.name.endswith(".pkl"):
                            pickles.append(item)
                        elif item.name.endswith((".tmp", ".corrupt")):
                            try:
                                if (now - item.stat().st_mtime
                                        > STALE_TMP_SECONDS):
                                    debris.append(item)
                            except OSError:
                                pass
            except OSError:
                continue
        return pickles, debris

    def _disk_prune(self) -> None:
        """Enforce the entry-count and byte bounds; sweep stale debris."""
        pickles, debris = self._disk_entries()
        for item in debris:
            try:
                os.unlink(item.path)
            except OSError:
                pass
        stats = []
        total_bytes = 0
        for item in pickles:
            try:
                info = item.stat()
            except OSError:
                continue
            stats.append((info.st_mtime, info.st_size, item.path))
            total_bytes += info.st_size
        over_count = len(stats) - self.disk_max_entries
        over_bytes = (
            total_bytes - self.disk_max_bytes
            if self.disk_max_bytes is not None
            else 0
        )
        if over_count <= 0 and over_bytes <= 0:
            return
        stats.sort()  # oldest mtime first — the disk-LRU victims
        for mtime, size, path in stats:
            if over_count <= 0 and over_bytes <= 0:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            self.disk_evictions += 1
            over_count -= 1
            over_bytes -= size
