"""End-to-end synthesis + measurement flow.

:func:`~repro.flow.run.run_flow` chains the full reproduction
pipeline: scheduled CDFG -> register binding -> FU binding (HLPower or
the LOPASS baseline) -> datapath -> gate-level elaboration -> K-LUT
mapping -> unit-delay simulation -> timing and power reports. This is
the code path every table/figure bench drives.

:mod:`repro.flow.batch` scales that single call into declarative
experiment grids: :class:`~repro.flow.batch.SweepSpec` describes a
``benchmark x binder x alpha x width x seed`` grid and
:func:`~repro.flow.batch.run_sweep` executes it across worker
processes with shared SA-table state and memoized elaborations,
collecting per-cell records into a JSON-serializable
:class:`~repro.flow.batch.SweepResult`.
"""

from repro.flow.run import (
    FlowConfig,
    FlowResult,
    compare_binders,
    prepare_flow_inputs,
    run_flow,
)
from repro.flow.batch import (
    BinderConfig,
    SweepCell,
    SweepJob,
    SweepResult,
    SweepSpec,
    expand_grid,
    run_sweep,
)
from repro.flow.report import (
    format_change,
    format_sweep_summary,
    format_table,
    percent_change,
)

__all__ = [
    "FlowConfig",
    "FlowResult",
    "compare_binders",
    "prepare_flow_inputs",
    "run_flow",
    "BinderConfig",
    "SweepCell",
    "SweepJob",
    "SweepResult",
    "SweepSpec",
    "expand_grid",
    "run_sweep",
    "format_change",
    "format_sweep_summary",
    "format_table",
    "percent_change",
]
