"""End-to-end synthesis + measurement flow.

:func:`~repro.flow.run.run_flow` chains the full reproduction
pipeline: scheduled CDFG -> register binding -> FU binding (HLPower or
the LOPASS baseline) -> datapath -> gate-level elaboration -> K-LUT
mapping -> unit-delay simulation -> timing and power reports. This is
the code path every table/figure bench drives.
"""

from repro.flow.run import FlowConfig, FlowResult, compare_binders, run_flow
from repro.flow.report import (
    format_change,
    format_table,
    percent_change,
)

__all__ = [
    "FlowConfig",
    "FlowResult",
    "compare_binders",
    "run_flow",
    "format_change",
    "format_table",
    "percent_change",
]
