"""End-to-end synthesis + measurement flow.

:mod:`repro.flow.pipeline` is the core: the flow is an explicit stage
graph — bind -> datapath -> elaborate -> techmap -> timing / vectors
-> simulate -> power — whose typed :class:`~repro.flow.pipeline.Stage`
objects declare their inputs and the subset of
:class:`~repro.flow.run.FlowConfig` they read, and store their
artifacts in a content-addressed
:class:`~repro.flow.cache.ArtifactCache` (see docs/architecture.md).

:func:`~repro.flow.run.run_flow` chains the full reproduction pipeline
as a thin driver over those stages: scheduled CDFG -> register binding
-> FU binding (HLPower or the LOPASS baseline) -> datapath ->
gate-level elaboration -> K-LUT mapping -> unit-delay simulation ->
timing and power reports. :func:`~repro.flow.run.run_estimate` is the
partial-flow entry point: it stops after tech-map and reports the
Equation-(3) estimates without invoking the simulator.

The sweep subsystem scales those calls into declarative experiment
grids across three layers: :mod:`repro.flow.grid` is the model
(:class:`~repro.flow.grid.SweepSpec` describes a ``benchmark x binder
x alpha x width x idle x jitter x kernel x seed`` grid),
:mod:`repro.flow.executor` is the resident execution layer
(:class:`~repro.flow.executor.FlowExecutor` owns warm worker state —
memoized elaborations, the artifact cache, shared SA-table values —
that survives across submissions), and :mod:`repro.flow.batch` is the
driver (:func:`~repro.flow.batch.run_sweep` expands a spec, submits
it, and collects per-cell records into a JSON-serializable
:class:`~repro.flow.batch.SweepResult`). Cells differing only in
simulation knobs become simulate-only work via the shared cache; the
``repro serve`` daemon (:mod:`repro.serve`) keeps one resident
executor warm across requests.
"""

from repro.flow.cache import ArtifactCache, CacheStats, fingerprint
from repro.flow.executor import ExecutorStats, FlowExecutor, Submission
from repro.flow.pipeline import (
    ESTIMATE_STAGES,
    STAGE_NAMES,
    STAGES,
    MappedDesign,
    Pipeline,
    Stage,
    batch_simulate_pipelines,
    run_binder,
)
from repro.flow.run import (
    EstimateResult,
    FlowConfig,
    FlowResult,
    build_pipeline,
    compare_binders,
    execute_flow,
    prepare_flow_inputs,
    run_estimate,
    run_flow,
)
from repro.flow.batch import (
    BinderConfig,
    SweepCell,
    SweepJob,
    SweepResult,
    SweepSpec,
    expand_grid,
    run_sweep,
)
from repro.flow.report import (
    format_change,
    format_sweep_summary,
    format_table,
    percent_change,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "ExecutorStats",
    "FlowExecutor",
    "Submission",
    "fingerprint",
    "ESTIMATE_STAGES",
    "STAGE_NAMES",
    "STAGES",
    "MappedDesign",
    "Pipeline",
    "Stage",
    "batch_simulate_pipelines",
    "run_binder",
    "EstimateResult",
    "FlowConfig",
    "FlowResult",
    "build_pipeline",
    "compare_binders",
    "execute_flow",
    "prepare_flow_inputs",
    "run_estimate",
    "run_flow",
    "BinderConfig",
    "SweepCell",
    "SweepJob",
    "SweepResult",
    "SweepSpec",
    "expand_grid",
    "run_sweep",
    "format_change",
    "format_sweep_summary",
    "format_table",
    "percent_change",
]
