"""The end-to-end flow (Section 6.1's experimental pipeline).

One :func:`run_flow` call reproduces, for one benchmark and one binder,
everything the paper extracts from Quartus II: dynamic power, clock
period, LUT count, multiplexer statistics, and the average toggle
rate. :func:`compare_binders` runs LOPASS and HLPower on *identical*
schedules, register bindings and port assignments — the paper's
methodology — and returns both results.

Both are thin drivers over the staged pipeline
(:mod:`repro.flow.pipeline`): the chain bind → datapath → elaborate →
techmap → timing → vectors → simulate → power runs stage by stage,
each stage content-fingerprinted into an
:class:`~repro.flow.cache.ArtifactCache` so repeated runs that share a
prefix (same binder and mapping, different simulation knobs) reuse the
expensive bound-and-mapped artifacts. :func:`run_estimate` is the
partial-flow entry point: it stops after tech-map/timing and reports
the Equation-(3) switching-activity estimate without ever invoking the
simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.binding import (
    BIND_ENGINES,
    BindingSolution,
    PortAssignment,
    RegisterBinding,
    SATable,
    assign_ports,
    bind_registers,
)
from repro.cdfg.schedule import Schedule
from repro.flow.cache import ArtifactCache
from repro.flow.pipeline import ESTIMATE_STAGES, Binder, Pipeline
from repro.fpga.compile import ELAB_ENGINES
from repro.fpga.device import CYCLONE_II_LIKE, DeviceModel
from repro.fpga.elaborate import ElaboratedDesign
from repro.fpga.power import PowerReport
from repro.fpga.simulate import SimulationResult
from repro.fpga.timing import TimingReport
from repro.rtl.controller import build_controller
from repro.rtl.datapath import Datapath
from repro.rtl.metrics import MuxReport, mux_report
from repro.techmap import MAP_EFFORTS, MapResult

#: Valid values of :attr:`FlowConfig.flow`.
FLOW_MODES = ("full", "estimate")


@dataclass
class FlowConfig:
    """Knobs of the measurement flow (defaults match the benches).

    Validated eagerly on construction: unknown ``sim_kernel`` /
    ``idle_selects`` / ``flow`` values and non-positive ``width`` /
    ``k`` / ``n_vectors`` raise :class:`~repro.errors.ConfigError` (a
    ``ValueError``) here instead of failing deep inside the flow.
    """

    width: int = 8
    k: int = 4
    n_vectors: int = 256
    vector_seed: int = 7
    alpha: float = 0.5
    device: DeviceModel = CYCLONE_II_LIKE
    sa_table: Optional[SATable] = None
    #: Verify simulated outputs against CDFG semantics.
    check_function: bool = True
    #: Activity hint for control inputs during mapping (selects change
    #: a couple of times per iteration, not every cycle).
    control_activity: float = 0.1
    #: Idle-step control convention: "zero" (plain FSM synthesis, the
    #: paper's flow) or "hold" (operand isolation; ablation).
    idle_selects: str = "zero"
    #: Stimulus clock period (the .vwf time base), shared by every
    #: design under comparison; achieved clock period is reported
    #: separately, as in Table 3.
    sim_clock_ns: float = 40.0
    #: Per-gate delay spread for the timing simulation (0 = pure unit
    #: delay, the paper's model; >0 models routed-delay spread and is
    #: exercised by an ablation bench).
    delay_jitter: int = 0
    #: Simulation kernel: "event" (the compiled event-driven kernel)
    #: or "reference" (the original timed-waveform loop, kept for
    #: differential testing). Both yield byte-identical results.
    sim_kernel: str = "event"
    #: Technology-mapper effort: "fast" (the compiled memoized mapper,
    #: byte-identical to the seed mapper), "exhaustive" (evaluate every
    #: surviving cut per node — better covers, slower), or "reference"
    #: (the seed mapper verbatim, the differential-testing oracle).
    map_effort: str = "fast"
    #: Binding engine: "fast" (the vectorized engines of
    #: :mod:`repro.binding.compile`, decision-identical to the seed
    #: binders) or "reference" (the seed binders verbatim, the
    #: differential-testing oracle).
    bind_engine: str = "fast"
    #: Elaboration engine: "fast" (the template-stamped elaborator of
    #: :mod:`repro.fpga.compile`, byte-identical netlists) or
    #: "reference" (the seed elaborator verbatim, the
    #: differential-testing oracle).
    elab_engine: str = "fast"
    #: Which flow the drivers execute: "full" (the paper's measurement
    #: chain, through simulation and power) or "estimate" (stop after
    #: tech-map/timing and report the Equation-(3) estimates only).
    flow: str = "full"
    #: MCTS binder search budget (iterations per resource class; 0
    #: degenerates to the best heuristic) and playout seed. Both enter
    #: the bind-stage fingerprint; ignored by the other binders.
    mcts_budget: int = 256
    mcts_seed: int = 1

    def __post_init__(self) -> None:
        for name in ("width", "k", "n_vectors"):
            value = getattr(self, name)
            # bool is an int subclass; reject it explicitly.
            if (not isinstance(value, int) or isinstance(value, bool)
                    or value < 1):
                raise ConfigError(
                    f"FlowConfig.{name} must be a positive integer, "
                    f"got {value!r}"
                )
        if self.sim_kernel not in ("event", "reference"):
            raise ConfigError(
                f"unknown simulation kernel {self.sim_kernel!r}; choose "
                f"from ('event', 'reference')"
            )
        if self.map_effort not in MAP_EFFORTS:
            raise ConfigError(
                f"unknown mapper effort {self.map_effort!r}; choose from "
                f"{MAP_EFFORTS}"
            )
        if self.bind_engine not in BIND_ENGINES:
            raise ConfigError(
                f"unknown bind engine {self.bind_engine!r}; choose from "
                f"{BIND_ENGINES}"
            )
        if self.elab_engine not in ELAB_ENGINES:
            raise ConfigError(
                f"unknown elab engine {self.elab_engine!r}; choose from "
                f"{ELAB_ENGINES}"
            )
        if self.idle_selects not in ("zero", "hold"):
            raise ConfigError(
                f"unknown idle policy {self.idle_selects!r}; choose from "
                f"('zero', 'hold')"
            )
        if self.flow not in FLOW_MODES:
            raise ConfigError(
                f"unknown flow mode {self.flow!r}; choose from {FLOW_MODES}"
            )
        if self.delay_jitter < 0:
            raise ConfigError(
                f"FlowConfig.delay_jitter must be >= 0, "
                f"got {self.delay_jitter}"
            )
        if (not isinstance(self.mcts_budget, int)
                or isinstance(self.mcts_budget, bool)
                or self.mcts_budget < 0):
            raise ConfigError(
                f"FlowConfig.mcts_budget must be an integer >= 0, "
                f"got {self.mcts_budget!r}"
            )
        if (not isinstance(self.mcts_seed, int)
                or isinstance(self.mcts_seed, bool)):
            raise ConfigError(
                f"FlowConfig.mcts_seed must be an integer, "
                f"got {self.mcts_seed!r}"
            )


@dataclass
class FlowResult:
    """Everything measured for one (benchmark, binder) pair."""

    solution: BindingSolution
    datapath: Datapath
    design: ElaboratedDesign
    mapping: MapResult
    muxes: MuxReport
    timing: TimingReport
    simulation: SimulationResult
    power: PowerReport
    area_luts: int
    controller_luts: int
    runtime_s: float
    #: Per-stage wall clock of this run (cache hits included, at the
    #: cost of the lookup). Excluded from :meth:`metrics`.
    stage_timings: Dict[str, float] = field(default_factory=dict)
    #: Pipeline stages served from the artifact cache.
    cache_hits: List[str] = field(default_factory=list)

    @property
    def estimated_sa(self) -> float:
        """The Equation-(3) estimate for the whole mapped design."""
        return self.mapping.total_sa

    def metrics(self) -> Dict[str, float]:
        """Flat, JSON-serializable summary of everything measured.

        This is the per-cell record of the sweep engine and is fully
        deterministic for a given flow input — wall-clock
        (:attr:`runtime_s`, :attr:`stage_timings`) is deliberately
        excluded so records from parallel, serial, cached and cold
        runs compare byte-identically.
        """
        return {
            "dynamic_power_mw": self.power.dynamic_power_mw,
            "comb_power_mw": self.power.comb_power_mw,
            "register_power_mw": self.power.register_power_mw,
            "io_power_mw": self.power.io_power_mw,
            "toggle_rate_mhz": self.power.toggle_rate_mhz,
            "total_toggles": self.power.total_toggles,
            "clock_period_ns": self.timing.clock_period_ns,
            "depth_levels": self.timing.depth_levels,
            "area_luts": self.area_luts,
            "datapath_luts": self.mapping.area,
            "controller_luts": self.controller_luts,
            "largest_mux": self.muxes.largest_mux,
            "mux_length": self.muxes.mux_length,
            "fu_mux_length": self.muxes.fu_mux_length,
            "mux_diff_mean": self.muxes.mux_diff_mean,
            "mux_diff_sum": sum(self.muxes.mux_diffs),
            "n_registers": self.solution.registers.n_registers,
            "estimated_sa": self.mapping.total_sa,
            "glitch_fraction": self.mapping.glitch_fraction,
        }


@dataclass
class EstimateResult:
    """The estimate-only (no simulation) flow's product.

    Everything here comes from the bind → map → timing prefix of the
    pipeline: the Equation-(3) switching-activity estimate, the mapped
    area, and the structural mux/register statistics. No vectors are
    drawn and the simulator never runs.
    """

    solution: BindingSolution
    datapath: Datapath
    design: ElaboratedDesign
    mapping: MapResult
    muxes: MuxReport
    timing: TimingReport
    area_luts: int
    controller_luts: int
    runtime_s: float
    stage_timings: Dict[str, float] = field(default_factory=dict)
    cache_hits: List[str] = field(default_factory=list)

    @property
    def estimated_sa(self) -> float:
        """The Equation-(3) estimate for the whole mapped design."""
        return self.mapping.total_sa

    def metrics(self) -> Dict[str, float]:
        """Deterministic flat record (the estimate-sweep cell)."""
        return {
            "estimated_sa": self.mapping.total_sa,
            "functional_sa": self.mapping.functional_sa,
            "glitch_sa": self.mapping.glitch_sa,
            "glitch_fraction": self.mapping.glitch_fraction,
            "clock_period_ns": self.timing.clock_period_ns,
            "depth_levels": self.timing.depth_levels,
            "area_luts": self.area_luts,
            "datapath_luts": self.mapping.area,
            "controller_luts": self.controller_luts,
            "largest_mux": self.muxes.largest_mux,
            "mux_length": self.muxes.mux_length,
            "fu_mux_length": self.muxes.fu_mux_length,
            "mux_diff_mean": self.muxes.mux_diff_mean,
            "mux_diff_sum": sum(self.muxes.mux_diffs),
            "n_registers": self.solution.registers.n_registers,
        }


def prepare_flow_inputs(
    schedule: Schedule,
) -> Tuple[RegisterBinding, PortAssignment]:
    """Register binding and port assignment shared across binders.

    Both are functions of the schedule alone — the paper's methodology
    compares binders on *identical* registers and ports — so the sweep
    engine computes them once per (benchmark, scheduler) cell and every
    binder/alpha/seed job reuses them.
    """
    return bind_registers(schedule), assign_ports(schedule.cdfg)


def build_pipeline(
    schedule: Schedule,
    constraints: Mapping[str, int],
    binder: Binder = "hlpower",
    config: Optional[FlowConfig] = None,
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
    cache: Optional[ArtifactCache] = None,
) -> Pipeline:
    """Assemble a :class:`Pipeline` with the drivers' input defaults."""
    cfg = config or FlowConfig()
    if registers is None:
        registers = bind_registers(schedule)
    if ports is None:
        ports = assign_ports(schedule.cdfg)
    return Pipeline(schedule, constraints, binder, cfg, registers, ports,
                    cache)


def _controller_luts(pipe: Pipeline) -> int:
    return build_controller(pipe.artifact("datapath")).estimated_luts(
        pipe.cfg.k
    )


def run_flow(
    schedule: Schedule,
    constraints: Mapping[str, int],
    binder: Binder = "hlpower",
    config: Optional[FlowConfig] = None,
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
    cache: Optional[ArtifactCache] = None,
) -> FlowResult:
    """Bind, build, map, simulate, and measure one design.

    Pass a shared ``cache`` to reuse stage artifacts across calls;
    results are byte-identical with and without one.
    """
    started = time.perf_counter()
    cfg = config or FlowConfig()
    if cfg.flow == "estimate":
        raise ConfigError(
            "run_flow executes the full flow; use run_estimate for "
            "FlowConfig(flow='estimate')"
        )
    pipe = build_pipeline(
        schedule, constraints, binder, cfg, registers, ports, cache
    )
    solution = pipe.artifact("bind")
    mapped = pipe.artifact("techmap")
    timing = pipe.artifact("timing")
    simulation = pipe.artifact("simulate").result
    power = pipe.artifact("power")
    controller_luts = _controller_luts(pipe)

    return FlowResult(
        solution=solution,
        datapath=pipe.artifact("datapath"),
        design=mapped.design,
        mapping=mapped.mapping,
        muxes=mux_report(solution),
        timing=timing,
        simulation=simulation,
        power=power,
        area_luts=mapped.mapping.area + controller_luts,
        controller_luts=controller_luts,
        runtime_s=time.perf_counter() - started,
        stage_timings=dict(pipe.timings),
        cache_hits=pipe.hit_stages,
    )


def run_estimate(
    schedule: Schedule,
    constraints: Mapping[str, int],
    binder: Binder = "hlpower",
    config: Optional[FlowConfig] = None,
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
    cache: Optional[ArtifactCache] = None,
) -> EstimateResult:
    """The estimate-only partial flow: stop after tech-map/timing.

    Reports the Equation-(3) switching-activity and area numbers
    without drawing vectors or invoking the simulator — the cheap
    screening entry point for wide sweeps (``repro estimate``,
    ``repro sweep --flow estimate``).
    """
    started = time.perf_counter()
    pipe = build_pipeline(
        schedule, constraints, binder, config, registers, ports, cache
    )
    pipe.run_stages(ESTIMATE_STAGES)
    solution = pipe.artifact("bind")
    mapped = pipe.artifact("techmap")
    controller_luts = _controller_luts(pipe)

    return EstimateResult(
        solution=solution,
        datapath=pipe.artifact("datapath"),
        design=mapped.design,
        mapping=mapped.mapping,
        muxes=mux_report(solution),
        timing=pipe.artifact("timing"),
        area_luts=mapped.mapping.area + controller_luts,
        controller_luts=controller_luts,
        runtime_s=time.perf_counter() - started,
        stage_timings=dict(pipe.timings),
        cache_hits=pipe.hit_stages,
    )


def execute_flow(
    schedule: Schedule,
    constraints: Mapping[str, int],
    binder: Binder = "hlpower",
    config: Optional[FlowConfig] = None,
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
    cache: Optional[ArtifactCache] = None,
) -> Union[FlowResult, EstimateResult]:
    """Dispatch on ``config.flow``: the full or the estimate-only flow."""
    cfg = config or FlowConfig()
    runner = run_estimate if cfg.flow == "estimate" else run_flow
    return runner(schedule, constraints, binder, cfg, registers, ports,
                  cache)


def compare_binders(
    schedule: Schedule,
    constraints: Mapping[str, int],
    config: Optional[FlowConfig] = None,
    binders: Optional[Mapping[str, Binder]] = None,
    cache: Optional[ArtifactCache] = None,
) -> Dict[str, FlowResult]:
    """Run several binders on identical schedule/registers/ports.

    Default comparison is the paper's: ``lopass`` vs ``hlpower``. The
    caller's ``config`` is never mutated; when it carries no SA table
    a fresh one is shared across the compared binders via
    :func:`dataclasses.replace`.
    """
    cfg = config or FlowConfig()
    registers, ports = prepare_flow_inputs(schedule)
    if cfg.sa_table is None:
        cfg = replace(cfg, sa_table=SATable())
    if binders is None:
        binders = {"lopass": "lopass", "hlpower": "hlpower"}
    shared_cache = cache if cache is not None else ArtifactCache()
    return {
        name: run_flow(schedule, constraints, binder, cfg, registers, ports,
                       shared_cache)
        for name, binder in binders.items()
    }
