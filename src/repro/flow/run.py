"""The end-to-end flow (Section 6.1's experimental pipeline).

One :func:`run_flow` call reproduces, for one benchmark and one binder,
everything the paper extracts from Quartus II: dynamic power, clock
period, LUT count, multiplexer statistics, and the average toggle
rate. :func:`compare_binders` runs LOPASS and HLPower on *identical*
schedules, register bindings and port assignments — the paper's
methodology — and returns both results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.binding import (
    BindingSolution,
    HLPowerConfig,
    PortAssignment,
    RegisterBinding,
    SATable,
    assign_ports,
    bind_hlpower,
    bind_lopass,
    bind_registers,
)
from repro.cdfg.graph import CDFG
from repro.cdfg.schedule import Schedule
from repro.fpga.device import CYCLONE_II_LIKE, DeviceModel
from repro.fpga.elaborate import ElaboratedDesign, elaborate_datapath
from repro.fpga.power import PowerReport, power_report
from repro.fpga.simulate import (
    SimulationResult,
    golden_outputs,
    simulate_design,
)
from repro.fpga.timing import TimingReport, timing_report
from repro.fpga.vectors import random_vectors
from repro.rtl.controller import build_controller
from repro.rtl.datapath import Datapath, build_datapath
from repro.rtl.metrics import MuxReport, mux_report
from repro.techmap import MapResult, map_netlist


@dataclass
class FlowConfig:
    """Knobs of the measurement flow (defaults match the benches)."""

    width: int = 8
    k: int = 4
    n_vectors: int = 256
    vector_seed: int = 7
    alpha: float = 0.5
    device: DeviceModel = CYCLONE_II_LIKE
    sa_table: Optional[SATable] = None
    #: Verify simulated outputs against CDFG semantics.
    check_function: bool = True
    #: Activity hint for control inputs during mapping (selects change
    #: a couple of times per iteration, not every cycle).
    control_activity: float = 0.1
    #: Idle-step control convention: "zero" (plain FSM synthesis, the
    #: paper's flow) or "hold" (operand isolation; ablation).
    idle_selects: str = "zero"
    #: Stimulus clock period (the .vwf time base), shared by every
    #: design under comparison; achieved clock period is reported
    #: separately, as in Table 3.
    sim_clock_ns: float = 40.0
    #: Per-gate delay spread for the timing simulation (0 = pure unit
    #: delay, the paper's model; >0 models routed-delay spread and is
    #: exercised by an ablation bench).
    delay_jitter: int = 0
    #: Simulation kernel: "event" (the compiled event-driven kernel)
    #: or "reference" (the original timed-waveform loop, kept for
    #: differential testing). Both yield byte-identical results.
    sim_kernel: str = "event"


@dataclass
class FlowResult:
    """Everything measured for one (benchmark, binder) pair."""

    solution: BindingSolution
    datapath: Datapath
    design: ElaboratedDesign
    mapping: MapResult
    muxes: MuxReport
    timing: TimingReport
    simulation: SimulationResult
    power: PowerReport
    area_luts: int
    controller_luts: int
    runtime_s: float

    @property
    def estimated_sa(self) -> float:
        """The Equation-(3) estimate for the whole mapped design."""
        return self.mapping.total_sa

    def metrics(self) -> Dict[str, float]:
        """Flat, JSON-serializable summary of everything measured.

        This is the per-cell record of the sweep engine and is fully
        deterministic for a given flow input — wall-clock
        (:attr:`runtime_s`) is deliberately excluded so records from
        parallel and serial runs compare byte-identically.
        """
        return {
            "dynamic_power_mw": self.power.dynamic_power_mw,
            "comb_power_mw": self.power.comb_power_mw,
            "register_power_mw": self.power.register_power_mw,
            "io_power_mw": self.power.io_power_mw,
            "toggle_rate_mhz": self.power.toggle_rate_mhz,
            "total_toggles": self.power.total_toggles,
            "clock_period_ns": self.timing.clock_period_ns,
            "depth_levels": self.timing.depth_levels,
            "area_luts": self.area_luts,
            "datapath_luts": self.mapping.area,
            "controller_luts": self.controller_luts,
            "largest_mux": self.muxes.largest_mux,
            "mux_length": self.muxes.mux_length,
            "mux_diff_mean": self.muxes.mux_diff_mean,
            "n_registers": self.solution.registers.n_registers,
            "estimated_sa": self.mapping.total_sa,
            "glitch_fraction": self.mapping.glitch_fraction,
        }


Binder = Union[str, Callable[..., BindingSolution]]


def prepare_flow_inputs(
    schedule: Schedule,
) -> Tuple[RegisterBinding, PortAssignment]:
    """Register binding and port assignment shared across binders.

    Both are functions of the schedule alone — the paper's methodology
    compares binders on *identical* registers and ports — so the sweep
    engine computes them once per (benchmark, scheduler) cell and every
    binder/alpha/seed job reuses them.
    """
    return bind_registers(schedule), assign_ports(schedule.cdfg)


def run_flow(
    schedule: Schedule,
    constraints: Mapping[str, int],
    binder: Binder = "hlpower",
    config: Optional[FlowConfig] = None,
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
) -> FlowResult:
    """Bind, build, map, simulate, and measure one design."""
    started = time.perf_counter()
    cfg = config or FlowConfig()
    cdfg = schedule.cdfg
    if registers is None:
        registers = bind_registers(schedule)
    if ports is None:
        ports = assign_ports(cdfg)

    solution = _run_binder(binder, schedule, constraints, registers, ports, cfg)
    datapath = build_datapath(solution, cfg.width)
    design = elaborate_datapath(datapath)

    input_activities = {
        net: cfg.control_activity
        for nets in design.control_nets.values()
        for net in nets
    }
    mapping = map_netlist(
        design.netlist,
        k=cfg.k,
        input_activities=input_activities,
    )
    mapped_design = ElaboratedDesign(
        datapath=datapath,
        netlist=mapping.netlist,
        pad_nets=design.pad_nets,
        register_nets=design.register_nets,
        fu_nets=design.fu_nets,
        control_nets=design.control_nets,
        output_nets=design.output_nets,
    )

    timing = timing_report(mapping.netlist, cfg.device)
    vectors = random_vectors(
        len(cdfg.primary_inputs), cfg.width, cfg.n_vectors, cfg.vector_seed
    )
    simulation = simulate_design(
        mapped_design,
        vectors,
        idle_selects=cfg.idle_selects,
        delay_jitter=cfg.delay_jitter,
        kernel=cfg.sim_kernel,
    )
    if cfg.check_function:
        expected = golden_outputs(mapped_design, vectors)
        if expected != simulation.outputs:
            raise SimulationError(
                f"simulated outputs disagree with CDFG semantics for "
                f"{cdfg.name!r} ({solution.algorithm})"
            )

    controller_luts = build_controller(datapath).estimated_luts(cfg.k)
    n_design_nets = mapping.area + len(mapping.netlist.latches)
    power = power_report(
        simulation, cfg.sim_clock_ns, cfg.device, n_nets=n_design_nets
    )

    return FlowResult(
        solution=solution,
        datapath=datapath,
        design=mapped_design,
        mapping=mapping,
        muxes=mux_report(solution),
        timing=timing,
        simulation=simulation,
        power=power,
        area_luts=mapping.area + controller_luts,
        controller_luts=controller_luts,
        runtime_s=time.perf_counter() - started,
    )


def _run_binder(
    binder: Binder,
    schedule: Schedule,
    constraints: Mapping[str, int],
    registers: RegisterBinding,
    ports: PortAssignment,
    cfg: FlowConfig,
) -> BindingSolution:
    if callable(binder):
        return binder(schedule, constraints, registers, ports)
    if binder == "hlpower":
        hl_cfg = HLPowerConfig(alpha=cfg.alpha, sa_table=cfg.sa_table)
        return bind_hlpower(schedule, constraints, registers, ports, hl_cfg)
    if binder == "lopass":
        return bind_lopass(schedule, constraints, registers, ports)
    raise ValueError(f"unknown binder {binder!r}")


def compare_binders(
    schedule: Schedule,
    constraints: Mapping[str, int],
    config: Optional[FlowConfig] = None,
    binders: Mapping[str, Binder] = None,
) -> Dict[str, FlowResult]:
    """Run several binders on identical schedule/registers/ports.

    Default comparison is the paper's: ``lopass`` vs ``hlpower``.
    """
    cfg = config or FlowConfig()
    registers, ports = prepare_flow_inputs(schedule)
    table = cfg.sa_table if cfg.sa_table is not None else SATable()
    if cfg.sa_table is None:
        cfg = FlowConfig(**{**cfg.__dict__, "sa_table": table})
    if binders is None:
        binders = {"lopass": "lopass", "hlpower": "hlpower"}
    return {
        name: run_flow(schedule, constraints, binder, cfg, registers, ports)
        for name, binder in binders.items()
    }
