"""The declarative sweep-grid model.

This module is the pure data layer under the sweep engine: a
:class:`SweepSpec` describes one experiment grid (benchmarks, binder
configurations, widths, engine/effort/simulation axes, seeds, shared
flow knobs), :func:`expand_grid` expands it into concrete
:class:`SweepJob` cells, and :class:`SweepCell` is the record one job
produces. Execution lives in :mod:`repro.flow.executor` (the resident
worker-pool layer) and :mod:`repro.flow.batch` (the ``run_sweep``
driver and result store); the ``repro serve`` daemon builds
single-cell grids out of HTTP requests through the same model.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.binding import BIND_ENGINES, BINDER_NAMES
from repro.cdfg import benchmark_spec
from repro.errors import ConfigError
from repro.fpga.compile import ELAB_ENGINES
from repro.techmap import MAP_EFFORTS


@dataclass(frozen=True)
class BinderConfig:
    """One binder column of the grid.

    ``label`` names the column in records and reports ("lopass",
    "hlpower_a05", ...); ``alpha`` is Equation (4)'s weight and is
    ignored by binders that do not consume it (LOPASS).
    """

    label: str
    binder: str
    alpha: float = 0.5


@dataclass
class SweepSpec:
    """Declarative description of one experiment grid.

    The grid is the cross product ``benchmarks x binder_configs x
    widths x bind engines x elab engines x map efforts x idle_modes x
    jitters x sim kernels x vector_seeds``.
    Binder configurations come either from the ``binders x alphas``
    cross product (the default) or from an explicit ``configs`` list
    when the columns are not a product — e.g. the bench suite's
    ``lopass / hlpower_a1 / hlpower_a05``. The simulation-only axes
    (idle mode, jitter, kernel, seed) vary nothing before the simulate
    stage, so the pipeline cache turns them into simulate-only work.
    """

    benchmarks: Sequence[str] = ()
    binders: Sequence[str] = ("lopass", "hlpower")
    alphas: Sequence[float] = (0.5,)
    widths: Sequence[int] = (8,)
    vector_seeds: Sequence[int] = (7,)
    configs: Optional[Sequence[BinderConfig]] = None
    n_vectors: int = 256
    k: int = 4
    scheduler: str = "list"
    check_function: bool = True
    #: Simulation kernel for every cell: "event" (default) or
    #: "reference" (the differential-testing oracle; several-fold
    #: slower, byte-identical metrics). ``sim_kernels`` overrides this
    #: scalar with a grid axis.
    sim_kernel: str = "event"
    #: Technology-mapper effort for every cell: "fast" (default,
    #: byte-identical to the seed mapper), "exhaustive", or
    #: "reference" (the seed mapper; the differential oracle).
    #: ``map_efforts`` overrides this scalar with a grid axis.
    map_effort: str = "fast"
    #: Binding engine for every cell: "fast" (default, the vectorized
    #: engines — byte-identical solutions) or "reference" (the seed
    #: binders; the differential oracle). ``bind_engines`` overrides
    #: this scalar with a grid axis.
    bind_engine: str = "fast"
    #: Elaboration engine for every cell: "fast" (default, the
    #: template-stamped elaborator — byte-identical netlists) or
    #: "reference" (the seed elaborator; the differential oracle).
    #: ``elab_engines`` overrides this scalar with a grid axis.
    elab_engine: str = "fast"
    #: Binder label (or binder name) used as the reference for
    #: percentage changes; "none" (or empty) disables the comparison.
    baseline: str = "lopass"
    #: Idle-step control policies to sweep ("zero" and/or "hold").
    idle_modes: Sequence[str] = ("zero",)
    #: Per-gate delay-jitter values to sweep (0 = pure unit delay).
    jitters: Sequence[int] = (0,)
    #: Optional kernel axis; ``None`` means ``(sim_kernel,)``.
    sim_kernels: Optional[Sequence[str]] = None
    #: Optional mapper-effort axis; ``None`` means ``(map_effort,)``.
    map_efforts: Optional[Sequence[str]] = None
    #: Optional bind-engine axis; ``None`` means ``(bind_engine,)``.
    bind_engines: Optional[Sequence[str]] = None
    #: Optional elab-engine axis; ``None`` means ``(elab_engine,)``.
    elab_engines: Optional[Sequence[str]] = None
    #: "full" runs the paper's measurement chain; "estimate" stops
    #: every cell after tech-map (Equation-(3) numbers, no simulator).
    flow: str = "full"
    #: External designs to estimate alongside (or instead of) the
    #: benchmarks: design name -> design text (``repro-module-v1`` JSON
    #: or flat BLIF; see :mod:`repro.ingest`). Design cells appear as
    #: benchmark ``design:<name>`` with binder column ``ingest`` and
    #: run the estimate flow only — they have no schedule or binder, so
    #: only the ``k``/``map_efforts`` knobs apply to them. The text
    #: rides in :meth:`to_dict`, so serve request deduplication and
    #: worker-pool shipping see the design content.
    designs: Optional[Mapping[str, str]] = None
    #: Maximum configurations per batched simulation kernel pass.
    #: Event-kernel cells that share the mapped design (same benchmark
    #: / binder / width / effort / engine, differing only in seed,
    #: idle mode or jitter) are dispatched through
    #: :func:`~repro.flow.pipeline.batch_simulate_pipelines` in groups
    #: of up to this many; ``1`` disables batching (every cell runs
    #: the solo kernel). Metrics are byte-identical either way. Kernel
    #: wall clock is strongly sublinear in batch width (the union of
    #: scheduled events grows much slower than the config count), so
    #: wider is cheaper until word width dominates; 32 is the sweet
    #: spot measured on the chem benchmark (BENCH_flow.json).
    sim_batch: int = 32
    #: MCTS binder knobs, applied to every ``"mcts"`` cell: search
    #: budget (iterations per resource class; 0 degenerates to the
    #: best heuristic) and playout seed. Both enter the bind-stage
    #: fingerprint; other binders ignore them.
    mcts_budget: int = 256
    mcts_seed: int = 1

    def __post_init__(self) -> None:
        # Binder names gate which bind implementations run at all, so
        # an unknown name must fail here — at construction / from_dict
        # time — not halfway through a sweep when run_binder first sees
        # the job.
        for config in self.binder_configs():
            if config.binder not in BINDER_NAMES:
                raise ConfigError(
                    f"unknown binder {config.binder!r}; choose from "
                    f"{BINDER_NAMES}"
                )

    def binder_configs(self) -> List[BinderConfig]:
        if self.configs is not None:
            return list(self.configs)
        out = []
        for binder in self.binders:
            for alpha in self.alphas:
                label = binder if len(self.alphas) == 1 else (
                    f"{binder}_a{alpha:g}"
                )
                out.append(BinderConfig(label, binder, alpha))
        return out

    def kernels(self) -> List[str]:
        """The kernel axis (the scalar ``sim_kernel`` unless overridden)."""
        if self.sim_kernels is not None:
            return list(self.sim_kernels)
        return [self.sim_kernel]

    def efforts(self) -> List[str]:
        """The mapper-effort axis (scalar unless overridden)."""
        if self.map_efforts is not None:
            return list(self.map_efforts)
        return [self.map_effort]

    def engines(self) -> List[str]:
        """The bind-engine axis (scalar unless overridden)."""
        if self.bind_engines is not None:
            return list(self.bind_engines)
        return [self.bind_engine]

    def elab(self) -> List[str]:
        """The elab-engine axis (scalar unless overridden)."""
        if self.elab_engines is not None:
            return list(self.elab_engines)
        return [self.elab_engine]

    def validate(self) -> None:
        if not self.benchmarks and not self.designs:
            raise ConfigError("sweep spec has no benchmarks or designs")
        for name in self.benchmarks:
            benchmark_spec(name)  # raises on unknown names
        if self.designs is not None:
            self._validate_designs()
        if self.scheduler not in ("list", "force"):
            raise ConfigError(f"unknown scheduler {self.scheduler!r}")
        for kernel in [self.sim_kernel] + self.kernels():
            if kernel not in ("event", "reference"):
                raise ConfigError(
                    f"unknown simulation kernel {kernel!r}; choose "
                    f"from ('event', 'reference')"
                )
        for effort in [self.map_effort] + self.efforts():
            if effort not in MAP_EFFORTS:
                raise ConfigError(
                    f"unknown mapper effort {effort!r}; choose from "
                    f"{MAP_EFFORTS}"
                )
        for engine in [self.bind_engine] + self.engines():
            if engine not in BIND_ENGINES:
                raise ConfigError(
                    f"unknown bind engine {engine!r}; choose from "
                    f"{BIND_ENGINES}"
                )
        for engine in [self.elab_engine] + self.elab():
            if engine not in ELAB_ENGINES:
                raise ConfigError(
                    f"unknown elab engine {engine!r}; choose from "
                    f"{ELAB_ENGINES}"
                )
        if self.flow not in ("full", "estimate"):
            raise ConfigError(
                f"unknown flow mode {self.flow!r}; choose from "
                f"('full', 'estimate')"
            )
        if self.sim_batch < 1:
            raise ConfigError(
                f"sim_batch must be >= 1, got {self.sim_batch}"
            )
        if not self.idle_modes:
            raise ConfigError("sweep spec needs >= 1 idle mode")
        for idle in self.idle_modes:
            if idle not in ("zero", "hold"):
                raise ConfigError(
                    f"unknown idle policy {idle!r}; choose from "
                    f"('zero', 'hold')"
                )
        if not self.jitters:
            raise ConfigError("sweep spec needs >= 1 jitter value")
        for jitter in self.jitters:
            if jitter < 0:
                raise ConfigError(f"delay jitter must be >= 0, got {jitter}")
        configs = self.binder_configs()
        if not configs:
            raise ConfigError("sweep spec has no binder configurations")
        for config in configs:
            if config.binder not in BINDER_NAMES:
                raise ConfigError(
                    f"unknown binder {config.binder!r}; choose from "
                    f"{BINDER_NAMES}"
                )
        if (not isinstance(self.mcts_budget, int)
                or isinstance(self.mcts_budget, bool)
                or self.mcts_budget < 0):
            raise ConfigError(
                f"mcts_budget must be an integer >= 0, "
                f"got {self.mcts_budget!r}"
            )
        if (not isinstance(self.mcts_seed, int)
                or isinstance(self.mcts_seed, bool)):
            raise ConfigError(
                f"mcts_seed must be an integer, got {self.mcts_seed!r}"
            )
        labels = [config.label for config in configs]
        if len(set(labels)) != len(labels):
            raise ConfigError(f"duplicate binder labels: {labels}")
        if not self.widths or not self.vector_seeds:
            raise ConfigError("sweep spec needs >= 1 width and seed")
        if self.baseline and self.baseline != "none":
            if self.baseline not in labels:
                matches = [
                    c for c in configs if c.binder == self.baseline
                ]
                if not matches:
                    raise ConfigError(
                        f"baseline {self.baseline!r} matches no binder "
                        f"configuration; choose from {sorted(labels)} or "
                        f"pass 'none'"
                    )
                # LOPASS ignores alpha, so all its grid columns hold
                # identical cells and any of them can anchor the
                # comparison; an alpha-sensitive binder must be named
                # by its exact label.
                if len(matches) > 1 and self.baseline != "lopass":
                    raise ConfigError(
                        f"baseline {self.baseline!r} is ambiguous across "
                        f"alphas; use an explicit label such as "
                        f"{matches[0].label!r}"
                    )

    def _validate_designs(self) -> None:
        # Local import: the ingest frontend sits above this pure data
        # layer and must stay importable without it.
        from repro.errors import ReproError
        from repro.ingest import load_design_text

        if not isinstance(self.designs, Mapping):
            raise ConfigError("designs must map name -> design text")
        if self.flow != "estimate":
            raise ConfigError(
                "external designs have no schedule or binder; they run "
                "the estimate flow only (set flow='estimate')"
            )
        for name, text in self.designs.items():
            if not isinstance(name, str) or not name:
                raise ConfigError(f"bad design name {name!r}")
            try:
                load_design_text(text, name=name)
            except ReproError as exc:
                raise ConfigError(f"design {name!r}: {exc}") from exc

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["benchmarks"] = list(self.benchmarks)
        data["binders"] = list(self.binders)
        data["alphas"] = list(self.alphas)
        data["widths"] = list(self.widths)
        data["vector_seeds"] = list(self.vector_seeds)
        data["idle_modes"] = list(self.idle_modes)
        data["jitters"] = list(self.jitters)
        if self.sim_kernels is not None:
            data["sim_kernels"] = list(self.sim_kernels)
        if self.map_efforts is not None:
            data["map_efforts"] = list(self.map_efforts)
        if self.bind_engines is not None:
            data["bind_engines"] = list(self.bind_engines)
        if self.elab_engines is not None:
            data["elab_engines"] = list(self.elab_engines)
        if self.configs is not None:
            data["configs"] = [asdict(config) for config in self.configs]
        if self.designs is not None:
            data["designs"] = dict(self.designs)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        kwargs = dict(data)
        if kwargs.get("configs") is not None:
            kwargs["configs"] = [
                BinderConfig(**config) for config in kwargs["configs"]
            ]
        return cls(**kwargs)


@dataclass(frozen=True)
class SweepJob:
    """One expanded grid cell, ready to run."""

    index: int
    benchmark: str
    config: BinderConfig
    width: int
    vector_seed: int
    idle_selects: str = "zero"
    delay_jitter: int = 0
    sim_kernel: str = "event"
    map_effort: str = "fast"
    bind_engine: str = "fast"
    elab_engine: str = "fast"
    #: Set for external-design cells: the key into ``spec.designs``.
    design: Optional[str] = None


#: Binder column shown for external-design cells (which have none).
INGEST_CONFIG = BinderConfig("ingest", "ingest", 0.0)


@dataclass
class SweepCell:
    """The record one job produces."""

    benchmark: str
    config: str
    binder: str
    alpha: float
    width: int
    vector_seed: int
    #: Deterministic measurements (see :meth:`FlowResult.metrics` /
    #: :meth:`EstimateResult.metrics` depending on the spec's flow).
    metrics: Dict[str, float]
    runtime_s: float
    schedule_cache_hit: bool
    sa_new_entries: int
    idle_selects: str = "zero"
    delay_jitter: int = 0
    sim_kernel: str = "event"
    map_effort: str = "fast"
    bind_engine: str = "fast"
    elab_engine: str = "fast"
    #: Per-pipeline-stage wall clock of this cell's flow run.
    stage_timings: Dict[str, float] = field(default_factory=dict)
    #: Pipeline stages served from the worker's artifact cache.
    cache_hits: List[str] = field(default_factory=list)
    #: Size of the batched simulation pass that produced this cell's
    #: trace (0 = solo kernel run, batching off or group too small).
    sim_batch: int = 0
    #: This cell's share of its batched pass's kernel wall clock
    #: (total pass seconds / configurations in the pass).
    sim_batch_s: float = 0.0

    @property
    def key(self) -> Tuple[str, str, int, int, str, int, str, str, str, str]:
        return (
            self.benchmark, self.config, self.width, self.vector_seed,
            self.idle_selects, self.delay_jitter, self.sim_kernel,
            self.map_effort, self.bind_engine, self.elab_engine,
        )


def expand_grid(spec: SweepSpec) -> List[SweepJob]:
    """Expand the spec into jobs, benchmark-major.

    Benchmark-major order keeps jobs that share an elaboration-memo key
    adjacent, and simulation-only axes (idle/jitter/kernel/seed)
    innermost so consecutive jobs share the longest cached pipeline
    prefix. In estimate mode the simulation-only axes are collapsed to
    their first value — they cannot move any estimate metric, so
    multiplying cells over them would only duplicate records.
    """
    spec.validate()
    idle_modes: Sequence[str] = spec.idle_modes
    jitters: Sequence[int] = spec.jitters
    kernels: Sequence[str] = spec.kernels()
    seeds: Sequence[int] = spec.vector_seeds
    if spec.flow == "estimate":
        idle_modes = idle_modes[:1]
        jitters = jitters[:1]
        kernels = kernels[:1]
        seeds = seeds[:1]
    jobs: List[SweepJob] = []
    for benchmark in spec.benchmarks:
        for config in spec.binder_configs():
            for width in spec.widths:
                # The bind-engine axis is outermost (bind is the
                # pipeline root: engine cells share no cached
                # prefix), then the elab-engine axis (those cells
                # still share the bound prefix), then the
                # mapper-effort axis outside the simulation-only
                # axes: cells that share (benchmark, binder, width,
                # engines, effort) still share the mapped prefix.
                for engine in spec.engines():
                    for elab in spec.elab():
                        for effort in spec.efforts():
                            for idle in idle_modes:
                                for jitter in jitters:
                                    for kernel in kernels:
                                        for seed in seeds:
                                            jobs.append(SweepJob(
                                                len(jobs), benchmark,
                                                config, width, seed,
                                                idle, jitter, kernel,
                                                effort, engine, elab,
                                            ))
    if spec.designs:
        # Design cells: estimate flow only (validate() enforces it), so
        # the simulation axes are already collapsed; the mapper-effort
        # axis is the only one that can move a design metric. width=0
        # marks "the design defines its own widths".
        for name in sorted(spec.designs):
            for effort in spec.efforts():
                jobs.append(SweepJob(
                    len(jobs), f"design:{name}", INGEST_CONFIG, 0,
                    seeds[0], idle_modes[0], jitters[0], kernels[0],
                    effort, spec.engines()[0], spec.elab()[0],
                    design=name,
                ))
    return jobs
