"""Table formatting for the reproduction benches.

Small, dependency-free helpers that render the paper-style rows the
benches print (Tables 1-4, Figure 3) and compute the percentage
changes the paper reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flow.batch import SweepResult


def percent_change(before: float, after: float) -> float:
    """Signed percentage change, as in Table 3's "Change" columns."""
    if before == 0:
        return 0.0
    return (after - before) / before * 100.0


def format_change(value: float) -> str:
    """Render a percentage with the paper's sign convention."""
    return f"{value:+.2f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Plain-text aligned table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render_row(values: Sequence[str]) -> str:
        return "  ".join(
            value.rjust(widths[index]) if index else value.ljust(widths[0])
            for index, value in enumerate(values)
        )

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_sweep_summary(sweep: "SweepResult") -> str:
    """Aggregate table + execution stats for one sweep.

    One row per (benchmark, config, width) group: seed-averaged power
    (with stdev when several seeds ran), toggle rate, the
    seed-invariant area/clock numbers, and the power change versus the
    sweep's baseline binder.
    """
    rows = []
    multi_width = len(sweep.spec.widths) > 1
    for agg in sweep.aggregates():
        power = f"{agg['power_mean_mw']:.2f}"
        if agg["n_seeds"] > 1:
            power += f"±{agg['power_stdev_mw']:.2f}"
        row = [agg["benchmark"], agg["config"]]
        if multi_width:
            row.append(agg["width"])
        delta = agg["d_power_vs_baseline_pct"]
        row += [
            power,
            f"{agg['toggle_rate_mean_mhz']:.2f}",
            f"{agg['clock_period_ns']:.1f}",
            agg["area_luts"],
            agg["largest_mux"],
            format_change(delta) if delta is not None else "n/a",
        ]
        rows.append(row)
    headers = ["bench", "config"]
    if multi_width:
        headers.append("width")
    headers += ["power mW", "tog MHz", "clk ns", "LUTs", "lrg mux", "dPow"]
    n_seeds = len(sweep.spec.vector_seeds)
    title = (
        f"Sweep: {len(sweep.cells)} cells "
        f"({len(sweep.spec.benchmarks)} benchmarks x "
        f"{len(sweep.spec.binder_configs())} configs x "
        f"{len(sweep.spec.widths)} widths x {n_seeds} seeds), "
        f"jobs={sweep.jobs}, wall {sweep.wall_s:.1f}s"
    )
    table = format_table(headers, rows, title=title)
    stats = (
        f"elaboration cache: {sweep.schedule_cache_hits} hits / "
        f"{sweep.schedule_cache_misses} misses; SA table: "
        f"{sweep.sa_precalc_entries} precalculated, "
        f"{sweep.sa_new_entries} new entries"
    )
    return table + "\n" + stats
