"""Table formatting for the reproduction benches.

Small, dependency-free helpers that render the paper-style rows the
benches print (Tables 1-4, Figure 3) and compute the percentage
changes the paper reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flow.batch import SweepResult

#: Pipeline order for the per-stage wall-clock line; stages the
#: pipeline grows later sort after these, alphabetically.
_STAGE_ORDER = (
    "bind", "datapath", "elaborate", "techmap", "timing",
    "vectors", "simulate", "power",
)


def percent_change(before: float, after: float) -> float:
    """Signed percentage change, as in Table 3's "Change" columns."""
    if before == 0:
        return 0.0
    return (after - before) / before * 100.0


def format_change(value: float) -> str:
    """Render a percentage with the paper's sign convention."""
    return f"{value:+.2f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Plain-text aligned table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render_row(values: Sequence[str]) -> str:
        return "  ".join(
            value.rjust(widths[index]) if index else value.ljust(widths[0])
            for index, value in enumerate(values)
        )

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_sweep_summary(sweep: "SweepResult") -> str:
    """Aggregate table + execution stats for one sweep.

    One row per (benchmark, config, width, idle, jitter, kernel)
    group. Full-flow sweeps show seed-averaged power (with stdev when
    several seeds ran), toggle rate, the seed-invariant area/clock
    numbers, and the power change versus the sweep's baseline binder;
    estimate-only sweeps show the Equation-(3) switching-activity
    estimate and glitch fraction instead. Grid axes held at a single
    value are omitted from the columns.
    """
    spec = sweep.spec
    estimate = spec.flow == "estimate"
    rows = []
    multi_width = len(spec.widths) > 1
    extra_axes = []
    if len(spec.engines()) > 1:
        extra_axes.append(("engine", "bind_engine"))
    if len(spec.elab()) > 1:
        extra_axes.append(("elab", "elab_engine"))
    if len(spec.efforts()) > 1:
        extra_axes.append(("effort", "map_effort"))
    if not estimate:
        if len(spec.idle_modes) > 1:
            extra_axes.append(("idle", "idle_selects"))
        if len(spec.jitters) > 1:
            extra_axes.append(("jit", "delay_jitter"))
        if len(spec.kernels()) > 1:
            extra_axes.append(("kernel", "sim_kernel"))
    for agg in sweep.aggregates():
        row = [agg["benchmark"], agg["config"]]
        if multi_width:
            row.append(agg["width"])
        for _, key in extra_axes:
            row.append(agg[key])
        if estimate:
            delta = agg["d_sa_vs_baseline_pct"]
            row += [
                f"{agg['sa_mean']:.1f}",
                f"{agg['glitch_fraction'] * 100:.1f}%",
            ]
        else:
            delta = agg["d_power_vs_baseline_pct"]
            power = f"{agg['power_mean_mw']:.2f}"
            if agg["n_seeds"] > 1:
                power += f"±{agg['power_stdev_mw']:.2f}"
            row += [power, f"{agg['toggle_rate_mean_mhz']:.2f}"]
        row += [
            f"{agg['clock_period_ns']:.1f}",
            agg["area_luts"],
            agg["largest_mux"],
            format_change(delta) if delta is not None else "n/a",
        ]
        rows.append(row)
    headers = ["bench", "config"]
    if multi_width:
        headers.append("width")
    headers += [label for label, _ in extra_axes]
    if estimate:
        headers += ["est SA", "glitch", "clk ns", "LUTs", "lrg mux", "dSA"]
    else:
        headers += ["power mW", "tog MHz", "clk ns", "LUTs", "lrg mux",
                    "dPow"]
    axes = [
        (len(spec.benchmarks), "benchmarks"),
        (len(spec.binder_configs()), "configs"),
        (len(spec.widths), "widths"),
        (len(spec.engines()), "engines"),
        (len(spec.elab()), "elabs"),
        (len(spec.efforts()), "efforts"),
    ]
    if not estimate:
        # Estimate sweeps collapse the simulation-only axes, so only
        # full sweeps multiply over them.
        axes += [
            (len(spec.idle_modes), "idle"),
            (len(spec.jitters), "jitters"),
            (len(spec.kernels()), "kernels"),
            (len(spec.vector_seeds), "seeds"),
        ]
    grid = " x ".join(
        f"{count} {label}" for count, label in axes
        if count > 1 or label in ("benchmarks", "configs")
    )
    flow_tag = "estimate-only, " if estimate else ""
    title = (
        f"Sweep: {len(sweep.cells)} cells ({flow_tag}{grid}), "
        f"jobs={sweep.jobs}, wall {sweep.wall_s:.1f}s"
    )
    stage_total = sweep.stage_cache_hits + sweep.stage_cache_misses
    hit_rate = (
        f" ({100.0 * sweep.stage_cache_hits / stage_total:.0f}% hit rate)"
        if stage_total else ""
    )
    # Collect stats as segments and lines and join once — repeated
    # ``str +=`` re-copies the accumulated summary per append, which
    # goes quadratic on wide sweeps. Bytes are pinned by
    # tests/flow/test_report.py.
    segments = [
        f"elaboration cache: {sweep.schedule_cache_hits} hits / "
        f"{sweep.schedule_cache_misses} misses",
        f"pipeline stages: {sweep.stage_cache_hits} cached / "
        f"{sweep.stage_cache_misses} computed{hit_rate}",
        f"SA table: {sweep.sa_precalc_entries} precalculated, "
        f"{sweep.sa_new_entries} new entries",
    ]
    if sweep.sim_batches:
        segments.append(
            f"batched simulation: {sweep.sim_batched_cells} cells in "
            f"{sweep.sim_batches} kernel passes "
            f"({sweep.sim_batch_wall_s:.1f}s)"
        )
    lines = [
        format_table(headers, rows, title=title),
        "; ".join(segments),
    ]
    totals = sweep.stage_time_totals()
    if totals:
        rank = {stage: index for index, stage in enumerate(_STAGE_ORDER)}
        ordered = sorted(
            totals.items(),
            key=lambda item: (rank.get(item[0], len(rank)), item[0]),
        )
        lines.append("stage wall: " + ", ".join(
            f"{stage} {seconds:.2f}s" for stage, seconds in ordered
        ))
    return "\n".join(lines)
