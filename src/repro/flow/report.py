"""Table formatting for the reproduction benches.

Small, dependency-free helpers that render the paper-style rows the
benches print (Tables 1-4, Figure 3) and compute the percentage
changes the paper reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def percent_change(before: float, after: float) -> float:
    """Signed percentage change, as in Table 3's "Change" columns."""
    if before == 0:
        return 0.0
    return (after - before) / before * 100.0


def format_change(value: float) -> str:
    """Render a percentage with the paper's sign convention."""
    return f"{value:+.2f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Plain-text aligned table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render_row(values: Sequence[str]) -> str:
        return "  ".join(
            value.rjust(widths[index]) if index else value.ljust(widths[0])
            for index, value in enumerate(values)
        )

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(render_row(row))
    return "\n".join(lines)
