"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``bench <name>`` — run one benchmark end to end (both binders) and
  print the Table 3-style row.
* ``synth <name>`` — integrated HLS on a benchmark; prints allocation
  and mux statistics, optionally writes VHDL.
* ``suite`` — the full LOPASS-vs-HLPower comparison over all seven
  benchmarks (what `benchmarks/test_table3_power_area.py` runs).
* ``profiles`` — print Table 1.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import List, Optional

from repro import (
    BENCHMARK_NAMES,
    FlowConfig,
    HLSConfig,
    benchmark_spec,
    compare_binders,
    list_schedule,
    load_benchmark,
    synthesize,
)
from repro.binding import SATable
from repro.flow import format_table, percent_change


def _add_flow_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=8,
                        help="datapath bit-width (default 8)")
    parser.add_argument("--vectors", type=int, default=256,
                        help="random input vectors (default 256)")
    parser.add_argument("--alpha", type=float, default=0.5,
                        help="Equation (4) alpha (default 0.5)")
    parser.add_argument("--sa-table", default="data/sa_table.txt",
                        help="persistent SA table path")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HLPower (DAC'09) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="run one benchmark comparison")
    bench.add_argument("name", choices=BENCHMARK_NAMES)
    _add_flow_args(bench)

    suite = sub.add_parser("suite", help="run the full Table 3 comparison")
    _add_flow_args(suite)

    synth = sub.add_parser("synth", help="integrated HLS on a benchmark")
    synth.add_argument("name", choices=BENCHMARK_NAMES)
    synth.add_argument("--scheduler", choices=("list", "force"),
                       default="list")
    synth.add_argument("--binder", choices=("hlpower", "lopass"),
                       default="hlpower")
    synth.add_argument("--width", type=int, default=8)
    synth.add_argument("--vhdl", metavar="FILE",
                       help="write the generated VHDL here")

    sub.add_parser("profiles", help="print Table 1 profiles")
    return parser


def _bench_rows(names, args, table: SATable) -> List[List[str]]:
    rows = []
    deltas = []
    for name in names:
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        config = FlowConfig(
            width=args.width, n_vectors=args.vectors,
            alpha=args.alpha, sa_table=table,
        )
        results = compare_binders(schedule, spec.constraints, config)
        lo, hl = results["lopass"], results["hlpower"]
        delta = percent_change(
            lo.power.dynamic_power_mw, hl.power.dynamic_power_mw
        )
        deltas.append(delta)
        rows.append(
            [
                name,
                f"{lo.power.dynamic_power_mw:.2f}",
                f"{hl.power.dynamic_power_mw:.2f}",
                f"{delta:+.1f}%",
                f"{lo.area_luts}/{hl.area_luts}",
                f"{lo.muxes.largest_mux}/{hl.muxes.largest_mux}",
            ]
        )
    if len(names) > 1:
        rows.append(
            ["average", "", "", f"{statistics.mean(deltas):+.1f}%", "", ""]
        )
    return rows


def cmd_bench(args) -> int:
    table = SATable(path=args.sa_table)
    rows = _bench_rows([args.name], args, table)
    table.save_if_dirty()
    print(format_table(
        ["bench", "LOPASS mW", "HLPower mW", "dPower", "LUTs", "lrg mux"],
        rows,
    ))
    return 0


def cmd_suite(args) -> int:
    table = SATable(path=args.sa_table)
    rows = _bench_rows(list(BENCHMARK_NAMES), args, table)
    table.save_if_dirty()
    print(format_table(
        ["bench", "LOPASS mW", "HLPower mW", "dPower", "LUTs", "lrg mux"],
        rows,
        title="LOPASS vs HLPower (paper average: -19.3% power)",
    ))
    return 0


def cmd_synth(args) -> int:
    spec = benchmark_spec(args.name)
    config = HLSConfig(
        scheduler=args.scheduler, binder=args.binder, width=args.width
    )
    constraints = spec.constraints if args.scheduler == "list" else None
    result = synthesize(load_benchmark(args.name), constraints, config,
                        entity=args.name)
    print(f"schedule: {result.schedule.length} steps")
    print(f"allocation: {result.allocation}")
    print(f"registers: {result.solution.registers.n_registers}")
    print(
        f"muxes: largest {result.muxes.largest_mux}, length "
        f"{result.muxes.mux_length}, muxDiff mean "
        f"{result.muxes.mux_diff_mean:.2f}"
    )
    print(f"port-assignment flips: {result.port_flips}")
    if args.vhdl:
        with open(args.vhdl, "w") as handle:
            handle.write(result.vhdl)
        print(f"VHDL written to {args.vhdl}")
    return 0


def cmd_profiles(args) -> int:
    rows = []
    for name in BENCHMARK_NAMES:
        spec = benchmark_spec(name)
        rows.append(
            [
                name, spec.profile.n_inputs, spec.profile.n_outputs,
                spec.profile.n_adds, spec.profile.n_mults,
                spec.add_units, spec.mult_units, spec.paper_cycles,
            ]
        )
    print(format_table(
        ["bench", "PIs", "POs", "adds", "mults", "add FUs", "mult FUs",
         "cycles"],
        rows,
        title="Table 1/2 benchmark data",
    ))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "bench": cmd_bench,
        "suite": cmd_suite,
        "synth": cmd_synth,
        "profiles": cmd_profiles,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
