"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``bench <name>`` — run one benchmark end to end (both binders) and
  print the Table 3-style row.
* ``synth <name>`` — integrated HLS on a benchmark; prints allocation
  and mux statistics, optionally writes VHDL.
* ``suite`` — the full LOPASS-vs-HLPower comparison over all seven
  benchmarks (what `benchmarks/test_table3_power_area.py` runs).
* ``sweep`` — run a declarative ``benchmark x binder x alpha x width x
  idle x jitter x kernel x seed`` grid across worker processes and
  dump a JSON result store (see docs/sweeps.md).
* ``estimate`` — the partial flow: Equation-(3) switching-activity and
  area estimates after tech-map, with no vectors and no simulation
  (see docs/architecture.md).
* ``corpus`` — enumerate/run the synthetic benchmark corpus
  (parameterized CDFG families; see docs/binding.md) through the sweep
  engine, with exact-binder quality gaps on the feasible subset.
* ``serve`` — run the long-lived power-estimation daemon: an asyncio
  HTTP/JSON server over a resident warm executor (see docs/serving.md).
* ``profiles`` — print Table 1.

``bench``, ``suite``, ``sweep``, ``estimate`` and ``serve`` are all
thin wrappers over the same sweep engine (:mod:`repro.flow.batch` /
:mod:`repro.flow.executor`), so they share one execution path, one
elaboration memo, one pipeline artifact cache per worker, and one
SA-table lifecycle.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import Dict, List, Optional, Sequence

from repro import (
    BENCHMARK_NAMES,
    HLSConfig,
    benchmark_spec,
    load_benchmark,
    run_sweep,
    synthesize,
)
from repro.binding import (
    BIND_ENGINES,
    BINDER_NAMES,
    DEFAULT_MCTS_BUDGET,
    DEFAULT_MCTS_SEED,
    SATable,
)
from repro.cdfg.corpus import (
    CORPUS_FAMILIES,
    corpus_instances,
    oracle_feasible,
)
from repro.errors import ReproError
from repro.fpga import ELAB_ENGINES
from repro.techmap import MAP_EFFORTS
from repro.flow import (
    BinderConfig,
    SweepSpec,
    format_sweep_summary,
    format_table,
    percent_change,
)


#: Simulation kernel vocabulary (mirrors repro.fpga.simulate).
SIM_KERNELS = ("event", "reference")


def _axis_type(choices: Sequence[str], flag: str):
    """argparse ``type`` for a comma-separated axis over fixed choices.

    Validation happens at parse time (like ``choices=`` on scalar
    flags), and string defaults pass through the same parser, so a
    subcommand cannot silently accept values its siblings reject.
    """

    def parse(raw: str) -> List[str]:
        values = [token.strip() for token in raw.split(",") if token.strip()]
        if not values:
            raise argparse.ArgumentTypeError(
                f"{flag} needs at least one value"
            )
        for value in values:
            if value not in choices:
                raise argparse.ArgumentTypeError(
                    f"invalid choice {value!r} (choose from "
                    f"{', '.join(choices)})"
                )
        return values

    return parse


# Shared flag declarations. Every subcommand that takes one of these
# flags goes through the same helper, so help text, defaults and
# choices cannot drift apart (tests/test_cli_args.py pins this).

def _add_sa_table_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sa-table", default="data/sa_table.txt",
                        help="persistent SA table path")


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = in-process)")


def _add_map_effort_arg(
    parser: argparse.ArgumentParser, multi: bool = False
) -> None:
    help_text = ("technology-mapper effort (default fast; 'reference' "
                 "is the seed mapper, byte-identical and slower)")
    if multi:
        parser.add_argument(
            "--map-effort", default="fast",
            type=_axis_type(MAP_EFFORTS, "--map-effort"),
            metavar="{" + ",".join(MAP_EFFORTS) + "}[,...]",
            help="comma-separated axis: " + help_text)
    else:
        parser.add_argument("--map-effort", default="fast",
                            choices=MAP_EFFORTS, help=help_text)


def _add_bind_engine_arg(
    parser: argparse.ArgumentParser, multi: bool = False
) -> None:
    help_text = ("binding engine (default fast; 'reference' is the "
                 "seed binders, byte-identical and slower)")
    if multi:
        parser.add_argument(
            "--bind-engine", default="fast",
            type=_axis_type(BIND_ENGINES, "--bind-engine"),
            metavar="{" + ",".join(BIND_ENGINES) + "}[,...]",
            help="comma-separated axis: " + help_text)
    else:
        parser.add_argument("--bind-engine", default="fast",
                            choices=BIND_ENGINES, help=help_text)


def _add_elab_engine_arg(
    parser: argparse.ArgumentParser, multi: bool = False
) -> None:
    help_text = ("elaboration engine (default fast; 'reference' is the "
                 "seed elaborator, byte-identical and slower)")
    if multi:
        parser.add_argument(
            "--elab-engine", default="fast",
            type=_axis_type(ELAB_ENGINES, "--elab-engine"),
            metavar="{" + ",".join(ELAB_ENGINES) + "}[,...]",
            help="comma-separated axis: " + help_text)
    else:
        parser.add_argument("--elab-engine", default="fast",
                            choices=ELAB_ENGINES, help=help_text)


def _add_sim_kernel_arg(
    parser: argparse.ArgumentParser, multi: bool = False
) -> None:
    help_text = ("simulation kernel (default event, the compiled "
                 "event-driven kernel; 'reference' is the waveform "
                 "loop, byte-identical and slower)")
    if multi:
        parser.add_argument(
            "--sim-kernel", default="event",
            type=_axis_type(SIM_KERNELS, "--sim-kernel"),
            metavar="{" + ",".join(SIM_KERNELS) + "}[,...]",
            help="comma-separated axis: " + help_text)
    else:
        parser.add_argument("--sim-kernel", default="event",
                            choices=SIM_KERNELS, help=help_text)


def _add_mcts_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mcts-budget", type=int, default=DEFAULT_MCTS_BUDGET, metavar="N",
        help="mcts binder search iterations per resource class "
             f"(default {DEFAULT_MCTS_BUDGET}; 0 = best heuristic)")
    parser.add_argument(
        "--mcts-seed", type=int, default=DEFAULT_MCTS_SEED, metavar="N",
        help="mcts binder playout seed "
             f"(default {DEFAULT_MCTS_SEED}; deterministic per seed)")


def _add_flow_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=8,
                        help="datapath bit-width (default 8)")
    parser.add_argument("--vectors", type=int, default=256,
                        help="random input vectors (default 256)")
    parser.add_argument("--alpha", type=float, default=0.5,
                        help="Equation (4) alpha (default 0.5)")
    _add_sa_table_arg(parser)
    _add_jobs_arg(parser)
    _add_map_effort_arg(parser)
    _add_bind_engine_arg(parser)
    _add_elab_engine_arg(parser)
    _add_mcts_args(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HLPower (DAC'09) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="run one benchmark comparison")
    bench.add_argument("name", choices=BENCHMARK_NAMES)
    _add_flow_args(bench)

    suite = sub.add_parser("suite", help="run the full Table 3 comparison")
    _add_flow_args(suite)

    sweep = sub.add_parser(
        "sweep",
        help="run a benchmark x binder x alpha x width x seed grid",
        description=(
            "Expand a declarative grid into jobs, run them across "
            "--jobs worker processes (1 = in-process), and print/save "
            "per-cell metrics with seed-averaged aggregates. Schedules "
            "and register/port bindings are elaborated once per "
            "benchmark and shared; the SA table is precalculated and "
            "shipped to every worker, then saved once."
        ),
    )
    sweep.add_argument(
        "--benchmarks", default=None,
        help="comma-separated names, a count N (= first N benchmarks), "
             "or 'all' (the default, unless --design is given)")
    sweep.add_argument(
        "--design", metavar="FILE", action="append", default=[],
        help="external design to estimate alongside the grid: a "
             "repro-module-v1 JSON module or flat BLIF file (repeatable; "
             "requires --flow estimate; with no explicit --benchmarks, "
             "only the designs run)")
    sweep.add_argument(
        "--binders", default="lopass,hlpower",
        help=f"comma-separated binder names from {BINDER_NAMES} "
             f"(default lopass,hlpower)")
    sweep.add_argument(
        "--alphas", default="0.5",
        help="comma-separated Equation (4) alpha values (default 0.5)")
    sweep.add_argument(
        "--widths", default="8",
        help="comma-separated datapath bit-widths (default 8)")
    sweep.add_argument(
        "--seeds", default="1",
        help="a count N (= vector seeds 7..7+N-1) or a comma-separated "
             "list of explicit seeds (default 1)")
    sweep.add_argument("--vectors", type=int, default=256,
                       help="random input vectors per cell (default 256)")
    sweep.add_argument("--scheduler", choices=("list", "force"),
                       default="list")
    _add_jobs_arg(sweep)
    sweep.add_argument("--out", metavar="FILE",
                       help="write the JSON result store here")
    _add_sa_table_arg(sweep)
    sweep.add_argument(
        "--precalc-mux", type=int, default=0, metavar="N",
        help="bulk-precalculate SA entries up to NxN muxes before "
             "dispatch (default 0 = lazy)")
    sweep.add_argument("--baseline", default="lopass",
                       help="binder label (or name) percent changes compare "
                            "against; 'none' disables the column "
                            "(default lopass)")
    _add_sim_kernel_arg(sweep, multi=True)
    _add_map_effort_arg(sweep, multi=True)
    _add_bind_engine_arg(sweep, multi=True)
    _add_elab_engine_arg(sweep, multi=True)
    _add_mcts_args(sweep)
    sweep.add_argument(
        "--sim-batch", type=int, default=32, metavar="N",
        help="max configurations per batched simulation kernel pass: "
             "event-kernel cells sharing the mapped design run "
             "together (default 32; 1 disables batching — metrics are "
             "byte-identical either way)")
    sweep.add_argument("--idle-modes", default="zero",
                       help="comma-separated idle-step control policies to "
                            "sweep: 'zero' and/or 'hold' (default zero)")
    sweep.add_argument("--jitters", default="0",
                       help="comma-separated per-gate delay-jitter values "
                            "to sweep (default 0 = pure unit delay)")
    sweep.add_argument("--flow", choices=("full", "estimate"),
                       default="full",
                       help="'full' runs the measurement chain through "
                            "simulation; 'estimate' stops every cell after "
                            "tech-map (Equation-(3) numbers, no simulator)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the per-worker pipeline artifact "
                            "cache (metrics are identical either way; "
                            "useful for benchmarking the speedup)")
    sweep.add_argument("--cache-dir", metavar="DIR",
                       help="persistent on-disk artifact-cache layer "
                            "shared across workers and sweeps")

    estimate = sub.add_parser(
        "estimate",
        help="estimate-only partial flow (no simulation)",
        description=(
            "Run the pipeline prefix bind -> datapath -> elaborate -> "
            "tech-map -> timing for every benchmark and binder and print "
            "the Equation-(3) switching-activity estimate, glitch "
            "fraction, and area — no vectors are drawn and the simulator "
            "never runs."
        ),
    )
    estimate.add_argument(
        "--benchmarks", default=None,
        help="comma-separated names, a count N (= first N benchmarks), "
             "or 'all' (the default, unless --design is given)")
    estimate.add_argument(
        "--design", metavar="FILE", action="append", default=[],
        help="external design to estimate: a repro-module-v1 JSON "
             "module or flat BLIF file (repeatable; with no explicit "
             "--benchmarks, only the designs run)")
    estimate.add_argument(
        "--binders", default="lopass,hlpower",
        help=f"comma-separated binder names from {BINDER_NAMES} "
             f"(default lopass,hlpower)")
    estimate.add_argument(
        "--alphas", default="0.5",
        help="comma-separated Equation (4) alpha values (default 0.5)")
    estimate.add_argument("--width", type=int, default=8,
                          help="datapath bit-width (default 8)")
    _add_jobs_arg(estimate)
    estimate.add_argument("--baseline", default="lopass",
                          help="binder label (or name) the dSA column "
                               "compares against; 'none' disables the "
                               "column (default lopass)")
    _add_map_effort_arg(estimate)
    _add_bind_engine_arg(estimate)
    _add_mcts_args(estimate)
    _add_elab_engine_arg(estimate)
    _add_sa_table_arg(estimate)
    estimate.add_argument("--out", metavar="FILE",
                          help="write the JSON result store here")

    corpus = sub.add_parser(
        "corpus",
        help="enumerate/run the synthetic benchmark corpus",
        description=(
            "Run corpus instances — parameterized CDFG families "
            "sweeping operation count, add/mult mix and schedule "
            "density — through the sweep engine, and report heuristic "
            "quality gaps against the exact (branch-and-bound) binder "
            "on every instance small enough for it."
        ),
    )
    corpus.add_argument("--list", action="store_true", dest="list_only",
                        help="print the instance table and exit")
    corpus.add_argument("--families", default="all",
                        help="comma-separated corpus families "
                             f"(default all = {','.join(CORPUS_FAMILIES)})")
    corpus.add_argument("--limit", type=int, default=0, metavar="N",
                        help="run at most N instances, drawn round-robin "
                             "across the selected families (default 0 = "
                             "all)")
    corpus.add_argument("--binders", default="lopass,hlpower",
                        help=f"comma-separated binder names from "
                             f"{BINDER_NAMES} (default lopass,hlpower)")
    corpus.add_argument("--alphas", default="0.5",
                        help="comma-separated Equation (4) alpha values "
                             "(default 0.5)")
    corpus.add_argument("--width", type=int, default=8,
                        help="datapath bit-width (default 8)")
    _add_jobs_arg(corpus)
    corpus.add_argument("--flow", choices=("estimate", "full"),
                        default="estimate",
                        help="'estimate' (default) stops every cell after "
                             "tech-map; 'full' simulates every instance")
    _add_map_effort_arg(corpus)
    _add_bind_engine_arg(corpus)
    _add_elab_engine_arg(corpus)
    _add_mcts_args(corpus)
    corpus.add_argument("--profile", action="store_true",
                        help="print per-stage wall clock and peak memory "
                             "for every instance instead of the sweep "
                             "summary (runs in-process)")
    corpus.add_argument("--no-oracle", action="store_true",
                        help="skip the exact-binder quality-gap report")
    _add_sa_table_arg(corpus)
    corpus.add_argument("--out", metavar="FILE",
                        help="write the JSON result store here")

    serve = sub.add_parser(
        "serve",
        help="run the long-lived power-estimation daemon",
        description=(
            "Start an asyncio HTTP/JSON server over a resident warm "
            "executor: POST /estimate, /flow and /sweep requests are "
            "queued by priority, deduplicated while in flight, and "
            "executed against memos that survive across requests; "
            "GET /metrics reports queue, executor and artifact-cache "
            "counters. SIGTERM shuts down cleanly (see docs/serving.md)."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8791,
                       help="bind port (default 8791; 0 = ephemeral, "
                            "printed at startup)")
    _add_jobs_arg(serve)
    _add_sa_table_arg(serve)
    serve.add_argument("--cache-entries", type=int, default=64, metavar="N",
                       help="in-memory artifact-cache capacity per worker "
                            "(default 64)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persistent on-disk artifact-cache layer "
                            "shared across workers and sweeps")

    synth = sub.add_parser("synth", help="integrated HLS on a benchmark")
    synth.add_argument("name", choices=BENCHMARK_NAMES)
    synth.add_argument("--scheduler", choices=("list", "force"),
                       default="list")
    synth.add_argument("--binder", choices=BINDER_NAMES,
                       default="hlpower")
    synth.add_argument("--width", type=int, default=8)
    _add_mcts_args(synth)
    synth.add_argument("--vhdl", metavar="FILE",
                       help="write the generated VHDL here")

    sub.add_parser("profiles", help="print Table 1 profiles")
    return parser


def _select_benchmarks(raw: Optional[str],
                       designs: Optional[Dict[str, str]]) -> List[str]:
    """Resolve ``--benchmarks``: default 'all', or none with --design."""
    if raw is None:
        return [] if designs else list(BENCHMARK_NAMES)
    return _parse_benchmarks(raw)


def _load_designs(paths: Sequence[str]) -> Optional[Dict[str, str]]:
    """Read ``--design`` files; the cell name is the file stem."""
    import os

    if not paths:
        return None
    designs: Dict[str, str] = {}
    for path in paths:
        name = os.path.splitext(os.path.basename(path))[0]
        if name in designs:
            raise SystemExit(
                f"error: duplicate design name {name!r} (from {path})"
            )
        try:
            with open(path, "r", encoding="utf-8") as stream:
                designs[name] = stream.read()
        except OSError as exc:
            raise SystemExit(f"error: cannot read --design {path}: {exc}")
    return designs


def _parse_benchmarks(raw: str) -> List[str]:
    raw = raw.strip()
    if raw == "all":
        return list(BENCHMARK_NAMES)
    try:
        count = int(raw)
    except ValueError:
        names = [name.strip() for name in raw.split(",") if name.strip()]
        for name in names:
            try:
                benchmark_spec(name)
            except ReproError as exc:
                raise SystemExit(f"error: {exc}")
        return names
    if not 1 <= count <= len(BENCHMARK_NAMES):
        raise SystemExit(
            f"--benchmarks count must be in 1..{len(BENCHMARK_NAMES)}"
        )
    return list(BENCHMARK_NAMES[:count])


def _parse_seeds(raw: str) -> List[int]:
    raw = raw.strip()
    if "," in raw:
        return _comma_list(raw, int, "--seeds")
    try:
        count = int(raw)
    except ValueError:
        raise SystemExit(f"error: --seeds expects integers, got {raw!r}")
    if count < 1:
        raise SystemExit("error: --seeds count must be >= 1")
    return list(range(7, 7 + count))


def _comma_list(raw: str, cast, flag: str) -> List:
    try:
        return [cast(token) for token in raw.split(",") if token.strip()]
    except ValueError:
        raise SystemExit(
            f"error: {flag} expects comma-separated "
            f"{cast.__name__} values, got {raw!r}"
        )


def _bench_rows(names: Sequence[str], args, table: SATable) -> List[List[str]]:
    spec = SweepSpec(
        benchmarks=list(names),
        configs=[
            BinderConfig("lopass", "lopass", args.alpha),
            BinderConfig("hlpower", "hlpower", args.alpha),
        ],
        widths=(args.width,),
        n_vectors=args.vectors,
        map_effort=args.map_effort,
        bind_engine=args.bind_engine,
        elab_engine=args.elab_engine,
        mcts_budget=args.mcts_budget,
        mcts_seed=args.mcts_seed,
    )
    sweep = run_sweep(spec, jobs=args.jobs, sa_table=table)
    rows = []
    deltas = []
    for name in names:
        lo = sweep.cell(name, "lopass").metrics
        hl = sweep.cell(name, "hlpower").metrics
        delta = percent_change(
            lo["dynamic_power_mw"], hl["dynamic_power_mw"]
        )
        deltas.append(delta)
        rows.append(
            [
                name,
                f"{lo['dynamic_power_mw']:.2f}",
                f"{hl['dynamic_power_mw']:.2f}",
                f"{delta:+.1f}%",
                f"{lo['area_luts']}/{hl['area_luts']}",
                f"{lo['largest_mux']}/{hl['largest_mux']}",
            ]
        )
    if len(names) > 1:
        rows.append(
            ["average", "", "", f"{statistics.mean(deltas):+.1f}%", "", ""]
        )
    return rows


def cmd_bench(args) -> int:
    table = SATable(path=args.sa_table)
    try:
        rows = _bench_rows([args.name], args, table)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    table.save_if_dirty()
    print(format_table(
        ["bench", "LOPASS mW", "HLPower mW", "dPower", "LUTs", "lrg mux"],
        rows,
    ))
    return 0


def cmd_suite(args) -> int:
    table = SATable(path=args.sa_table)
    try:
        rows = _bench_rows(list(BENCHMARK_NAMES), args, table)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    table.save_if_dirty()
    print(format_table(
        ["bench", "LOPASS mW", "HLPower mW", "dPower", "LUTs", "lrg mux"],
        rows,
        title="LOPASS vs HLPower (paper average: -19.3% power)",
    ))
    return 0


def cmd_sweep(args) -> int:
    # The axis flags carry parse-time validated lists (see _axis_type).
    kernels = args.sim_kernel
    efforts = args.map_effort
    engines = args.bind_engine
    elabs = args.elab_engine
    designs = _load_designs(args.design)
    if designs and args.flow != "estimate":
        raise SystemExit(
            "error: --design cells run the estimate flow only; "
            "pass --flow estimate"
        )
    try:
        # SweepSpec validates binder names eagerly at construction.
        spec = SweepSpec(
            benchmarks=_select_benchmarks(args.benchmarks, designs),
            binders=_comma_list(args.binders, str, "--binders"),
            alphas=_comma_list(args.alphas, float, "--alphas"),
            widths=_comma_list(args.widths, int, "--widths"),
            vector_seeds=_parse_seeds(args.seeds),
            n_vectors=args.vectors,
            scheduler=args.scheduler,
            baseline=args.baseline,
            sim_kernel=kernels[0],
            sim_kernels=kernels if len(kernels) > 1 else None,
            map_effort=efforts[0],
            map_efforts=efforts if len(efforts) > 1 else None,
            bind_engine=engines[0],
            bind_engines=engines if len(engines) > 1 else None,
            elab_engine=elabs[0],
            elab_engines=elabs if len(elabs) > 1 else None,
            idle_modes=_comma_list(args.idle_modes, str, "--idle-modes"),
            jitters=_comma_list(args.jitters, int, "--jitters"),
            flow=args.flow,
            sim_batch=args.sim_batch,
            designs=designs,
            mcts_budget=args.mcts_budget,
            mcts_seed=args.mcts_seed,
        )
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    table = SATable(path=args.sa_table)
    try:
        sweep = run_sweep(
            spec,
            jobs=args.jobs,
            sa_table=table,
            precalc_max_mux=args.precalc_mux,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
        )
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    table.save_if_dirty()
    print(format_sweep_summary(sweep))
    if args.out:
        sweep.save(args.out)
        print(f"result store written to {args.out}")
    return 0


def cmd_estimate(args) -> int:
    designs = _load_designs(args.design)
    try:
        # SweepSpec validates binder names eagerly at construction.
        spec = SweepSpec(
            benchmarks=_select_benchmarks(args.benchmarks, designs),
            binders=_comma_list(args.binders, str, "--binders"),
            alphas=_comma_list(args.alphas, float, "--alphas"),
            widths=(args.width,),
            baseline=args.baseline,
            map_effort=args.map_effort,
            bind_engine=args.bind_engine,
            elab_engine=args.elab_engine,
            flow="estimate",
            designs=designs,
            mcts_budget=args.mcts_budget,
            mcts_seed=args.mcts_seed,
        )
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    table = SATable(path=args.sa_table)
    try:
        sweep = run_sweep(spec, jobs=args.jobs, sa_table=table)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    table.save_if_dirty()
    print(format_sweep_summary(sweep))
    if args.out:
        sweep.save(args.out)
        print(f"result store written to {args.out}")
    return 0


def _corpus_selection(args):
    if args.families.strip() == "all":
        families = None
    else:
        families = _comma_list(args.families, str, "--families")
    limit = args.limit if args.limit > 0 else None
    try:
        return corpus_instances(families, limit)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")


def _oracle_rows(sweep, instances, configs) -> List[List[str]]:
    """Quality-gap table: heuristic vs exact FU mux length per instance.

    The comparison metric is the exact binder's own objective — total
    FU multiplexer inputs (``fu_mux_length``); register-side muxes are
    a function of the whole binding and are not what the oracle
    optimizes. Only instances the exact binder can solve appear; the
    closing row carries the per-config mean gap over that feasible
    subset.
    """
    from repro.binding import bind_optimal
    from repro.cdfg import load_benchmark
    from repro.flow.run import prepare_flow_inputs
    from repro.rtl.metrics import mux_report
    from repro.scheduling import list_schedule

    rows: List[List[str]] = []
    gaps: Dict[str, List[float]] = {config: [] for config in configs}
    for instance in instances:
        if not oracle_feasible(instance):
            continue
        schedule = list_schedule(
            load_benchmark(instance.name), instance.constraints
        )
        registers, ports = prepare_flow_inputs(schedule)
        optimal = bind_optimal(
            schedule, instance.constraints, registers, ports
        )
        best = mux_report(optimal).fu_mux_length
        row = [instance.name, str(best)]
        for config in configs:
            length = sweep.cell(
                instance.name, config
            ).metrics["fu_mux_length"]
            gap = percent_change(best, length) if best else 0.0
            gaps[config].append(gap)
            row.append(f"{length:g} ({gap:+.1f}%)")
        rows.append(row)
    if rows:
        mean_row = ["mean gap", ""]
        for config in configs:
            mean_row.append(f"{statistics.mean(gaps[config]):+.1f}%")
        rows.append(mean_row)
    return rows


def _corpus_profile(args, instances) -> int:
    """``corpus --profile``: per-instance stage wall clock + peak memory.

    Runs each (instance, binder, alpha) flow in-process so the
    per-stage timings the pipeline already records
    (:attr:`FlowResult.stage_timings`) can be paired with a
    ``tracemalloc`` peak bracketed around that one flow — no extra
    instrumentation inside the pipeline.
    """
    import tracemalloc

    from repro.flow.report import _STAGE_ORDER
    from repro.flow.run import FlowConfig, execute_flow, prepare_flow_inputs
    from repro.scheduling import list_schedule

    binders = _comma_list(args.binders, str, "--binders")
    alphas = _comma_list(args.alphas, float, "--alphas")
    table = SATable(path=args.sa_table)
    records = []
    tracemalloc.start()
    try:
        for instance in instances:
            schedule = list_schedule(
                load_benchmark(instance.name), instance.constraints
            )
            registers, ports = prepare_flow_inputs(schedule)
            for binder in binders:
                for alpha in alphas:
                    config = FlowConfig(
                        width=args.width,
                        alpha=alpha,
                        sa_table=table,
                        map_effort=args.map_effort,
                        bind_engine=args.bind_engine,
                        elab_engine=args.elab_engine,
                        flow=args.flow,
                        mcts_budget=args.mcts_budget,
                        mcts_seed=args.mcts_seed,
                    )
                    tracemalloc.reset_peak()
                    result = execute_flow(
                        schedule, instance.constraints, binder, config,
                        registers, ports,
                    )
                    _, peak = tracemalloc.get_traced_memory()
                    label = (
                        binder if len(alphas) == 1
                        else f"{binder}_a{alpha:g}"
                    )
                    records.append(
                        (instance.name, label,
                         dict(result.stage_timings), peak)
                    )
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        tracemalloc.stop()
    table.save_if_dirty()
    rank = {stage: index for index, stage in enumerate(_STAGE_ORDER)}
    stages = sorted(
        {stage for _, _, timings, _ in records for stage in timings},
        key=lambda stage: (rank.get(stage, len(rank)), stage),
    )
    rows = []
    for name, label, timings, peak in records:
        rows.append(
            [name, label]
            + [f"{timings.get(stage, 0.0):.3f}" for stage in stages]
            + [f"{sum(timings.values()):.3f}", f"{peak / 2**20:.1f}"]
        )
    print(format_table(
        ["instance", "config"] + [f"{stage} s" for stage in stages]
        + ["total s", "peak MiB"],
        rows,
        title=(
            f"corpus profile: {len(records)} flows "
            f"({args.flow}, {args.bind_engine} bind, "
            f"{args.elab_engine} elab, {args.map_effort} map)"
        ),
    ))
    return 0


def cmd_corpus(args) -> int:
    instances = _corpus_selection(args)
    if not instances:
        raise SystemExit("error: no corpus instances selected")
    if args.list_only:
        rows = []
        for inst in instances:
            profile = inst.profile
            rows.append([
                inst.name, inst.family, profile.n_operations,
                f"{profile.n_adds}/{profile.n_mults}", profile.n_layers,
                f"{profile.add_width}/{profile.mult_width}",
                "yes" if oracle_feasible(inst) else "no",
            ])
        print(format_table(
            ["instance", "family", "ops", "add/mult", "layers",
             "FUs", "oracle"],
            rows,
            title=f"corpus: {len(instances)} instances",
        ))
        return 0

    if args.profile:
        return _corpus_profile(args, instances)

    binders = _comma_list(args.binders, str, "--binders")
    try:
        # SweepSpec validates binder names eagerly at construction.
        spec = SweepSpec(
            benchmarks=[inst.name for inst in instances],
            binders=binders,
            alphas=_comma_list(args.alphas, float, "--alphas"),
            widths=(args.width,),
            baseline="lopass" if "lopass" in binders else "none",
            map_effort=args.map_effort,
            bind_engine=args.bind_engine,
            elab_engine=args.elab_engine,
            flow=args.flow,
            mcts_budget=args.mcts_budget,
            mcts_seed=args.mcts_seed,
        )
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    table = SATable(path=args.sa_table)
    try:
        sweep = run_sweep(spec, jobs=args.jobs, sa_table=table)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}")
    table.save_if_dirty()
    print(format_sweep_summary(sweep))
    if not args.no_oracle:
        configs = [config.label for config in spec.binder_configs()]
        try:
            rows = _oracle_rows(sweep, instances, configs)
        except ReproError as exc:
            raise SystemExit(f"error: {exc}")
        if rows:
            print()
            print(format_table(
                ["instance", "optimal mux"]
                + [f"{config} mux (gap)" for config in configs],
                rows,
                title=(
                    "oracle quality gaps (exact branch-and-bound "
                    "binder, feasible subset)"
                ),
            ))
        else:
            print("\nno oracle-feasible instances in the selection")
    if args.out:
        sweep.save(args.out)
        print(f"result store written to {args.out}")
    return 0


def cmd_synth(args) -> int:
    spec = benchmark_spec(args.name)
    config = HLSConfig(
        scheduler=args.scheduler, binder=args.binder, width=args.width,
        mcts_budget=args.mcts_budget, mcts_seed=args.mcts_seed,
    )
    constraints = spec.constraints if args.scheduler == "list" else None
    result = synthesize(load_benchmark(args.name), constraints, config,
                        entity=args.name)
    print(f"schedule: {result.schedule.length} steps")
    print(f"allocation: {result.allocation}")
    print(f"registers: {result.solution.registers.n_registers}")
    print(
        f"muxes: largest {result.muxes.largest_mux}, length "
        f"{result.muxes.mux_length}, muxDiff mean "
        f"{result.muxes.mux_diff_mean:.2f}"
    )
    print(f"port-assignment flips: {result.port_flips}")
    if args.vhdl:
        with open(args.vhdl, "w") as handle:
            handle.write(result.vhdl)
        print(f"VHDL written to {args.vhdl}")
    return 0


def cmd_profiles(args) -> int:
    rows = []
    for name in BENCHMARK_NAMES:
        spec = benchmark_spec(name)
        rows.append(
            [
                name, spec.profile.n_inputs, spec.profile.n_outputs,
                spec.profile.n_adds, spec.profile.n_mults,
                spec.add_units, spec.mult_units, spec.paper_cycles,
            ]
        )
    print(format_table(
        ["bench", "PIs", "POs", "adds", "mults", "add FUs", "mult FUs",
         "cycles"],
        rows,
        title="Table 1/2 benchmark data",
    ))
    return 0


def cmd_serve(args) -> int:
    from repro.serve.server import main as serve_main
    return serve_main(args)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "bench": cmd_bench,
        "suite": cmd_suite,
        "sweep": cmd_sweep,
        "estimate": cmd_estimate,
        "corpus": cmd_corpus,
        "synth": cmd_synth,
        "serve": cmd_serve,
        "profiles": cmd_profiles,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
