"""Variable lifetime analysis.

Register binding shares one register among variables whose lifetimes do
not overlap. With the single-cycle convention of
:mod:`repro.cdfg.schedule`, a variable produced by an operation ending
at step ``t`` is written at the end of ``t`` (birth ``t``) and must be
held until the start of the last step that reads it (death). The
half-open interval ``(birth, death]`` is occupied; two variables
conflict iff their intervals intersect.

Primary inputs are born at step 0 (available before the first step);
primary outputs die at ``length`` (they must survive to the end of the
iteration), matching the register counts the paper reports in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cdfg.graph import CDFG
from repro.cdfg.schedule import Schedule


@dataclass(frozen=True)
class Lifetime:
    """Occupied register interval ``(birth, death]`` of a variable."""

    var_id: int
    birth: int
    death: int

    def overlaps(self, other: "Lifetime") -> bool:
        """True when the two variables need registers simultaneously.

        A variable dying at step ``t`` is read at the start of ``t``;
        one born at ``t`` is written at the end of ``t`` — those two can
        share a register, hence the strict comparisons. Zero-span
        variables never occupy a register and overlap nothing.
        """
        if self.span == 0 or other.span == 0:
            return False
        return self.birth < other.death and other.birth < self.death

    @property
    def span(self) -> int:
        return self.death - self.birth


def compute_lifetimes(schedule: Schedule) -> Dict[int, Lifetime]:
    """Lifetime of every *live* variable of the scheduled CDFG.

    Variables that are never read and are not primary outputs get a
    zero-length lifetime (born and dying at the same step) — they need
    no register.
    """
    cdfg = schedule.cdfg
    length = schedule.length
    readers = cdfg.consumer_map()
    lifetimes: Dict[int, Lifetime] = {}
    for var_id, variable in cdfg.variables.items():
        if variable.producer is None:
            birth = 0
        else:
            birth = schedule.end_of(cdfg.operations[variable.producer])
        death = birth
        for op in readers[var_id]:
            # Multi-cycle consumers need their operands held until the
            # operation's last busy step.
            death = max(death, schedule.end_of(op))
        if var_id in cdfg.primary_outputs:
            # Outputs must survive one boundary past the last step so
            # they are readable after the iteration completes.
            death = max(death, length + 1)
        lifetimes[var_id] = Lifetime(var_id, birth, death)
    return lifetimes


def live_variables(lifetimes: Dict[int, Lifetime]) -> List[Lifetime]:
    """Lifetimes that actually occupy a register (positive span)."""
    return [lt for lt in lifetimes.values() if lt.span > 0]


def overlap_at(lifetimes: Dict[int, Lifetime], step: int) -> List[Lifetime]:
    """Variables occupying a register during the boundary after ``step``.

    A variable occupies the register boundary between steps ``t`` and
    ``t+1`` when ``birth <= t < death``.
    """
    return sorted(
        (
            lt
            for lt in lifetimes.values()
            if lt.birth <= step < lt.death
        ),
        key=lambda lt: lt.var_id,
    )


def max_overlap(lifetimes: Dict[int, Lifetime]) -> Tuple[int, int]:
    """``(step, count)`` of the register-pressure peak.

    ``count`` is the minimum number of registers any binding needs —
    the allocation the paper's register binder starts from ("counting
    the number of variables present in the control step with the
    largest number of variables with overlapping lifetimes").
    """
    live = live_variables(lifetimes)
    if not live:
        return 0, 0
    lo = min(lt.birth for lt in live)
    hi = max(lt.death for lt in live)
    best_step, best_count = lo, 0
    for step in range(lo, hi):
        count = sum(1 for lt in live if lt.birth <= step < lt.death)
        if count > best_count:
            best_step, best_count = step, count
    return best_step, best_count


def conflict_groups(lifetimes: Dict[int, Lifetime]) -> List[List[Lifetime]]:
    """Clusters of mutually-unsharable variables, one per peak step.

    The paper's register binder processes "a cluster of mutually
    unsharable variables ... at a time, sorted in ascending order
    according to their birth times"; each cluster here is the set of
    variables live across one register boundary, in birth order.
    """
    live = live_variables(lifetimes)
    if not live:
        return []
    lo = min(lt.birth for lt in live)
    hi = max(lt.death for lt in live)
    groups: List[List[Lifetime]] = []
    for step in range(lo, hi):
        group = [lt for lt in live if lt.birth <= step < lt.death]
        if group:
            groups.append(sorted(group, key=lambda lt: (lt.birth, lt.var_id)))
    return groups
