"""Scheduled CDFGs.

A :class:`Schedule` assigns every operation a start control step in
``1..length``. The timing convention matches the paper's single-cycle
register-transfer model:

* an operation scheduled at control step ``t`` reads its operand
  registers at the start of ``t`` and writes its result register at the
  end of step ``t + latency - 1`` (``latency`` is 1 for every resource
  in the paper's library);
* therefore a data dependence ``p -> c`` requires
  ``start(c) >= start(p) + latency(p)``.

Multi-cycle latencies are supported throughout (the paper's future
work); Theorem 1's guarantee only applies when all latencies are 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG, Operation

#: Latency of every resource class in the paper's library.
DEFAULT_LATENCIES = {"add": 1, "mult": 1}


class Schedule:
    """An assignment of operations to control steps."""

    def __init__(
        self,
        cdfg: CDFG,
        start_times: Mapping[int, int],
        latencies: Optional[Mapping[str, int]] = None,
    ):
        self.cdfg = cdfg
        self.start: Dict[int, int] = dict(start_times)
        self.latencies: Dict[str, int] = dict(latencies or DEFAULT_LATENCIES)
        for op in cdfg.operations.values():
            if op.resource_class not in self.latencies:
                raise ScheduleError(
                    f"no latency for resource class {op.resource_class!r}"
                )

    # -- basic accessors ------------------------------------------------

    def latency_of(self, op: Operation) -> int:
        return self.latencies[op.resource_class]

    def start_of(self, op: Operation) -> int:
        try:
            return self.start[op.op_id]
        except KeyError:
            raise ScheduleError(f"operation {op.name} is unscheduled")

    def end_of(self, op: Operation) -> int:
        """Last control step during which ``op`` occupies its FU."""
        return self.start_of(op) + self.latency_of(op) - 1

    @property
    def length(self) -> int:
        """Number of control steps (the paper's "Cycle" column)."""
        return max(
            (self.end_of(op) for op in self.cdfg.operations.values()),
            default=0,
        )

    def busy_interval(self, op: Operation) -> Tuple[int, int]:
        """Inclusive ``(start, end)`` FU occupancy of ``op``."""
        return self.start_of(op), self.end_of(op)

    def overlaps(self, op_a: Operation, op_b: Operation) -> bool:
        """True when the two operations occupy an FU simultaneously."""
        start_a, end_a = self.busy_interval(op_a)
        start_b, end_b = self.busy_interval(op_b)
        return start_a <= end_b and start_b <= end_a

    # -- step queries ------------------------------------------------------

    def operations_in_step(
        self, step: int, op_class: Optional[str] = None
    ) -> List[Operation]:
        """Operations busy during ``step`` (optionally one FU class)."""
        result = []
        for op in self.cdfg.operations.values():
            if op_class is not None and op.resource_class != op_class:
                continue
            start, end = self.busy_interval(op)
            if start <= step <= end:
                result.append(op)
        return sorted(result, key=lambda op: op.op_id)

    def densest_step(self, op_class: str) -> Tuple[int, int]:
        """``(step, count)`` of the busiest control step for a class.

        The count is the lower bound on the number of FUs of that class
        any binding can achieve (the paper's set ``U`` comes from this
        step; see Theorem 1). Earliest such step wins ties.
        """
        best_step, best_count = 1, 0
        for step in range(1, self.length + 1):
            count = len(self.operations_in_step(step, op_class))
            if count > best_count:
                best_step, best_count = step, count
        return best_step, best_count

    def min_resources(self) -> Dict[str, int]:
        """Per-class lower bounds on FU counts (densest-step counts)."""
        return {
            op_class: self.densest_step(op_class)[1]
            for op_class in self.cdfg.resource_classes()
        }

    # -- validation -------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ScheduleError` on any violated invariant."""
        for op in self.cdfg.operations.values():
            start = self.start.get(op.op_id)
            if start is None:
                raise ScheduleError(f"operation {op.name} is unscheduled")
            if start < 1:
                raise ScheduleError(
                    f"operation {op.name} starts before step 1: {start}"
                )
            for pred in self.cdfg.predecessors(op):
                ready = self.start_of(pred) + self.latency_of(pred)
                if start < ready:
                    raise ScheduleError(
                        f"dependence violated: {pred.name} "
                        f"(ends {ready - 1}) -> {op.name} (starts {start})"
                    )

    def respects(self, constraints: Mapping[str, int]) -> bool:
        """True when no step uses more FUs of a class than allowed."""
        for op_class, limit in constraints.items():
            for step in range(1, self.length + 1):
                if len(self.operations_in_step(step, op_class)) > limit:
                    return False
        return True

    def __repr__(self) -> str:
        return (
            f"Schedule({self.cdfg.name!r}, length={self.length}, "
            f"ops={len(self.start)})"
        )
