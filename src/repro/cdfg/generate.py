"""Seeded random CDFG generation.

The paper's benchmark CDFGs (DCT and DSP kernels from the LOPASS suite)
are not publicly distributed, so the reproduction generates synthetic
dataflow graphs matched to the published profiles of Table 1 (number of
primary inputs, primary outputs, additions, multiplications) and to the
schedule shape implied by Table 2 (cycle count and resource
constraints). The binding algorithms only see graph structure —
operation types, dependence edges, lifetimes and schedule density — so
matching those counts reproduces the combinatorial shape the binder
works on (see DESIGN.md, substitution table).

Generation is deterministic for a given profile and seed, and layered
to mimic arithmetic-kernel structure:

* operations are distributed over ``n_layers`` layers with per-layer,
  per-type caps (the Table 2 resource constraints); at least one layer
  per type is filled to its cap, so the schedule's densest step — the
  binder's Theorem 1 lower bound — matches the paper's constraint;
* each operation in layer ``l > 0`` reads at least one value produced
  in layer ``l - 1``, pinning the critical path to the layer count;
* remaining operands mix recent values, long-lived earlier values and
  primary inputs, which produces the register pressure DSP kernels
  exhibit;
* every primary input is used, and the number of *sink* values is
  steered to the primary-output count (no dead code).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CDFGError
from repro.cdfg.graph import CDFG

#: Attempts before giving up on an infeasible profile.
MAX_RETRIES = 32

#: Operand-source mix for the non-chain operand slots.
P_PREVIOUS_LAYER = 0.45
P_PRIMARY_INPUT = 0.20


@dataclass(frozen=True)
class GraphProfile:
    """Target shape of a generated CDFG (one row of Table 1 + Table 2).

    ``n_layers`` and the per-type layer caps are optional; when omitted
    they default to a square-ish layout (``sqrt`` of the op count).
    """

    name: str
    n_inputs: int
    n_outputs: int
    n_adds: int
    n_mults: int
    n_layers: Optional[int] = None
    add_width: Optional[int] = None
    mult_width: Optional[int] = None

    @property
    def n_operations(self) -> int:
        return self.n_adds + self.n_mults

    def layout(self) -> Tuple[int, int, int]:
        """Resolved ``(n_layers, add_width, mult_width)``.

        The default layout reserves one spare layer of capacity per
        type so the tail can always be thinned to the output budget.
        """
        layers = self.n_layers
        if layers is None:
            layers = max(3, int(round(self.n_operations ** 0.5)) + 1)
            while layers < self.n_operations and not _funnel_feasible(
                layers,
                _even_width(self.n_adds, layers - 1),
                _even_width(self.n_mults, layers - 1),
                self.n_adds,
                self.n_mults,
                self.n_outputs,
            ):
                layers += 1
        slack_layers = max(1, layers - 1) if self.n_layers is None else layers
        add_width = self.add_width or _even_width(self.n_adds, slack_layers)
        mult_width = self.mult_width or _even_width(
            self.n_mults, slack_layers
        )
        return layers, add_width, mult_width

    def validate(self) -> None:
        if self.n_inputs < 1:
            raise CDFGError(f"{self.name}: need at least one primary input")
        if self.n_operations < 1:
            raise CDFGError(f"{self.name}: need at least one operation")
        if self.n_outputs < 1:
            raise CDFGError(f"{self.name}: need at least one primary output")
        if self.n_outputs > self.n_operations:
            raise CDFGError(
                f"{self.name}: more outputs than operations "
                f"({self.n_outputs} > {self.n_operations})"
            )
        if self.n_inputs > 2 * self.n_operations:
            raise CDFGError(
                f"{self.name}: {self.n_inputs} inputs cannot all be "
                f"consumed by {self.n_operations} binary operations"
            )
        # Operand slots must cover every input plus every internal
        # value that is not a primary output (no dead code allowed):
        # 2*ops >= n_inputs + (ops - n_outputs).
        if self.n_inputs > self.n_operations + self.n_outputs:
            raise CDFGError(
                f"{self.name}: infeasible without dead code "
                f"({self.n_inputs} inputs > {self.n_operations} ops "
                f"+ {self.n_outputs} outputs)"
            )
        layers, add_width, mult_width = self.layout()
        if self.n_adds > layers * add_width:
            raise CDFGError(
                f"{self.name}: {self.n_adds} adds exceed "
                f"{layers} layers x width {add_width}"
            )
        if self.n_mults > layers * mult_width:
            raise CDFGError(
                f"{self.name}: {self.n_mults} mults exceed "
                f"{layers} layers x width {mult_width}"
            )


def _even_width(count: int, layers: int) -> int:
    return max(1, -(-count // layers))  # ceil division


def _funnel_feasible(
    layers: int,
    add_width: int,
    mult_width: int,
    n_adds: int,
    n_mults: int,
    n_outputs: int,
) -> bool:
    """Can the tail-funnel constraint hold for this layout?

    Conservative check: the last layer holds at most ``n_outputs``
    ops, each earlier layer at most twice the next one's consumption
    capacity, always bounded by the per-type (and combined) widths.
    """

    def capacity(width: int) -> int:
        total = 0
        tail = max(1, n_outputs)
        for _ in range(layers):
            total += min(width, tail)
            tail *= 2
        return total

    return (
        n_adds <= capacity(add_width)
        and n_mults <= capacity(mult_width)
        and n_adds + n_mults <= capacity(add_width + mult_width)
    )


def generate_cdfg(profile: GraphProfile, seed: int = 0) -> CDFG:
    """Generate a deterministic CDFG matching ``profile``.

    The result has exactly the requested number of primary inputs,
    primary outputs, additions and multiplications; every primary input
    feeds at least one operation and every operation's value is either
    consumed or a primary output (no dead code).
    """
    profile.validate()
    # zlib.crc32 is stable across processes (unlike built-in hash()).
    base = (zlib.crc32(profile.name.encode()) & 0xFFFF) * 100003 + seed * 7919
    # Escalating generation modes. Ordering is a compatibility
    # contract: a (profile, seed) pair that succeeds in an earlier
    # mode must keep producing the identical graph, so stricter modes
    # only ever run for profiles that previously failed outright.
    for hard_drain, strict in ((False, False), (True, False), (True, True)):
        for attempt in range(MAX_RETRIES):
            cdfg = _attempt(
                profile, random.Random(base + attempt), hard_drain, strict
            )
            if cdfg is not None:
                cdfg.validate()
                return cdfg
    raise CDFGError(
        f"{profile.name}: could not satisfy profile after "
        f"{3 * MAX_RETRIES} attempts"
    )


def _layer_counts(
    total: int, layers: int, cap: int, rng: random.Random
) -> List[int]:
    """Distribute ``total`` ops over ``layers`` with at most ``cap`` each.

    One random layer is forced to the cap (when ``total`` allows) so the
    densest control step matches the published resource constraint.
    """
    counts = [0] * layers
    order = list(range(layers))
    rng.shuffle(order)
    remaining = total
    # Reserve the peak first (Theorem 1's bound must equal the cap),
    # then give every other layer one op while supplies last so
    # dependence chains span the full depth.
    if total >= cap:
        counts[order[0]] = cap
        remaining -= cap
    for layer in order[1:]:
        if remaining == 0:
            break
        counts[layer] += 1
        remaining -= 1
    while remaining > 0:
        layer = order[rng.randrange(layers)]
        if counts[layer] < cap:
            counts[layer] += 1
            remaining -= 1
    return counts


def _rebalance_tail(
    add_counts: List[int],
    mult_counts: List[int],
    add_width: int,
    mult_width: int,
    n_outputs: int,
) -> bool:
    """Thin out the last layer so its outputs can all be primary outputs.

    Every value produced in the final layer is necessarily a sink, so
    the combined final-layer op count must not exceed the output
    budget. Excess ops are pushed to earlier layers with spare cap.
    Returns False when no capacity remains.
    """
    layers = len(add_counts)
    last = layers - 1

    def combined(layer: int) -> int:
        return add_counts[layer] + mult_counts[layer]

    def shrink(layer: int, cap: int) -> bool:
        """Move ops out of ``layer`` to earlier spare capacity."""
        for counts, width in (
            (add_counts, add_width),
            (mult_counts, mult_width),
        ):
            while combined(layer) > cap and counts[layer] > 0:
                moved = False
                for target in range(layer - 1, -1, -1):
                    if counts[target] < width:
                        counts[target] += 1
                        counts[layer] -= 1
                        moved = True
                        break
                if not moved:
                    break
        return combined(layer) <= cap

    if not shrink(last, max(1, n_outputs)):
        return False
    # Funnel: each tail layer must be consumable by the next one's
    # operand slots (two per op) plus whatever output budget remains.
    slack = max(0, n_outputs - combined(last))
    for layer in range(last - 1, 0, -1):
        cap = 2 * combined(layer + 1) + slack
        if cap >= max(add_width, mult_width) * 2:
            break  # wide enough; earlier layers are unconstrained
        if not shrink(layer, max(1, cap)):
            return False
    return True


def _deterministic_counts(
    profile: GraphProfile,
    layers: int,
    add_width: int,
    mult_width: int,
) -> Optional[Tuple[List[int], List[int]]]:
    """Front-loaded distribution respecting positional tail caps.

    Fallback when randomized distribution + rebalancing cannot reach a
    feasible shape (tight profiles have essentially one valid layer
    histogram). Layer ``l`` may hold at most
    ``n_outputs * 2^(layers-1-l)`` combined ops (each tail layer can
    consume two values per op and the final layer's outputs must all
    be primary outputs).
    """
    remaining_a, remaining_m = profile.n_adds, profile.n_mults
    add_counts = [0] * layers
    mult_counts = [0] * layers
    # Fill back-to-front. A layer's values can only be consumed by
    # strictly later operand slots, and each later op also produces a
    # value of its own, so layer ``l`` may hold at most
    # ``(ops in later layers) + n_outputs`` operations — a tighter cap
    # than the doubling bound whenever the widths bind.
    suffix = 0
    for layer in range(layers - 1, -1, -1):
        tail_cap = suffix + max(1, profile.n_outputs)
        room = min(add_width + mult_width, tail_cap)
        while room > 0 and (remaining_a > 0 or remaining_m > 0):
            prefer_add = (
                remaining_a * mult_width >= remaining_m * add_width
            )
            if (
                prefer_add
                and remaining_a > 0
                and add_counts[layer] < add_width
            ):
                add_counts[layer] += 1
                remaining_a -= 1
            elif remaining_m > 0 and mult_counts[layer] < mult_width:
                mult_counts[layer] += 1
                remaining_m -= 1
            elif remaining_a > 0 and add_counts[layer] < add_width:
                add_counts[layer] += 1
                remaining_a -= 1
            else:
                break
            room -= 1
        suffix += add_counts[layer] + mult_counts[layer]
    if remaining_a or remaining_m:
        return None
    return add_counts, mult_counts


def _attempt(
    profile: GraphProfile,
    rng: random.Random,
    hard_drain: bool = False,
    strict: bool = False,
) -> Optional[CDFG]:
    layers, add_width, mult_width = profile.layout()
    add_counts = _layer_counts(profile.n_adds, layers, add_width, rng)
    mult_counts = _layer_counts(profile.n_mults, layers, mult_width, rng)
    if not _rebalance_tail(
        add_counts, mult_counts, add_width, mult_width, profile.n_outputs
    ):
        fallback = _deterministic_counts(
            profile, layers, add_width, mult_width
        )
        if fallback is None:
            return None
        add_counts, mult_counts = fallback
        if not _rebalance_tail(
            add_counts, mult_counts, add_width, mult_width,
            profile.n_outputs,
        ):
            return None
    # The densest layer must hit the published constraint (Theorem 1's
    # lower bound equals the paper's resource constraint); retry the
    # attempt when rebalancing flattened the peak.
    if profile.n_adds >= add_width and max(add_counts) < add_width:
        return None
    if profile.n_mults >= mult_width and max(mult_counts) < mult_width:
        return None
    # Drop leading/trailing empty layers to keep chains anchored.
    plan: List[List[str]] = []
    for layer in range(layers):
        ops = ["add"] * add_counts[layer] + ["mult"] * mult_counts[layer]
        rng.shuffle(ops)
        if ops:
            plan.append(ops)
    if not plan:
        return None

    cdfg = CDFG(profile.name)
    inputs = [cdfg.add_input(f"in{i}") for i in range(profile.n_inputs)]
    unused_inputs: Set[int] = set(inputs)
    sink_pool: Set[int] = set()
    by_layer: List[List[int]] = []  # produced values per layer
    all_values: List[int] = list(inputs)

    ops_remaining = profile.n_operations
    final_size = len(plan[-1])
    for layer_index, ops in enumerate(plan):
        # How many sinks may safely remain in the pool right now: the
        # final layer's outputs are unavoidable sinks, and the last two
        # layers must actively drain whatever is left.
        if hard_drain or layer_index >= len(plan) - 2:
            allowed_sinks = 0
        else:
            allowed_sinks = max(1, profile.n_outputs - final_size - 1)
        produced_here: List[int] = []
        for kind in ops:
            operands = _pick_operands(
                rng,
                layer_index,
                by_layer,
                inputs,
                all_values,
                unused_inputs,
                sink_pool,
                ops_remaining,
                allowed_sinks,
                hard_drain,
                strict,
                profile.n_outputs,
                len(produced_here),
            )
            out = cdfg.add_operation(kind, operands[0], operands[1])
            for operand in operands:
                sink_pool.discard(operand)
                unused_inputs.discard(operand)
            produced_here.append(out)
            ops_remaining -= 1
        by_layer.append(produced_here)
        all_values.extend(produced_here)
        sink_pool.update(produced_here)

    if unused_inputs or len(sink_pool) > profile.n_outputs:
        return None

    outputs = sorted(sink_pool)
    internal = [
        v
        for v in all_values
        if cdfg.variables[v].producer is not None and v not in sink_pool
    ]
    rng.shuffle(internal)
    while len(outputs) < profile.n_outputs:
        if not internal:
            return None
        outputs.append(internal.pop())
    for var_id in outputs:
        cdfg.mark_output(var_id)
    return cdfg


def _pick_operands(
    rng: random.Random,
    layer_index: int,
    by_layer: List[List[int]],
    inputs: List[int],
    all_values: List[int],
    unused_inputs: Set[int],
    sink_pool: Set[int],
    ops_remaining: int,
    allowed_sinks: int,
    hard_drain: bool = False,
    strict: bool = False,
    n_outputs: int = 0,
    n_pending: int = 0,
) -> Tuple[int, int]:
    """Two operand variable ids for an op in layer ``layer_index``.

    With ``hard_drain`` (the second-chance retry mode for profiles
    whose tails are too narrow to consume the pool through chain slots
    alone), the chain slot may fall back to *any* pooled sink once the
    previous layer's sinks are exhausted — trading exact depth pinning
    for guaranteed sink consumption. ``strict`` (the last-chance mode
    for profiles so tight that almost every operand slot is spoken
    for, e.g. single-output graphs with many inputs) additionally
    makes the free slots deterministic-priority: drain-critical sinks,
    then unconsumed inputs, then anything — no random slot wasting.
    """
    operands: List[int] = []

    # Slot 1: chain operand from the previous layer (pins the depth).
    if layer_index > 0 and by_layer[layer_index - 1]:
        prev = by_layer[layer_index - 1]
        prev_sinks = [v for v in prev if v in sink_pool]
        if strict:
            # Zero-slack profiles: every slot must be productive —
            # drain a sink only when the *global* budget (every
            # pooled, pending same-layer, and future value minus the
            # outputs allowed to remain) demands it, otherwise
            # consume an input; a random re-read would strand a
            # mandatory read.
            drain_needed = (
                len(sink_pool) + n_pending + ops_remaining - n_outputs
            )
            if drain_needed > 0 and prev_sinks:
                operands.append(prev_sinks[rng.randrange(len(prev_sinks))])
            elif drain_needed > 0 and sink_pool:
                ordered = sorted(sink_pool)
                operands.append(ordered[rng.randrange(len(ordered))])
            elif unused_inputs:
                ordered = sorted(unused_inputs)
                operands.append(ordered[rng.randrange(len(ordered))])
            elif prev_sinks:
                operands.append(prev_sinks[rng.randrange(len(prev_sinks))])
            else:
                operands.append(prev[rng.randrange(len(prev))])
        # Prefer previous-layer sinks when the pool is over budget.
        elif len(sink_pool) > allowed_sinks and prev_sinks:
            operands.append(prev_sinks[rng.randrange(len(prev_sinks))])
        elif hard_drain and len(sink_pool) > allowed_sinks and sink_pool:
            ordered = sorted(sink_pool)
            operands.append(ordered[rng.randrange(len(ordered))])
        else:
            operands.append(prev[rng.randrange(len(prev))])
        sink_pool_snapshot = set(sink_pool)
        sink_pool_snapshot.discard(operands[0])
    else:
        operands.append(_free_choice(
            rng, inputs, all_values, unused_inputs, sink_pool,
            ops_remaining, allowed_sinks, strict, n_outputs, n_pending,
        ))
        sink_pool_snapshot = set(sink_pool)
        sink_pool_snapshot.discard(operands[0])

    # Slot 2: coverage / sink pressure / mixed sources.
    operands.append(_free_choice(
        rng, inputs, all_values, unused_inputs, sink_pool_snapshot,
        ops_remaining, allowed_sinks, strict, n_outputs, n_pending,
    ))
    return operands[0], operands[1]


def _free_choice(
    rng: random.Random,
    inputs: List[int],
    all_values: List[int],
    unused_inputs: Set[int],
    sink_pool: Set[int],
    ops_remaining: int,
    allowed_sinks: int,
    strict: bool = False,
    n_outputs: int = 0,
    n_pending: int = 0,
) -> int:
    slots_left = 2 * ops_remaining
    if strict:
        # Deterministic priority for profiles with near-zero slot
        # slack: finish the mandatory reads first, never waste a slot
        # on a random re-read. The drain requirement is the *global*
        # budget — every pooled value, every same-layer value not yet
        # pooled, and every future op's value, minus the outputs
        # allowed to remain — not the local per-layer heuristic,
        # which over-drains and strands inputs.
        drain_needed = (
            len(sink_pool) + n_pending + ops_remaining - n_outputs
        )
        if sink_pool and drain_needed >= slots_left:
            ordered = sorted(sink_pool)
            return ordered[rng.randrange(len(ordered))]
        if unused_inputs:
            ordered = sorted(unused_inputs)
            return ordered[rng.randrange(len(ordered))]
        if sink_pool and drain_needed > 0:
            ordered = sorted(sink_pool)
            return ordered[rng.randrange(len(ordered))]
        return all_values[rng.randrange(len(all_values))]
    if unused_inputs and (
        slots_left <= len(unused_inputs) + 2 or rng.random() < 0.30
    ):
        ordered = sorted(unused_inputs)
        return ordered[rng.randrange(len(ordered))]
    if len(sink_pool) > allowed_sinks and sink_pool:
        ordered = sorted(sink_pool)
        return ordered[rng.randrange(len(ordered))]
    roll = rng.random()
    if roll < P_PRIMARY_INPUT:
        return inputs[rng.randrange(len(inputs))]
    if roll < P_PRIMARY_INPUT + P_PREVIOUS_LAYER and len(all_values) > len(inputs):
        # Recent value: geometric from the end.
        n = len(all_values)
        offset = 0
        while rng.random() > 0.35 and offset < n - 1:
            offset += 1
        return all_values[n - 1 - offset]
    return all_values[rng.randrange(len(all_values))]
