"""The CDFG data structure.

The paper's benchmarks are pure dataflow graphs whose nodes are binary
arithmetic operations: "Each node in the benchmarks is either an
addition/subtraction or a multiplication" (Section 6.1). We model:

* :class:`Variable` — a value: either a primary input or the single
  output of an operation. Variables are what registers get bound to.
* :class:`Operation` — a binary operation (``add``/``sub``/``mult``)
  reading two variables and producing one. ``add`` and ``sub`` share
  the adder resource class, mirroring the paper's library.
* :class:`CDFG` — the graph, with structural validation and the
  queries the scheduler and binder need.

An *edge* is one use of a variable by an operation, plus one edge per
primary-output binding; this is the count reported next to Table 1.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import CDFGError

#: Operation types appearing in the paper's benchmarks.
OP_TYPES = ("add", "sub", "mult")

#: Map an operation type to its functional-unit resource class.
RESOURCE_CLASS = {"add": "add", "sub": "add", "mult": "mult"}


@dataclass(frozen=True)
class Variable:
    """A dataflow value; register binding assigns these to registers."""

    var_id: int
    name: str
    producer: Optional[int]  # op_id, or None for a primary input

    @property
    def is_primary_input(self) -> bool:
        return self.producer is None


@dataclass(frozen=True)
class Operation:
    """A binary operation node."""

    op_id: int
    op_type: str
    name: str
    inputs: Tuple[int, int]  # variable ids (port a, port b)
    output: int  # variable id

    @property
    def resource_class(self) -> str:
        """The FU class that can execute this operation."""
        return RESOURCE_CLASS[self.op_type]


class CDFG:
    """A dataflow graph of binary operations.

    Build with :meth:`add_input`, :meth:`add_operation` and
    :meth:`mark_output`; the builder enforces acyclicity by
    construction (operations may only read existing variables).
    """

    def __init__(self, name: str = "cdfg"):
        self.name = name
        self.variables: Dict[int, Variable] = {}
        self.operations: Dict[int, Operation] = {}
        self.primary_inputs: List[int] = []  # variable ids
        self.primary_outputs: List[int] = []  # variable ids
        self._next_var = 0
        self._next_op = 0

    # -- construction ---------------------------------------------------

    def add_input(self, name: Optional[str] = None) -> int:
        """Add a primary-input variable; returns its id."""
        var_id = self._next_var
        self._next_var += 1
        var = Variable(var_id, name or f"in{var_id}", None)
        self.variables[var_id] = var
        self.primary_inputs.append(var_id)
        return var_id

    def add_operation(
        self,
        op_type: str,
        input_a: int,
        input_b: int,
        name: Optional[str] = None,
    ) -> int:
        """Add an operation reading two existing variables.

        Returns the id of the operation's *output variable* so calls
        chain naturally: ``g.add_operation("add", x, y)`` yields a
        variable usable as a further input.
        """
        if op_type not in OP_TYPES:
            raise CDFGError(f"unknown operation type {op_type!r}")
        for var_id in (input_a, input_b):
            if var_id not in self.variables:
                raise CDFGError(f"operation reads unknown variable {var_id}")
        op_id = self._next_op
        self._next_op += 1
        out_id = self._next_var
        self._next_var += 1
        op_name = name or f"op{op_id}"
        self.operations[op_id] = Operation(
            op_id, op_type, op_name, (input_a, input_b), out_id
        )
        self.variables[out_id] = Variable(out_id, f"{op_name}_out", op_id)
        return out_id

    def mark_output(self, var_id: int) -> None:
        if var_id not in self.variables:
            raise CDFGError(f"unknown variable {var_id} marked as output")
        if var_id not in self.primary_outputs:
            self.primary_outputs.append(var_id)

    # -- queries ----------------------------------------------------------

    def operation_of(self, var_id: int) -> Optional[Operation]:
        """The operation producing ``var_id`` (None for a PI)."""
        producer = self.variables[var_id].producer
        return None if producer is None else self.operations[producer]

    def consumers(self, var_id: int) -> List[Operation]:
        """Operations reading ``var_id`` (with multiplicity)."""
        return [
            op
            for op in self.operations.values()
            for port in op.inputs
            if port == var_id
        ]

    def consumer_map(self) -> Dict[int, List[Operation]]:
        """Map every variable id to the operations reading it."""
        readers: Dict[int, List[Operation]] = {v: [] for v in self.variables}
        for op in self.operations.values():
            for var_id in op.inputs:
                readers[var_id].append(op)
        return readers

    def predecessors(self, op: Operation) -> List[Operation]:
        """Operations whose outputs ``op`` reads (dedup, order kept)."""
        preds: List[Operation] = []
        seen: Set[int] = set()
        for var_id in op.inputs:
            producer = self.operation_of(var_id)
            if producer is not None and producer.op_id not in seen:
                seen.add(producer.op_id)
                preds.append(producer)
        return preds

    def successor_map(self) -> Dict[int, List[Operation]]:
        """Map op id to the operations consuming its output."""
        successors: Dict[int, List[Operation]] = {
            op_id: [] for op_id in self.operations
        }
        for op in self.operations.values():
            for var_id in op.inputs:
                producer = self.variables[var_id].producer
                if producer is not None:
                    successors[producer].append(op)
        return successors

    def topological_order(self) -> List[Operation]:
        """Operations in dependence order (inputs before users).

        Kahn's algorithm over *distinct* predecessor edges; deterministic
        (ready operations are processed in id order).
        """
        distinct_succs: Dict[int, Set[int]] = {
            op_id: set() for op_id in self.operations
        }
        in_degree: Dict[int, int] = {op_id: 0 for op_id in self.operations}
        for op in self.operations.values():
            for pred in self.predecessors(op):
                if op.op_id not in distinct_succs[pred.op_id]:
                    distinct_succs[pred.op_id].add(op.op_id)
                    in_degree[op.op_id] += 1

        ready = [op_id for op_id, deg in in_degree.items() if deg == 0]
        heapq.heapify(ready)
        order: List[Operation] = []
        while ready:
            op_id = heapq.heappop(ready)
            order.append(self.operations[op_id])
            for succ_id in distinct_succs[op_id]:
                in_degree[succ_id] -= 1
                if in_degree[succ_id] == 0:
                    heapq.heappush(ready, succ_id)
        if len(order) != len(self.operations):
            raise CDFGError("CDFG contains a dependence cycle")
        return order

    def num_operations(self, op_class: Optional[str] = None) -> int:
        """Count operations, optionally of one resource class."""
        if op_class is None:
            return len(self.operations)
        return sum(
            1
            for op in self.operations.values()
            if op.resource_class == op_class
        )

    def resource_classes(self) -> List[str]:
        """Distinct FU classes used by this graph, sorted."""
        return sorted({op.resource_class for op in self.operations.values()})

    def num_edges(self) -> int:
        """Use-edges plus primary-output bindings (Table 1 count)."""
        return 2 * len(self.operations) + len(self.primary_outputs)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`CDFGError`."""
        for op in self.operations.values():
            if op.op_type not in OP_TYPES:
                raise CDFGError(f"{op.name}: bad type {op.op_type!r}")
            for var_id in op.inputs:
                if var_id not in self.variables:
                    raise CDFGError(f"{op.name}: dangling input {var_id}")
            out_var = self.variables.get(op.output)
            if out_var is None or out_var.producer != op.op_id:
                raise CDFGError(f"{op.name}: broken output link")
        for var_id in self.primary_outputs:
            if var_id not in self.variables:
                raise CDFGError(f"dangling primary output {var_id}")
        self.topological_order()

    def __repr__(self) -> str:
        return (
            f"CDFG({self.name!r}, pis={len(self.primary_inputs)}, "
            f"pos={len(self.primary_outputs)}, ops={len(self.operations)}, "
            f"edges={self.num_edges()})"
        )
