"""Seeded synthetic benchmark corpus (parameterized CDFG families).

The paper evaluates on seven fixed profiles (Table 1). Binder
comparisons on seven points say little about how the heuristics
behave as the problem shape varies, so this module scales
:mod:`repro.cdfg.generate` into a **corpus**: parameterized families
that sweep operation count, add/mult mix, and schedule density, each
instantiated at several generator seeds. Every instance is addressable
through the ordinary benchmark registry (``benchmark_spec`` /
``load_benchmark`` fall through to the corpus), so the whole sweep
engine — partial flows, caching, worker pools, the CLI — runs corpus
instances unchanged (``python -m repro corpus``).

Shape derivation per instance (deterministic, seed-independent):

* ``n_mults = clamp(round(n_ops * mult_frac))``, the rest are adds
  (at least one of each, matching the two-class resource library);
* depth: ``layers = max(3, round(ceil(sqrt(n_ops)) / density))`` —
  ``density`` > 1 packs the square-ish default layout into fewer,
  wider control steps, < 1 stretches it into more, narrower ones;
* per-type layer widths are the even spread over ``layers - 1`` (one
  slack layer, exactly like the generator's default layout), and
  double as the instance's **resource constraints** — the same
  convention the Table 1/2 benchmarks use, keeping the densest
  schedule step at the Theorem-1 bound;
* primary I/O counts follow a square-root rule of thumb capped at the
  paper profiles' range.

The ``micro`` family is sized so every instance stays within
:data:`repro.binding.optimal.MAX_OPS_PER_CLASS`, making the exact
branch-and-bound binder feasible — the oracle the differential suite
and ``repro corpus --oracle`` measure heuristic quality gaps against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CDFGError
from repro.cdfg.benchmarks import BenchmarkSpec
from repro.cdfg.generate import GraphProfile


@dataclass(frozen=True)
class CorpusFamily:
    """One parameterized family: the cross product of its axes."""

    name: str
    description: str
    op_counts: Tuple[int, ...]
    mult_fracs: Tuple[float, ...]
    densities: Tuple[float, ...]
    seeds: Tuple[int, ...]

    def size(self) -> int:
        return (
            len(self.op_counts)
            * len(self.mult_fracs)
            * len(self.densities)
            * len(self.seeds)
        )


@dataclass(frozen=True)
class CorpusInstance:
    """One concrete corpus benchmark (a point of a family's grid)."""

    name: str
    family: str
    n_ops: int
    mult_frac: float
    density: float
    seed: int
    profile: GraphProfile

    @property
    def constraints(self) -> Dict[str, int]:
        return {
            "add": self.profile.add_width,
            "mult": self.profile.mult_width,
        }

    def spec(self) -> BenchmarkSpec:
        """The registry-compatible spec (paper columns zeroed)."""
        return BenchmarkSpec(
            profile=self.profile,
            paper_edges=0,
            add_units=self.profile.add_width,
            mult_units=self.profile.mult_width,
            paper_cycles=self.profile.n_layers,
            paper_registers=0,
            paper_runtime_s=0.0,
            kind="corpus",
            graph_seed=self.seed,
        )


#: The shipped families. ``micro`` stays within the exact binder's
#: per-class limit (the oracle subset); ``kernel`` matches the paper
#: benchmarks' mid-range; ``wide`` stresses mux growth at chem scale;
#: ``huge`` and ``soc`` push into the thousand-op regime the scaling
#: bench (``benchmarks/bench_scale.py``) measures. The first seeds of
#: micro/kernel/wide reproduce the classic 90-instance corpus the
#: differential suites pin byte-identical (see
#: :data:`CLASSIC_SEEDS`); the extended seed ranges exist to give the
#: sweep engine a >=1000-instance population of cheap instances.
CORPUS_FAMILIES: Dict[str, CorpusFamily] = {
    family.name: family
    for family in (
        CorpusFamily(
            "micro",
            "oracle-feasible graphs (exact binding per class)",
            op_counts=(8, 10, 12),
            mult_fracs=(0.3, 0.5, 0.7),
            densities=(0.7, 1.0),
            seeds=tuple(range(40)),
        ),
        CorpusFamily(
            "kernel",
            "DSP-kernel-sized graphs around the Table 1 mid-range",
            op_counts=(24, 32, 48),
            mult_fracs=(0.4, 0.6),
            densities=(0.7, 1.0),
            seeds=tuple(range(16)),
        ),
        CorpusFamily(
            "wide",
            "large graphs sweeping schedule density at chem scale",
            op_counts=(64, 96),
            mult_fracs=(0.5,),
            densities=(0.5, 0.9, 1.3),
            seeds=tuple(range(16)),
        ),
        CorpusFamily(
            "huge",
            "hundreds-to-a-thousand ops, deep and wide schedules",
            op_counts=(256, 512, 1024),
            mult_fracs=(0.4,),
            densities=(0.6, 1.0),
            seeds=(0,),
        ),
        CorpusFamily(
            "soc",
            "SoC-scale graphs in the thousands of operations",
            op_counts=(2048, 4096),
            mult_fracs=(0.35,),
            densities=(0.8,),
            seeds=(0,),
        ),
    )
}

#: The seed slices of micro/kernel/wide that made up the corpus before
#: the scaling families landed — exactly the classic 90 instances the
#: engine-differential suites enumerate (their names and derivations
#: are unchanged by the extended seed ranges above).
CLASSIC_SEEDS: Dict[str, Tuple[int, ...]] = {
    "micro": (0, 1, 2),
    "kernel": (0, 1),
    "wide": (0, 1),
}


def _instance_name(
    family: str, n_ops: int, mult_frac: float, density: float, seed: int
) -> str:
    return (
        f"{family}-n{n_ops}-m{round(mult_frac * 100)}"
        f"-d{round(density * 100)}-s{seed}"
    )


def _derive_profile(
    name: str, n_ops: int, mult_frac: float, density: float
) -> GraphProfile:
    """Deterministic shape parameters for one instance (see module doc)."""
    if n_ops < 2:
        raise CDFGError(f"{name}: corpus instances need >= 2 operations")
    if not 0.0 < mult_frac < 1.0:
        raise CDFGError(
            f"{name}: mult_frac must be in (0, 1), got {mult_frac}"
        )
    if density <= 0.0:
        raise CDFGError(f"{name}: density must be positive, got {density}")
    n_mults = min(n_ops - 1, max(1, round(n_ops * mult_frac)))
    n_adds = n_ops - n_mults
    layers = max(3, round(math.ceil(math.sqrt(n_ops)) / density))
    slack_layers = max(1, layers - 1)
    add_width = max(1, -(-n_adds // slack_layers))
    mult_width = max(1, -(-n_mults // slack_layers))
    root = round(math.sqrt(n_ops))
    n_outputs = max(2, min(8, root))
    n_inputs = max(2, min(12, root + 1))
    return GraphProfile(
        name,
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        n_adds=n_adds,
        n_mults=n_mults,
        n_layers=layers,
        add_width=add_width,
        mult_width=mult_width,
    )


def _build_registry() -> Dict[str, CorpusInstance]:
    registry: Dict[str, CorpusInstance] = {}
    for family in CORPUS_FAMILIES.values():
        for n_ops in family.op_counts:
            for mult_frac in family.mult_fracs:
                for density in family.densities:
                    for seed in family.seeds:
                        name = _instance_name(
                            family.name, n_ops, mult_frac, density, seed
                        )
                        registry[name] = CorpusInstance(
                            name=name,
                            family=family.name,
                            n_ops=n_ops,
                            mult_frac=mult_frac,
                            density=density,
                            seed=seed,
                            profile=_derive_profile(
                                name, n_ops, mult_frac, density
                            ),
                        )
    return registry


#: Every shipped instance, keyed by name (enumeration order is the
#: families' declaration order, axes nested as declared).
CORPUS: Dict[str, CorpusInstance] = _build_registry()

#: Instance names in enumeration order.
CORPUS_NAMES: Tuple[str, ...] = tuple(CORPUS)


def is_corpus_name(name: str) -> bool:
    return name in CORPUS


def corpus_instance(name: str) -> CorpusInstance:
    try:
        return CORPUS[name]
    except KeyError:
        raise CDFGError(
            f"unknown corpus instance {name!r}; see `repro corpus --list` "
            f"(families: {tuple(CORPUS_FAMILIES)})"
        )


def corpus_instances(
    families: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
) -> List[CorpusInstance]:
    """Enumerate instances, optionally filtered to ``families``.

    ``limit`` truncates the enumeration but keeps round-robin fairness
    across the selected families (so a small limit still samples every
    family rather than draining the first one).
    """
    if families is None:
        names = list(CORPUS_FAMILIES)
    else:
        names = list(families)
        for family in names:
            if family not in CORPUS_FAMILIES:
                raise CDFGError(
                    f"unknown corpus family {family!r}; choose from "
                    f"{tuple(CORPUS_FAMILIES)}"
                )
    per_family: List[List[CorpusInstance]] = [
        [inst for inst in CORPUS.values() if inst.family == family]
        for family in names
    ]
    if limit is None:
        return [inst for group in per_family for inst in group]
    picked: List[CorpusInstance] = []
    cursor = 0
    while len(picked) < limit and any(per_family):
        group = per_family[cursor % len(per_family)]
        if group:
            picked.append(group.pop(0))
        cursor += 1
    return picked


def classic_corpus_names() -> List[str]:
    """The classic 90-instance corpus (see :data:`CLASSIC_SEEDS`).

    The engine-differential suites pin fast-vs-reference byte
    identity over this subset; the extended seed ranges and the
    ``huge``/``soc`` scaling families are covered by sampled tests
    and the scaling bench instead.
    """
    return [
        name for name, inst in CORPUS.items()
        if inst.seed in CLASSIC_SEEDS.get(inst.family, ())
    ]


def oracle_feasible(instance: CorpusInstance) -> bool:
    """True when the exact binder can solve every class of the instance."""
    from repro.binding.optimal import MAX_OPS_PER_CLASS

    return (
        instance.profile.n_adds <= MAX_OPS_PER_CLASS
        and instance.profile.n_mults <= MAX_OPS_PER_CLASS
    )
