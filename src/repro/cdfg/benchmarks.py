"""The seven paper benchmarks (Tables 1 and 2) and the Figure 1 example.

Profiles come verbatim from Table 1; resource constraints, schedule
lengths and register counts from Table 2 are carried as the *paper's*
reference values. The CDFGs themselves are synthesized by
:mod:`repro.cdfg.generate` (see DESIGN.md for the substitution
rationale); schedule lengths and register counts measured on our graphs
are reported side by side with the paper's in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import CDFGError
from repro.cdfg.graph import CDFG
from repro.cdfg.generate import GraphProfile, generate_cdfg


@dataclass(frozen=True)
class BenchmarkSpec:
    """Everything the paper publishes about one benchmark."""

    profile: GraphProfile
    paper_edges: int  # Table 1 "Total No. of Edges"
    add_units: int  # Table 2 resource constraint
    mult_units: int
    paper_cycles: int  # Table 2 "Cycle"
    paper_registers: int  # Table 2 "Reg"
    paper_runtime_s: float  # Table 2 "HLPower Runtime (s)"
    kind: str  # "dct", "dsp" (Section 6.1), or "corpus"
    #: Generator seed baked into the benchmark's identity. 0 for the
    #: paper benchmarks; corpus instances carry their grid seed here
    #: so the same name always yields the same graph.
    graph_seed: int = 0

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def constraints(self) -> Dict[str, int]:
        return {"add": self.add_units, "mult": self.mult_units}


def _spec(
    name: str,
    pis: int,
    pos: int,
    adds: int,
    mults: int,
    edges: int,
    add_units: int,
    mult_units: int,
    cycles: int,
    registers: int,
    runtime: float,
    kind: str,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        GraphProfile(
            name,
            pis,
            pos,
            adds,
            mults,
            n_layers=cycles,
            add_width=add_units,
            mult_width=mult_units,
        ),
        edges,
        add_units,
        mult_units,
        cycles,
        registers,
        runtime,
        kind,
    )


#: Table 1 profiles merged with Table 2 constraints/reference numbers.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        _spec("chem", 20, 10, 171, 176, 731, 9, 7, 39, 70, 812.0, "dsp"),
        _spec("dir", 8, 8, 84, 64, 314, 3, 2, 41, 25, 56.0, "dct"),
        _spec("honda", 9, 2, 45, 52, 214, 4, 4, 18, 13, 14.0, "dsp"),
        _spec("mcm", 8, 8, 64, 30, 252, 4, 2, 27, 54, 16.0, "dsp"),
        _spec("pr", 8, 8, 26, 16, 134, 2, 2, 16, 32, 2.0, "dct"),
        _spec("steam", 5, 5, 105, 115, 472, 7, 6, 28, 39, 189.0, "dsp"),
        _spec("wang", 8, 8, 26, 22, 134, 2, 2, 18, 39, 2.0, "dct"),
    )
}

#: Benchmark names in the order the paper's tables list them.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(BENCHMARKS)


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Lookup one benchmark's spec; raises on unknown names.

    Falls through to the synthetic corpus
    (:mod:`repro.cdfg.corpus`), so a corpus instance name is a valid
    benchmark everywhere a paper benchmark is — sweeps, the pipeline,
    the CLI.
    """
    try:
        return BENCHMARKS[name]
    except KeyError:
        from repro.cdfg import corpus  # deferred: corpus imports us

        if corpus.is_corpus_name(name):
            return corpus.corpus_instance(name).spec()
        raise CDFGError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES} "
            f"or a corpus instance (see `repro corpus --list`)"
        )


def load_benchmark(name: str, seed: Optional[int] = None) -> CDFG:
    """Generate the synthetic CDFG for a (paper or corpus) benchmark.

    Deterministic per ``(name, seed)``. The default seed is the
    spec's own :attr:`~BenchmarkSpec.graph_seed` — 0 for the paper
    benchmarks (what every bench and experiment uses), the grid seed
    for corpus instances.
    """
    spec = benchmark_spec(name)
    return generate_cdfg(
        spec.profile, spec.graph_seed if seed is None else seed
    )


def figure1_example() -> Tuple[CDFG, Dict[int, int]]:
    """The 8-operation scheduled CDFG of the paper's Figure 1.

    The figure gives the schedule (cstep1: ops 1+, 2+, 3x; cstep2: 4+,
    5x, 6+; cstep3: 7x, 8+) but not the dependences; any dependence
    structure consistent with the control steps yields the same binding
    behaviour, so we pick a natural one. Returns ``(cdfg, start_times)``
    where operation ids are 0-based (paper's op *k* is id ``k - 1``).
    """
    cdfg = CDFG("figure1")
    a = cdfg.add_input("a")
    b = cdfg.add_input("b")
    c = cdfg.add_input("c")
    d = cdfg.add_input("d")
    e = cdfg.add_input("e")
    f = cdfg.add_input("f")

    v1 = cdfg.add_operation("add", a, b, "op1")  # cstep 1
    v2 = cdfg.add_operation("add", c, d, "op2")  # cstep 1
    v3 = cdfg.add_operation("mult", e, f, "op3")  # cstep 1
    v4 = cdfg.add_operation("add", v1, v2, "op4")  # cstep 2
    v5 = cdfg.add_operation("mult", v3, a, "op5")  # cstep 2
    v6 = cdfg.add_operation("add", v3, c, "op6")  # cstep 2
    v7 = cdfg.add_operation("mult", v4, v5, "op7")  # cstep 3
    v8 = cdfg.add_operation("add", v5, v6, "op8")  # cstep 3

    cdfg.mark_output(v7)
    cdfg.mark_output(v8)
    start_times = {0: 1, 1: 1, 2: 1, 3: 2, 4: 2, 5: 2, 6: 3, 7: 3}
    cdfg.validate()
    return cdfg, start_times
