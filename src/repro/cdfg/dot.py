"""Graphviz export for CDFGs and schedules (debugging/documentation)."""

from __future__ import annotations

from typing import Optional

from repro.cdfg.graph import CDFG
from repro.cdfg.schedule import Schedule

_SHAPES = {"add": "circle", "sub": "circle", "mult": "doublecircle"}
_SYMBOL = {"add": "+", "sub": "-", "mult": "x"}


def cdfg_to_dot(cdfg: CDFG, schedule: Optional[Schedule] = None) -> str:
    """Render a CDFG (optionally grouped by control step) as DOT text."""
    lines = [f'digraph "{cdfg.name}" {{', "  rankdir=TB;"]
    for var_id in cdfg.primary_inputs:
        name = cdfg.variables[var_id].name
        lines.append(f'  v{var_id} [label="{name}", shape=box];')

    if schedule is not None:
        by_step = {}
        for op in cdfg.operations.values():
            by_step.setdefault(schedule.start_of(op), []).append(op)
        for step in sorted(by_step):
            lines.append(f"  subgraph cluster_step{step} {{")
            lines.append(f'    label="cstep {step}";')
            for op in sorted(by_step[step], key=lambda o: o.op_id):
                lines.append(f"    {_op_node(op)}")
            lines.append("  }")
    else:
        for op in cdfg.operations.values():
            lines.append(f"  {_op_node(op)}")

    for op in cdfg.operations.values():
        for var_id in op.inputs:
            variable = cdfg.variables[var_id]
            if variable.producer is None:
                lines.append(f"  v{var_id} -> o{op.op_id};")
            else:
                lines.append(f"  o{variable.producer} -> o{op.op_id};")
    for index, var_id in enumerate(cdfg.primary_outputs):
        variable = cdfg.variables[var_id]
        lines.append(f'  out{index} [label="out{index}", shape=box];')
        if variable.producer is not None:
            lines.append(f"  o{variable.producer} -> out{index};")
        else:
            lines.append(f"  v{var_id} -> out{index};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _op_node(op) -> str:
    shape = _SHAPES.get(op.op_type, "circle")
    symbol = _SYMBOL.get(op.op_type, "?")
    return f'o{op.op_id} [label="{op.name}\\n{symbol}", shape={shape}];'
