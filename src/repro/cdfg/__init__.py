"""Control/data-flow graph (CDFG) infrastructure.

The binding problem's input is "a scheduled CDFG, a resource
constraint, and a resource library" (Section 3). This subpackage holds
the CDFG itself (:mod:`~repro.cdfg.graph`), schedules
(:mod:`~repro.cdfg.schedule`), variable lifetime analysis
(:mod:`~repro.cdfg.lifetimes`), a seeded random generator
(:mod:`~repro.cdfg.generate`), the seven paper benchmarks
(:mod:`~repro.cdfg.benchmarks`), and the parameterized synthetic
benchmark corpus (:mod:`~repro.cdfg.corpus`).
"""

from repro.cdfg.graph import CDFG, Operation, Variable
from repro.cdfg.schedule import Schedule
from repro.cdfg.lifetimes import Lifetime, compute_lifetimes, max_overlap
from repro.cdfg.generate import GraphProfile, generate_cdfg
from repro.cdfg.benchmarks import (
    BENCHMARK_NAMES,
    BenchmarkSpec,
    benchmark_spec,
    figure1_example,
    load_benchmark,
)
from repro.cdfg.corpus import (
    CORPUS_FAMILIES,
    CORPUS_NAMES,
    CorpusFamily,
    CorpusInstance,
    corpus_instance,
    corpus_instances,
    oracle_feasible,
)

__all__ = [
    "CORPUS_FAMILIES",
    "CORPUS_NAMES",
    "CorpusFamily",
    "CorpusInstance",
    "corpus_instance",
    "corpus_instances",
    "oracle_feasible",
    "CDFG",
    "Operation",
    "Variable",
    "Schedule",
    "Lifetime",
    "compute_lifetimes",
    "max_overlap",
    "GraphProfile",
    "generate_cdfg",
    "BENCHMARK_NAMES",
    "BenchmarkSpec",
    "benchmark_spec",
    "figure1_example",
    "load_benchmark",
]
