"""Resource-constrained list scheduling.

The classic priority-list algorithm: walk control steps forward; at
each step start, among the ready operations of each resource class,
the ones with the least slack (ALAP urgency) claim the available units.
This produces the scheduled CDFGs that both binders consume — the
paper runs LOPASS and HLPower on *identical* schedules (Table 2), and
so do we.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.errors import ResourceError, ScheduleError
from repro.cdfg.graph import CDFG, Operation
from repro.cdfg.schedule import DEFAULT_LATENCIES, Schedule
from repro.scheduling.asap_alap import alap_schedule, asap_schedule

#: Safety bound on schedule length, as a multiple of the op count.
_MAX_LENGTH_FACTOR = 4


def list_schedule(
    cdfg: CDFG,
    constraints: Mapping[str, int],
    latencies: Optional[Mapping[str, int]] = None,
) -> Schedule:
    """Schedule ``cdfg`` under per-class FU count limits.

    ``constraints`` maps resource classes (``"add"``, ``"mult"``) to
    unit counts; classes present in the graph must be covered.
    Priority is ALAP-based urgency (critical operations first), with
    operation id as the deterministic tie-break.
    """
    lat = dict(latencies or DEFAULT_LATENCIES)
    for op_class in cdfg.resource_classes():
        limit = constraints.get(op_class)
        if limit is None:
            raise ResourceError(f"no constraint for class {op_class!r}")
        if limit < 1:
            raise ResourceError(
                f"constraint for {op_class!r} must be >= 1, got {limit}"
            )

    if not cdfg.operations:
        return Schedule(cdfg, {}, lat)

    urgency = _urgency(cdfg, lat)
    predecessors = {
        op.op_id: cdfg.predecessors(op) for op in cdfg.operations.values()
    }

    start: Dict[int, int] = {}
    finished_at: Dict[int, int] = {}  # op id -> first step it is done
    unscheduled = set(cdfg.operations)
    busy_until: Dict[str, List[int]] = {}  # class -> end steps of running ops

    step = 1
    max_steps = _MAX_LENGTH_FACTOR * len(cdfg.operations) + len(lat)
    while unscheduled:
        if step > max_steps:
            raise ScheduleError(
                f"list scheduler exceeded {max_steps} steps on "
                f"{cdfg.name!r} (constraints {dict(constraints)})"
            )
        for op_class in cdfg.resource_classes():
            in_use = sum(
                1
                for end in busy_until.get(op_class, [])
                if end >= step
            )
            free = constraints[op_class] - in_use
            if free <= 0:
                continue
            ready = [
                cdfg.operations[op_id]
                for op_id in unscheduled
                if cdfg.operations[op_id].resource_class == op_class
                and all(
                    pred.op_id in finished_at and finished_at[pred.op_id] <= step
                    for pred in predecessors[op_id]
                )
            ]
            ready.sort(key=lambda op: (urgency[op.op_id], op.op_id))
            for op in ready[:free]:
                start[op.op_id] = step
                end = step + lat[op.resource_class] - 1
                finished_at[op.op_id] = end + 1
                busy_until.setdefault(op_class, []).append(end)
                unscheduled.discard(op.op_id)
        step += 1

    schedule = Schedule(cdfg, start, lat)
    schedule.validate()
    if not schedule.respects(constraints):
        raise ScheduleError("list scheduler produced an over-subscribed step")
    return schedule


def _urgency(cdfg: CDFG, lat: Mapping[str, int]) -> Dict[int, int]:
    """ALAP start times at critical-path length (lower = more urgent)."""
    alap = alap_schedule(cdfg, None, lat)
    return dict(alap.start)
