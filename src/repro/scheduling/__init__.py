"""Schedulers producing the scheduled CDFGs the binder consumes.

The paper takes schedules as given (it reuses LOPASS's schedules so the
binding comparison is apples-to-apples); this subpackage provides the
schedulers needed to produce equivalent inputs: ASAP/ALAP bounds,
resource-constrained list scheduling (used for every benchmark, with
Table 2's constraints), and force-directed scheduling as an extension.
"""

from repro.scheduling.asap_alap import alap_schedule, asap_schedule, mobility
from repro.scheduling.list_scheduler import list_schedule
from repro.scheduling.force_directed import force_directed_schedule

__all__ = [
    "asap_schedule",
    "alap_schedule",
    "mobility",
    "list_schedule",
    "force_directed_schedule",
]
