"""Force-directed scheduling (Paulin-Knight style), as an extension.

The paper's future work is "integrating HLPower into a complete
high-level synthesis algorithm that includes scheduling"; this module
provides the classic latency-constrained scheduler that minimizes the
peak per-class concurrency — i.e. it *shapes* the distribution the
binder's Theorem 1 bound depends on. Included as the scheduling half of
that future-work integration and exercised by the ablation benches.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG, Operation
from repro.cdfg.schedule import DEFAULT_LATENCIES, Schedule
from repro.scheduling.asap_alap import alap_schedule, asap_schedule


def force_directed_schedule(
    cdfg: CDFG,
    length: Optional[int] = None,
    latencies: Optional[Mapping[str, int]] = None,
) -> Schedule:
    """Latency-constrained schedule balancing per-class concurrency.

    Iteratively fixes the (operation, step) assignment with the lowest
    *force* — the increase in the class's expected concurrency — then
    re-tightens every other operation's window. ``length`` defaults to
    the critical-path length.
    """
    lat = dict(latencies or DEFAULT_LATENCIES)
    asap = asap_schedule(cdfg, lat)
    target = length if length is not None else asap.length
    alap = alap_schedule(cdfg, target, lat)

    earliest = dict(asap.start)
    latest = dict(alap.start)
    fixed: Dict[int, int] = {}
    successors = cdfg.successor_map()
    predecessors = {
        op.op_id: cdfg.predecessors(op) for op in cdfg.operations.values()
    }

    pending = sorted(cdfg.operations)
    while pending:
        distribution = _distribution_graph(cdfg, earliest, latest, lat, target)
        best = None
        for op_id in pending:
            op = cdfg.operations[op_id]
            for step in range(earliest[op_id], latest[op_id] + 1):
                force = _force(op, step, earliest, latest, lat, distribution)
                key = (force, op_id, step)
                if best is None or key < best:
                    best = key
        _, op_id, step = best
        fixed[op_id] = step
        earliest[op_id] = latest[op_id] = step
        pending.remove(op_id)
        _propagate_windows(
            cdfg, op_id, earliest, latest, lat, successors, predecessors
        )

    schedule = Schedule(cdfg, fixed, lat)
    schedule.validate()
    return schedule


def _distribution_graph(
    cdfg: CDFG,
    earliest: Dict[int, int],
    latest: Dict[int, int],
    lat: Mapping[str, int],
    length: int,
) -> Dict[str, List[float]]:
    """Expected per-step concurrency per resource class."""
    dist: Dict[str, List[float]] = {
        cls: [0.0] * (length + 2) for cls in cdfg.resource_classes()
    }
    for op in cdfg.operations.values():
        window = latest[op.op_id] - earliest[op.op_id] + 1
        weight = 1.0 / window
        duration = lat[op.resource_class]
        for start in range(earliest[op.op_id], latest[op.op_id] + 1):
            for offset in range(duration):
                step = start + offset
                if step <= length + 1:
                    dist[op.resource_class][step] += weight
    return dist


def _force(
    op: Operation,
    step: int,
    earliest: Dict[int, int],
    latest: Dict[int, int],
    lat: Mapping[str, int],
    distribution: Dict[str, List[float]],
) -> float:
    """Self-force of assigning ``op`` to ``step``."""
    window = latest[op.op_id] - earliest[op.op_id] + 1
    weight = 1.0 / window
    duration = lat[op.resource_class]
    dist = distribution[op.resource_class]
    force = 0.0
    for candidate in range(earliest[op.op_id], latest[op.op_id] + 1):
        delta = (1.0 if candidate == step else 0.0) - weight
        for offset in range(duration):
            index = candidate + offset
            if index < len(dist):
                force += dist[index] * delta
    return force


def _propagate_windows(
    cdfg: CDFG,
    changed: int,
    earliest: Dict[int, int],
    latest: Dict[int, int],
    lat: Mapping[str, int],
    successors,
    predecessors,
) -> None:
    """Re-tighten ASAP/ALAP windows after fixing one operation."""
    worklist = [changed]
    while worklist:
        op_id = worklist.pop()
        op = cdfg.operations[op_id]
        done = earliest[op_id] + lat[op.resource_class]
        for succ in successors[op_id]:
            if earliest[succ.op_id] < done:
                earliest[succ.op_id] = done
                if earliest[succ.op_id] > latest[succ.op_id]:
                    raise ScheduleError(
                        f"window collapsed for {succ.name} during "
                        "force-directed scheduling"
                    )
                worklist.append(succ.op_id)
        for pred in predecessors[op_id]:
            bound = latest[op_id] - lat[pred.resource_class]
            if latest[pred.op_id] > bound:
                latest[pred.op_id] = bound
                if earliest[pred.op_id] > latest[pred.op_id]:
                    raise ScheduleError(
                        f"window collapsed for {pred.name} during "
                        "force-directed scheduling"
                    )
                worklist.append(pred.op_id)
