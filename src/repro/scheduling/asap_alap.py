"""ASAP / ALAP scheduling and operation mobility.

Unconstrained schedules bounding every operation's feasible window:
ASAP starts each operation as soon as its operands exist; ALAP delays
it as much as a target length allows. The difference of the two start
times is the operation's *mobility*, the standard list-scheduling
priority.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG, Operation
from repro.cdfg.schedule import DEFAULT_LATENCIES, Schedule


def asap_schedule(
    cdfg: CDFG, latencies: Optional[Mapping[str, int]] = None
) -> Schedule:
    """Earliest feasible start for every operation (steps from 1)."""
    lat = dict(latencies or DEFAULT_LATENCIES)
    start: Dict[int, int] = {}
    for op in cdfg.topological_order():
        earliest = 1
        for pred in cdfg.predecessors(op):
            earliest = max(
                earliest, start[pred.op_id] + lat[pred.resource_class]
            )
        start[op.op_id] = earliest
    schedule = Schedule(cdfg, start, lat)
    schedule.validate()
    return schedule


def alap_schedule(
    cdfg: CDFG,
    length: Optional[int] = None,
    latencies: Optional[Mapping[str, int]] = None,
) -> Schedule:
    """Latest feasible start within ``length`` control steps.

    ``length`` defaults to the ASAP schedule length (the critical
    path); anything shorter is infeasible and raises
    :class:`~repro.errors.ScheduleError`.
    """
    lat = dict(latencies or DEFAULT_LATENCIES)
    asap = asap_schedule(cdfg, lat)
    target = length if length is not None else asap.length
    if target < asap.length:
        raise ScheduleError(
            f"target length {target} below critical path {asap.length}"
        )
    successors = cdfg.successor_map()
    start: Dict[int, int] = {}
    for op in reversed(cdfg.topological_order()):
        own_latency = lat[op.resource_class]
        latest = target - own_latency + 1
        for succ in successors[op.op_id]:
            latest = min(latest, start[succ.op_id] - own_latency)
        if latest < 1:
            raise ScheduleError(
                f"operation {op.name} has no feasible ALAP slot"
            )
        start[op.op_id] = latest
    schedule = Schedule(cdfg, start, lat)
    schedule.validate()
    return schedule


def mobility(
    cdfg: CDFG,
    length: Optional[int] = None,
    latencies: Optional[Mapping[str, int]] = None,
) -> Dict[int, int]:
    """Per-operation slack: ``alap_start - asap_start``."""
    asap = asap_schedule(cdfg, latencies)
    alap = alap_schedule(cdfg, length, latencies)
    return {
        op_id: alap.start[op_id] - asap.start[op_id] for op_id in asap.start
    }
