"""Precalculated switching-activity table (Section 5.2.2).

"In our experiments we precalculate the switching activities for all
combinations of multiplexers and functional units ... The calculated
SA values are then stored in a text file. A hash table is then
generated when HLPower is initially run by reading in the precalculated
values from the text file."

:class:`SATable` reproduces exactly that: a lazy, persistent lookup of
the glitch-aware estimated SA of the Figure-2 partial datapath — two
input multiplexers feeding one functional unit — keyed by
``(fu_class, mux_a_size, mux_b_size)``. Values are symmetric under
port swap, so keys are normalized to ``mux_a <= mux_b``.

By default the estimate runs on the cleaned gate-level netlist; with
``map_to_luts=True`` the partial datapath is first mapped to K-LUTs by
the glitch-aware mapper (the paper's exact pipeline). Both produce the
same *ordering* of candidate bindings — which is all Equation (4)
consumes — and the gate-level mode is an order of magnitude faster;
``benchmarks/test_ablation_sa_table.py`` verifies the orderings agree,
mirroring the paper's precalc-vs-dynamic equivalence claim.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, TextIO, Tuple

from repro.errors import BindingError
from repro.activity import estimate_switching_activity
from repro.netlist.library import FU_TYPES, build_partial_datapath
from repro.netlist.transform import clean
from repro.techmap import map_netlist

Key = Tuple[str, int, int]

#: Default datapath bit-width used for the table's partial datapaths.
#: The table drives *relative* edge weights; 4 bits preserves ordering
#: while keeping precalculation fast (see module docstring).
DEFAULT_TABLE_WIDTH = 4


@dataclass(frozen=True)
class SATableConfig:
    """Estimation settings for one table (all baked into the keys)."""

    width: int = DEFAULT_TABLE_WIDTH
    k: int = 4
    map_to_luts: bool = False
    glitch_aware: bool = True


class SATable:
    """Lazy, optionally file-backed SA lookup for partial datapaths."""

    def __init__(
        self,
        config: Optional[SATableConfig] = None,
        path: Optional[str] = None,
    ):
        self.config = config or SATableConfig()
        self.path = path
        self._values: Dict[Key, float] = {}
        self._dirty = False
        if path is not None and os.path.exists(path):
            with open(path) as handle:
                self._read(handle)

    # -- lookup -----------------------------------------------------------

    @staticmethod
    def normalize(fu_class: str, mux_a: int, mux_b: int) -> Key:
        if fu_class not in FU_TYPES:
            raise BindingError(f"unknown FU class {fu_class!r}")
        if mux_a < 1 or mux_b < 1:
            raise BindingError(
                f"mux sizes must be >= 1, got ({mux_a}, {mux_b})"
            )
        low, high = sorted((mux_a, mux_b))
        return (fu_class, low, high)

    def get(self, fu_class: str, mux_a: int, mux_b: int) -> float:
        """SA of the partial datapath; computed and cached on miss."""
        key = self.normalize(fu_class, mux_a, mux_b)
        value = self._values.get(key)
        if value is None:
            value = self._estimate(key)
            self._values[key] = value
            self._dirty = True
        return value

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Key) -> bool:
        return self.normalize(*key) in self._values

    def _estimate(self, key: Key) -> float:
        fu_class, mux_a, mux_b = key
        netlist = build_partial_datapath(
            fu_class, mux_a, mux_b, self.config.width
        )
        clean(netlist)
        if self.config.map_to_luts:
            result = map_netlist(
                netlist,
                k=self.config.k,
                glitch_aware=self.config.glitch_aware,
            )
            total = result.total_sa
        else:
            report = estimate_switching_activity(
                netlist, glitch_aware=self.config.glitch_aware
            )
            total = report.total
        # Quantize at the persisted precision (save() writes %.9f), so
        # a freshly computed value and the same value round-tripped
        # through the text file are identical — table fill state can
        # then never perturb a binding, which the flow pipeline's bind
        # fingerprint relies on (it excludes fill state by design).
        return round(total, 9)

    # -- bulk -----------------------------------------------------------

    def precalculate(
        self,
        max_mux: int,
        fu_classes: Iterable[str] = ("add", "mult"),
    ) -> int:
        """Fill the table for all combinations up to ``max_mux`` inputs.

        Returns the number of entries computed (cached entries are
        skipped). This is the paper's offline precalculation step.
        """
        computed = 0
        for fu_class in fu_classes:
            for mux_a in range(1, max_mux + 1):
                for mux_b in range(mux_a, max_mux + 1):
                    key = self.normalize(fu_class, mux_a, mux_b)
                    if key not in self._values:
                        self._values[key] = self._estimate(key)
                        self._dirty = True
                        computed += 1
        return computed

    # -- sharing ----------------------------------------------------------

    def snapshot(self) -> Dict[Key, float]:
        """Copy of the cached values (for shipping to sweep workers)."""
        return dict(self._values)

    def merge(self, values: Mapping[Key, float]) -> int:
        """Absorb entries computed elsewhere (e.g. by a sweep worker).

        Only keys not already cached are taken, so a worker's copy can
        never overwrite the parent's values. Returns the number of new
        entries (the table is marked dirty if any were added).
        """
        added = 0
        for key, value in values.items():
            if key not in self._values:
                self._values[key] = value
                added += 1
        if added:
            self._dirty = True
        return added

    # -- persistence ------------------------------------------------------

    _HEADER = "# fu mux_a mux_b width k mapped glitch sa"

    def save(self, path: Optional[str] = None) -> None:
        """Write the table as the paper's text file.

        The write is atomic: content goes to a uniquely-named temp file
        in the target directory and is moved into place with
        :func:`os.replace`, so a concurrent reader (or another saver —
        e.g. parallel sweep workers) can never observe a torn file.
        Last writer wins; the sweep engine funnels all saves through
        the parent process so nothing is lost.
        """
        target = path or self.path
        if target is None:
            raise BindingError("no path to save the SA table to")
        directory = os.path.dirname(target)
        if directory:
            os.makedirs(directory, exist_ok=True)
        config = self.config
        fd, tmp_path = tempfile.mkstemp(
            dir=directory or ".",
            prefix=os.path.basename(target) + ".",
            suffix=".tmp",
        )
        try:
            # mkstemp creates 0600; keep the target's existing mode (or
            # a normal umask-respecting default) instead.
            if os.path.exists(target):
                os.chmod(tmp_path, os.stat(target).st_mode & 0o777)
            else:
                umask = os.umask(0)
                os.umask(umask)
                os.chmod(tmp_path, 0o666 & ~umask)
            with os.fdopen(fd, "w") as handle:
                handle.write(self._HEADER + "\n")
                for (fu_class, mux_a, mux_b), value in sorted(
                    self._values.items()
                ):
                    handle.write(
                        f"{fu_class} {mux_a} {mux_b} {config.width} "
                        f"{config.k} {int(config.map_to_luts)} "
                        f"{int(config.glitch_aware)} {value:.9f}\n"
                    )
            os.replace(tmp_path, target)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self._dirty = False

    def save_if_dirty(self) -> None:
        if self._dirty and self.path is not None:
            self.save()

    def _read(self, handle: TextIO) -> None:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 8:
                raise BindingError(f"malformed SA table line: {line!r}")
            fu_class, mux_a, mux_b, width, k, mapped, glitch, value = parts
            if (
                int(width) != self.config.width
                or int(k) != self.config.k
                or bool(int(mapped)) != self.config.map_to_luts
                or bool(int(glitch)) != self.config.glitch_aware
            ):
                continue  # entry from a different configuration
            self._values[(fu_class, int(mux_a), int(mux_b))] = float(value)
