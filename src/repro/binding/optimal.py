"""Exact (exhaustive) functional-unit binding for small instances.

The related work the paper builds on formulates low-power binding as an
ILP with heuristic speed-ups (Davoodi-Srivastava [10]); resource
binding for multiplexer reduction is NP-complete (Pangrle [18]), so
exact solutions only scale to small instances — which is precisely
what makes them useful here: a *quality oracle* the test suite uses to
measure how far the heuristics (HLPower's iterative matching, the
flow baseline) sit from the optimum on instances where the optimum is
computable.

The solver branch-and-bounds over operation-to-unit assignments in
schedule order, minimizing total FU multiplexer inputs (``mux length``)
with the muxDiff sum as tie-break — the structural objective of
Tables 3/4.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.errors import BindingError, ResourceError
from repro.binding.base import (
    BindingSolution,
    FUBinding,
    FunctionalUnit,
    PortAssignment,
    RegisterBinding,
)
from repro.binding.registers import assign_ports, bind_registers
from repro.cdfg.schedule import Schedule

#: Refuse instances with a search space above roughly units**ops.
MAX_OPS_PER_CLASS = 14


def bind_optimal(
    schedule: Schedule,
    constraints: Mapping[str, int],
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
) -> BindingSolution:
    """Minimum-mux-length binding by branch and bound (small CDFGs).

    Raises :class:`~repro.errors.BindingError` when a class has more
    than :data:`MAX_OPS_PER_CLASS` operations (the search would not
    terminate in reasonable time).
    """
    started = time.perf_counter()
    cdfg = schedule.cdfg
    if registers is None:
        registers = bind_registers(schedule)
    if ports is None:
        ports = assign_ports(cdfg)

    units: List[FunctionalUnit] = []
    for fu_class in cdfg.resource_classes():
        limit = constraints.get(fu_class)
        if limit is None:
            raise ResourceError(f"no constraint for class {fu_class!r}")
        groups = _solve_class(schedule, fu_class, limit, registers, ports)
        for ops in groups:
            units.append(FunctionalUnit(len(units), fu_class, ops))

    solution = BindingSolution(
        schedule=schedule,
        registers=registers,
        ports=ports,
        fus=FUBinding(units, True),
        algorithm="optimal",
        runtime_s=time.perf_counter() - started,
    )
    solution.validate()
    return solution


def _solve_class(
    schedule: Schedule,
    fu_class: str,
    limit: int,
    registers: RegisterBinding,
    ports: PortAssignment,
) -> List[FrozenSet[int]]:
    cdfg = schedule.cdfg
    ops = sorted(
        (
            op
            for op in cdfg.operations.values()
            if op.resource_class == fu_class
        ),
        key=lambda op: (schedule.start_of(op), op.op_id),
    )
    if not ops:
        return []
    if len(ops) > MAX_OPS_PER_CLASS:
        raise BindingError(
            f"exact binding limited to {MAX_OPS_PER_CLASS} ops per "
            f"class; {fu_class!r} has {len(ops)}"
        )
    _, density = schedule.densest_step(fu_class)
    if limit < density:
        raise ResourceError(
            f"constraint {limit} for {fu_class!r} below the "
            f"densest-step bound {density}"
        )

    port_regs = []
    for op in ops:
        var_a, var_b = ports.of(op)
        port_regs.append(
            (registers.register_of(var_a), registers.register_of(var_b))
        )
    busy = []
    for op in ops:
        start, end = schedule.busy_interval(op)
        busy.append(set(range(start, end + 1)))

    best_cost: List[Tuple[int, int]] = [(1 << 30, 1 << 30)]
    best_groups: List[List[int]] = [[]]

    unit_ops: List[List[int]] = [[] for _ in range(limit)]
    unit_busy: List[Set[int]] = [set() for _ in range(limit)]
    unit_srcs_a: List[Set[int]] = [set() for _ in range(limit)]
    unit_srcs_b: List[Set[int]] = [set() for _ in range(limit)]

    def cost_now() -> Tuple[int, int]:
        length = 0
        diff = 0
        for k in range(limit):
            if not unit_ops[k]:
                continue
            size_a, size_b = len(unit_srcs_a[k]), len(unit_srcs_b[k])
            length += (size_a if size_a > 1 else 0) + (
                size_b if size_b > 1 else 0
            )
            diff += abs(size_a - size_b)
        return length, diff

    def recurse(index: int) -> None:
        if index == len(ops):
            cost = cost_now()
            if cost < best_cost[0]:
                best_cost[0] = cost
                best_groups[0] = [list(group) for group in unit_ops]
            return
        if cost_now()[0] > best_cost[0][0]:
            return  # mux length only grows; prune
        seen_empty = False
        for k in range(limit):
            if not unit_ops[k]:
                # Symmetry breaking: all empty units are equivalent.
                if seen_empty:
                    continue
                seen_empty = True
            if unit_busy[k] & busy[index]:
                continue
            reg_a, reg_b = port_regs[index]
            added_a = reg_a not in unit_srcs_a[k]
            added_b = reg_b not in unit_srcs_b[k]
            unit_ops[k].append(index)
            unit_busy[k] |= busy[index]
            if added_a:
                unit_srcs_a[k].add(reg_a)
            if added_b:
                unit_srcs_b[k].add(reg_b)
            recurse(index + 1)
            unit_ops[k].pop()
            unit_busy[k] -= busy[index]
            if added_a:
                unit_srcs_a[k].discard(reg_a)
            if added_b:
                unit_srcs_b[k].discard(reg_b)

    recurse(0)
    if best_cost[0][0] >= (1 << 30):
        raise BindingError(
            f"no feasible exact binding for {fu_class!r} within "
            f"{limit} units"
        )
    return [
        frozenset(ops[i].op_id for i in group)
        for group in best_groups[0]
        if group
    ]
