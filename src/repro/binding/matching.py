"""Maximum-weight bipartite matching.

Both binding stages solve weighted bipartite graphs ("solve G for
maximum weight", Algorithm 1 line 14). Two implementations:

* :func:`max_weight_matching` — reduction to a rectangular assignment
  problem solved by ``scipy.optimize.linear_sum_assignment``: pad the
  weight matrix to square with zero-weight "stay unmatched" cells, take
  the maximum assignment, and drop pairs that use no real edge.
* :func:`max_weight_matching_python` — a pure-Python exact solver
  (augmenting search over vertex orderings is exponential, so this uses
  the same Hungarian reduction implemented directly); retained for
  environments without scipy and as a differential-test oracle.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import BindingError

Edge = Tuple[Hashable, Hashable]


def max_weight_matching(
    left: Sequence[Hashable],
    right: Sequence[Hashable],
    weights: Mapping[Edge, float],
) -> Dict[Hashable, Hashable]:
    """Maximum-total-weight matching of a bipartite graph.

    ``weights`` maps ``(left_node, right_node)`` to a strictly positive
    weight; absent pairs are not edges. Returns a dict
    ``left_node -> right_node`` containing only genuinely matched
    pairs. Raises on non-positive weights (a zero-weight edge is
    indistinguishable from "no edge" in the reduction).
    """
    _check(left, right, weights)
    if not weights:
        return {}
    from scipy.optimize import linear_sum_assignment

    n = max(len(left), len(right))
    matrix = np.zeros((n, n), dtype=np.float64)
    left_index = {node: i for i, node in enumerate(left)}
    right_index = {node: j for j, node in enumerate(right)}
    for (u, v), w in weights.items():
        matrix[left_index[u], right_index[v]] = w

    rows, cols = linear_sum_assignment(matrix, maximize=True)
    result: Dict[Hashable, Hashable] = {}
    for row, col in zip(rows, cols):
        if row < len(left) and col < len(right) and matrix[row, col] > 0.0:
            result[left[row]] = right[col]
    return result


def max_weight_matching_python(
    left: Sequence[Hashable],
    right: Sequence[Hashable],
    weights: Mapping[Edge, float],
) -> Dict[Hashable, Hashable]:
    """Pure-Python Hungarian algorithm (O(n^3)); scipy-free oracle."""
    _check(left, right, weights)
    if not weights:
        return {}
    n = max(len(left), len(right))
    left_index = {node: i for i, node in enumerate(left)}
    right_index = {node: j for j, node in enumerate(right)}
    cost = [[0.0] * (n + 1) for _ in range(n + 1)]  # 1-based, minimize
    for (u, v), w in weights.items():
        cost[left_index[u] + 1][right_index[v] + 1] = -w

    # Jonker-Volgenant style shortest augmenting path Hungarian.
    u_pot = [0.0] * (n + 1)
    v_pot = [0.0] * (n + 1)
    match_col = [0] * (n + 1)  # column -> row
    for row in range(1, n + 1):
        match_col[0] = row
        j0 = 0
        minv = [float("inf")] * (n + 1)
        used = [False] * (n + 1)
        way = [0] * (n + 1)
        while True:
            used[j0] = True
            i0 = match_col[j0]
            delta = float("inf")
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                current = cost[i0][j] - u_pot[i0] - v_pot[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u_pot[match_col[j]] += delta
                    v_pot[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match_col[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            match_col[j0] = match_col[j1]
            j0 = j1

    result: Dict[Hashable, Hashable] = {}
    for col in range(1, n + 1):
        row = match_col[col]
        if 1 <= row <= len(left) and col <= len(right):
            u = left[row - 1]
            v = right[col - 1]
            if weights.get((u, v), 0.0) > 0.0:
                result[u] = v
    return result


def matching_weight(
    matching: Mapping[Hashable, Hashable],
    weights: Mapping[Edge, float],
) -> float:
    """Total weight of a matching."""
    return sum(weights[(u, v)] for u, v in matching.items())


def _check(
    left: Sequence[Hashable],
    right: Sequence[Hashable],
    weights: Mapping[Edge, float],
) -> None:
    if len(set(left)) != len(left) or len(set(right)) != len(right):
        raise BindingError("duplicate nodes in bipartite vertex set")
    left_set, right_set = set(left), set(right)
    for (u, v), w in weights.items():
        if u not in left_set or v not in right_set:
            raise BindingError(f"edge ({u!r}, {v!r}) references unknown node")
        if not w > 0.0:
            raise BindingError(
                f"edge ({u!r}, {v!r}) must have positive weight, got {w}"
            )
