"""Network-flow baseline binder (the LOPASS comparison point).

LOPASS [3,4] binds with a min-cost network-flow formulation (Chen &
Cong, ASP-DAC'04 [2]) that assigns *all* operations of a class to FUs
in a single pass, minimizing an interconnect/multiplexer cost — with
no glitch model. This module implements that formulation:

* one flow unit = one functional unit; a unit's path through the DAG
  of compatible operations is the set of operations bound to it;
* every operation's internal edge carries a large reward so min-cost
  solutions cover all operations (feasible whenever the FU count is at
  least the densest-step count);
* edge costs between consecutive operations count the new register
  sources the successor adds to the unit's two input ports — the flow
  view of multiplexer growth.

The contrast with HLPower is exactly the paper's: a one-shot,
mux-aware but glitch-blind global optimization versus an iterative,
glitch-aware matching (Section 5.2.2: "The iterative approach ...
allows the multiplexer size to be better controlled than is possible
with single iteration approaches, such as with a network flow
algorithm").
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional

import networkx as nx

from repro.errors import BindingError, ResourceError
from repro.binding.base import (
    BindingSolution,
    FUBinding,
    FunctionalUnit,
    PortAssignment,
    RegisterBinding,
)
from repro.binding.registers import assign_ports, bind_registers
from repro.cdfg.graph import Operation
from repro.cdfg.schedule import Schedule

#: Reward (negative cost) for covering one operation; must dominate any
#: feasible interconnect cost so coverage is never traded away.
_COVER_REWARD = 1_000_000


def bind_lopass(
    schedule: Schedule,
    constraints: Mapping[str, int],
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
) -> BindingSolution:
    """Bind every operation with the min-cost-flow formulation."""
    started = time.perf_counter()
    cdfg = schedule.cdfg
    if registers is None:
        registers = bind_registers(schedule)
    if ports is None:
        ports = assign_ports(cdfg)

    units: List[FunctionalUnit] = []
    constraint_met = True
    for fu_class in cdfg.resource_classes():
        limit = constraints.get(fu_class)
        if limit is None:
            raise ResourceError(f"no constraint for class {fu_class!r}")
        chains = _bind_class(schedule, fu_class, limit, registers, ports)
        if len(chains) > limit:
            constraint_met = False
        for chain in chains:
            units.append(
                FunctionalUnit(len(units), fu_class, frozenset(chain))
            )

    solution = BindingSolution(
        schedule=schedule,
        registers=registers,
        ports=ports,
        fus=FUBinding(units, constraint_met),
        algorithm="lopass",
        runtime_s=time.perf_counter() - started,
    )
    solution.validate()
    return solution


def _bind_class(
    schedule: Schedule,
    fu_class: str,
    limit: int,
    registers: RegisterBinding,
    ports: PortAssignment,
) -> List[List[int]]:
    """Chains of operation ids, one chain per allocated FU."""
    cdfg = schedule.cdfg
    ops = sorted(
        (
            op
            for op in cdfg.operations.values()
            if op.resource_class == fu_class
        ),
        key=lambda op: (schedule.start_of(op), op.op_id),
    )
    if not ops:
        return []
    _, density = schedule.densest_step(fu_class)
    if limit < density:
        raise ResourceError(
            f"constraint {limit} for {fu_class!r} below the "
            f"densest-step bound {density}"
        )

    graph = nx.DiGraph()
    graph.add_node("S", demand=-limit)
    graph.add_node("T", demand=limit)
    graph.add_edge("S", "T", capacity=limit, weight=0)  # idle units

    # LOPASS's FU binding runs before registers are assigned, so its
    # interconnect costs are *variable*-level estimates: two operations
    # share an input only when they read the same variable. (HLPower's
    # structural advantage — Section 5.2.2 — is exactly that register
    # binding precedes FU binding, so it sees exact register-level mux
    # sizes; giving the baseline that knowledge would overstate it.)
    port_regs = {op.op_id: ports.of(op) for op in ops}
    for op in ops:
        node_in = ("in", op.op_id)
        node_out = ("out", op.op_id)
        graph.add_edge(node_in, node_out, capacity=1, weight=-_COVER_REWARD)
        graph.add_edge("S", node_in, capacity=1, weight=2)  # two fresh ports
        graph.add_edge(node_out, "T", capacity=1, weight=0)
    for i, earlier in enumerate(ops):
        for later in ops[i + 1:]:
            if schedule.end_of(earlier) < schedule.start_of(later):
                cost = _transition_cost(
                    port_regs[earlier.op_id], port_regs[later.op_id]
                )
                graph.add_edge(
                    ("out", earlier.op_id),
                    ("in", later.op_id),
                    capacity=1,
                    weight=cost,
                )

    # Exactly `limit` units of flow (node demands), minimum cost; the
    # coverage rewards make every op-internal edge carry flow.
    flow = nx.min_cost_flow(graph)
    return _extract_chains(flow, ops)


def _transition_cost(earlier_regs, later_regs) -> int:
    """New mux inputs when ``later`` joins a unit after ``earlier``.

    The pairwise surrogate for multiplexer growth used by flow-based
    binders: each port whose source *variable* differs from the
    predecessor's adds one estimated multiplexer input.
    """
    cost = 0
    if later_regs[0] != earlier_regs[0]:
        cost += 1
    if later_regs[1] != earlier_regs[1]:
        cost += 1
    return cost


def _extract_chains(flow, ops: List[Operation]) -> List[List[int]]:
    """Follow unit flow paths S -> ... -> T into operation chains."""
    next_of: Dict[int, Optional[int]] = {}
    starts: List[int] = []
    for op in ops:
        if flow["S"].get(("in", op.op_id), 0) > 0:
            starts.append(op.op_id)
        out_flow = flow[("out", op.op_id)]
        successor = None
        for target, amount in out_flow.items():
            if amount > 0 and target != "T":
                successor = target[1]
                break
        next_of[op.op_id] = successor
        if flow[("in", op.op_id)][("out", op.op_id)] == 0:
            raise BindingError(
                f"network flow left operation {op.op_id} uncovered"
            )

    chains: List[List[int]] = []
    for start in starts:
        chain = []
        current: Optional[int] = start
        while current is not None:
            chain.append(current)
            current = next_of[current]
        chains.append(chain)

    covered = {op_id for chain in chains for op_id in chain}
    if len(covered) != len(ops):
        raise BindingError(
            f"flow chains cover {len(covered)} of {len(ops)} operations"
        )
    return chains
