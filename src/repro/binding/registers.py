"""Register allocation and binding (paper Section 5.1).

Follows Huang et al. [11]: allocate as many registers as the peak
number of simultaneously-live variables, then bind one cluster of
mutually-unsharable variables at a time — clusters taken in ascending
birth order — by solving a weighted bipartite graph between the
cluster's unbound variables and the compatible registers.

Edge weights encode interconnect affinity (the quantity [11] optimizes
with its matching): a register is a better home for a variable when it
already holds variables with the same producer FU class or variables
flowing into the same consumers, because those shares later collapse
multiplexer inputs.

Port assignment happens here too: "Operator ports are randomly bound
during this step" — :func:`assign_ports` performs the (seeded) random
choice for commutative operations, and both binders consume the same
result, as in the paper's experimental setup.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import BindingError
from repro.binding.base import PortAssignment, RegisterBinding
from repro.binding.matching import max_weight_matching
from repro.cdfg.graph import CDFG, Operation
from repro.cdfg.lifetimes import (
    Lifetime,
    compute_lifetimes,
    live_variables,
    max_overlap,
)
from repro.cdfg.schedule import Schedule

#: Affinity bonuses for the bipartite edge weights.
_SAME_PRODUCER_CLASS = 2.0
_SHARED_CONSUMER = 3.0
_SHARED_PRODUCER_INPUT = 1.0
_BASE_FEASIBLE = 1.0


def bind_registers(schedule: Schedule) -> RegisterBinding:
    """Allocate and bind registers for every live variable.

    Returns a :class:`RegisterBinding` whose register count equals the
    lifetime-overlap peak (the minimum possible for the schedule).

    The cluster loop keeps per-register aggregates (last occupant
    death, producer-class counts, consumer-op counts) instead of
    rescanning every occupant per candidate pair, turning the
    O(clusters x registers x occupants) inner loop into an
    O(pairs x consumers-per-variable) one. All affinity terms are
    integer-valued, so the aggregated sums are bit-identical to the
    per-occupant accumulation they replace.
    """
    cdfg = schedule.cdfg
    lifetimes = compute_lifetimes(schedule)
    _, n_registers = max_overlap(lifetimes)
    if n_registers == 0:
        return RegisterBinding(0, {})

    live = sorted(
        live_variables(lifetimes), key=lambda lt: (lt.birth, lt.var_id)
    )
    state = _RegisterFileState(cdfg, n_registers)
    assignment: Dict[int, int] = {}

    index = 0
    while index < len(live):
        birth = live[index].birth
        cluster = []
        while index < len(live) and live[index].birth == birth:
            cluster.append(live[index])
            index += 1
        _bind_cluster(cluster, state, assignment)
    return RegisterBinding(n_registers, assignment)


class _RegisterFileState:
    """Incremental per-register occupancy aggregates.

    Clusters arrive in ascending birth order, so a candidate variable
    overlaps a register's occupants iff the latest occupant is still
    alive at the candidate's birth — one comparison against
    ``last_death`` replaces the per-occupant interval scan. The three
    affinity terms are sums of exact small-integer floats, so keeping
    counts (producer classes, consumer ops, occupant variables) yields
    the same weights the occupant-by-occupant loop produced.
    """

    def __init__(self, cdfg: CDFG, n_registers: int) -> None:
        self.cdfg = cdfg
        self.readers = cdfg.consumer_map()
        self.registers = list(range(n_registers))
        self.last_death = [None] * n_registers
        #: Per register: occupant count by producing resource class
        #: (occupants without a producer are not counted).
        self.class_counts: List[Dict[str, int]] = [
            {} for _ in range(n_registers)
        ]
        #: Per register: number of occupants consumed by each op id.
        self.consumer_counts: List[Dict[int, int]] = [
            {} for _ in range(n_registers)
        ]
        #: Per register: the occupant variable ids.
        self.occupant_vars: List[set] = [set() for _ in range(n_registers)]
        self._consumers_of: Dict[int, frozenset] = {}
        self._operand_sets: Dict[int, frozenset] = {}

    def consumers_of(self, var_id: int) -> frozenset:
        cached = self._consumers_of.get(var_id)
        if cached is None:
            cached = frozenset(
                op.op_id for op in self.readers[var_id]
            )
            self._consumers_of[var_id] = cached
        return cached

    def operands_of(self, op_id: int) -> frozenset:
        cached = self._operand_sets.get(op_id)
        if cached is None:
            cached = frozenset(self.cdfg.operations[op_id].inputs)
            self._operand_sets[op_id] = cached
        return cached

    def affinity(self, var_id: int, register: int) -> float:
        """Interconnect-affinity weight of putting ``var_id`` here."""
        weight = _BASE_FEASIBLE
        producer = self.cdfg.operation_of(var_id)
        if producer is not None:
            # Same producing FU class: the register's input mux may
            # collapse once FUs are shared.
            weight += _SAME_PRODUCER_CLASS * self.class_counts[register].get(
                producer.resource_class, 0
            )
        # Feeding the same operations from one register means one mux
        # input instead of two on that operation's FU port.
        counts = self.consumer_counts[register]
        if counts:
            shared = 0
            for op_id in self.consumers_of(var_id):
                shared += counts.get(op_id, 0)
            weight += _SHARED_CONSUMER * shared
        if producer is not None:
            occupants = self.occupant_vars[register]
            if occupants:
                weight += _SHARED_PRODUCER_INPUT * sum(
                    1
                    for operand in self.operands_of(producer.op_id)
                    if operand in occupants
                )
        return weight

    def occupy(self, lifetime: Lifetime, register: int) -> None:
        last = self.last_death[register]
        if last is None or lifetime.death > last:
            self.last_death[register] = lifetime.death
        producer = self.cdfg.operation_of(lifetime.var_id)
        if producer is not None:
            counts = self.class_counts[register]
            counts[producer.resource_class] = (
                counts.get(producer.resource_class, 0) + 1
            )
        counts = self.consumer_counts[register]
        for op_id in self.consumers_of(lifetime.var_id):
            counts[op_id] = counts.get(op_id, 0) + 1
        self.occupant_vars[register].add(lifetime.var_id)


def _bind_cluster(
    cluster: List[Lifetime],
    state: _RegisterFileState,
    assignment: Dict[int, int],
) -> None:
    """Bind one birth-time cluster via weighted bipartite matching."""
    birth = cluster[0].birth
    feasible = [
        register
        for register in state.registers
        if state.last_death[register] is None
        or state.last_death[register] <= birth
    ]
    weights: Dict[Tuple[int, int], float] = {}
    for lifetime in cluster:
        for register in feasible:
            weights[(lifetime.var_id, register)] = state.affinity(
                lifetime.var_id, register
            )
    matching = max_weight_matching(
        [lt.var_id for lt in cluster], state.registers, weights
    )
    for lifetime in cluster:
        register = matching.get(lifetime.var_id)
        if register is None:
            raise BindingError(
                f"no compatible register for variable {lifetime.var_id} "
                f"(allocation too small?)"
            )
        assignment[lifetime.var_id] = register
        state.occupy(lifetime, register)


def assign_ports(
    cdfg: CDFG,
    seed: Optional[int] = 0,
    commutative: Tuple[str, ...] = ("add", "mult"),
) -> PortAssignment:
    """Bind each operation's operands to FU ports A and B.

    For commutative operation types the orientation is chosen randomly
    (seeded), as the paper does during register binding; ``sub`` is
    never swapped. With ``seed=None`` the textual operand order is
    kept.
    """
    rng = random.Random(seed) if seed is not None else None
    ports: Dict[int, Tuple[int, int]] = {}
    for op_id in sorted(cdfg.operations):
        op = cdfg.operations[op_id]
        var_a, var_b = op.inputs
        if rng is not None and op.op_type in commutative and rng.random() < 0.5:
            var_a, var_b = var_b, var_a
        ports[op_id] = (var_a, var_b)
    return PortAssignment(ports)
