"""Register allocation and binding (paper Section 5.1).

Follows Huang et al. [11]: allocate as many registers as the peak
number of simultaneously-live variables, then bind one cluster of
mutually-unsharable variables at a time — clusters taken in ascending
birth order — by solving a weighted bipartite graph between the
cluster's unbound variables and the compatible registers.

Edge weights encode interconnect affinity (the quantity [11] optimizes
with its matching): a register is a better home for a variable when it
already holds variables with the same producer FU class or variables
flowing into the same consumers, because those shares later collapse
multiplexer inputs.

Port assignment happens here too: "Operator ports are randomly bound
during this step" — :func:`assign_ports` performs the (seeded) random
choice for commutative operations, and both binders consume the same
result, as in the paper's experimental setup.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import BindingError
from repro.binding.base import PortAssignment, RegisterBinding
from repro.binding.matching import max_weight_matching
from repro.cdfg.graph import CDFG, Operation
from repro.cdfg.lifetimes import (
    Lifetime,
    compute_lifetimes,
    live_variables,
    max_overlap,
)
from repro.cdfg.schedule import Schedule

#: Affinity bonuses for the bipartite edge weights.
_SAME_PRODUCER_CLASS = 2.0
_SHARED_CONSUMER = 3.0
_SHARED_PRODUCER_INPUT = 1.0
_BASE_FEASIBLE = 1.0


def bind_registers(schedule: Schedule) -> RegisterBinding:
    """Allocate and bind registers for every live variable.

    Returns a :class:`RegisterBinding` whose register count equals the
    lifetime-overlap peak (the minimum possible for the schedule).
    """
    cdfg = schedule.cdfg
    lifetimes = compute_lifetimes(schedule)
    _, n_registers = max_overlap(lifetimes)
    if n_registers == 0:
        return RegisterBinding(0, {})

    live = sorted(
        live_variables(lifetimes), key=lambda lt: (lt.birth, lt.var_id)
    )
    occupancy: Dict[int, List[Lifetime]] = {
        reg: [] for reg in range(n_registers)
    }
    assignment: Dict[int, int] = {}
    readers = cdfg.consumer_map()

    index = 0
    while index < len(live):
        birth = live[index].birth
        cluster = []
        while index < len(live) and live[index].birth == birth:
            cluster.append(live[index])
            index += 1
        _bind_cluster(
            cdfg, cluster, occupancy, assignment, readers
        )
    return RegisterBinding(n_registers, assignment)


def _bind_cluster(
    cdfg: CDFG,
    cluster: List[Lifetime],
    occupancy: Dict[int, List[Lifetime]],
    assignment: Dict[int, int],
    readers,
) -> None:
    """Bind one birth-time cluster via weighted bipartite matching."""
    registers = sorted(occupancy)
    weights: Dict[Tuple[int, int], float] = {}
    for lifetime in cluster:
        for register in registers:
            if any(lifetime.overlaps(o) for o in occupancy[register]):
                continue
            weights[(lifetime.var_id, register)] = _affinity(
                cdfg, lifetime.var_id, occupancy[register], readers
            )
    matching = max_weight_matching(
        [lt.var_id for lt in cluster], registers, weights
    )
    for lifetime in cluster:
        register = matching.get(lifetime.var_id)
        if register is None:
            raise BindingError(
                f"no compatible register for variable {lifetime.var_id} "
                f"(allocation too small?)"
            )
        assignment[lifetime.var_id] = register
        occupancy[register].append(lifetime)


def _affinity(
    cdfg: CDFG,
    var_id: int,
    occupants: List[Lifetime],
    readers,
) -> float:
    """Interconnect-affinity weight of putting ``var_id`` in a register."""
    weight = _BASE_FEASIBLE
    variable = cdfg.variables[var_id]
    producer = cdfg.operation_of(var_id)
    my_consumers = {op.op_id for op in readers[var_id]}
    for occupant in occupants:
        other = cdfg.variables[occupant.var_id]
        other_producer = cdfg.operation_of(occupant.var_id)
        if (
            producer is not None
            and other_producer is not None
            and producer.resource_class == other_producer.resource_class
        ):
            # Same producing FU class: the register's input mux may
            # collapse once FUs are shared.
            weight += _SAME_PRODUCER_CLASS
        their_consumers = {op.op_id for op in readers[occupant.var_id]}
        shared = len(my_consumers & their_consumers)
        if shared:
            # Feeding the same operations from one register means one
            # mux input instead of two on that operation's FU port.
            weight += _SHARED_CONSUMER * shared
        if producer is not None and occupant.var_id in set(
            cdfg.operations[producer.op_id].inputs
        ):
            weight += _SHARED_PRODUCER_INPUT
    return weight


def assign_ports(
    cdfg: CDFG,
    seed: Optional[int] = 0,
    commutative: Tuple[str, ...] = ("add", "mult"),
) -> PortAssignment:
    """Bind each operation's operands to FU ports A and B.

    For commutative operation types the orientation is chosen randomly
    (seeded), as the paper does during register binding; ``sub`` is
    never swapped. With ``seed=None`` the textual operand order is
    kept.
    """
    rng = random.Random(seed) if seed is not None else None
    ports: Dict[int, Tuple[int, int]] = {}
    for op_id in sorted(cdfg.operations):
        op = cdfg.operations[op_id]
        var_a, var_b = op.inputs
        if rng is not None and op.op_type in commutative and rng.random() < 0.5:
            var_a, var_b = var_b, var_a
        ports[op_id] = (var_a, var_b)
    return PortAssignment(ports)
