"""HLPower functional-unit binding (Algorithm 1).

Iteratively constructs weighted bipartite graphs between the allocated
FU nodes (``U``) and the not-yet-absorbed operation nodes (``V``),
solves each for maximum weight, and merges matched nodes, until the
resource constraint is met. Edge weights follow Equation (4): the
glitch-aware switching activity of the partial datapath the merge
would create (from the precalculated :class:`~repro.binding.sa_table.
SATable`) balanced against multiplexer-size balance (``muxDiff``).

Register binding precedes FU binding, so the exact register sources of
every port — and hence exact multiplexer sizes — are known when an
edge is weighted (Section 5.2.2 step 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import BindingError, ResourceError
from repro.binding.base import (
    BindingSolution,
    FUBinding,
    FunctionalUnit,
    PortAssignment,
    RegisterBinding,
)
from repro.binding.compat import BindingNode, select_initial_sets
from repro.binding.matching import max_weight_matching
from repro.binding.registers import assign_ports, bind_registers
from repro.binding.sa_table import SATable
from repro.binding.weights import DEFAULT_ALPHA, edge_weight
from repro.cdfg.schedule import Schedule


@dataclass
class HLPowerConfig:
    """Tunables of Algorithm 1 (defaults = the paper's Table 3 run)."""

    alpha: float = DEFAULT_ALPHA
    beta: Optional[Mapping[str, float]] = None
    sa_table: Optional[SATable] = None
    #: Stop once the per-class FU count reaches the constraint (the
    #: paper's loop condition). With False, keep merging to the minimum
    #: allocation (Figure 1 runs to exhaustion).
    stop_at_constraint: bool = True
    #: Safety bound on iterations per class.
    max_iterations: int = 10_000


@dataclass
class _ClassState:
    """Mutable per-class binding state."""

    u_nodes: List[BindingNode]
    v_nodes: List[BindingNode]
    regs_a: Dict[BindingNode, frozenset]
    regs_b: Dict[BindingNode, frozenset]
    iterations: int = 0
    constraint_met: bool = True


def bind_hlpower(
    schedule: Schedule,
    constraints: Mapping[str, int],
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
    config: Optional[HLPowerConfig] = None,
) -> BindingSolution:
    """Run the full HLPower binding (Algorithm 1).

    ``registers``/``ports`` default to this package's register binder
    and seeded port assignment; pass the same objects to
    :func:`~repro.binding.lopass.bind_lopass` for an apples-to-apples
    comparison (the paper uses "the same schedule, register allocation,
    and resource constraints" for both).
    """
    started = time.perf_counter()
    cfg = config or HLPowerConfig()
    cdfg = schedule.cdfg
    if registers is None:
        registers = bind_registers(schedule)
    if ports is None:
        ports = assign_ports(cdfg)
    table = cfg.sa_table if cfg.sa_table is not None else SATable()

    units: List[FunctionalUnit] = []
    constraint_met = True
    for fu_class in cdfg.resource_classes():
        limit = constraints.get(fu_class)
        if limit is None:
            raise ResourceError(f"no constraint for class {fu_class!r}")
        state = _bind_class(
            schedule, fu_class, limit, registers, ports, table, cfg
        )
        constraint_met &= state.constraint_met
        for node in state.u_nodes + state.v_nodes:
            units.append(
                FunctionalUnit(len(units), fu_class, node.ops)
            )

    solution = BindingSolution(
        schedule=schedule,
        registers=registers,
        ports=ports,
        fus=FUBinding(units, constraint_met),
        algorithm="hlpower",
        runtime_s=time.perf_counter() - started,
    )
    solution.validate()
    return solution


def _bind_class(
    schedule: Schedule,
    fu_class: str,
    limit: int,
    registers: RegisterBinding,
    ports: PortAssignment,
    table: SATable,
    cfg: HLPowerConfig,
) -> _ClassState:
    """Iterative bipartite matching for one resource class."""
    u_nodes, v_nodes = select_initial_sets(schedule, fu_class)
    state = _ClassState(u_nodes, v_nodes, {}, {})
    if not u_nodes and not v_nodes:
        return state
    for node in u_nodes + v_nodes:
        state.regs_a[node], state.regs_b[node] = _port_registers(
            schedule, node, registers, ports
        )

    while state.iterations < cfg.max_iterations:
        total = len(state.u_nodes) + len(state.v_nodes)
        if cfg.stop_at_constraint and total <= limit:
            break
        if not state.v_nodes:
            break
        weights = _edge_weights(state, fu_class, table, cfg)
        if not weights:
            break
        matching = max_weight_matching(
            list(range(len(state.u_nodes))),
            list(range(len(state.v_nodes))),
            weights,
        )
        if not matching:
            break
        _apply_matching(state, matching)
        state.iterations += 1

    if len(state.u_nodes) + len(state.v_nodes) > limit:
        state.constraint_met = False
    return state


def _edge_weights(
    state: _ClassState,
    fu_class: str,
    table: SATable,
    cfg: HLPowerConfig,
) -> Dict[Tuple[int, int], float]:
    """Equation-(4) weights for every compatible (U, V) node pair."""
    weights: Dict[Tuple[int, int], float] = {}
    for i, u_node in enumerate(state.u_nodes):
        for j, v_node in enumerate(state.v_nodes):
            if not u_node.compatible(v_node):
                continue
            mux_a = len(state.regs_a[u_node] | state.regs_a[v_node])
            mux_b = len(state.regs_b[u_node] | state.regs_b[v_node])
            sa = table.get(fu_class, mux_a, mux_b)
            weights[(i, j)] = edge_weight(
                sa, abs(mux_a - mux_b), fu_class, cfg.alpha, cfg.beta
            )
    return weights


def _apply_matching(
    state: _ClassState, matching: Mapping[int, int]
) -> None:
    """Merge matched V nodes into their U nodes (Algorithm 1 line 15)."""
    absorbed: Set[int] = set()
    for i, j in matching.items():
        u_node = state.u_nodes[i]
        v_node = state.v_nodes[j]
        merged = u_node.merge(v_node)
        state.regs_a[merged] = state.regs_a[u_node] | state.regs_a[v_node]
        state.regs_b[merged] = state.regs_b[u_node] | state.regs_b[v_node]
        state.u_nodes[i] = merged
        absorbed.add(j)
    state.v_nodes = [
        node for j, node in enumerate(state.v_nodes) if j not in absorbed
    ]


def _port_registers(
    schedule: Schedule,
    node: BindingNode,
    registers: RegisterBinding,
    ports: PortAssignment,
) -> Tuple[frozenset, frozenset]:
    """Register sources on each port of a node's hypothetical FU."""
    cdfg = schedule.cdfg
    regs_a: Set[int] = set()
    regs_b: Set[int] = set()
    for op_id in node.ops:
        var_a, var_b = ports.of(cdfg.operations[op_id])
        regs_a.add(registers.register_of(var_a))
        regs_b.add(registers.register_of(var_b))
    return frozenset(regs_a), frozenset(regs_b)
