"""Port-assignment optimization (the Chen-Cong [2] enhancement).

The paper's reference [2] ("Register binding and port assignment for
multiplexer optimization") exploits operand commutativity: after FU
binding, flipping which operand of a commutative operation feeds port
A vs. port B changes the distinct-source sets of the unit's two input
multiplexers without changing function. The paper's own flow binds
ports *randomly* during register binding; this module implements the
cited optimization as an optional post-pass.

Greedy descent: repeatedly sweep all commutative operations; flip an
operation's orientation whenever that strictly improves its unit's
``(mux_a + mux_b, |mux_a - mux_b|)`` — total multiplexer inputs first,
balance as tie-break — until a fixpoint. The objective is exactly what
Tables 3/4 measure, so the pass composes with either binder.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.binding.base import BindingSolution, PortAssignment
from repro.cdfg.graph import Operation

#: Operation types whose operands may be exchanged.
COMMUTATIVE = ("add", "mult")

#: Safety bound on full sweeps.
_MAX_SWEEPS = 64


def optimize_ports(
    solution: BindingSolution,
    commutative: Tuple[str, ...] = COMMUTATIVE,
) -> Tuple[BindingSolution, int]:
    """Return a solution with improved port orientation and flip count.

    The input solution is not modified; the result shares its schedule,
    register binding and FU binding, with a new
    :class:`~repro.binding.base.PortAssignment`.
    """
    cdfg = solution.schedule.cdfg
    registers = solution.registers
    ports: Dict[int, Tuple[int, int]] = {
        op_id: solution.ports.of(op)
        for op_id, op in cdfg.operations.items()
    }

    # Per unit: port source multisets derived from the current ports.
    unit_of: Dict[int, int] = {}
    members: Dict[int, List[Operation]] = {}
    for unit in solution.fus.units:
        members[unit.fu_id] = [
            cdfg.operations[op_id] for op_id in sorted(unit.ops)
        ]
        for op_id in unit.ops:
            unit_of[op_id] = unit.fu_id

    def unit_cost(fu_id: int) -> Tuple[int, int]:
        sources_a: Set[int] = set()
        sources_b: Set[int] = set()
        for op in members[fu_id]:
            var_a, var_b = ports[op.op_id]
            sources_a.add(registers.register_of(var_a))
            sources_b.add(registers.register_of(var_b))
        return (
            len(sources_a) + len(sources_b),
            abs(len(sources_a) - len(sources_b)),
        )

    flips = 0
    for _ in range(_MAX_SWEEPS):
        improved = False
        for unit in solution.fus.units:
            for op in members[unit.fu_id]:
                if op.op_type not in commutative:
                    continue
                before = unit_cost(unit.fu_id)
                var_a, var_b = ports[op.op_id]
                ports[op.op_id] = (var_b, var_a)
                after = unit_cost(unit.fu_id)
                if after < before:
                    flips += 1
                    improved = True
                else:
                    ports[op.op_id] = (var_a, var_b)
        if not improved:
            break

    optimized = BindingSolution(
        schedule=solution.schedule,
        registers=solution.registers,
        ports=PortAssignment(ports),
        fus=solution.fus,
        algorithm=solution.algorithm + "+portopt",
        runtime_s=solution.runtime_s,
    )
    optimized.validate()
    return optimized, flips
