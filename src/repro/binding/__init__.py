"""High-level binding algorithms (the paper's core contribution).

* :mod:`~repro.binding.base` — binding result types shared by all
  binders (register binding, FU binding, port assignment).
* :mod:`~repro.binding.registers` — weighted-bipartite register
  binding in the style of Huang et al. [11] (Section 5.1).
* :mod:`~repro.binding.matching` — max-weight bipartite matching.
* :mod:`~repro.binding.compat` — FU-node compatibility and the U/V
  split of Section 5.2.1.
* :mod:`~repro.binding.sa_table` — the precalculated glitch-aware SA
  table for (FU, mux, mux) combinations (Section 5.2.2).
* :mod:`~repro.binding.weights` — Equation (4) edge weights.
* :mod:`~repro.binding.hlpower` — Algorithm 1, the HLPower binder.
* :mod:`~repro.binding.lopass` — the network-flow baseline binder
  standing in for LOPASS [3,4] (see DESIGN.md substitutions).
* :mod:`~repro.binding.compile` — vectorized engines for both binders
  (``bind_engine="fast"``), decision-identical to the seed binders.
* :mod:`~repro.binding.mcts` — seeded Monte-Carlo tree search binder
  (``binder="mcts"``), never worse than the best heuristic.
"""

from repro.binding.base import (
    BindingSolution,
    FunctionalUnit,
    FUBinding,
    PortAssignment,
    RegisterBinding,
)
from repro.binding.matching import max_weight_matching
from repro.binding.registers import assign_ports, bind_registers
from repro.binding.compat import BindingNode, select_initial_sets
from repro.binding.sa_table import SATable
from repro.binding.weights import DEFAULT_BETA, edge_weight
from repro.binding.hlpower import HLPowerConfig, bind_hlpower
from repro.binding.portopt import optimize_ports
from repro.binding.lopass import bind_lopass
from repro.binding.leftedge import bind_registers_left_edge
from repro.binding.optimal import bind_optimal
from repro.binding.compile import (
    BIND_ENGINES,
    BindMemo,
    bind_hlpower_fast,
    bind_lopass_fast,
)
from repro.binding.mcts import (
    BINDER_NAMES,
    DEFAULT_MCTS_BUDGET,
    DEFAULT_MCTS_SEED,
    MCTSConfig,
    bind_mcts,
)

__all__ = [
    "BINDER_NAMES",
    "BIND_ENGINES",
    "DEFAULT_MCTS_BUDGET",
    "DEFAULT_MCTS_SEED",
    "MCTSConfig",
    "bind_mcts",
    "BindMemo",
    "bind_hlpower_fast",
    "bind_lopass_fast",
    "BindingSolution",
    "FunctionalUnit",
    "FUBinding",
    "PortAssignment",
    "RegisterBinding",
    "max_weight_matching",
    "assign_ports",
    "bind_registers",
    "BindingNode",
    "select_initial_sets",
    "SATable",
    "DEFAULT_BETA",
    "edge_weight",
    "HLPowerConfig",
    "bind_hlpower",
    "optimize_ports",
    "bind_lopass",
    "bind_registers_left_edge",
    "bind_optimal",
]
