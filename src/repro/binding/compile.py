"""Vectorized binding engines (``bind_engine="fast"``).

The seed binders (:func:`~repro.binding.hlpower.bind_hlpower`,
:func:`~repro.binding.lopass.bind_lopass`) are exact but spend their
time in per-edge Python loops: HLPower rebuilds an Equation-(4) weight
dict pair by pair every matching round, and the LOPASS baseline hands
networkx a 30k-edge graph whose network-simplex pivot search walks
Python generators edge by edge. This module re-implements both inner
loops on dense numpy arrays while keeping every *decision* — edge
ordering, tie-breaks, pivot selection, matching extraction —
bit-for-bit identical to the seed binders, the same contract the PR-4
tech mapper establishes (``tests/binding/test_engine_differential.py``
pins the equivalence):

* operations, registers and busy control steps are interned to dense
  int ids once per schedule and carried as packed ``uint64`` bitsets,
  so node-merge bookkeeping is bitwise OR and multiplexer sizes are
  popcounts;
* the HLPower weight matrix of each matching round is built as one
  array expression — batched SA-table lookups over the unique
  ``(mux_a, mux_b)`` pairs, muxDiff as an array reduction — and the
  per-round ``(compatibility, muxDiff, SA)`` blocks are memoized in a
  :class:`BindMemo` shared across matching rounds and (through the
  flow's artifact cache, keyed on the bind-stage inputs) across sweep
  cells that differ only in ``alpha``;
* the LOPASS min-cost flow runs through :func:`_network_simplex`, a
  faithful re-implementation of networkx's primal network simplex
  whose Dantzig/Bland pivot search evaluates reduced costs a block at
  a time with numpy instead of one Python call per edge.

The seed binders stay untouched behind ``bind_engine="reference"``;
:data:`BIND_ENGINES` names the two paths the flow accepts.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BindingError, ConfigError, ResourceError
from repro.binding.base import (
    BindingSolution,
    FUBinding,
    FunctionalUnit,
    PortAssignment,
    RegisterBinding,
)
from repro.binding.compat import select_initial_sets
from repro.binding.hlpower import HLPowerConfig, _port_registers
from repro.binding.lopass import _COVER_REWARD
from repro.binding.registers import assign_ports, bind_registers
from repro.binding.sa_table import SATable
from repro.binding.weights import DEFAULT_BETA
from repro.cdfg.schedule import Schedule

#: The bind-stage engines the flow accepts ("fast" is the default).
BIND_ENGINES: Tuple[str, ...] = ("fast", "reference")

_POPCOUNT = getattr(np, "bitwise_count", None)


def _popcount(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array, summed over the last axis."""
    if _POPCOUNT is not None:
        return _POPCOUNT(words).sum(axis=-1, dtype=np.int64)
    bits = np.unpackbits(words.view(np.uint8), axis=-1)
    return bits.sum(axis=-1, dtype=np.int64)


def _pack_bitsets(
    members: Sequence[FrozenSet[int]], index: Mapping[int, int]
) -> np.ndarray:
    """Rows of packed uint64 bitsets, one per member set."""
    n_words = max(1, (len(index) + 63) // 64)
    rows = np.zeros((len(members), n_words), dtype=np.uint64)
    for row, items in enumerate(members):
        for item in items:
            bit = index[item]
            rows[row, bit >> 6] |= np.uint64(1 << (bit & 63))
    return rows


class BindMemo:
    """Cross-round, cross-cell memo of HLPower weight blocks.

    One entry per (FU class, matching-round node sets): the
    compatibility mask, the muxDiff matrix, and the SA matrix of that
    round's bipartite graph. Weights themselves are *not* stored —
    they are an O(n^2) array expression over the block and depend on
    ``alpha``, so sweep cells that differ only in alpha share every
    block. The flow pipeline registers one memo per bind-stage input
    fingerprint (schedule/constraints/registers/ports + SA-table
    settings) in its artifact cache, the same pattern as the tech
    mapper's ConeMemo.
    """

    def __init__(self) -> None:
        self._blocks: Dict[Tuple, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Tuple):
        block = self._blocks.get(key)
        if block is None:
            self.misses += 1
            return None
        self.hits += 1
        return block

    def store(self, key: Tuple, block) -> None:
        self._blocks[key] = block

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._blocks),
            "hits": self.hits,
            "misses": self.misses,
        }


# ---------------------------------------------------------------------------
# HLPower (Algorithm 1) on dense arrays.
# ---------------------------------------------------------------------------


class _ClassArrays:
    """Dense per-class binding state mirroring hlpower._ClassState."""

    def __init__(
        self,
        schedule: Schedule,
        fu_class: str,
        registers: RegisterBinding,
        ports: PortAssignment,
    ):
        u_nodes, v_nodes = select_initial_sets(schedule, fu_class)
        nodes = u_nodes + v_nodes
        self.n_u = len(u_nodes)
        self.ops: List[FrozenSet[int]] = [node.ops for node in nodes]
        regs_a: List[FrozenSet[int]] = []
        regs_b: List[FrozenSet[int]] = []
        for node in nodes:
            a, b = _port_registers(schedule, node, registers, ports)
            regs_a.append(a)
            regs_b.append(b)
        reg_ids = sorted(set().union(*regs_a, *regs_b)) if nodes else []
        reg_index = {reg: i for i, reg in enumerate(reg_ids)}
        step_index = {
            step: step - 1 for step in range(1, schedule.length + 1)
        }
        self.reg_a = _pack_bitsets(regs_a, reg_index)
        self.reg_b = _pack_bitsets(regs_b, reg_index)
        self.busy = _pack_bitsets([node.busy for node in nodes], step_index)

    def __len__(self) -> int:
        return len(self.ops)

    def split(self) -> Tuple[slice, slice]:
        return slice(0, self.n_u), slice(self.n_u, len(self.ops))

    def signature(self) -> Tuple:
        """Content key of the current round's node sets (memo key)."""
        return (
            self.n_u,
            tuple(tuple(sorted(ops)) for ops in self.ops),
        )

    def merge(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Apply one matching: merge V node ``j`` into U node ``i``.

        ``j`` indexes the V block (0-based within V). Mirrors
        ``hlpower._apply_matching``: U rows update in place, absorbed V
        rows disappear, surviving V rows keep their order.
        """
        absorbed = set()
        for i, j in pairs:
            v = self.n_u + j
            self.ops[i] = self.ops[i] | self.ops[v]
            self.reg_a[i] |= self.reg_a[v]
            self.reg_b[i] |= self.reg_b[v]
            self.busy[i] |= self.busy[v]
            absorbed.add(v)
        keep = [
            row for row in range(len(self.ops)) if row not in absorbed
        ]
        self.ops = [self.ops[row] for row in keep]
        keep_idx = np.array(keep, dtype=np.intp)
        self.reg_a = self.reg_a[keep_idx]
        self.reg_b = self.reg_b[keep_idx]
        self.busy = self.busy[keep_idx]


def _weight_block(
    state: _ClassArrays, fu_class: str, table: SATable
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The round's (mask, muxDiff, SA) matrices over U x V.

    ``mask[i, j]`` is True for compatible pairs; ``diff`` and ``sa``
    are only meaningful where the mask holds. SA values come from the
    shared table via one batched lookup over the unique normalized
    ``(mux_lo, mux_hi)`` pairs.
    """
    u_sl, v_sl = state.split()
    busy_u, busy_v = state.busy[u_sl], state.busy[v_sl]
    mask = ~np.any(
        busy_u[:, None, :] & busy_v[None, :, :], axis=-1
    )
    mux_a = _popcount(state.reg_a[u_sl][:, None, :] | state.reg_a[v_sl][None, :, :])
    mux_b = _popcount(state.reg_b[u_sl][:, None, :] | state.reg_b[v_sl][None, :, :])
    diff = np.abs(mux_a - mux_b)
    lo = np.minimum(mux_a, mux_b)
    hi = np.maximum(mux_a, mux_b)

    sa = np.zeros(mask.shape, dtype=np.float64)
    if mask.any():
        span = int(hi.max()) + 1
        keys = (lo * span + hi)[mask]
        unique, inverse = np.unique(keys, return_inverse=True)
        values = np.array(
            [
                table.get(fu_class, int(key // span), int(key % span))
                for key in unique
            ],
            dtype=np.float64,
        )
        if not (values > 0.0).all():
            # Same guard as weights.edge_weight: a corrupt persisted
            # table must raise, not produce inf/negative weights.
            bad = float(values[values <= 0.0][0])
            raise ConfigError(f"SA must be positive, got {bad}")
        sa[mask] = values[inverse]
    return mask, diff, sa


def _round_weights(
    mask: np.ndarray,
    diff: np.ndarray,
    sa: np.ndarray,
    n_u: int,
    n_v: int,
    alpha: float,
    scale: float,
) -> np.ndarray:
    """The padded assignment matrix of one round (Equation 4).

    Identical float arithmetic to ``weights.edge_weight`` — same
    operation order, elementwise in float64 — and the same square
    zero-padded layout ``matching.max_weight_matching`` builds, so
    ``linear_sum_assignment`` sees byte-identical input.
    """
    n = max(n_u, n_v)
    matrix = np.zeros((n, n), dtype=np.float64)
    weights = alpha * (1.0 / np.where(mask, sa, 1.0)) + (1.0 - alpha) * (
        1.0 / ((diff + 1) * scale)
    )
    matrix[:n_u, :n_v] = np.where(mask, weights, 0.0)
    return matrix


def bind_hlpower_fast(
    schedule: Schedule,
    constraints: Mapping[str, int],
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
    config: Optional[HLPowerConfig] = None,
    memo: Optional[BindMemo] = None,
) -> BindingSolution:
    """Vectorized Algorithm 1; decision-identical to ``bind_hlpower``."""
    started = time.perf_counter()
    cfg = config or HLPowerConfig()
    if not 0.0 <= cfg.alpha <= 1.0:
        raise ConfigError(f"alpha must be in [0, 1], got {cfg.alpha}")
    cdfg = schedule.cdfg
    if registers is None:
        registers = bind_registers(schedule)
    if ports is None:
        ports = assign_ports(cdfg)
    table = cfg.sa_table if cfg.sa_table is not None else SATable()
    scales = cfg.beta or DEFAULT_BETA

    from scipy.optimize import linear_sum_assignment

    units: List[FunctionalUnit] = []
    constraint_met = True
    for fu_class in cdfg.resource_classes():
        limit = constraints.get(fu_class)
        if limit is None:
            raise ResourceError(f"no constraint for class {fu_class!r}")

        state = _ClassArrays(schedule, fu_class, registers, ports)
        if len(state):
            iterations = 0
            while iterations < cfg.max_iterations:
                n_u = state.n_u
                n_v = len(state) - n_u
                if cfg.stop_at_constraint and len(state) <= limit:
                    break
                if n_v == 0:
                    break
                key = (fu_class,) + state.signature()
                block = memo.lookup(key) if memo is not None else None
                if block is None:
                    block = _weight_block(state, fu_class, table)
                    if memo is not None:
                        memo.store(key, block)
                mask, diff, sa = block
                if not mask.any():
                    break
                # Validated exactly where the reference's edge_weight
                # would first be called (a class that never weights an
                # edge never needs its beta).
                scale = scales.get(fu_class)
                if scale is None or scale <= 0.0:
                    raise ConfigError(
                        f"no positive beta for class {fu_class!r}"
                    )
                matrix = _round_weights(
                    mask, diff, sa, n_u, n_v, cfg.alpha, scale
                )
                rows, cols = linear_sum_assignment(matrix, maximize=True)
                pairs = [
                    (int(row), int(col))
                    for row, col in zip(rows, cols)
                    if row < n_u and col < n_v and matrix[row, col] > 0.0
                ]
                if not pairs:
                    break
                state.merge(pairs)
                iterations += 1
        if len(state) > limit:
            constraint_met = False
        for ops in state.ops:
            units.append(FunctionalUnit(len(units), fu_class, ops))

    solution = BindingSolution(
        schedule=schedule,
        registers=registers,
        ports=ports,
        fus=FUBinding(units, constraint_met),
        algorithm="hlpower",
        runtime_s=time.perf_counter() - started,
    )
    solution.validate()
    return solution


# ---------------------------------------------------------------------------
# LOPASS (min-cost network flow) on dense arrays.
# ---------------------------------------------------------------------------


def bind_lopass_fast(
    schedule: Schedule,
    constraints: Mapping[str, int],
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
) -> BindingSolution:
    """Vectorized flow baseline; decision-identical to ``bind_lopass``."""
    started = time.perf_counter()
    cdfg = schedule.cdfg
    if registers is None:
        registers = bind_registers(schedule)
    if ports is None:
        ports = assign_ports(cdfg)

    units: List[FunctionalUnit] = []
    constraint_met = True
    for fu_class in cdfg.resource_classes():
        limit = constraints.get(fu_class)
        if limit is None:
            raise ResourceError(f"no constraint for class {fu_class!r}")
        chains = _bind_class_flow(schedule, fu_class, limit, ports)
        if len(chains) > limit:
            constraint_met = False
        for chain in chains:
            units.append(
                FunctionalUnit(len(units), fu_class, frozenset(chain))
            )

    solution = BindingSolution(
        schedule=schedule,
        registers=registers,
        ports=ports,
        fus=FUBinding(units, constraint_met),
        algorithm="lopass",
        runtime_s=time.perf_counter() - started,
    )
    solution.validate()
    return solution


def _bind_class_flow(
    schedule: Schedule,
    fu_class: str,
    limit: int,
    ports: PortAssignment,
) -> List[List[int]]:
    """One class through the vectorized min-cost-flow formulation.

    Builds the exact edge list ``lopass._bind_class`` hands networkx —
    same node numbering, same adjacency-order edge enumeration, same
    integer costs — and solves it with :func:`_network_simplex`, whose
    pivots replicate networkx's, so the resulting chains are
    identical.
    """
    cdfg = schedule.cdfg
    ops = sorted(
        (
            op
            for op in cdfg.operations.values()
            if op.resource_class == fu_class
        ),
        key=lambda op: (schedule.start_of(op), op.op_id),
    )
    if not ops:
        return []
    n_ops = len(ops)
    starts = np.array([schedule.start_of(op) for op in ops], dtype=np.int64)
    ends = np.array([schedule.end_of(op) for op in ops], dtype=np.int64)

    # Densest-step count via a step-occupancy difference array —
    # equal, by construction, to schedule.densest_step(fu_class)[1].
    occupancy = np.zeros(int(ends.max()) + 2, dtype=np.int64)
    np.add.at(occupancy, starts, 1)
    np.add.at(occupancy, ends + 1, -1)
    density = int(np.cumsum(occupancy).max())
    if limit < density:
        raise ResourceError(
            f"constraint {limit} for {fu_class!r} below the "
            f"densest-step bound {density}"
        )
    port_a = np.array([ports.of(op)[0] for op in ops], dtype=np.int64)
    port_b = np.array([ports.of(op)[1] for op in ops], dtype=np.int64)

    # Node numbering mirrors the reference graph's insertion order:
    # S, T, then (in_i, out_i) per operation; in_i = 2 + 2i.
    node_s, node_t = 0, 1
    in_nodes = np.arange(n_ops, dtype=np.int64) * 2 + 2
    out_nodes = in_nodes + 1

    # Compatible (earlier, later) pairs: later index, strictly after.
    pair_ok = np.triu(np.ones((n_ops, n_ops), dtype=bool), k=1)
    pair_ok &= ends[:, None] < starts[None, :]
    # np.nonzero is row-major: i ascending, j ascending within i —
    # exactly the reference's pair-loop insertion order.
    pair_i, pair_j = np.nonzero(pair_ok)
    pair_w = (port_a[pair_i] != port_a[pair_j]).astype(np.int64) + (
        port_b[pair_i] != port_b[pair_j]
    ).astype(np.int64)

    # Edge list in networkx adjacency iteration order: S's out-edges
    # (S->T first, then S->in_i), then per operation the group
    # [in_i->out_i, out_i->T, out_i->in_j...] with successors
    # ascending.
    counts = pair_ok.sum(axis=1)
    group_offsets = (
        1 + n_ops + np.concatenate(([0], np.cumsum(2 + counts[:-1])))
    )
    n_edges = int(1 + n_ops + (2 + counts).sum())
    edge_srcs = np.empty(n_edges, dtype=np.int64)
    edge_tgts = np.empty(n_edges, dtype=np.int64)
    edge_caps = np.ones(n_edges, dtype=np.int64)
    edge_weights = np.zeros(n_edges, dtype=np.int64)
    edge_srcs[0], edge_tgts[0], edge_caps[0] = node_s, node_t, limit
    edge_srcs[1: 1 + n_ops] = node_s
    edge_tgts[1: 1 + n_ops] = in_nodes
    edge_weights[1: 1 + n_ops] = 2
    edge_srcs[group_offsets] = in_nodes
    edge_tgts[group_offsets] = out_nodes
    edge_weights[group_offsets] = -_COVER_REWARD
    edge_srcs[group_offsets + 1] = out_nodes
    edge_tgts[group_offsets + 1] = node_t
    pair_rank = np.arange(len(pair_i)) - np.repeat(
        np.concatenate(([0], np.cumsum(counts[:-1]))), counts
    )
    pair_pos = group_offsets[pair_i] + 2 + pair_rank
    edge_srcs[pair_pos] = out_nodes[pair_i]
    edge_tgts[pair_pos] = in_nodes[pair_j]
    edge_weights[pair_pos] = pair_w

    demands = np.zeros(2 + 2 * n_ops, dtype=np.int64)
    demands[node_s] = -limit
    demands[node_t] = limit

    flow = _network_simplex(
        demands, edge_srcs, edge_tgts, edge_caps, edge_weights
    )

    # Chain extraction mirrors lopass._extract_chains: the successor
    # of op ``i`` is the first positive-flow out_i->in_j edge in
    # adjacency order (at most one exists — unit capacities), and the
    # first op in order whose in->out edge carries no flow raises.
    uncovered = np.nonzero(flow[group_offsets] == 0)[0]
    if uncovered.size:
        raise BindingError(
            f"network flow left operation "
            f"{ops[int(uncovered[0])].op_id} uncovered"
        )
    next_index = np.full(n_ops, -1, dtype=np.int64)
    carrying = np.nonzero(flow[pair_pos] > 0)[0]
    next_index[pair_i[carrying]] = pair_j[carrying]

    chains: List[List[int]] = []
    for i in np.nonzero(flow[1: 1 + n_ops] > 0)[0]:
        chain = []
        current = int(i)
        while current >= 0:
            chain.append(ops[current].op_id)
            current = int(next_index[current])
        chains.append(chain)

    covered = {op_id for chain in chains for op_id in chain}
    if len(covered) != len(ops):
        raise BindingError(
            f"flow chains cover {len(covered)} of {len(ops)} operations"
        )
    return chains


# ---------------------------------------------------------------------------
# Primal network simplex, pivot-for-pivot faithful to networkx.
# ---------------------------------------------------------------------------

#: Largest number of pivot-search blocks evaluated per numpy batch.
_PIVOT_CHUNK = 64


def _network_simplex(
    demands: np.ndarray,
    srcs: np.ndarray,
    tgts: np.ndarray,
    caps: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Min-cost flow via the primal network simplex; returns edge flows.

    A line-for-line port of networkx's ``network_simplex`` onto numpy
    arrays: same artificial-root initialization, same
    ``ceil(sqrt(E))``-block Dantzig/Bland entering-edge rule with
    first-minimum tie-breaks, same leaving-edge rule — so the computed
    flow (not just its cost) matches networkx exactly. The entering
    search evaluates whole blocks (batched up to :data:`_PIVOT_CHUNK`
    at a time) as array expressions, which is where the seed
    implementation burns one Python generator step per edge.

    All inputs are int64; raises :class:`~repro.errors.BindingError`
    when no flow satisfies the demands (networkx raises
    ``NetworkXUnfeasible``; the binding layer treats both as fatal).
    """
    n = len(demands)
    n_real = len(srcs)
    root = n

    # Artificial root edges: one per node, oriented by demand sign.
    dummy_srcs = np.where(demands > 0, root, np.arange(n))
    dummy_tgts = np.where(demands > 0, np.arange(n), root)
    faux_inf = 3 * max(
        int(caps.sum()),
        int(np.abs(weights).sum()),
        int(np.abs(demands).sum()),
    ) or 1

    e_src = np.concatenate([srcs, dummy_srcs]).astype(np.int64)
    e_tgt = np.concatenate([tgts, dummy_tgts]).astype(np.int64)
    e_weight = np.concatenate(
        [weights, np.full(n, faux_inf, dtype=np.int64)]
    )
    potentials = np.where(demands <= 0, faux_inf, -faux_inf).astype(np.int64)

    # The entering-edge search gathers over these three; everything
    # walked edge-at-a-time (cycle tracing, augmentation, tree
    # surgery) uses plain Python lists — scalar numpy indexing would
    # dominate the runtime. ``flow_zero`` mirrors "flow[i] == 0" for
    # the vectorized reduced-cost sign flip and is maintained
    # incrementally by augment_flow.
    src_l = e_src.tolist()
    tgt_l = e_tgt.tolist()
    cap_l = caps.tolist() + [faux_inf] * n
    flow_l = [0] * n_real + [abs(int(d)) for d in demands]
    flow_zero = np.ones(n_real, dtype=bool)
    weight_l = e_weight.tolist()
    parent: List[Optional[int]] = [root] * n + [None]
    parent_edge: List[Optional[int]] = list(range(n_real, n_real + n)) + [None]
    subtree_size = [1] * n + [n + 1]
    next_dft = list(range(1, n)) + [root, 0]
    prev_dft = [root] + list(range(n))
    last_dft = list(range(n)) + [n - 1]

    def find_apex(p: int, q: int) -> int:
        size_p = subtree_size[p]
        size_q = subtree_size[q]
        while True:
            while size_p < size_q:
                p = parent[p]
                size_p = subtree_size[p]
            while size_p > size_q:
                q = parent[q]
                size_q = subtree_size[q]
            if size_p == size_q:
                if p != q:
                    p = parent[p]
                    size_p = subtree_size[p]
                    q = parent[q]
                    size_q = subtree_size[q]
                else:
                    return p

    def trace_path(p: int, w: int) -> Tuple[List[int], List[int]]:
        nodes = [p]
        edges = []
        while p != w:
            edges.append(parent_edge[p])
            p = parent[p]
            nodes.append(p)
        return nodes, edges

    def find_cycle(i: int, p: int, q: int) -> Tuple[List[int], List[int]]:
        w = find_apex(p, q)
        nodes, edges = trace_path(p, w)
        nodes.reverse()
        edges.reverse()
        if edges != [i]:
            edges.append(i)
        nodes_r, edges_r = trace_path(q, w)
        del nodes_r[-1]
        nodes += nodes_r
        edges += edges_r
        return nodes, edges

    def residual_capacity(i: int, p: int) -> int:
        if src_l[i] == p:
            return cap_l[i] - flow_l[i]
        return flow_l[i]

    def find_leaving_edge(
        cycle_nodes: List[int], cycle_edges: List[int]
    ) -> Tuple[int, int, int]:
        best = None
        best_res = None
        for j, s in zip(reversed(cycle_edges), reversed(cycle_nodes)):
            res = residual_capacity(j, s)
            if best_res is None or res < best_res:
                best, best_res = (j, s), res
        j, s = best
        t = tgt_l[j] if src_l[j] == s else src_l[j]
        return j, s, t

    def augment_flow(
        cycle_nodes: List[int], cycle_edges: List[int], f: int
    ) -> None:
        for i, p in zip(cycle_edges, cycle_nodes):
            if src_l[i] == p:
                flow_l[i] = flow_l[i] + f
            else:
                flow_l[i] = flow_l[i] - f
            if i < n_real:
                flow_zero[i] = flow_l[i] == 0

    def trace_subtree(p: int) -> List[int]:
        nodes = [p]
        last = last_dft[p]
        while p != last:
            p = next_dft[p]
            nodes.append(p)
        return nodes

    def remove_edge(s: int, t: int) -> None:
        size_t = subtree_size[t]
        prev_t = prev_dft[t]
        last_t = last_dft[t]
        next_last_t = next_dft[last_t]
        parent[t] = None
        parent_edge[t] = None
        next_dft[prev_t] = next_last_t
        prev_dft[next_last_t] = prev_t
        next_dft[last_t] = t
        prev_dft[t] = last_t
        while s is not None:
            subtree_size[s] -= size_t
            if last_dft[s] == last_t:
                last_dft[s] = prev_t
            s = parent[s]

    def make_root(q: int) -> None:
        ancestors = []
        while q is not None:
            ancestors.append(q)
            q = parent[q]
        ancestors.reverse()
        for p, q in zip(ancestors, ancestors[1:]):
            size_p = subtree_size[p]
            last_p = last_dft[p]
            prev_q = prev_dft[q]
            last_q = last_dft[q]
            next_last_q = next_dft[last_q]
            parent[p] = q
            parent[q] = None
            parent_edge[p] = parent_edge[q]
            parent_edge[q] = None
            subtree_size[p] = size_p - subtree_size[q]
            subtree_size[q] = size_p
            next_dft[prev_q] = next_last_q
            prev_dft[next_last_q] = prev_q
            next_dft[last_q] = q
            prev_dft[q] = last_q
            if last_p == last_q:
                last_dft[p] = prev_q
                last_p = prev_q
            prev_dft[p] = last_q
            next_dft[last_q] = p
            next_dft[last_p] = q
            prev_dft[q] = last_p
            last_dft[q] = last_p

    def add_tree_edge(i: int, p: int, q: int) -> None:
        last_p = last_dft[p]
        next_last_p = next_dft[last_p]
        size_q = subtree_size[q]
        last_q = last_dft[q]
        parent[q] = p
        parent_edge[q] = i
        next_dft[last_p] = q
        prev_dft[q] = last_p
        prev_dft[next_last_p] = last_q
        next_dft[last_q] = next_last_p
        while p is not None:
            subtree_size[p] += size_q
            if last_dft[p] == last_p:
                last_dft[p] = last_q
            p = parent[p]

    def update_potentials(i: int, p: int, q: int) -> None:
        if q == tgt_l[i]:
            d = int(potentials[p]) - weight_l[i] - int(potentials[q])
        else:
            d = int(potentials[p]) + weight_l[i] - int(potentials[q])
        subtree = np.array(trace_subtree(q), dtype=np.intp)
        potentials[subtree] += d

    def entering_edges():
        """Entering edges by the batched Dantzig/Bland block search.

        Blocks are evaluated lazily in growing batches: the search
        state is frozen between pivots, so evaluating several blocks
        at once and taking the first with a negative minimum selects
        exactly the edge the one-block-at-a-time reference selects.
        Most pivots hit in the first block (batch 1); the batch grows
        geometrically for the optimality sweeps that must visit every
        block.
        """
        if n_real == 0:
            return
        block = int(np.ceil(np.sqrt(n_real)))
        n_blocks = (n_real + block - 1) // block
        misses = 0
        f = 0
        batch = 1
        while misses < n_blocks:
            batch = min(batch, n_blocks - misses)
            span = batch * block
            if f + span <= n_real:
                idx = np.arange(f, f + span)
                sources = e_src[f: f + span]
                targets = e_tgt[f: f + span]
                c = e_weight[f: f + span] - potentials[sources]
                c += potentials[targets]
                zero = flow_zero[f: f + span]
            else:
                idx = np.arange(f, f + span) % n_real
                c = (
                    e_weight[idx]
                    - potentials[e_src[idx]]
                    + potentials[e_tgt[idx]]
                )
                zero = flow_zero[idx]
            reduced = np.where(zero, c, -c).reshape(batch, block)
            block_min = reduced.min(axis=1)
            negative = np.nonzero(block_min < 0)[0]
            if negative.size == 0:
                misses += batch
                f = int((f + batch * block) % n_real)
                batch = min(batch * 4, _PIVOT_CHUNK)
                continue
            hit = int(negative[0])
            i = int(idx[hit * block + int(reduced[hit].argmin())])
            f = int((f + (hit + 1) * block) % n_real)
            misses = 0
            batch = 1
            if flow_l[i] == 0:
                yield i, src_l[i], tgt_l[i]
            else:
                yield i, tgt_l[i], src_l[i]

    for i, p, q in entering_edges():
        cycle_nodes, cycle_edges = find_cycle(i, p, q)
        j, s, t = find_leaving_edge(cycle_nodes, cycle_edges)
        augment_flow(cycle_nodes, cycle_edges, residual_capacity(j, s))
        if i != j:
            if parent[t] != s:
                s, t = t, s
            if cycle_edges.index(i) > cycle_edges.index(j):
                p, q = q, p
            remove_edge(s, t)
            make_root(q)
            add_tree_edge(i, p, q)
            update_potentials(i, p, q)

    if any(flow_l[i] != 0 for i in range(n_real, n_real + n)):
        raise BindingError("no flow satisfies all node demands")
    real_flow = np.array(flow_l[:n_real], dtype=np.int64)
    if np.any(real_flow * 2 >= faux_inf):
        raise BindingError("negative cycle with infinite capacity found")
    return real_flow
