"""Binding result types shared by every binder.

A complete binding solution (Section 3's "Tasks") consists of:

* a :class:`RegisterBinding` — registers allocated and variables
  assigned to them;
* a :class:`PortAssignment` — which operand of each operation feeds FU
  port A vs. port B (the paper fixes this "randomly" during register
  binding; both binders then see identical port assignments);
* an :class:`FUBinding` — functional units allocated and operations
  assigned to them.

:class:`BindingSolution` bundles the three with the schedule and offers
the structural queries (mux sources per port) every consumer — edge
weighting, datapath construction, metrics — shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import BindingError
from repro.cdfg.graph import Operation
from repro.cdfg.lifetimes import Lifetime, compute_lifetimes
from repro.cdfg.schedule import Schedule


@dataclass
class RegisterBinding:
    """Variables assigned to registers."""

    n_registers: int
    assignment: Dict[int, int]  # variable id -> register index

    def register_of(self, var_id: int) -> int:
        try:
            return self.assignment[var_id]
        except KeyError:
            raise BindingError(f"variable {var_id} has no register")

    def variables_in(self, register: int) -> List[int]:
        return sorted(
            var_id
            for var_id, reg in self.assignment.items()
            if reg == register
        )


@dataclass
class PortAssignment:
    """Operand-to-port mapping: op id -> (port A var, port B var)."""

    ports: Dict[int, Tuple[int, int]]

    def of(self, op: Operation) -> Tuple[int, int]:
        return self.ports.get(op.op_id, op.inputs)


@dataclass(frozen=True)
class FunctionalUnit:
    """One allocated FU and the operations bound to it."""

    fu_id: int
    fu_class: str
    ops: FrozenSet[int]  # operation ids

    def __len__(self) -> int:
        return len(self.ops)


@dataclass
class FUBinding:
    """Operations assigned to allocated functional units."""

    units: List[FunctionalUnit]
    constraint_met: bool = True

    def unit_of(self, op_id: int) -> FunctionalUnit:
        for unit in self.units:
            if op_id in unit.ops:
                return unit
        raise BindingError(f"operation {op_id} is unbound")

    def units_of_class(self, fu_class: str) -> List[FunctionalUnit]:
        return [u for u in self.units if u.fu_class == fu_class]

    def allocation(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for unit in self.units:
            counts[unit.fu_class] = counts.get(unit.fu_class, 0) + 1
        return counts


@dataclass
class BindingSolution:
    """A complete binding of a scheduled CDFG."""

    schedule: Schedule
    registers: RegisterBinding
    ports: PortAssignment
    fus: FUBinding
    algorithm: str = ""
    runtime_s: float = 0.0

    # -- structural queries ------------------------------------------------

    def port_sources(self, unit: FunctionalUnit) -> Tuple[List[int], List[int]]:
        """Distinct registers feeding each input port of ``unit``.

        Registers are known because register binding precedes FU
        binding — this is exactly why the paper can compute "the exact
        multiplexer sizes" during edge weighting (Section 5.2.2).
        """
        cdfg = self.schedule.cdfg
        sources_a: List[int] = []
        sources_b: List[int] = []
        for op_id in sorted(unit.ops):
            var_a, var_b = self.ports.of(cdfg.operations[op_id])
            reg_a = self.registers.register_of(var_a)
            reg_b = self.registers.register_of(var_b)
            if reg_a not in sources_a:
                sources_a.append(reg_a)
            if reg_b not in sources_b:
                sources_b.append(reg_b)
        return sources_a, sources_b

    def mux_sizes(self, unit: FunctionalUnit) -> Tuple[int, int]:
        """Input multiplexer sizes ``(|port A|, |port B|)`` of a unit."""
        sources_a, sources_b = self.port_sources(unit)
        return len(sources_a), len(sources_b)

    def register_sources(self, register: int) -> List[int]:
        """Distinct writers of a register: FU ids, or -1 for input pads.

        A register holding several variables written by different FUs
        needs an input multiplexer of this size.
        """
        cdfg = self.schedule.cdfg
        writers: List[int] = []
        for var_id in self.registers.variables_in(register):
            variable = cdfg.variables[var_id]
            if variable.producer is None:
                source = -1
            else:
                source = self.fus.unit_of(variable.producer).fu_id
            if source not in writers:
                writers.append(source)
        return writers

    def validate(self) -> None:
        """Check the solution is complete and conflict-free."""
        cdfg = self.schedule.cdfg
        lifetimes = compute_lifetimes(self.schedule)

        bound_ops = set()
        for unit in self.fus.units:
            ops = [cdfg.operations[op_id] for op_id in unit.ops]
            for op in ops:
                if op.resource_class != unit.fu_class:
                    raise BindingError(
                        f"{op.name} ({op.resource_class}) bound to "
                        f"{unit.fu_class} unit {unit.fu_id}"
                    )
                if op.op_id in bound_ops:
                    raise BindingError(f"{op.name} bound twice")
                bound_ops.add(op.op_id)
            for i, op_a in enumerate(ops):
                for op_b in ops[i + 1:]:
                    if self.schedule.overlaps(op_a, op_b):
                        raise BindingError(
                            f"unit {unit.fu_id}: {op_a.name} and "
                            f"{op_b.name} overlap in time"
                        )
        missing = set(cdfg.operations) - bound_ops
        if missing:
            raise BindingError(f"unbound operations: {sorted(missing)[:5]}")

        by_register: Dict[int, List[Lifetime]] = {}
        for var_id, lifetime in lifetimes.items():
            if lifetime.span == 0:
                continue
            register = self.registers.register_of(var_id)
            by_register.setdefault(register, []).append(lifetime)
        for register, items in by_register.items():
            items.sort(key=lambda lt: lt.birth)
            for first, second in zip(items, items[1:]):
                if first.overlaps(second):
                    raise BindingError(
                        f"register {register}: variables {first.var_id} "
                        f"and {second.var_id} have overlapping lifetimes"
                    )
