"""Monte-Carlo tree search binding (``binder="mcts"``).

Resource binding for mux reduction is NP-complete (Pangrle [18]), the
exact branch-and-bound binder (:mod:`~repro.binding.optimal`) only
scales to :data:`~repro.binding.optimal.MAX_OPS_PER_CLASS` operations
per class, and ``repro corpus --oracle`` shows both heuristics leaving
a measurable FU-mux-length gap against it. This module closes part of
that gap with a search binder that stays cheap and deterministic:

* **State space.** FU binding decomposes per resource class, and a
  per-class state is "the first *i* operations (in schedule order)
  assigned to units". Each unit is summarized by three bitsets — busy
  c-steps, port-A source registers, port-B source registers — because
  the cost of every completion depends only on those masks, not on
  which concrete operations produced them. States are therefore
  canonicalized to ``(i, sorted unit-mask triples)`` and the search
  runs on the resulting DAG with a transposition table: symmetric
  assignments (any permutation of units, any choice among empty units)
  collapse into one node, the same canonical pruning that makes
  CbO-style closed-set enumeration tractable.

* **Incumbent baseline.** Both heuristics (HLPower and LOPASS, via the
  PR-5 vectorized fast paths) are run first with the *same* register
  binding and port assignment. Their per-class groupings seed the
  search's incumbent, so MCTS can never return a worse solution than
  the best heuristic; a budget of 0 degenerates to exactly the best
  heuristic's assignment.

* **Search.** Standard UCT selection over canonical child states with
  best-cost backup (costs are ``(mux length, muxDiff sum)`` tuples —
  the branch-and-bound objective of Tables 3/4 — scalarized with the
  diff as tie-break). Expansion adds one node per iteration; playouts
  are heuristic-guided: candidate units are ranked by added mux
  inputs, then by whether the unit already holds an operation the
  incumbent grouped with this one, then by added muxDiff, with ties
  broken by an explicit :class:`random.Random` stream seeded from
  ``(mcts_seed, class)`` — never the global RNG — so repeat runs are
  byte-identical everywhere (flow, sweep, executor, serve).

The same machinery — seeded playouts over a canonical decision DAG
with cheap bitset evaluators — can later search input *vector sets*
for worst-case power, ATPG-style.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from math import log, sqrt
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError, ResourceError
from repro.binding.base import (
    BindingSolution,
    FUBinding,
    FunctionalUnit,
    PortAssignment,
    RegisterBinding,
)
from repro.binding.compile import BindMemo, bind_hlpower_fast, bind_lopass_fast
from repro.binding.hlpower import HLPowerConfig, bind_hlpower
from repro.binding.lopass import bind_lopass
from repro.binding.registers import assign_ports, bind_registers
from repro.binding.sa_table import SATable
from repro.cdfg.schedule import Schedule

#: Every named binder ``run_binder`` dispatches on, in tie-break order.
BINDER_NAMES: Tuple[str, ...] = ("hlpower", "lopass", "mcts")

#: Default per-class iteration budget (one expansion + playout each).
DEFAULT_MCTS_BUDGET = 256
#: Default playout seed.
DEFAULT_MCTS_SEED = 1
#: UCT exploration constant (sqrt(2), the textbook default).
UCT_EXPLORATION = 1.4142135623730951

#: muxDiff tie-break field width in the scalarized cost.
_DIFF_SCALE = 1 << 16
_INF = float("inf")


@dataclass
class MCTSConfig:
    """Tunables of the MCTS binder.

    ``budget`` is the number of search iterations *per resource class*;
    each iteration expands one tree node and completes one playout.
    With ``budget=0`` no search runs and the result is exactly the best
    heuristic's assignment. ``engine`` selects how the heuristic
    incumbents are computed ("fast" reuses the vectorized binders and
    the optional ``bind_memo``; "reference" runs the seed binders —
    decision-identical either way).
    """

    budget: int = DEFAULT_MCTS_BUDGET
    seed: int = DEFAULT_MCTS_SEED
    alpha: float = 0.5
    sa_table: Optional[SATable] = None
    exploration: float = UCT_EXPLORATION
    engine: str = "fast"
    bind_memo: Optional[BindMemo] = None


def bind_mcts(
    schedule: Schedule,
    constraints: Mapping[str, int],
    registers: Optional[RegisterBinding] = None,
    ports: Optional[PortAssignment] = None,
    config: Optional[MCTSConfig] = None,
) -> BindingSolution:
    """Search-based binding, never worse than the best heuristic."""
    started = time.perf_counter()
    cfg = config or MCTSConfig()
    if not isinstance(cfg.budget, int) or isinstance(cfg.budget, bool):
        raise ConfigError(f"mcts budget must be an int, got {cfg.budget!r}")
    if cfg.budget < 0:
        raise ConfigError(f"mcts budget must be >= 0, got {cfg.budget}")
    if not isinstance(cfg.seed, int) or isinstance(cfg.seed, bool):
        raise ConfigError(f"mcts seed must be an int, got {cfg.seed!r}")
    cdfg = schedule.cdfg
    if registers is None:
        registers = bind_registers(schedule)
    if ports is None:
        ports = assign_ports(cdfg)

    heuristics = _heuristic_incumbents(
        schedule, constraints, registers, ports, cfg
    )

    classes = list(cdfg.resource_classes())
    insts: Dict[str, _ClassInstance] = {}
    for fu_class in classes:
        if constraints.get(fu_class) is None:
            raise ResourceError(f"no constraint for class {fu_class!r}")
        insts[fu_class] = _ClassInstance(schedule, fu_class, registers, ports)

    # The globally better heuristic: budget=0 degenerates to exactly
    # this solution's assignment. Ties resolve to HLPower (first).
    totals = []
    for sol in heuristics:
        length = diff = 0
        for fu_class in classes:
            inst = insts[fu_class]
            part = inst.cost_of(inst.groups_of(sol, fu_class))
            length += part[0]
            diff += part[1]
        totals.append((length, diff))
    global_best = heuristics[totals.index(min(totals))]

    units: List[FunctionalUnit] = []
    constraint_met = True
    for fu_class in classes:
        limit = constraints[fu_class]
        inst = insts[fu_class]
        if cfg.budget == 0:
            best_groups = inst.groups_of(global_best, fu_class)
        else:
            groups_, _ = _incumbent_groups(inst, fu_class, heuristics)
            best_groups = groups_
        groups, met = _bind_class(
            schedule, fu_class, limit, inst, best_groups, cfg
        )
        constraint_met &= met
        for ops in groups:
            units.append(FunctionalUnit(len(units), fu_class, ops))

    solution = BindingSolution(
        schedule=schedule,
        registers=registers,
        ports=ports,
        fus=FUBinding(units, constraint_met),
        algorithm="mcts",
        runtime_s=time.perf_counter() - started,
    )
    solution.validate()
    return solution


def _heuristic_incumbents(
    schedule: Schedule,
    constraints: Mapping[str, int],
    registers: RegisterBinding,
    ports: PortAssignment,
    cfg: MCTSConfig,
) -> Tuple[BindingSolution, ...]:
    """Both heuristic solutions over the *same* registers and ports.

    Order matters: HLPower first, so cost ties between the two resolve
    the same way everywhere.
    """
    hl_cfg = HLPowerConfig(alpha=cfg.alpha, sa_table=cfg.sa_table)
    if cfg.engine == "reference":
        hlpower = bind_hlpower(schedule, constraints, registers, ports, hl_cfg)
        lopass = bind_lopass(schedule, constraints, registers, ports)
    else:
        hlpower = bind_hlpower_fast(
            schedule, constraints, registers, ports, hl_cfg,
            memo=cfg.bind_memo,
        )
        lopass = bind_lopass_fast(schedule, constraints, registers, ports)
    return (hlpower, lopass)


class _ClassInstance:
    """Bitset view of one resource class's binding subproblem."""

    def __init__(
        self,
        schedule: Schedule,
        fu_class: str,
        registers: RegisterBinding,
        ports: PortAssignment,
    ) -> None:
        cdfg = schedule.cdfg
        self.ops = sorted(
            (
                op
                for op in cdfg.operations.values()
                if op.resource_class == fu_class
            ),
            key=lambda op: (schedule.start_of(op), op.op_id),
        )
        self.index_of = {op.op_id: i for i, op in enumerate(self.ops)}
        reg_bits: Dict[int, int] = {}
        self.busy: List[int] = []
        self.a_bit: List[int] = []
        self.b_bit: List[int] = []
        for op in self.ops:
            start, end = schedule.busy_interval(op)
            mask = 0
            for step in range(start, end + 1):
                mask |= 1 << step
            self.busy.append(mask)
            var_a, var_b = ports.of(op)
            for var, out in ((var_a, self.a_bit), (var_b, self.b_bit)):
                reg = registers.register_of(var)
                bit = reg_bits.setdefault(reg, 1 << len(reg_bits))
                out.append(bit)

    def __len__(self) -> int:
        return len(self.ops)

    def groups_of(self, solution: BindingSolution, fu_class: str
                  ) -> List[List[int]]:
        """A heuristic's grouping of this class, as sorted op indexes."""
        groups = [
            sorted(self.index_of[op_id] for op_id in unit.ops)
            for unit in solution.fus.units_of_class(fu_class)
        ]
        groups.sort(key=lambda group: group[0])
        return groups

    def cost_of(self, groups: Sequence[Sequence[int]]) -> Tuple[int, int]:
        """``(mux length, muxDiff sum)`` of a complete grouping."""
        length = diff = 0
        for group in groups:
            mask_a = mask_b = 0
            for i in group:
                mask_a |= self.a_bit[i]
                mask_b |= self.b_bit[i]
            size_a = mask_a.bit_count()
            size_b = mask_b.bit_count()
            length += (size_a if size_a > 1 else 0) + (
                size_b if size_b > 1 else 0
            )
            diff += abs(size_a - size_b)
        return length, diff


def _scalar(cost: Tuple[int, int]) -> int:
    length, diff = cost
    return length * _DIFF_SCALE + min(diff, _DIFF_SCALE - 1)


def _mux_len(count: int) -> int:
    return count if count > 1 else 0


def _incumbent_groups(
    inst: _ClassInstance,
    fu_class: str,
    heuristics: Tuple[BindingSolution, ...],
) -> Tuple[List[List[int]], Tuple[int, int]]:
    """Per-class incumbent: the better heuristic grouping under the
    class cost (HLPower wins ties via candidate order)."""
    candidates = [inst.groups_of(sol, fu_class) for sol in heuristics]
    best = min(candidates, key=inst.cost_of)
    return best, inst.cost_of(best)


def _bind_class(
    schedule: Schedule,
    fu_class: str,
    limit: int,
    inst: _ClassInstance,
    best_groups: List[List[int]],
    cfg: MCTSConfig,
) -> Tuple[List[FrozenSet[int]], bool]:
    if not len(inst):
        return [], True
    best_cost = inst.cost_of(best_groups)

    _, density = schedule.densest_step(fu_class)
    searchable = cfg.budget > 0 and limit >= density
    if searchable:
        found = _search_class(inst, limit, best_groups, best_cost, cfg,
                              fu_class)
        if found is not None:
            best_groups, best_cost = found
    met = len(best_groups) <= limit
    groups = [
        frozenset(inst.ops[i].op_id for i in group) for group in best_groups
    ]
    return groups, met


def _search_class(
    inst: _ClassInstance,
    limit: int,
    incumbent_groups: List[List[int]],
    incumbent_cost: Tuple[int, int],
    cfg: MCTSConfig,
    fu_class: str,
) -> Optional[Tuple[List[List[int]], Tuple[int, int]]]:
    """UCT search over the class's canonical assignment DAG.

    Returns a strictly better grouping than the incumbent, or ``None``.
    """
    n = len(inst)
    busy, a_bit, b_bit = inst.busy, inst.a_bit, inst.b_bit
    # Seeding from ``(seed, class)`` as a string goes through the
    # PYTHONHASHSEED-independent str path of random.seed.
    rng = random.Random(f"repro-mcts:{cfg.seed}:{fu_class}")
    exploration = cfg.exploration
    norm = float(max(_scalar(incumbent_cost), 1))

    group_of = [0] * n
    for gid, group in enumerate(incumbent_groups):
        for i in group:
            group_of[i] = gid

    best_scalar = _scalar(incumbent_cost)
    best_assign: Optional[List[int]] = None

    # node: [visits, best scalar seen below]
    nodes: Dict[Tuple[int, Tuple[Tuple[int, int, int], ...]], List] = {
        (0, ()): [0, _INF]
    }

    def child_sig(units: List[List[int]], u_idx: int, i: int
                  ) -> Tuple[Tuple[int, int, int], ...]:
        sig = [
            (u[0], u[1], u[2]) for k, u in enumerate(units) if k != u_idx
        ]
        if u_idx == len(units):
            sig.append((busy[i], a_bit[i], b_bit[i]))
        else:
            u = units[u_idx]
            sig.append((u[0] | busy[i], u[1] | a_bit[i], u[2] | b_bit[i]))
        return tuple(sorted(sig))

    def apply(units: List[List[int]], u_idx: int, i: int) -> None:
        if u_idx == len(units):
            units.append([busy[i], a_bit[i], b_bit[i], 1 << group_of[i]])
        else:
            u = units[u_idx]
            u[0] |= busy[i]
            u[1] |= a_bit[i]
            u[2] |= b_bit[i]
            u[3] |= 1 << group_of[i]

    def actions(units: List[List[int]], i: int
                ) -> List[Tuple[int, Tuple[Tuple[int, int, int], ...]]]:
        acts = []
        seen = set()
        for u_idx, u in enumerate(units):
            if u[0] & busy[i]:
                continue
            sig = child_sig(units, u_idx, i)
            if sig in seen:
                continue
            seen.add(sig)
            acts.append((u_idx, sig))
        if len(units) < limit:
            sig = child_sig(units, len(units), i)
            if sig not in seen:
                acts.append((len(units), sig))
        return acts

    def playout(units: List[List[int]], assign: List[int], start: int
                ) -> bool:
        for j in range(start, n):
            best_key = None
            ties: List[int] = []
            for u_idx, u in enumerate(units):
                if u[0] & busy[j]:
                    continue
                pa, pb = u[1].bit_count(), u[2].bit_count()
                na = pa + (0 if u[1] & a_bit[j] else 1)
                nb = pb + (0 if u[2] & b_bit[j] else 1)
                d_len = (
                    _mux_len(na) + _mux_len(nb) - _mux_len(pa) - _mux_len(pb)
                )
                d_diff = abs(na - nb) - abs(pa - pb)
                mate = 0 if u[3] >> group_of[j] & 1 else 1
                key = (d_len, mate, d_diff)
                if best_key is None or key < best_key:
                    best_key, ties = key, [u_idx]
                elif key == best_key:
                    ties.append(u_idx)
            if len(units) < limit:
                key = (0, 1, 0)
                if best_key is None or key < best_key:
                    best_key, ties = key, [len(units)]
                elif key == best_key:
                    ties.append(len(units))
            if not ties:
                return False
            pick = ties[0] if len(ties) == 1 else rng.choice(ties)
            apply(units, pick, j)
            assign[j] = pick
        return True

    for _ in range(cfg.budget):
        units: List[List[int]] = []
        assign = [-1] * n
        node = nodes[(0, ())]
        path = [node]
        i = 0
        complete = True
        while i < n:
            acts = actions(units, i)
            if not acts:
                complete = False
                break
            expand = None
            for u_idx, sig in acts:
                if (i + 1, sig) not in nodes:
                    expand = (u_idx, sig)
                    break
            if expand is not None:
                u_idx, sig = expand
                apply(units, u_idx, i)
                assign[i] = u_idx
                child = nodes[(i + 1, sig)] = [0, _INF]
                path.append(child)
                complete = playout(units, assign, i + 1)
                break
            parent_visits = max(node[0], 1)
            best_score = -_INF
            pick = acts[0]
            for u_idx, sig in acts:
                child = nodes[(i + 1, sig)]
                quality = 1.0 - child[1] / norm
                score = quality + exploration * sqrt(
                    log(parent_visits) / child[0]
                )
                if score > best_score:
                    best_score = score
                    pick = (u_idx, sig)
            u_idx, sig = pick
            apply(units, u_idx, i)
            assign[i] = u_idx
            node = nodes[(i + 1, sig)]
            path.append(node)
            i += 1
        if not complete:
            for nd in path:
                nd[0] += 1
            continue
        scalar = _scalar(_eval(units))
        for nd in path:
            nd[0] += 1
            if scalar < nd[1]:
                nd[1] = scalar
        if scalar < best_scalar:
            best_scalar = scalar
            best_assign = assign

    if best_assign is None:
        return None
    by_unit: Dict[int, List[int]] = {}
    for i, u_idx in enumerate(best_assign):
        by_unit.setdefault(u_idx, []).append(i)
    groups = sorted(by_unit.values(), key=lambda group: group[0])
    return groups, inst.cost_of(groups)


def _eval(units: List[List[int]]) -> Tuple[int, int]:
    length = diff = 0
    for u in units:
        size_a = u[1].bit_count()
        size_b = u[2].bit_count()
        length += _mux_len(size_a) + _mux_len(size_b)
        diff += abs(size_a - size_b)
    return length, diff
