"""Left-edge register binding (the classic alternative to [11]).

The left-edge algorithm (from channel routing, standard in HLS
textbooks) sorts variable lifetimes by birth time and greedily packs
each into the first register whose current occupants it does not
overlap. It achieves the same minimum register count as the weighted
bipartite binder of :mod:`repro.binding.registers` — the count is
fixed by the lifetime-overlap peak — but ignores interconnect
affinity, so downstream mux sizes are typically worse. Provided as a
baseline for the register-binding comparison tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.binding.base import RegisterBinding
from repro.cdfg.lifetimes import (
    Lifetime,
    compute_lifetimes,
    live_variables,
)
from repro.cdfg.schedule import Schedule


def bind_registers_left_edge(schedule: Schedule) -> RegisterBinding:
    """Greedy left-edge packing of variable lifetimes into registers."""
    lifetimes = compute_lifetimes(schedule)
    live = sorted(
        live_variables(lifetimes),
        key=lambda lt: (lt.birth, lt.death, lt.var_id),
    )
    occupancy: List[List[Lifetime]] = []
    assignment: Dict[int, int] = {}
    for lifetime in live:
        placed = False
        for register, items in enumerate(occupancy):
            if all(not lifetime.overlaps(other) for other in items):
                items.append(lifetime)
                assignment[lifetime.var_id] = register
                placed = True
                break
        if not placed:
            occupancy.append([lifetime])
            assignment[lifetime.var_id] = len(occupancy) - 1
    return RegisterBinding(len(occupancy), assignment)
