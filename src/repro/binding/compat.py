"""FU-node compatibility and initial U/V selection (Section 5.2.1).

During functional-unit binding every graph node represents one
allocated FU holding a set of operations. Two nodes are compatible —
i.e. may merge onto one FU — iff:

1. they hold operations of the same resource class, and
2. no pair of their operations overlaps in the schedule.

The initial set ``U`` contains, per resource class, the operations of
the control step with the most concurrent operations of that class
(each as a singleton node); that count is the class's minimum feasible
allocation, which is what makes Theorem 1 go through. All other
operations start in ``V``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import BindingError
from repro.cdfg.graph import Operation
from repro.cdfg.schedule import Schedule


@dataclass(frozen=True)
class BindingNode:
    """A (partial) functional unit: a set of compatible operations.

    ``busy`` caches the union of the operations' busy control steps so
    compatibility checks are set intersections.
    """

    fu_class: str
    ops: FrozenSet[int]
    busy: FrozenSet[int]

    @classmethod
    def singleton(cls, schedule: Schedule, op: Operation) -> "BindingNode":
        start, end = schedule.busy_interval(op)
        return cls(
            op.resource_class,
            frozenset((op.op_id,)),
            frozenset(range(start, end + 1)),
        )

    def compatible(self, other: "BindingNode") -> bool:
        return (
            self.fu_class == other.fu_class
            and not (self.busy & other.busy)
        )

    def merge(self, other: "BindingNode") -> "BindingNode":
        if not self.compatible(other):
            raise BindingError(
                f"merging incompatible nodes ({sorted(self.ops)} / "
                f"{sorted(other.ops)})"
            )
        return BindingNode(
            self.fu_class, self.ops | other.ops, self.busy | other.busy
        )

    def __len__(self) -> int:
        return len(self.ops)


def select_initial_sets(
    schedule: Schedule, fu_class: str
) -> Tuple[List[BindingNode], List[BindingNode]]:
    """The ``(U, V)`` node sets for one resource class.

    ``U`` holds the operations of the densest control step for the
    class; ``V`` holds every other operation of the class. All nodes
    are singletons.
    """
    step, count = schedule.densest_step(fu_class)
    if count == 0:
        return [], []
    dense_ops = {
        op.op_id for op in schedule.operations_in_step(step, fu_class)
    }
    u_nodes: List[BindingNode] = []
    v_nodes: List[BindingNode] = []
    for op in sorted(
        (
            op
            for op in schedule.cdfg.operations.values()
            if op.resource_class == fu_class
        ),
        key=lambda op: op.op_id,
    ):
        node = BindingNode.singleton(schedule, op)
        if op.op_id in dense_ops:
            u_nodes.append(node)
        else:
            v_nodes.append(node)
    return u_nodes, v_nodes
