"""Equation (4): the HLPower edge weight.

::

    w(e_ij) = alpha * 1/SA  +  (1 - alpha) * 1 / ((muxDiff + 1) * beta)

``SA`` is the glitch-aware estimated switching activity of the partial
datapath the merged node would instantiate (Equation (3), via the
precalculated table); ``muxDiff`` is the absolute difference of the two
input multiplexer sizes; ``alpha`` balances the low-level SA term
against the high-level mux-balancing term; ``beta`` scales the
muxDiff term so the two terms have comparable magnitude — "based on
empirical study beta ~= 30 for add operations, and 1000 for mult".
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import ConfigError

#: The paper's empirically-chosen per-class scale factors.
DEFAULT_BETA: Dict[str, float] = {"add": 30.0, "mult": 1000.0}

#: The paper's headline setting (Table 3 uses alpha = 0.5).
DEFAULT_ALPHA = 0.5


def edge_weight(
    sa: float,
    mux_diff: int,
    fu_class: str,
    alpha: float = DEFAULT_ALPHA,
    beta: Optional[Mapping[str, float]] = None,
) -> float:
    """Weight of binding two operation sets onto one FU (Equation 4)."""
    if not 0.0 <= alpha <= 1.0:
        raise ConfigError(f"alpha must be in [0, 1], got {alpha}")
    if sa <= 0.0:
        raise ConfigError(f"SA must be positive, got {sa}")
    if mux_diff < 0:
        raise ConfigError(f"muxDiff must be >= 0, got {mux_diff}")
    scales = beta or DEFAULT_BETA
    scale = scales.get(fu_class)
    if scale is None or scale <= 0.0:
        raise ConfigError(f"no positive beta for class {fu_class!r}")
    return alpha * (1.0 / sa) + (1.0 - alpha) * (
        1.0 / ((mux_diff + 1) * scale)
    )
