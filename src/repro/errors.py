"""Shared exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at flow boundaries while still
being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CDFGError(ReproError):
    """Structural problem in a CDFG (dangling edge, cycle, bad type)."""


class ScheduleError(ReproError):
    """Invalid or infeasible schedule (dependence violation, overflow)."""


class NetlistError(ReproError):
    """Malformed gate-level netlist or BLIF text."""


class IngestError(ReproError):
    """Invalid external design (module format, widths, drivers...)."""


class BindingError(ReproError):
    """Binding could not produce a valid solution."""


class ResourceError(BindingError):
    """A resource constraint is infeasible for the given schedule."""


class EstimationError(ReproError):
    """Switching-activity estimation failed (bad probabilities, etc.)."""


class MappingError(ReproError):
    """Technology mapping failure (uncovered node, cut overflow)."""


class RTLError(ReproError):
    """Datapath construction or HDL emission failure."""


class SimulationError(ReproError):
    """Gate-level simulation failure (X propagation, missing driver)."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration value (alpha out of range, K too large...).

    Also a :class:`ValueError`: eager config validation (e.g.
    :class:`repro.flow.FlowConfig.__post_init__`) raises it where
    plain-ValueError semantics are what callers expect.
    """
