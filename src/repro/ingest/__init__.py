"""External-design ingestion frontend.

Everything between "bytes a user uploads" and the staged flow: the
versioned word-level module format and its strict validator
(:mod:`repro.ingest.module`), the bit-blasting elaboration onto the
gate library (:mod:`repro.ingest.bitblast`), and flow entry at the
``elaborate``/``techmap`` boundary with content-addressed stage
fingerprints (:mod:`repro.ingest.flow`). Flat BLIF rides the same path
via the hardened :func:`repro.netlist.blif.parse_blif`.
"""

from repro.ingest.module import (
    MODULE_FORMAT,
    ExternalDesign,
    Module,
    Signal,
    WordOp,
    canonical_text,
    load_design,
    load_design_text,
    parse_module,
)
from repro.ingest.bitblast import IngestedDesign, bit_blast, elaborate_design
from repro.ingest.flow import (
    INGEST_STAGES,
    DesignEstimate,
    design_fingerprint,
    run_design_estimate,
)

__all__ = [
    "MODULE_FORMAT",
    "ExternalDesign",
    "Module",
    "Signal",
    "WordOp",
    "canonical_text",
    "load_design",
    "load_design_text",
    "parse_module",
    "IngestedDesign",
    "bit_blast",
    "elaborate_design",
    "INGEST_STAGES",
    "DesignEstimate",
    "design_fingerprint",
    "run_design_estimate",
]
