"""Word-level external-design module format (``repro-module-v1``).

The paper's flow consumes partial datapaths "in .blif format" before the
switching-activity estimation; this module adds the word-level front
half of that interchange boundary so third-party designs — not just the
CDFG generator's output — can enter the flow. A design is either

* a versioned JSON **module**: multi-bit :class:`Signal` declarations
  (``input``/``output``/``reg`` attributes, an optional ``control``
  activity hint) plus a list of word-level :class:`WordOp` records
  (``add``/``sub``/``mul``, bitwise ``and``/``or``/``xor``/``not``,
  ``mux``, ``dff``, ``const``, ``slice``, ``concat``), or
* flat **BLIF** text, reusing :func:`repro.netlist.blif.parse_blif`.

:func:`parse_module` validates strictly — undriven outputs, width
mismatches, multiple drivers and combinational cycles are all reported
by name as :class:`~repro.errors.IngestError` — and
:func:`canonical_text` renders the validated module as deterministic
JSON, the content-addressed identity the flow fingerprints hang off
(see :mod:`repro.ingest.flow`).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import IngestError, NetlistError
from repro.netlist.blif import blif_text, parse_blif
from repro.netlist.library import select_width

MODULE_FORMAT = "repro-module-v1"

#: Word-level operators and their operand-count contract
#: (min_inputs, max_inputs or None for unbounded).
WORD_OPS: Mapping[str, Tuple[int, Optional[int]]] = {
    "add": (2, 2),
    "sub": (2, 2),
    "mul": (2, 2),
    "and": (2, None),
    "or": (2, None),
    "xor": (2, None),
    "not": (1, 1),
    "mux": (2, None),
    "dff": (1, 1),
    "const": (0, 0),
    "slice": (1, 1),
    "concat": (2, None),
}

# Bit nets are named "<signal>[<bit>]" by the bit-blaster, so signal
# names must keep clear of the bracket characters (and of BLIF syntax).
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.$]*\Z")


@dataclass(frozen=True)
class Signal:
    """A named multi-bit value in a word-level module."""

    name: str
    width: int
    is_input: bool = False
    is_output: bool = False
    is_reg: bool = False
    is_control: bool = False
    init: int = 0


@dataclass(frozen=True)
class WordOp:
    """One word-level operation driving ``output``."""

    op: str
    output: str
    inputs: Tuple[str, ...] = ()
    select: Optional[str] = None  # mux only
    value: Optional[int] = None  # const only
    lsb: Optional[int] = None  # slice only


@dataclass
class Module:
    """A validated word-level module."""

    name: str
    signals: Dict[str, Signal] = field(default_factory=dict)
    ops: List[WordOp] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """Canonical dict form: sorted signals, defaults made explicit,
        op order preserved (it pins deterministic net naming)."""
        signals = []
        for name in sorted(self.signals):
            signal = self.signals[name]
            signals.append({
                "name": signal.name,
                "width": signal.width,
                "input": signal.is_input,
                "output": signal.is_output,
                "reg": signal.is_reg,
                "control": signal.is_control,
                "init": signal.init,
            })
        ops: List[Dict[str, object]] = []
        for op in self.ops:
            record: Dict[str, object] = {
                "op": op.op,
                "inputs": list(op.inputs),
                "output": op.output,
            }
            if op.select is not None:
                record["select"] = op.select
            if op.value is not None:
                record["value"] = op.value
            if op.lsb is not None:
                record["lsb"] = op.lsb
            ops.append(record)
        return {
            "format": MODULE_FORMAT,
            "name": self.name,
            "signals": signals,
            "ops": ops,
        }


def canonical_text(module: Module) -> str:
    """Deterministic JSON for ``module`` — the ingest content address."""
    return json.dumps(module.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def parse_module(source: Union[str, Mapping[str, object]]) -> Module:
    """Parse and strictly validate ``repro-module-v1`` JSON."""
    if isinstance(source, str):
        try:
            data = json.loads(source)
        except ValueError as exc:
            raise IngestError(f"module is not valid JSON: {exc}") from exc
    else:
        data = source
    if not isinstance(data, Mapping):
        raise IngestError("module must be a JSON object")
    version = data.get("format")
    if version != MODULE_FORMAT:
        raise IngestError(
            f"unsupported module format {version!r}; "
            f"expected {MODULE_FORMAT!r}"
        )
    unknown = set(data) - {"format", "name", "signals", "ops"}
    if unknown:
        raise IngestError(f"unknown module fields: {sorted(unknown)}")
    name = data.get("name", "module")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise IngestError(f"bad module name {name!r}")

    module = Module(name=name)
    for index, entry in enumerate(_require_list(data, "signals")):
        signal = _parse_signal(entry, index)
        if signal.name in module.signals:
            raise IngestError(f"duplicate signal {signal.name!r}")
        module.signals[signal.name] = signal
    for index, entry in enumerate(_require_list(data, "ops")):
        module.ops.append(_parse_op(entry, index))

    _validate(module)
    return module


def _require_list(data: Mapping[str, object], key: str) -> Sequence[object]:
    value = data.get(key)
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise IngestError(f"module {key!r} must be a list")
    return value


def _parse_signal(entry: object, index: int) -> Signal:
    if not isinstance(entry, Mapping):
        raise IngestError(f"signal #{index} must be an object")
    unknown = set(entry) - {"name", "width", "input", "output", "reg",
                            "control", "init"}
    if unknown:
        raise IngestError(
            f"signal #{index}: unknown fields {sorted(unknown)}"
        )
    name = entry.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise IngestError(f"signal #{index}: bad name {name!r}")
    width = entry.get("width")
    if not isinstance(width, int) or isinstance(width, bool) or width < 1:
        raise IngestError(f"signal {name!r}: width must be a positive int")
    flags = {}
    for flag in ("input", "output", "reg", "control"):
        value = entry.get(flag, False)
        if not isinstance(value, bool):
            raise IngestError(f"signal {name!r}: {flag!r} must be a bool")
        flags[flag] = value
    init = entry.get("init", 0)
    if not isinstance(init, int) or isinstance(init, bool) or init < 0:
        raise IngestError(f"signal {name!r}: init must be a non-negative int")
    if flags["input"] and flags["output"]:
        raise IngestError(
            f"signal {name!r} cannot be both input and output"
        )
    if flags["input"] and flags["reg"]:
        raise IngestError(f"signal {name!r} cannot be both input and reg")
    if flags["control"] and not flags["input"]:
        raise IngestError(
            f"signal {name!r}: control activity hints apply to inputs only"
        )
    if init and not flags["reg"]:
        raise IngestError(f"signal {name!r}: init requires reg: true")
    if init >> width:
        raise IngestError(
            f"signal {name!r}: init {init} does not fit width {width}"
        )
    return Signal(name=name, width=width, is_input=flags["input"],
                  is_output=flags["output"], is_reg=flags["reg"],
                  is_control=flags["control"], init=init)


def _parse_op(entry: object, index: int) -> WordOp:
    if not isinstance(entry, Mapping):
        raise IngestError(f"op #{index} must be an object")
    kind = entry.get("op")
    if kind not in WORD_OPS:
        raise IngestError(
            f"op #{index}: unknown op {kind!r} "
            f"(supported: {sorted(WORD_OPS)})"
        )
    allowed = {"op", "inputs", "output"}
    allowed |= {"mux": {"select"}, "const": {"value"},
                "slice": {"lsb"}}.get(kind, set())
    unknown = set(entry) - allowed
    if unknown:
        raise IngestError(
            f"op #{index} ({kind}): unknown fields {sorted(unknown)}"
        )
    output = entry.get("output")
    if not isinstance(output, str):
        raise IngestError(f"op #{index} ({kind}): missing output signal")
    inputs = entry.get("inputs", [])
    if (not isinstance(inputs, Sequence) or isinstance(inputs, (str, bytes))
            or not all(isinstance(i, str) for i in inputs)):
        raise IngestError(
            f"op #{index} ({kind}): inputs must be a list of signal names"
        )
    low, high = WORD_OPS[kind]
    if len(inputs) < low or (high is not None and len(inputs) > high):
        bound = f"{low}" if high == low else (
            f">= {low}" if high is None else f"{low}..{high}")
        raise IngestError(
            f"op #{index} ({kind}) driving {output!r}: "
            f"expected {bound} inputs, got {len(inputs)}"
        )
    select = entry.get("select")
    if kind == "mux":
        if not isinstance(select, str):
            raise IngestError(
                f"op #{index} (mux) driving {output!r}: "
                f"missing select signal"
            )
    value = entry.get("value")
    if kind == "const":
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise IngestError(
                f"op #{index} (const) driving {output!r}: "
                f"value must be a non-negative int"
            )
    lsb = entry.get("lsb", 0 if kind == "slice" else None)
    if kind == "slice":
        if not isinstance(lsb, int) or isinstance(lsb, bool) or lsb < 0:
            raise IngestError(
                f"op #{index} (slice) driving {output!r}: "
                f"lsb must be a non-negative int"
            )
    return WordOp(op=kind, output=output, inputs=tuple(inputs),
                  select=select if kind == "mux" else None,
                  value=value if kind == "const" else None,
                  lsb=lsb if kind == "slice" else None)


def _validate(module: Module) -> None:
    signals = module.signals

    def width_of(name: str, context: str) -> int:
        if name not in signals:
            raise IngestError(f"{context} references unknown signal {name!r}")
        return signals[name].width

    # -- single-driver rule --------------------------------------------
    drivers: Dict[str, int] = {}
    for index, op in enumerate(module.ops):
        context = f"op #{index} ({op.op})"
        out_width = width_of(op.output, context)
        target = signals[op.output]
        if target.is_input:
            raise IngestError(
                f"input signal {op.output!r} is driven by {context}"
            )
        if op.output in drivers:
            other = drivers[op.output]
            raise IngestError(
                f"signal {op.output!r} has multiple drivers: "
                f"op #{other} ({module.ops[other].op}) and {context}"
            )
        drivers[op.output] = index
        _check_widths(op, out_width, width_of, context)
        if op.op == "dff" and not target.is_reg:
            raise IngestError(
                f"{context}: output {op.output!r} must be declared reg"
            )
        if op.op != "dff" and target.is_reg:
            raise IngestError(
                f"reg signal {op.output!r} must be driven by a dff, "
                f"got {context}"
            )

    # -- completeness --------------------------------------------------
    for name, signal in signals.items():
        if signal.is_input:
            continue
        if name not in drivers:
            kind = "output signal" if signal.is_output else "signal"
            raise IngestError(f"{kind} {name!r} is never driven")
    if not any(signal.is_output for signal in signals.values()):
        raise IngestError(f"module {module.name!r} declares no outputs")

    _check_cycles(module, drivers)


def _check_widths(op: WordOp, out_width: int, width_of, context: str) -> None:
    widths = [width_of(name, context) for name in op.inputs]
    if op.op in ("add", "sub", "mul", "and", "or", "xor", "not"):
        for name, width in zip(op.inputs, widths):
            if width != out_width:
                raise IngestError(
                    f"{context}: input {name!r} is {width} bits wide "
                    f"but output {op.output!r} is {out_width}"
                )
    elif op.op == "mux":
        for name, width in zip(op.inputs, widths):
            if width != out_width:
                raise IngestError(
                    f"{context}: data input {name!r} is {width} bits wide "
                    f"but output {op.output!r} is {out_width}"
                )
        need = select_width(len(op.inputs))
        sel_width = width_of(op.select, context)
        if sel_width != need:
            raise IngestError(
                f"{context}: select {op.select!r} is {sel_width} bits wide; "
                f"{len(op.inputs)} data inputs need {need}"
            )
    elif op.op == "dff":
        if widths[0] != out_width:
            raise IngestError(
                f"{context}: input {op.inputs[0]!r} is {widths[0]} bits "
                f"wide but output {op.output!r} is {out_width}"
            )
    elif op.op == "const":
        if op.value >> out_width:
            raise IngestError(
                f"{context}: value {op.value} does not fit the "
                f"{out_width}-bit output {op.output!r}"
            )
    elif op.op == "slice":
        if op.lsb + out_width > widths[0]:
            raise IngestError(
                f"{context}: bits [{op.lsb}+{out_width}) exceed the "
                f"{widths[0]}-bit input {op.inputs[0]!r}"
            )
    elif op.op == "concat":
        if sum(widths) != out_width:
            raise IngestError(
                f"{context}: concat of {sum(widths)} bits does not match "
                f"the {out_width}-bit output {op.output!r}"
            )


def _check_cycles(module: Module, drivers: Dict[str, int]) -> None:
    """Reject combinational cycles; DFFs break the dependency edge."""
    def operands(name: str) -> Tuple[str, ...]:
        index = drivers.get(name)
        if index is None:
            return ()
        op = module.ops[index]
        if op.op == "dff":
            return ()
        if op.select is not None:
            return op.inputs + (op.select,)
        return op.inputs

    WHITE, GREY, BLACK = 0, 1, 2
    color = {name: WHITE for name in module.signals}
    for root in module.signals:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[str, int]] = [(root, 0)]
        path = [root]
        color[root] = GREY
        while stack:
            name, cursor = stack[-1]
            deps = operands(name)
            if cursor == len(deps):
                stack.pop()
                path.pop()
                color[name] = BLACK
                continue
            stack[-1] = (name, cursor + 1)
            dep = deps[cursor]
            if color[dep] == GREY:
                cycle = path[path.index(dep):] + [dep]
                raise IngestError(
                    "combinational cycle: " + " -> ".join(cycle)
                )
            if color[dep] == WHITE:
                color[dep] = GREY
                stack.append((dep, 0))
                path.append(dep)


# -- external-design loaders -----------------------------------------------


@dataclass(frozen=True)
class ExternalDesign:
    """A validated, canonicalized design ready to enter the flow.

    ``canonical`` is the content address: canonical module JSON for
    word-level designs, normalized flat BLIF (``blif_text(parse_blif)``)
    for gate-level ones. Two uploads with the same canonical text share
    every stage fingerprint downstream.
    """

    name: str
    kind: str  # "module" | "blif"
    canonical: str


def load_design_text(text: str, name: Optional[str] = None) -> ExternalDesign:
    """Sniff + validate + canonicalize one design (module JSON or BLIF)."""
    if not isinstance(text, str) or not text.strip():
        raise IngestError("empty design")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        module = parse_module(text)
        return ExternalDesign(name=name or module.name, kind="module",
                              canonical=canonical_text(module))
    try:
        netlist = parse_blif(text)
        netlist.validate()
    except NetlistError as exc:
        raise IngestError(f"bad BLIF design: {exc}") from exc
    if not netlist.outputs:
        raise IngestError("BLIF design declares no .outputs")
    return ExternalDesign(name=name or netlist.name, kind="blif",
                          canonical=blif_text(netlist))


def load_design(path: str, name: Optional[str] = None) -> ExternalDesign:
    """Load a design file; the default name is the file stem."""
    import os

    with open(path, "r", encoding="utf-8") as stream:
        text = stream.read()
    if name is None:
        name = os.path.splitext(os.path.basename(path))[0]
    return load_design_text(text, name=name)
