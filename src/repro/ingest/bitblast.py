"""Bit-blasting elaboration for external word-level modules.

Lowers :class:`repro.ingest.module.Module` ops onto the structural
generators in :mod:`repro.netlist.library` — ripple-carry adders and
subtractors, the array multiplier, pairwise mux trees, per-bit latches —
so an ingested design yields a :class:`~repro.netlist.gates.Netlist`
indistinguishable from the CDFG generator's elaboration output
(including the same :func:`repro.netlist.transform.clean` pass the
generator path runs).

Naming is deterministic and pinned by golden tests: bit ``b`` of signal
``x`` is the net ``x[b]``, and internal nets of the cell instantiated
for op ``i`` carry the prefix ``u<i>_<op>/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import IngestError
from repro.netlist.blif import parse_blif
from repro.netlist.gates import GateType, Netlist
from repro.netlist.library import (
    build_adder,
    build_multiplier,
    build_mux,
    build_subtractor,
    select_width,
)
from repro.netlist.transform import clean
from repro.ingest.module import ExternalDesign, Module, WordOp, parse_module

_BITWISE = {
    "and": GateType.AND,
    "or": GateType.OR,
    "xor": GateType.XOR,
    "not": GateType.NOT,
}


@dataclass
class IngestedDesign:
    """An external design elaborated to the gate level.

    ``signal_bits`` maps the module's input/output signals to their bit
    nets (LSB first); ``control_nets`` are the bit nets of ``control``
    -flagged inputs, fed to the tech mapper as the low-activity inputs
    exactly like the generator flow's control nets.
    """

    name: str
    netlist: Netlist
    control_nets: Tuple[str, ...]
    n_registers: int
    signal_bits: Dict[str, Tuple[str, ...]]


def bit_blast(module: Module) -> IngestedDesign:
    """Lower ``module`` to gates; deterministic for a given module."""
    netlist = Netlist(module.name)
    bits = {
        signal.name: tuple(f"{signal.name}[{b}]"
                           for b in range(signal.width))
        for signal in module.signals.values()
    }
    control_nets: List[str] = []
    for signal in module.signals.values():
        if signal.is_input:
            for net in bits[signal.name]:
                netlist.add_input(net)
            if signal.is_control:
                control_nets.extend(bits[signal.name])

    for index, op in enumerate(module.ops):
        _lower_op(netlist, op, bits, prefix=f"u{index}_{op.op}/",
                  init=module.signals[op.output].init)

    for signal in module.signals.values():
        if signal.is_output:
            for net in bits[signal.name]:
                netlist.set_output(net)

    clean(netlist)
    netlist.validate()
    io_bits = {
        name: bits[name] for name, signal in module.signals.items()
        if signal.is_input or signal.is_output
    }
    n_registers = sum(
        1 for signal in module.signals.values() if signal.is_reg
    )
    return IngestedDesign(name=module.name, netlist=netlist,
                          control_nets=tuple(control_nets),
                          n_registers=n_registers, signal_bits=io_bits)


def _lower_op(
    netlist: Netlist,
    op: WordOp,
    bits: Dict[str, Tuple[str, ...]],
    prefix: str,
    init: int,
) -> None:
    out = bits[op.output]
    width = len(out)
    if op.op in ("add", "sub", "mul"):
        builder = {"add": build_adder, "sub": build_subtractor,
                   "mul": build_multiplier}[op.op]
        cell = builder(width)
        port_map = {}
        for port, name in zip("ab", op.inputs):
            for b in range(width):
                port_map[f"{port}{b}"] = bits[name][b]
        netlist.instantiate(
            cell, port_map, prefix,
            output_map={f"s{b}": out[b] for b in range(width)},
        )
    elif op.op == "mux":
        cell = build_mux(len(op.inputs), width)
        port_map = {}
        for i, name in enumerate(op.inputs):
            for b in range(width):
                port_map[f"d{i}_{b}"] = bits[name][b]
        for k in range(select_width(len(op.inputs))):
            port_map[f"sel{k}"] = bits[op.select][k]
        netlist.instantiate(
            cell, port_map, prefix,
            output_map={f"y{b}": out[b] for b in range(width)},
        )
    elif op.op in _BITWISE:
        gate_type = _BITWISE[op.op]
        for b in range(width):
            operands = tuple(bits[name][b] for name in op.inputs)
            netlist.add_simple(gate_type, operands, out[b])
    elif op.op == "dff":
        data = bits[op.inputs[0]]
        for b in range(width):
            netlist.add_latch(data[b], out[b], init=bool((init >> b) & 1))
    elif op.op == "const":
        for b in range(width):
            netlist.add_const(bool((op.value >> b) & 1), out[b])
    elif op.op == "slice":
        source = bits[op.inputs[0]]
        for b in range(width):
            netlist.add_simple(GateType.BUF, (source[op.lsb + b],), out[b])
    elif op.op == "concat":
        # inputs[0] supplies the least-significant bits.
        position = 0
        for name in op.inputs:
            for source in bits[name]:
                netlist.add_simple(GateType.BUF, (source,), out[position])
                position += 1
    else:  # pragma: no cover - parse_op rejects unknown ops
        raise IngestError(f"cannot lower op {op.op!r}")


def elaborate_design(design: ExternalDesign) -> IngestedDesign:
    """Elaborate an :class:`ExternalDesign` from its canonical text.

    Word-level modules bit-blast; flat BLIF is already gate-level and is
    taken verbatim (re-parsed from the canonical text so the artifact is
    a pure function of the content address).
    """
    if design.kind == "module":
        return bit_blast(parse_module(design.canonical))
    if design.kind != "blif":
        raise IngestError(f"unknown design kind {design.kind!r}")
    netlist = parse_blif(design.canonical)
    return IngestedDesign(name=netlist.name, netlist=netlist,
                          control_nets=(),
                          n_registers=len(netlist.latches), signal_bits={})
