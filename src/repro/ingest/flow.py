"""Flow entry for ingested designs.

External designs join the staged pipeline at the ``elaborate``/
``techmap`` boundary: there is no schedule or binder to run, so the
elaborate artifact is fingerprinted from the **canonicalized design
text** (see :func:`repro.ingest.module.canonical_text`) instead of from
flow inputs, and everything downstream — LUT mapping, timing, the
shared :class:`~repro.flow.cache.ArtifactCache`, the mapper's
cross-design ConeMemo — is the exact machinery the generator flow uses.
Stage names (``elaborate``/``techmap``/``timing``) and the
:class:`DesignEstimate` metrics schema deliberately mirror
:class:`repro.flow.run.EstimateResult`, so sweep cells, reports, the
resident executor and ``repro serve`` handle design jobs unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.flow.cache import ArtifactCache, fingerprint
from repro.flow.pipeline import CACHE_SALT
from repro.flow.run import FlowConfig
from repro.fpga.timing import TimingReport, timing_report
from repro.ingest.bitblast import IngestedDesign, elaborate_design
from repro.ingest.module import ExternalDesign
from repro.techmap import ConeMemo
from repro.techmap.mapper import MapResult, map_netlist

#: Stage names reuse the pipeline vocabulary so report ordering
#: (:data:`repro.flow.report._STAGE_ORDER`) applies as-is.
INGEST_STAGES = ("elaborate", "techmap", "timing")


@dataclass
class DesignEstimate:
    """Estimate-flow result for one ingested design.

    ``metrics()`` carries the full
    :meth:`repro.flow.run.EstimateResult.metrics` key set — binding
    -specific fields (mux statistics, controller area) are zero because
    an external design has no binder — so sweep aggregation, report
    columns and serve payloads need no special cases.
    """

    design: str
    mapping: MapResult
    timing: TimingReport
    n_registers: int
    runtime_s: float = 0.0
    stage_timings: Dict[str, float] = field(default_factory=dict)
    cache_hits: List[str] = field(default_factory=list)

    @property
    def estimated_sa(self) -> float:
        return self.mapping.total_sa

    def metrics(self) -> Dict[str, float]:
        return {
            "estimated_sa": self.mapping.total_sa,
            "functional_sa": self.mapping.functional_sa,
            "glitch_sa": self.mapping.glitch_sa,
            "glitch_fraction": self.mapping.glitch_fraction,
            "clock_period_ns": self.timing.clock_period_ns,
            "depth_levels": self.timing.depth_levels,
            "area_luts": self.mapping.area,
            "datapath_luts": self.mapping.area,
            "controller_luts": 0,
            "largest_mux": 0,
            "mux_length": 0,
            "fu_mux_length": 0,
            "mux_diff_mean": 0.0,
            "mux_diff_sum": 0,
            "n_registers": self.n_registers,
        }


def design_fingerprint(design: ExternalDesign) -> str:
    """Content address of the elaborate artifact for ``design``."""
    return fingerprint(CACHE_SALT, "ingest-elaborate", design.kind,
                       design.canonical)


def _cone_memo(cache: Optional[ArtifactCache],
               elaborate_fp: str) -> ConeMemo:
    """The mapper memo, shared through the cache exactly like
    :func:`repro.flow.pipeline._cone_memo` (same key scheme, memory
    only)."""
    if cache is None:
        return ConeMemo()
    key = fingerprint(CACHE_SALT, "cone-memo", elaborate_fp)
    hit, memo = cache.lookup(key)
    if not hit:
        memo = ConeMemo()
        cache.store(key, memo, persist=False)
    return memo


def run_design_estimate(
    design: ExternalDesign,
    cfg: Optional[FlowConfig] = None,
    cache: Optional[ArtifactCache] = None,
) -> DesignEstimate:
    """Estimate one external design through elaborate → techmap → timing.

    Deterministic: the result is a pure function of (canonical design
    text, config); the cache only ever substitutes byte-identical
    recomputations, so cold, warm and daemon runs agree exactly.
    """
    cfg = cfg or FlowConfig(flow="estimate")
    started = time.perf_counter()
    timings: Dict[str, float] = {}
    hits: List[str] = []

    def artifact(name, digest, compute, persist=True):
        stage_started = time.perf_counter()
        hit = False
        value = None
        if cache is not None:
            hit, value = cache.lookup(digest)
        if not hit:
            value = compute()
            if cache is not None:
                cache.store(digest, value, persist=persist)
        else:
            hits.append(name)
        timings[name] = time.perf_counter() - stage_started
        return value

    elaborate_fp = design_fingerprint(design)
    elaborated: IngestedDesign = artifact(
        "elaborate", elaborate_fp, lambda: elaborate_design(design))

    techmap_fp = fingerprint(CACHE_SALT, "ingest-techmap", elaborate_fp,
                             cfg.k, cfg.control_activity, cfg.map_effort)

    def run_techmap() -> MapResult:
        input_activities = {
            net: cfg.control_activity for net in elaborated.control_nets
        }
        return map_netlist(
            elaborated.netlist,
            k=cfg.k,
            input_activities=input_activities,
            effort=cfg.map_effort,
            cone_memo=_cone_memo(cache, elaborate_fp),
        )

    mapping: MapResult = artifact("techmap", techmap_fp, run_techmap)

    timing_fp = fingerprint(CACHE_SALT, "ingest-timing", techmap_fp,
                            cfg.device)
    timing: TimingReport = artifact(
        "timing", timing_fp,
        lambda: timing_report(mapping.netlist, cfg.device))

    return DesignEstimate(
        design=design.name,
        mapping=mapping,
        timing=timing,
        n_registers=elaborated.n_registers,
        runtime_s=time.perf_counter() - started,
        stage_timings=timings,
        cache_hits=hits,
    )
