"""Multiplexer statistics (Tables 3 and 4).

* ``largest_mux`` — the largest multiplexer needed to implement the
  binding (over FU ports and register inputs);
* ``mux_length`` — "a measure of the total number of multiplexers
  implemented ... calculated by adding up the total number of
  multiplexer inputs (sizes)"; single-source ports are wires, not
  muxes, and do not count;
* ``mux_diff`` per allocated FU — the absolute difference of its two
  input mux sizes — with the mean/variance Table 4 reports.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.binding.base import BindingSolution


@dataclass
class MuxReport:
    """The paper's multiplexer metrics for one binding solution."""

    largest_mux: int
    mux_length: int
    fu_mux_length: int
    register_mux_length: int
    mux_diffs: List[int] = field(default_factory=list)
    fu_mux_sizes: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def n_fus(self) -> int:
        """Table 4's "# muxes" column counts allocated resources."""
        return len(self.mux_diffs)

    @property
    def mux_diff_mean(self) -> float:
        if not self.mux_diffs:
            return 0.0
        return statistics.mean(self.mux_diffs)

    @property
    def mux_diff_variance(self) -> float:
        """Population variance, as papers conventionally report."""
        if not self.mux_diffs:
            return 0.0
        return statistics.pvariance(self.mux_diffs)


def mux_report(solution: BindingSolution) -> MuxReport:
    """Compute the multiplexer statistics of a binding solution."""
    largest = 0
    fu_length = 0
    diffs: List[int] = []
    fu_sizes: List[Tuple[int, int]] = []
    for unit in sorted(solution.fus.units, key=lambda u: u.fu_id):
        size_a, size_b = solution.mux_sizes(unit)
        fu_sizes.append((size_a, size_b))
        diffs.append(abs(size_a - size_b))
        largest = max(largest, size_a, size_b)
        if size_a > 1:
            fu_length += size_a
        if size_b > 1:
            fu_length += size_b

    reg_length = 0
    for register in range(solution.registers.n_registers):
        size = len(solution.register_sources(register))
        largest = max(largest, size)
        if size > 1:
            reg_length += size

    return MuxReport(
        largest_mux=largest,
        mux_length=fu_length + reg_length,
        fu_mux_length=fu_length,
        register_mux_length=reg_length,
        mux_diffs=diffs,
        fu_mux_sizes=fu_sizes,
    )
