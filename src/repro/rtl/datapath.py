"""Datapath construction from a binding solution.

The bound CDFG maps onto hardware as:

* one register per allocated register index, fed by an input mux over
  its distinct writers (functional units, or the input pad for primary
  inputs) and gated by an enable;
* one functional unit per allocated FU, each input port fed by a mux
  over the distinct registers that port reads;
* primary outputs read the registers holding the output variables at
  the end of the iteration.

The construction also derives the *control table*: for every control
step, the select value of every mux and the enable set of registers —
what the FSM controller drives. The table is what the gate-level
simulation replays and what the VHDL emitter turns into a case
statement.

Primary-input handling: PI variables are register-bound like any other
variable (their lifetime starts at step 0), so each PI register loads
from the pad at a *load* step 0 preceding the iteration body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RTLError
from repro.binding.base import BindingSolution, FunctionalUnit
from repro.cdfg.graph import CDFG

#: A mux data source: ("reg", index) | ("fu", id) | ("pad", pi position).
SourceRef = Tuple[str, int]


@dataclass
class MuxSpec:
    """One multiplexer instance: an ordered list of sources."""

    name: str
    sources: List[SourceRef]

    @property
    def size(self) -> int:
        return len(self.sources)

    def select_of(self, source: SourceRef) -> int:
        # Lazily indexed: select lookups run once per (op, port) while
        # building the control table, so a linear .index() scan makes
        # datapath construction quadratic in ops-per-FU. Sources never
        # change after construction.
        cached = self.__dict__.get("_select_index")
        if cached is None or cached[0] != len(self.sources):
            index: Dict[SourceRef, int] = {}
            for k, ref in enumerate(self.sources):
                index.setdefault(ref, k)  # first occurrence, like .index()
            cached = (len(self.sources), index)
            self.__dict__["_select_index"] = cached
        try:
            return cached[1][source]
        except KeyError:
            raise RTLError(f"{self.name}: {source} is not a source")


@dataclass
class RegisterSpec:
    """One datapath register and its input mux."""

    index: int
    mux: MuxSpec
    variables: List[int]  # variable ids stored over time


@dataclass
class FUSpec:
    """One functional unit with its two port muxes."""

    unit: FunctionalUnit
    mux_a: MuxSpec
    mux_b: MuxSpec
    #: True when the unit serves both add and sub operations and thus
    #: needs a mode control (the shared adder/subtractor structure).
    needs_mode: bool = False


@dataclass
class StepControl:
    """Control signals for one control step."""

    fu_selects: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    reg_enables: Dict[int, int] = field(default_factory=dict)  # reg -> select
    #: For add/sub-sharing units: 0 = add, 1 = subtract.
    fu_modes: Dict[int, int] = field(default_factory=dict)


@dataclass
class Datapath:
    """A complete datapath plus its control table.

    ``control[0]`` is the PI-load step; ``control[t]`` for ``t >= 1``
    drives control step ``t`` of the schedule.
    """

    solution: BindingSolution
    width: int
    registers: List[RegisterSpec]
    fus: List[FUSpec]
    output_registers: List[int]  # register index per primary output
    control: List[StepControl]

    @property
    def cdfg(self) -> CDFG:
        return self.solution.schedule.cdfg

    @property
    def n_steps(self) -> int:
        return len(self.control) - 1

    def fu_of(self, op_id: int) -> FUSpec:
        unit = self.solution.fus.unit_of(op_id)
        # Lazily indexed by fu id: validate() resolves one spec per
        # operation, and a linear scan over the FU list per lookup is
        # quadratic on wide schedules.
        index = self.__dict__.get("_fu_index")
        if index is None or len(index) != len(self.fus):
            index = {spec.unit.fu_id: spec for spec in self.fus}
            self.__dict__["_fu_index"] = index
        spec = index.get(unit.fu_id)
        if spec is None:
            raise RTLError(f"no FU spec for unit {unit.fu_id}")
        return spec

    def validate(self) -> None:
        """Every op must be drivable in its scheduled step."""
        schedule = self.solution.schedule
        for op in self.cdfg.operations.values():
            step = schedule.start_of(op)
            control = self.control[step]
            spec = self.fu_of(op.op_id)
            if spec.unit.fu_id not in control.fu_selects:
                raise RTLError(
                    f"{op.name}: no FU selects at step {step}"
                )
        for index, control in enumerate(self.control):
            for reg, select in control.reg_enables.items():
                mux = self.registers[reg].mux
                if not 0 <= select < mux.size:
                    raise RTLError(
                        f"step {index}: register {reg} select {select} "
                        f"out of range ({mux.size} sources)"
                    )


def build_datapath(solution: BindingSolution, width: int = 8) -> Datapath:
    """Derive the datapath and control table from a binding solution."""
    if width < 1:
        raise RTLError(f"datapath width must be positive, got {width}")
    cdfg = solution.schedule.cdfg
    schedule = solution.schedule

    fus: List[FUSpec] = []
    fu_index: Dict[int, FUSpec] = {}
    for unit in sorted(solution.fus.units, key=lambda u: u.fu_id):
        sources_a, sources_b = solution.port_sources(unit)
        op_types = {
            cdfg.operations[op_id].op_type for op_id in unit.ops
        }
        spec = FUSpec(
            unit=unit,
            mux_a=MuxSpec(
                f"fu{unit.fu_id}_mux_a",
                [("reg", r) for r in sources_a],
            ),
            mux_b=MuxSpec(
                f"fu{unit.fu_id}_mux_b",
                [("reg", r) for r in sources_b],
            ),
            needs_mode="sub" in op_types and len(op_types) > 1,
        )
        fus.append(spec)
        fu_index[unit.fu_id] = spec

    pad_of: Dict[int, int] = {
        var_id: position
        for position, var_id in enumerate(cdfg.primary_inputs)
    }
    registers: List[RegisterSpec] = []
    for reg in range(solution.registers.n_registers):
        variables = solution.registers.variables_in(reg)
        sources: List[SourceRef] = []
        for var_id in variables:
            variable = cdfg.variables[var_id]
            if variable.producer is None:
                ref: SourceRef = ("pad", pad_of[var_id])
            else:
                ref = ("fu", solution.fus.unit_of(variable.producer).fu_id)
            if ref not in sources:
                sources.append(ref)
        registers.append(
            RegisterSpec(reg, MuxSpec(f"reg{reg}_mux", sources), variables)
        )

    control = [StepControl() for _ in range(schedule.length + 1)]
    # Step 0: load every primary input's register from its pad.
    for var_id in cdfg.primary_inputs:
        reg = solution.registers.assignment.get(var_id)
        if reg is None:
            continue  # unread input (generator forbids, but stay safe)
        select = registers[reg].mux.select_of(("pad", pad_of[var_id]))
        control[0].reg_enables[reg] = select

    for op in cdfg.operations.values():
        step = schedule.start_of(op)
        unit = solution.fus.unit_of(op.op_id)
        spec = fu_index[unit.fu_id]
        var_a, var_b = solution.ports.of(op)
        sel_a = spec.mux_a.select_of(
            ("reg", solution.registers.register_of(var_a))
        )
        sel_b = spec.mux_b.select_of(
            ("reg", solution.registers.register_of(var_b))
        )
        # Drive the selects (and mode) for the op's whole busy interval
        # so multi-cycle operations keep their inputs stable regardless
        # of the idle-select convention.
        for busy_step in range(step, schedule.end_of(op) + 1):
            if unit.fu_id in control[busy_step].fu_selects:
                raise RTLError(
                    f"unit {unit.fu_id} double-driven at step {busy_step}"
                )
            control[busy_step].fu_selects[unit.fu_id] = (sel_a, sel_b)
            if fu_index[unit.fu_id].needs_mode:
                control[busy_step].fu_modes[unit.fu_id] = (
                    1 if op.op_type == "sub" else 0
                )

        # Result lands in its register at the end of the op's last step.
        out_reg = solution.registers.register_of(op.output)
        write_step = schedule.end_of(op)
        select = registers[out_reg].mux.select_of(("fu", unit.fu_id))
        existing = control[write_step].reg_enables.get(out_reg)
        if existing is not None and existing != select:
            raise RTLError(
                f"register {out_reg} written twice at step {write_step}"
            )
        control[write_step].reg_enables[out_reg] = select

    output_registers = [
        solution.registers.register_of(var_id)
        for var_id in cdfg.primary_outputs
    ]

    datapath = Datapath(
        solution=solution,
        width=width,
        registers=registers,
        fus=fus,
        output_registers=output_registers,
        control=control,
    )
    datapath.validate()
    return datapath
