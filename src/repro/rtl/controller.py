"""FSM controller description.

The controller is a step counter plus a control ROM: in state ``t`` it
drives every mux select and register enable recorded in the datapath's
control table. This module derives the controller's signal inventory
(for HDL emission) and a LUT-cost estimate (counted identically for
both binders, so relative area comparisons are unaffected).

Unset selects hold their previous value (``None`` entries): holding is
what a power-aware controller does, because re-steering an idle mux
burns glitches downstream for no work — and the simulator replays the
same convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rtl.datapath import Datapath


@dataclass
class ControlSignal:
    """One controller output: a mux select bus or an enable bit."""

    name: str
    width: int
    #: Per step: integer value, or None to hold the previous value.
    values: List[Optional[int]]


@dataclass
class Controller:
    """Signal-level controller description for a datapath."""

    n_steps: int  # includes the PI-load step 0
    state_bits: int
    signals: List[ControlSignal]

    def signal(self, name: str) -> ControlSignal:
        for sig in self.signals:
            if sig.name == name:
                return sig
        raise KeyError(name)

    def resolved(self, idle: str = "zero") -> Dict[str, List[int]]:
        """Signals with idle (``None``) steps resolved to concrete values.

        ``idle="zero"`` models what plain FSM synthesis produces: each
        control output is an OR of its active state terms, so it decodes
        to 0 whenever the state drives no operation — the convention the
        paper's Quartus flow sees. ``idle="hold"`` models a power-aware
        controller with operand isolation (selects freeze between uses);
        the gap between the two is measured by an ablation bench.
        """
        if idle not in ("zero", "hold"):
            raise ValueError(f"unknown idle policy {idle!r}")
        table: Dict[str, List[int]] = {}
        for sig in self.signals:
            values: List[int] = []
            last = 0
            for value in sig.values:
                if value is not None:
                    last = value
                elif idle == "zero":
                    last = 0
                values.append(last)
            table[sig.name] = values
        return table

    def estimated_luts(self, k: int = 4) -> int:
        """Rough LUT cost: state counter + one ROM cone per output bit."""
        counter = self.state_bits
        rom_bits = sum(sig.width for sig in self.signals)
        # Each output bit is a function of state_bits inputs; a K-LUT
        # cone for b inputs needs ~ceil((2^b - 1) / (2^k - 1)) LUTs.
        if self.state_bits <= k:
            per_bit = 1
        else:
            per_bit = math.ceil(
                ((1 << self.state_bits) - 1) / ((1 << k) - 1)
            )
            per_bit = min(per_bit, 1 << (self.state_bits - k))
            per_bit = max(per_bit, 1)
        return counter + rom_bits * per_bit


def build_controller(datapath: Datapath) -> Controller:
    """Extract the controller signal table from a datapath."""
    n_steps = len(datapath.control)
    signals: List[ControlSignal] = []

    for spec in datapath.fus:
        if spec.needs_mode:
            values = [
                control.fu_modes.get(spec.unit.fu_id)
                for control in datapath.control
            ]
            signals.append(
                ControlSignal(f"fu{spec.unit.fu_id}_mode", 1, values)
            )
        for port, mux in (("a", spec.mux_a), ("b", spec.mux_b)):
            if mux.size <= 1:
                continue
            width = max(1, (mux.size - 1).bit_length())
            values: List[Optional[int]] = []
            for control in datapath.control:
                selects = control.fu_selects.get(spec.unit.fu_id)
                if selects is None:
                    values.append(None)
                else:
                    values.append(selects[0 if port == "a" else 1])
            signals.append(
                ControlSignal(f"fu{spec.unit.fu_id}_sel_{port}", width, values)
            )

    for reg in datapath.registers:
        enables: List[Optional[int]] = []
        selects: List[Optional[int]] = []
        for control in datapath.control:
            select = control.reg_enables.get(reg.index)
            enables.append(1 if select is not None else 0)
            selects.append(select)
        signals.append(ControlSignal(f"reg{reg.index}_en", 1, enables))
        if reg.mux.size > 1:
            width = max(1, (reg.mux.size - 1).bit_length())
            signals.append(
                ControlSignal(f"reg{reg.index}_sel", width, selects)
            )

    state_bits = max(1, (n_steps - 1).bit_length())
    return Controller(n_steps, state_bits, signals)
