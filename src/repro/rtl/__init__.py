"""RTL construction from binding solutions.

* :mod:`~repro.rtl.datapath` — registers + input muxes + FUs + port
  muxes, with the per-control-step select/enable table.
* :mod:`~repro.rtl.controller` — FSM controller description.
* :mod:`~repro.rtl.metrics` — the paper's multiplexer statistics
  (largest MUX, MUX length, muxDiff mean/variance; Tables 3 and 4).
* :mod:`~repro.rtl.vhdl` — VHDL emitter (the paper's "CDFG to VHDL
  tool").
"""

from repro.rtl.datapath import Datapath, SourceRef, build_datapath
from repro.rtl.controller import Controller, build_controller
from repro.rtl.metrics import MuxReport, mux_report
from repro.rtl.vhdl import emit_vhdl

__all__ = [
    "Datapath",
    "SourceRef",
    "build_datapath",
    "Controller",
    "build_controller",
    "MuxReport",
    "mux_report",
    "emit_vhdl",
]
