"""Structural VHDL emission (the paper's "CDFG to VHDL tool").

Emits a synthesizable entity per datapath: a state-counter FSM, the
control ROM as case statements, registers with enables and input
muxes, and one arithmetic process per functional unit. The style
mirrors what the paper feeds Quartus II: mux structure explicit in the
RTL so the synthesizer preserves the binding's interconnect (they
disable restructuring optimizations for the same reason).

The virtual FPGA flow in :mod:`repro.fpga` consumes the datapath
directly; this emitter exists for inspection and portability to real
tools, and its output is validated structurally by the test suite.
"""

from __future__ import annotations

from typing import Dict, List

from repro.rtl.controller import Controller, build_controller
from repro.rtl.datapath import Datapath, MuxSpec, SourceRef

_OPS = {"add": "+", "sub": "-", "mult": "*"}


def emit_vhdl(datapath: Datapath, entity: str = "design") -> str:
    """Render ``datapath`` as a single-entity VHDL design."""
    controller = build_controller(datapath)
    width = datapath.width
    cdfg = datapath.cdfg
    lines: List[str] = []
    emit = lines.append

    emit("library ieee;")
    emit("use ieee.std_logic_1164.all;")
    emit("use ieee.numeric_std.all;")
    emit("")
    emit(f"entity {entity} is")
    emit("  port (")
    emit("    clk   : in  std_logic;")
    emit("    rst   : in  std_logic;")
    emit("    start : in  std_logic;")
    for position in range(len(cdfg.primary_inputs)):
        emit(
            f"    pi{position} : in  std_logic_vector({width - 1} downto 0);"
        )
    for position in range(len(datapath.output_registers)):
        emit(
            f"    po{position} : out std_logic_vector({width - 1} downto 0);"
        )
    emit("    done  : out std_logic")
    emit("  );")
    emit(f"end entity {entity};")
    emit("")
    emit(f"architecture rtl of {entity} is")
    emit(
        f"  signal state : integer range 0 to {controller.n_steps - 1} := 0;"
    )
    for reg in datapath.registers:
        emit(
            f"  signal reg{reg.index} : unsigned({width - 1} downto 0)"
            " := (others => '0');"
        )
    for spec in datapath.fus:
        fu = spec.unit.fu_id
        emit(f"  signal fu{fu}_a, fu{fu}_b : unsigned({width - 1} downto 0);")
        emit(f"  signal fu{fu}_y : unsigned({width - 1} downto 0);")
        if spec.needs_mode:
            emit(f"  signal fu{fu}_mode : std_logic;")
        for port, mux in (("a", spec.mux_a), ("b", spec.mux_b)):
            if mux.size > 1:
                emit(
                    f"  signal fu{fu}_sel_{port} : integer range 0 to "
                    f"{mux.size - 1};"
                )
    for reg in datapath.registers:
        if reg.mux.size > 1:
            emit(
                f"  signal reg{reg.index}_sel : integer range 0 to "
                f"{reg.mux.size - 1};"
            )
        emit(f"  signal reg{reg.index}_en : std_logic;")
    emit("begin")
    emit("")
    _emit_fsm(emit, controller)
    emit("")
    _emit_control_rom(emit, datapath, controller)
    emit("")
    for spec in datapath.fus:
        _emit_fu(emit, datapath, spec)
    emit("")
    _emit_registers(emit, datapath)
    emit("")
    for position, register in enumerate(datapath.output_registers):
        emit(f"  po{position} <= std_logic_vector(reg{register});")
    emit(
        f"  done <= '1' when state = {controller.n_steps - 1} else '0';"
    )
    emit("")
    emit("end architecture rtl;")
    return "\n".join(lines) + "\n"


def _emit_fsm(emit, controller: Controller) -> None:
    emit("  fsm : process (clk) begin")
    emit("    if rising_edge(clk) then")
    emit("      if rst = '1' then")
    emit("        state <= 0;")
    emit(f"      elsif state = {controller.n_steps - 1} then")
    emit("        if start = '1' then state <= 0; end if;")
    emit("      else")
    emit("        state <= state + 1;")
    emit("      end if;")
    emit("    end if;")
    emit("  end process fsm;")


def _emit_control_rom(
    emit, datapath: Datapath, controller: Controller
) -> None:
    resolved = controller.resolved()
    emit("  control : process (state) begin")
    for sig in controller.signals:
        values = resolved[sig.name]
        if sig.name.endswith("_en"):
            default = "'0'"
            ones = [step for step, v in enumerate(values) if v == 1]
            emit(f"    {sig.name} <= {default};")
            for step in ones:
                emit(
                    f"    if state = {step} then {sig.name} <= '1'; end if;"
                )
        elif sig.name.endswith("_mode"):
            emit(f"    {sig.name} <= '{values[0]}';")
            previous = values[0]
            for step, value in enumerate(values):
                if value != previous:
                    emit(
                        f"    if state >= {step} then {sig.name} <= "
                        f"'{value}'; end if;"
                    )
                previous = value
        else:
            emit(f"    {sig.name} <= {values[0]};")
            previous = values[0]
            for step, value in enumerate(values):
                if value != previous:
                    emit(
                        f"    if state >= {step} then {sig.name} <= "
                        f"{value}; end if;"
                    )
                previous = value
    emit("  end process control;")


def _mux_expression(datapath: Datapath, mux: MuxSpec, sel: str) -> List[str]:
    lines = []
    for index, source in enumerate(mux.sources):
        operand = _source_name(source)
        head = "    " + (
            f"{operand} when {sel} = {index} else"
            if index < mux.size - 1
            else f"{operand};"
        )
        lines.append(head)
    return lines


def _source_name(source: SourceRef) -> str:
    kind, index = source
    if kind == "reg":
        return f"reg{index}"
    if kind == "pad":
        return f"unsigned(pi{index})"
    return f"fu{index}_y"


def _emit_fu(emit, datapath: Datapath, spec) -> None:
    fu = spec.unit.fu_id
    for port, mux in (("a", spec.mux_a), ("b", spec.mux_b)):
        target = f"fu{fu}_{port}"
        if mux.size == 1:
            emit(f"  {target} <= {_source_name(mux.sources[0])};")
        else:
            emit(f"  {target} <=")
            for line in _mux_expression(datapath, mux, f"fu{fu}_sel_{port}"):
                emit(line)
    op_types = {
        datapath.cdfg.operations[op_id].op_type for op_id in spec.unit.ops
    }
    if spec.needs_mode:
        emit(
            f"  fu{fu}_y <= (fu{fu}_a - fu{fu}_b) when fu{fu}_mode = '1'"
            f" else (fu{fu}_a + fu{fu}_b);"
        )
        return
    symbol = _OPS["mult" if "mult" in op_types else op_types.pop()]
    if symbol == "*":
        emit(
            f"  fu{fu}_y <= resize(fu{fu}_a * fu{fu}_b, {datapath.width});"
        )
    else:
        emit(f"  fu{fu}_y <= fu{fu}_a {symbol} fu{fu}_b;")


def _emit_registers(emit, datapath: Datapath) -> None:
    emit("  regs : process (clk) begin")
    emit("    if rising_edge(clk) then")
    for reg in datapath.registers:
        name = f"reg{reg.index}"
        emit(f"      if {name}_en = '1' then")
        if reg.mux.size == 1:
            emit(f"        {name} <= {_source_name(reg.mux.sources[0])};")
        else:
            for index, source in enumerate(reg.mux.sources):
                keyword = "if" if index == 0 else "elsif"
                emit(
                    f"        {keyword} {name}_sel = {index} then "
                    f"{name} <= {_source_name(source)};"
                )
            emit("        end if;")
        emit("      end if;")
    emit("    end if;")
    emit("  end process regs;")
