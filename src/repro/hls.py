"""One-call high-level synthesis driver (the paper's future work).

"Future work will include integrating HLPower into a complete
high-level synthesis algorithm that includes scheduling" — this module
is that integration: a single :func:`synthesize` call takes a raw
(unscheduled) CDFG plus either a resource constraint or a latency
target, runs scheduling (list or force-directed), register binding,
HLPower (or the baseline), optional port optimization, and hands back
the bound solution, datapath and VHDL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import ConfigError
from repro.binding import SATable, assign_ports, bind_registers
from repro.binding.base import BindingSolution
from repro.flow.pipeline import run_binder
from repro.binding.portopt import optimize_ports
from repro.cdfg.graph import CDFG
from repro.cdfg.schedule import Schedule
from repro.rtl import Datapath, build_datapath, emit_vhdl, mux_report
from repro.rtl.metrics import MuxReport
from repro.scheduling import force_directed_schedule, list_schedule


@dataclass
class HLSConfig:
    """Settings for the integrated flow."""

    #: "list" (resource-constrained) or "force" (latency-constrained).
    scheduler: str = "list"
    #: Latency target for the force-directed scheduler (None = critical
    #: path).
    latency: Optional[int] = None
    binder: str = "hlpower"
    alpha: float = 0.5
    optimize_port_assignment: bool = True
    width: int = 8
    sa_table: Optional[SATable] = None
    latencies: Optional[Mapping[str, int]] = None
    #: MCTS binder knobs (ignored by the other binders).
    mcts_budget: int = 256
    mcts_seed: int = 1


@dataclass
class HLSResult:
    """Everything the integrated flow produces."""

    schedule: Schedule
    solution: BindingSolution
    datapath: Datapath
    muxes: MuxReport
    vhdl: str
    port_flips: int = 0

    @property
    def allocation(self) -> Dict[str, int]:
        return self.solution.fus.allocation()


def synthesize(
    cdfg: CDFG,
    constraints: Optional[Mapping[str, int]] = None,
    config: Optional[HLSConfig] = None,
    entity: str = "design",
) -> HLSResult:
    """Schedule, bind, and emit RTL for ``cdfg`` in one call.

    With the list scheduler, ``constraints`` are required and drive the
    schedule. With the force-directed scheduler, ``constraints``
    default to the balanced schedule's own lower bound — the minimum
    allocation Theorem 1 guarantees HLPower can reach.
    """
    cfg = config or HLSConfig()
    cdfg.validate()

    if cfg.scheduler == "list":
        if constraints is None:
            raise ConfigError("the list scheduler needs resource constraints")
        schedule = list_schedule(cdfg, constraints, cfg.latencies)
    elif cfg.scheduler == "force":
        schedule = force_directed_schedule(cdfg, cfg.latency, cfg.latencies)
        if constraints is None:
            constraints = schedule.min_resources()
    else:
        raise ConfigError(f"unknown scheduler {cfg.scheduler!r}")

    registers = bind_registers(schedule)
    ports = assign_ports(cdfg)
    # Same dispatch the flow pipeline's bind stage uses, so the
    # integrated flow and the measurement flow cannot drift apart.
    solution = run_binder(
        cfg.binder, schedule, constraints, registers, ports,
        alpha=cfg.alpha, sa_table=cfg.sa_table,
        mcts_budget=cfg.mcts_budget, mcts_seed=cfg.mcts_seed,
    )

    flips = 0
    if cfg.optimize_port_assignment:
        solution, flips = optimize_ports(solution)

    datapath = build_datapath(solution, cfg.width)
    return HLSResult(
        schedule=schedule,
        solution=solution,
        datapath=datapath,
        muxes=mux_report(solution),
        vhdl=emit_vhdl(datapath, entity),
        port_flips=flips,
    )
