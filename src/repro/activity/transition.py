"""Transition density and simultaneous-switching activity.

Two estimators from the paper's model stack:

* :func:`najm_density` — Najm's transition density (Equation (1)):
  ``s(y) = sum_i P(dy/dx_i) * s(x_i)``. Fast, but over-counts when
  several inputs switch in the same cycle.
* :func:`switching_activity` — the Chou-Roy [7] correction used by the
  paper (Equation (2)). With independent fanins, the joint law of
  ``(x_i(t), x_i(t+T))`` is fully determined by ``(P_i, s_i)``:

  ====== =====================
  (1,1)  ``P_i - s_i / 2``
  (1,0)  ``s_i / 2``
  (0,1)  ``s_i / 2``
  (0,0)  ``1 - P_i - s_i / 2``
  ====== =====================

  and ``s(y)`` is the probability that the output differs between the
  two instants: ``sum over (a, b) with f(a) != f(b)`` of the product of
  per-input joint terms. This reduces exactly to Equation (2) of the
  paper; we compute the pair sum directly with numpy.

The exact pair computation is quadratic in the number of input
combinations, so it is restricted to ``MAX_EXACT_INPUTS`` inputs
(matching K-LUT arities); wider gates fall back to Najm's formula.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.activity.probability import gate_output_probability
from repro.netlist.gates import TruthTable

#: Widest gate for which the exact pair-space computation is used.
MAX_EXACT_INPUTS = 6


def pair_distribution(prob: float, activity: float) -> np.ndarray:
    """Joint distribution matrix ``J[a, b] = P(x(t)=a, x(t+T)=b)``.

    Requires ``activity <= 2 * min(prob, 1 - prob)`` — a signal that is
    1 with probability ``P`` cannot toggle more often than it visits the
    rarer state twice per period. Violations raise
    :class:`~repro.errors.EstimationError`.
    """
    if not 0.0 <= prob <= 1.0:
        raise EstimationError(f"probability out of range: {prob}")
    if activity < 0.0:
        raise EstimationError(f"negative switching activity: {activity}")
    limit = 2.0 * min(prob, 1.0 - prob)
    if activity > limit + 1e-9:
        raise EstimationError(
            f"activity {activity} inconsistent with probability {prob} "
            f"(max {limit})"
        )
    half = activity / 2.0
    return np.array(
        [
            [1.0 - prob - half, half],
            [half, prob - half],
        ],
        dtype=np.float64,
    )


def joint_input_matrix(
    n_inputs: int,
    probs: Sequence[float],
    activities: Sequence[float],
) -> np.ndarray:
    """``M[a, b]`` = probability inputs read ``a`` at ``t``, ``b`` at ``t+T``.

    ``a`` and ``b`` range over the ``2**n`` input combinations; inputs
    are independent, each with the :func:`pair_distribution` law.
    """
    if len(probs) != n_inputs or len(activities) != n_inputs:
        raise EstimationError("probs/activities arity mismatch")
    if n_inputs > MAX_EXACT_INPUTS:
        raise EstimationError(
            f"exact pair computation limited to {MAX_EXACT_INPUTS} inputs"
        )
    size = 1 << n_inputs
    matrix = np.ones((size, size), dtype=np.float64)
    combos = np.arange(size)
    for i in range(n_inputs):
        joint = pair_distribution(probs[i], activities[i])
        bits = (combos >> i) & 1
        matrix *= joint[np.ix_(bits, bits)]
    return matrix


def switching_activity(
    table: TruthTable,
    probs: Sequence[float],
    activities: Sequence[float],
) -> float:
    """Exact (independence-assuming) output switching activity.

    Equals Equation (2): ``s(y) = 2 (P(y) - P(y(t) y(t+T)))``. Falls
    back to :func:`najm_density` for gates wider than
    ``MAX_EXACT_INPUTS``.
    """
    if table.n_inputs == 0:
        return 0.0
    if table.n_inputs > MAX_EXACT_INPUTS:
        return najm_density(table, probs, activities)
    matrix = joint_input_matrix(table.n_inputs, probs, activities)
    column = np.array(table.output_column(), dtype=np.float64)
    differs = column[:, None] != column[None, :]
    return float(matrix[differs].sum())


def najm_density(
    table: TruthTable,
    probs: Sequence[float],
    activities: Sequence[float],
) -> float:
    """Equation (1): ``s(y) = sum_i P(dy/dx_i) s(x_i)``."""
    if len(probs) != table.n_inputs or len(activities) != table.n_inputs:
        raise EstimationError("probs/activities arity mismatch")
    total = 0.0
    for i in range(table.n_inputs):
        if activities[i] == 0.0:
            continue
        difference = table.boolean_difference(i)
        other_probs = [p for k, p in enumerate(probs) if k != i]
        sensitivity = gate_output_probability(difference, other_probs)
        total += sensitivity * activities[i]
    return total


def held_distribution(prob: float) -> np.ndarray:
    """Joint law of a signal that cannot switch between the two instants."""
    if not 0.0 <= prob <= 1.0:
        raise EstimationError(f"probability out of range: {prob}")
    return np.array(
        [[1.0 - prob, 0.0], [0.0, prob]],
        dtype=np.float64,
    )


def activity_bound(prob: float) -> float:
    """Maximum feasible switching activity for signal probability ``prob``."""
    return 2.0 * min(prob, 1.0 - prob)


def clamp_activity(prob: float, activity: float) -> float:
    """Clamp ``activity`` into the feasible range for ``prob``.

    Propagation through long chains can accumulate floating-point error
    that pushes an activity epsilon past its bound; estimators clamp
    before building :func:`pair_distribution` matrices.
    """
    return float(min(max(activity, 0.0), activity_bound(prob)))


def mixed_joint_matrix(
    n_inputs: int,
    joints: Sequence[np.ndarray],
) -> np.ndarray:
    """Like :func:`joint_input_matrix` but with explicit per-input laws.

    Used by the glitch model, where at a given time step some fanins can
    switch (pair law from their ``s_t``) and others are held
    (:func:`held_distribution`).
    """
    if len(joints) != n_inputs:
        raise EstimationError("joint law arity mismatch")
    if n_inputs > MAX_EXACT_INPUTS:
        raise EstimationError(
            f"exact pair computation limited to {MAX_EXACT_INPUTS} inputs"
        )
    size = 1 << n_inputs
    matrix = np.ones((size, size), dtype=np.float64)
    combos = np.arange(size)
    for i, joint in enumerate(joints):
        bits = (combos >> i) & 1
        matrix *= joint[np.ix_(bits, bits)]
    return matrix
