"""Signal probability propagation.

The signal probability ``P(y)`` of a net is the fraction of time it is
logic 1 (Najm [17]). Under the standard fanin-independence assumption
the probability of a gate output is an exact sum over minterms; this is
the "weighted averaging" style of computation of Krishnamurthy-Tollis
[12] used by the paper's estimator for every K-input cut.

Primary inputs are assumed to have ``P = 0.5`` unless told otherwise,
exactly as in the paper ("Primary inputs are assumed to have signal
probabilities and switching activities of 0.5").
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.netlist.gates import Netlist, TruthTable

#: Default probability for primary inputs and register outputs.
DEFAULT_INPUT_PROBABILITY = 0.5


def _check_probability(value: float, what: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise EstimationError(f"{what} out of range [0,1]: {value}")
    return float(value)


def minterm_probabilities(
    n_inputs: int, probs: Sequence[float]
) -> np.ndarray:
    """Probability of each of the ``2**n`` input combinations.

    ``probs[i]`` is the probability input ``i`` is 1; inputs are assumed
    independent. Combination ``c`` uses input ``i``'s value from bit
    ``i`` of ``c``.
    """
    if len(probs) != n_inputs:
        raise EstimationError(
            f"expected {n_inputs} probabilities, got {len(probs)}"
        )
    result = np.ones(1 << n_inputs, dtype=np.float64)
    for i, p in enumerate(probs):
        p = _check_probability(p, f"input {i} probability")
        bit = (np.arange(1 << n_inputs) >> i) & 1
        result *= np.where(bit == 1, p, 1.0 - p)
    return result


def gate_output_probability(
    table: TruthTable, probs: Sequence[float]
) -> float:
    """``P(out)`` of a gate given independent input probabilities."""
    weights = minterm_probabilities(table.n_inputs, probs)
    column = np.array(table.output_column(), dtype=np.float64)
    return float(np.dot(weights, column))


def propagate_probabilities(
    netlist: Netlist,
    input_probs: Optional[Mapping[str, float]] = None,
    default: float = DEFAULT_INPUT_PROBABILITY,
) -> Dict[str, float]:
    """Signal probability for every net of ``netlist``.

    ``input_probs`` overrides individual sources (primary inputs or
    latch outputs); everything else defaults to ``default``. Gate
    outputs are computed in topological order under the independence
    assumption.
    """
    _check_probability(default, "default probability")
    probs: Dict[str, float] = {}
    for net in netlist.inputs:
        probs[net] = _check_probability(
            (input_probs or {}).get(net, default), f"P({net})"
        )
    for net in netlist.latches:
        probs[net] = _check_probability(
            (input_probs or {}).get(net, default), f"P({net})"
        )
    for net in netlist.topological_order():
        gate = netlist.gates[net]
        fanin = [probs[name] for name in gate.inputs]
        probs[net] = gate_output_probability(gate.table, fanin)
    return probs
