"""Unit-delay glitch-aware switching-activity propagation.

This is the GlitchMap [6] model the paper builds its estimator on
(Section 4): under the unit delay model every gate/LUT switches only at
discrete time steps ``1, 2, ..., D``, where ``D`` is the node's depth.
The transition at time ``D`` is the functional transition; transitions
at earlier steps are glitches caused by unbalanced path delays.

Every net carries a :class:`GlitchWaveform`: its static signal
probability plus a map ``time -> switching activity at that step``. A
gate's output may switch at ``t + 1`` for every time ``t`` at which any
fanin may switch. At each such step the fanins that can switch
contribute their ``(P, s_t)`` pair law; quiescent fanins are held
(Equation (2) evaluated under a mixed joint law — see
:mod:`repro.activity.transition`).

The *effective* switching activity of a node is the sum of its per-step
activities, and the netlist total (Equation (3)) is the sum over all
nodes — computed in :mod:`repro.activity.estimator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.errors import EstimationError
from repro.activity.probability import (
    DEFAULT_INPUT_PROBABILITY,
    gate_output_probability,
    propagate_probabilities,
)
from repro.activity.transition import (
    MAX_EXACT_INPUTS,
    clamp_activity,
    held_distribution,
    mixed_joint_matrix,
    najm_density,
    pair_distribution,
)
from repro.netlist.gates import Netlist

#: Default per-cycle switching activity of primary inputs.
DEFAULT_INPUT_ACTIVITY = 0.5


@dataclass
class GlitchWaveform:
    """Per-net probabilistic waveform under the unit-delay model."""

    probability: float
    steps: Dict[int, float] = field(default_factory=dict)
    #: Structural arrival time of the functional transition — the
    #: unit-delay depth ``1 + max(fanin depths)`` (0 for sources).
    #: Stored explicitly because the functional step may be *absent*
    #: from ``steps`` (its activity can clamp to zero while earlier
    #: glitch steps stay positive); inferring it from the recorded
    #: steps would misattribute the latest glitch as the functional
    #: transition. Defaults to the latest recorded step for
    #: hand-constructed waveforms.
    depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.depth is None:
            self.depth = max(self.steps, default=0)

    def total(self) -> float:
        """Effective switching activity: sum over all time steps."""
        return float(sum(self.steps.values()))

    def functional(self) -> float:
        """Activity of the transition at the node's depth."""
        return self.steps.get(self.depth, 0.0)

    def glitch(self) -> float:
        """Activity of all transitions before the functional one."""
        return self.total() - self.functional()

    def switch_times(self) -> List[int]:
        return sorted(self.steps)


def source_waveform(
    probability: float = DEFAULT_INPUT_PROBABILITY,
    activity: float = DEFAULT_INPUT_ACTIVITY,
    time: int = 0,
) -> GlitchWaveform:
    """Waveform of a primary input or register output.

    Sources change at most once per clock cycle, at ``time`` (0 by
    default): no glitches originate there.
    """
    activity = clamp_activity(probability, activity)
    steps = {time: activity} if activity > 0.0 else {}
    return GlitchWaveform(probability, steps, time)


def propagate_waveforms(
    netlist: Netlist,
    input_probs: Optional[Mapping[str, float]] = None,
    input_activities: Optional[Mapping[str, float]] = None,
    default_probability: float = DEFAULT_INPUT_PROBABILITY,
    default_activity: float = DEFAULT_INPUT_ACTIVITY,
) -> Dict[str, GlitchWaveform]:
    """Compute a :class:`GlitchWaveform` for every net of ``netlist``.

    Sources (primary inputs and latch outputs) switch once at time 0
    with the given activity; gate outputs accumulate per-step activities
    as described in the module docstring. Gates wider than the exact
    pair-space limit fall back to Najm's density placed entirely at the
    node's depth (no glitch decomposition) — the structural library and
    the 4-LUT mapper never produce such gates, but imported netlists
    might.
    """
    probs = propagate_probabilities(netlist, input_probs, default_probability)
    waves: Dict[str, GlitchWaveform] = {}
    for net in list(netlist.inputs) + list(netlist.latches):
        activity = (input_activities or {}).get(net, default_activity)
        waves[net] = source_waveform(probs[net], activity)

    for net in netlist.topological_order():
        gate = netlist.gates[net]
        out_prob = probs[net]
        if not gate.inputs:
            waves[net] = GlitchWaveform(out_prob, {}, 0)
            continue
        fanin_waves = [waves[name] for name in gate.inputs]
        depth = 1 + max(wave.depth for wave in fanin_waves)
        if gate.table.n_inputs > MAX_EXACT_INPUTS:
            waves[net] = _wide_gate_waveform(gate, fanin_waves, out_prob)
            continue
        steps: Dict[int, float] = {}
        trigger_times = sorted(
            {t for wave in fanin_waves for t in wave.steps}
        )
        column = np.array(gate.table.output_column(), dtype=np.float64)
        differs = column[:, None] != column[None, :]
        for t in trigger_times:
            joints = []
            for wave in fanin_waves:
                s_t = wave.steps.get(t, 0.0)
                if s_t > 0.0:
                    s_t = clamp_activity(wave.probability, s_t)
                    joints.append(pair_distribution(wave.probability, s_t))
                else:
                    joints.append(held_distribution(wave.probability))
            matrix = mixed_joint_matrix(gate.table.n_inputs, joints)
            activity = float(matrix[differs].sum())
            if activity > 0.0:
                steps[t + 1] = clamp_activity(out_prob, activity)
        waves[net] = GlitchWaveform(out_prob, steps, depth)
    return waves


def _wide_gate_waveform(
    gate,
    fanin_waves: List[GlitchWaveform],
    out_prob: float,
) -> GlitchWaveform:
    """Fallback for gates too wide for the exact pair computation."""
    totals = [wave.total() for wave in fanin_waves]
    fanin_probs = [wave.probability for wave in fanin_waves]
    activity = najm_density(gate.table, fanin_probs, totals)
    activity = clamp_activity(out_prob, activity)
    depth = 1 + max(wave.depth for wave in fanin_waves)
    steps = {depth: activity} if activity > 0.0 else {}
    return GlitchWaveform(out_prob, steps, depth)
