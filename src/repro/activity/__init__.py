"""Switching-activity estimation (paper Section 4).

Implements the probabilistic model stack the paper builds on:

* signal probability propagation (Najm [17], Krishnamurthy-Tollis [12])
  — :mod:`repro.activity.probability`;
* transition density via the Boolean difference (Najm [17]) and the
  exact simultaneous-switching extension (Chou-Roy [7]) —
  :mod:`repro.activity.transition`;
* the unit-delay, per-timestep glitch model of GlitchMap [6] —
  :mod:`repro.activity.glitch`;
* a netlist-level driver producing the total estimated switching
  activity ``SA`` of Equation (3) — :mod:`repro.activity.estimator`.
"""

from repro.activity.probability import (
    gate_output_probability,
    propagate_probabilities,
)
from repro.activity.transition import (
    joint_input_matrix,
    najm_density,
    pair_distribution,
    switching_activity,
)
from repro.activity.glitch import GlitchWaveform, propagate_waveforms
from repro.activity.estimator import (
    ActivityReport,
    estimate_switching_activity,
)

__all__ = [
    "gate_output_probability",
    "propagate_probabilities",
    "joint_input_matrix",
    "najm_density",
    "pair_distribution",
    "switching_activity",
    "GlitchWaveform",
    "propagate_waveforms",
    "ActivityReport",
    "estimate_switching_activity",
]
