"""Netlist-level switching-activity estimation driver.

Produces the paper's Equation (3): the total estimated switching
activity ``SA = sum_i sa_i`` over all nodes of the (mapped) netlist,
where each ``sa_i`` is the node's *effective* switching activity — the
sum of its per-time-step activities under the unit-delay glitch model.

The driver can also run in ``glitch_aware=False`` mode, which evaluates
the same probabilistic model under a zero-delay assumption (all inputs
switch simultaneously, one transition per node per cycle). This mode
exists for the glitch-model ablation bench: it is what a conventional
high-level power model sees, and the delta against the glitch-aware
number is the paper's motivating quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.activity.glitch import (
    DEFAULT_INPUT_ACTIVITY,
    GlitchWaveform,
    propagate_waveforms,
    source_waveform,
)
from repro.activity.probability import (
    DEFAULT_INPUT_PROBABILITY,
    propagate_probabilities,
)
from repro.activity.transition import (
    MAX_EXACT_INPUTS,
    clamp_activity,
    najm_density,
    switching_activity,
)
from repro.netlist.gates import Netlist


@dataclass
class ActivityReport:
    """Estimation result for one netlist."""

    total: float
    functional: float
    glitch: float
    per_net: Dict[str, float] = field(default_factory=dict)
    waveforms: Dict[str, GlitchWaveform] = field(default_factory=dict)

    @property
    def glitch_fraction(self) -> float:
        """Share of the total activity attributed to glitches."""
        if self.total <= 0.0:
            return 0.0
        return self.glitch / self.total


def estimate_switching_activity(
    netlist: Netlist,
    input_probs: Optional[Mapping[str, float]] = None,
    input_activities: Optional[Mapping[str, float]] = None,
    glitch_aware: bool = True,
    include_sources: bool = False,
    default_probability: float = DEFAULT_INPUT_PROBABILITY,
    default_activity: float = DEFAULT_INPUT_ACTIVITY,
) -> ActivityReport:
    """Estimate the switching activity of every net and their total.

    By default only gate outputs count toward the total (they are the
    LUT outputs whose toggling burns dynamic power); sources can be
    included with ``include_sources`` for I/O power accounting.
    """
    if glitch_aware:
        waves = propagate_waveforms(
            netlist,
            input_probs,
            input_activities,
            default_probability,
            default_activity,
        )
    else:
        waves = _zero_delay_waveforms(
            netlist,
            input_probs,
            input_activities,
            default_probability,
            default_activity,
        )

    per_net: Dict[str, float] = {}
    total = functional = glitch = 0.0
    counted = set(netlist.gates)
    if include_sources:
        counted |= set(netlist.inputs) | set(netlist.latches)
    for net, wave in waves.items():
        per_net[net] = wave.total()
        if net in counted:
            total += wave.total()
            functional += wave.functional()
            glitch += wave.glitch()
    return ActivityReport(total, functional, glitch, per_net, waves)


def _zero_delay_waveforms(
    netlist: Netlist,
    input_probs: Optional[Mapping[str, float]],
    input_activities: Optional[Mapping[str, float]],
    default_probability: float,
    default_activity: float,
) -> Dict[str, GlitchWaveform]:
    """Zero-delay model: one simultaneous transition per node."""
    probs = propagate_probabilities(netlist, input_probs, default_probability)
    waves: Dict[str, GlitchWaveform] = {}
    for net in list(netlist.inputs) + list(netlist.latches):
        activity = (input_activities or {}).get(net, default_activity)
        waves[net] = source_waveform(probs[net], activity)
    for net in netlist.topological_order():
        gate = netlist.gates[net]
        if not gate.inputs:
            waves[net] = GlitchWaveform(probs[net], {}, 0)
            continue
        fanin_probs = [waves[name].probability for name in gate.inputs]
        fanin_acts = [waves[name].total() for name in gate.inputs]
        if gate.table.n_inputs > MAX_EXACT_INPUTS:
            activity = najm_density(gate.table, fanin_probs, fanin_acts)
        else:
            fanin_acts = [
                clamp_activity(p, s) for p, s in zip(fanin_probs, fanin_acts)
            ]
            activity = switching_activity(gate.table, fanin_probs, fanin_acts)
        activity = clamp_activity(probs[net], activity)
        steps = {1: activity} if activity > 0.0 else {}
        # Zero-delay model: the single (functional) transition is at
        # step 1 for every gate, whatever its structural depth.
        waves[net] = GlitchWaveform(probs[net], steps, 1)
    return waves
