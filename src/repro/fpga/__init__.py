"""Virtual Cyclone II flow (the Quartus II / PowerPlay substitute).

The paper verifies bindings by synthesizing VHDL with Quartus II for a
Cyclone II device, simulating 1000 random vectors, and reading dynamic
power from the PowerPlay analyzer. This subpackage is the reproduction
of that measurement harness (see DESIGN.md, substitution table):

* :mod:`~repro.fpga.device` — Cyclone II-like device constants;
* :mod:`~repro.fpga.elaborate` — datapath to flat gate netlist;
* :mod:`~repro.fpga.vectors` — random stimulus (the ``.vwf`` stand-in);
* :mod:`~repro.fpga.simulate` — exact unit-delay gate/LUT simulation
  counting every transition, functional and glitch;
* :mod:`~repro.fpga.timing` — critical path / clock period;
* :mod:`~repro.fpga.power` — the PowerPlay-like dynamic power model.
"""

from repro.fpga.device import CYCLONE_II_LIKE, DeviceModel
from repro.fpga.elaborate import ElaboratedDesign, elaborate_datapath
from repro.fpga.compile import (
    ELAB_ENGINES,
    elaborate_datapath_fast,
    elaborate_design,
)
from repro.fpga.vectors import (
    VectorSet,
    pack_values,
    random_vectors,
    unpack_lane_values,
    unpack_values,
)
from repro.fpga.simulate import (
    BatchConfig,
    CompiledNetlist,
    SimulationResult,
    compile_netlist,
    simulate_batch,
    simulate_design,
)
from repro.fpga.timing import TimingReport, timing_report
from repro.fpga.power import PowerReport, power_report

__all__ = [
    "CYCLONE_II_LIKE",
    "DeviceModel",
    "ElaboratedDesign",
    "elaborate_datapath",
    "ELAB_ENGINES",
    "elaborate_datapath_fast",
    "elaborate_design",
    "VectorSet",
    "pack_values",
    "random_vectors",
    "unpack_lane_values",
    "unpack_values",
    "BatchConfig",
    "CompiledNetlist",
    "SimulationResult",
    "compile_netlist",
    "simulate_batch",
    "simulate_design",
    "TimingReport",
    "timing_report",
    "PowerReport",
    "power_report",
]
