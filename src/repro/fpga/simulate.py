"""Exact gate-level simulation with glitch counting (event-driven).

This is the reproduction's stand-in for Quartus II's vector simulation
(with *glitch filtering set to never*, as the paper configures): every
signal transition — functional or glitch — is counted.

Model:

* every input vector occupies one bit lane; all lanes evaluate
  simultaneously through numpy bitwise ops on packed ``uint64`` words;
* each control step, the changed sources (clocked flip-flops, control
  signals, pads at load time) kick off a timed settling of the
  combinational network: a gate re-evaluates at every discrete time at
  which one of its fanins changed, and its output change (if any)
  propagates one gate delay later — exactly the delay model the
  paper's SA estimator assumes (Section 4);
* every appended transition adds ``popcount(old XOR new)`` to the
  owning net's toggle counter;
* at the end of the step all flip-flops clock simultaneously (their
  output toggles are the register power contribution).

Two interchangeable kernels implement that model:

* ``kernel="event"`` (default) — an event-driven kernel over a
  *compiled netlist*: elaboration-time lowering assigns every net a
  dense integer id, per-gate evaluators/delays/fanout arrays are built
  once per netlist (see :func:`compile_netlist`, cached on the netlist
  object), and settling walks a time-wheel event queue. Lane state in
  this kernel is one packed arbitrary-precision integer per net (bit
  ``i`` is lane ``i``): at the few-hundred-lane word counts the flow
  uses, CPython's big-int bitwise ops run an order of magnitude faster
  than dispatching numpy ufuncs on 4-word arrays, and they are exact —
  numpy appears only at the pack/unpack boundaries;
* ``kernel="reference"`` — the original timed-waveform implementation,
  kept verbatim as the differential-testing oracle.

Both kernels produce byte-identical :class:`SimulationResult` records
(the differential suite pins this across every built-in benchmark,
both idle conventions and jittered delays).

Functional correctness is checked against the CDFG's arithmetic
semantics (modular add/sub/mult) via :func:`golden_outputs`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.fpga.elaborate import ElaboratedDesign
from repro.fpga.vectors import (
    VectorSet,
    broadcast,
    n_words,
    popcount,
    unpack_lane_values,
)
from repro.netlist.gates import Netlist, TruthTable
from repro.rtl.controller import build_controller


@dataclass
class SimulationResult:
    """Transition counts from one run."""

    lanes: int
    steps: int
    comb_toggles: int
    register_toggles: int
    pad_toggles: int
    control_toggles: int
    per_net: Dict[str, int] = field(default_factory=dict)
    #: Primary-output position -> per-lane integer values.
    outputs: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def total_toggles(self) -> int:
        return (
            self.comb_toggles
            + self.register_toggles
            + self.pad_toggles
            + self.control_toggles
        )


_EVALUATOR_CACHE: Dict[Tuple[int, int], Callable] = {}


def _compile_table(table: TruthTable) -> Callable:
    """Compile a truth table into a packed-word evaluator.

    Shannon expansion over the inputs: ``2^k - 1`` select operations of
    the form ``(x & hi) | (~x & lo)``, bottoming out at constant words.
    Compiled once per distinct function and cached process-wide.
    """
    key = (table.n_inputs, table.bits)
    cached = _EVALUATOR_CACHE.get(key)
    if cached is not None:
        return cached

    n = table.n_inputs

    def build(level: int, bits: int):
        """Evaluator for the sub-function over inputs [0, level)."""
        if level == 0:
            return bool(bits & 1)
        half = 1 << (level - 1)
        mask = (1 << half) - 1
        lo = build(level - 1, bits & mask)
        hi = build(level - 1, bits >> half)
        if lo is hi or (isinstance(lo, bool) and lo == hi):
            return lo
        sel_index = level - 1

        if isinstance(lo, bool) and isinstance(hi, bool):
            if hi and not lo:
                return lambda values, ones: values[sel_index]
            # lo and not hi
            return lambda values, ones: values[sel_index] ^ ones

        def node(values, ones, lo=lo, hi=hi, sel_index=sel_index):
            sel = values[sel_index]
            lo_words = lo if isinstance(lo, np.ndarray) else (
                lo(values, ones) if callable(lo) else (ones if lo else None)
            )
            hi_words = hi if isinstance(hi, np.ndarray) else (
                hi(values, ones) if callable(hi) else (ones if hi else None)
            )
            if lo_words is None:  # constant 0
                return sel & hi_words
            if hi_words is None:
                return ~sel & lo_words
            return (sel & hi_words) | (~sel & lo_words)

        return node

    # Shannon on the full table; inputs ordered LSB-first like
    # TruthTable indices.
    root = build(n, table.bits)
    if isinstance(root, bool):
        constant = root

        def evaluator(values, ones, zeros):
            return ones.copy() if constant else zeros.copy()

    else:

        def evaluator(values, ones, zeros, root=root):
            result = root(values, ones)
            return result & ones  # mask tail lanes

    _EVALUATOR_CACHE[key] = evaluator
    return evaluator


def _gate_delay(net: str, jitter: int) -> int:
    """Deterministic per-gate delay in ``1 .. 1 + jitter`` ticks."""
    if jitter <= 0:
        return 1
    return 1 + (zlib.crc32(net.encode()) % (jitter + 1))


_INT_EVALUATOR_CACHE: Dict[Tuple[int, int], Callable] = {}


def _compile_table_int(table: TruthTable) -> Callable:
    """Compile a truth table into a packed big-int evaluator.

    Same Shannon expansion as :func:`_compile_table`, but over Python
    integers (bit ``i`` = lane ``i``) and code-generated into one flat
    expression — a single function call per gate evaluation, with no
    interpreter-level tree walking. Every intermediate stays within the
    ``ones`` lane mask by construction (``~x`` only ever appears under
    an ``&`` with an in-mask operand), so no tail masking is needed.
    Cached process-wide per distinct function.
    """
    key = (table.n_inputs, table.bits)
    cached = _INT_EVALUATOR_CACHE.get(key)
    if cached is not None:
        return cached

    used: set = set()

    def build(level: int, bits: int):
        """Expression for the sub-function over inputs [0, level)."""
        if level == 0:
            return bool(bits & 1)
        half = 1 << (level - 1)
        mask = (1 << half) - 1
        lo = build(level - 1, bits & mask)
        hi = build(level - 1, bits >> half)
        if lo == hi and isinstance(lo, (bool, str)) and type(lo) is type(hi):
            return lo
        sel = f"v{level - 1}"
        used.add(level - 1)
        lo_bool = isinstance(lo, bool)
        hi_bool = isinstance(hi, bool)
        if lo_bool and hi_bool:
            if hi:  # hi=1, lo=0: the select input itself
                return sel
            # hi=0, lo=1: the select input, inverted within the mask
            return f"({sel} ^ ones)"
        if lo_bool:
            if lo:  # (sel & hi) | (~sel & ones)
                return f"(({sel} & {hi}) | ({sel} ^ ones))"
            return f"({sel} & {hi})"
        if hi_bool:
            if hi:  # (sel & ones) | (~sel & lo) == sel | lo
                return f"({sel} | {lo})"
            return f"(~{sel} & {lo})"
        return f"(({sel} & {hi}) | (~{sel} & {lo}))"

    root = build(table.n_inputs, table.bits)
    if isinstance(root, bool):
        body = "ones" if root else "0"
        unpack = []
    else:
        body = root
        unpack = [f"v{i} = values[{i}]" for i in sorted(used)]
    lines = ["def _evaluate(values, ones):"]
    lines.extend(f"    {line}" for line in unpack)
    lines.append(f"    return {body}")
    namespace: Dict[str, Callable] = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - generated from bits only
    evaluator = namespace["_evaluate"]
    _INT_EVALUATOR_CACHE[key] = evaluator
    return evaluator


def _words_to_int(words: np.ndarray) -> int:
    """Packed ``uint64`` word array -> one packed big int (lane i = bit i)."""
    return int.from_bytes(words.astype("<u8").tobytes(), "little")


def _int_to_words(value: int, words: int) -> np.ndarray:
    """Inverse of :func:`_words_to_int` (``words`` output words)."""
    raw = np.frombuffer(value.to_bytes(words * 8, "little"), dtype="<u8")
    return raw.astype(np.uint64)


# ---------------------------------------------------------------------------
# Compiled netlist: the integer-indexed form both the event kernel and the
# per-step driving loop operate on. Built once per (netlist, jitter) and
# cached on the netlist object itself, so repeated simulations of the same
# design (differential tests, sweeps, benches) skip elaboration entirely.
# ---------------------------------------------------------------------------


@dataclass
class CompiledNetlist:
    """Dense-id lowering of a :class:`Netlist` for simulation.

    Net ids are assigned sources-first (primary inputs, then latch
    outputs), then gate outputs in topological order, so evaluating
    gates in position order is a valid settling order.
    """

    jitter: int
    n_nets: int
    #: Net name -> dense id.
    net_id: Dict[str, int]
    #: Dense id -> net name (inverse of :attr:`net_id`).
    net_names: List[str]
    #: Per gate position (topological order): output net id.
    gate_outputs: List[int]
    #: Per gate position: fanin net ids, in port order.
    gate_fanins: List[Tuple[int, ...]]
    #: Per gate position: packed big-int evaluator.
    gate_evals: List[Callable]
    #: Per gate position: propagation delay in ticks.
    gate_delays: List[int]
    #: Per net id: positions of the gates reading that net.
    fanout_gates: List[List[int]]
    #: Per latch (declaration order): (output net id, data net id).
    latch_pairs: List[Tuple[int, int]]
    #: Cheap staleness guard for the per-netlist cache.
    signature: Tuple[int, int, int]

    @property
    def n_gates(self) -> int:
        return len(self.gate_outputs)


def _netlist_signature(netlist: Netlist) -> Tuple[int, int, int]:
    return (len(netlist.inputs), len(netlist.gates), len(netlist.latches))


def compile_netlist(netlist: Netlist, delay_jitter: int = 0) -> CompiledNetlist:
    """Compiled form of ``netlist`` for the given delay spread.

    Cached on the netlist instance, keyed by ``delay_jitter``; a gate or
    latch added after compilation invalidates the cached entry (the
    signature check), so stale lowerings are never reused.
    """
    cache = getattr(netlist, "_sim_compiled", None)
    if cache is None:
        cache = {}
        netlist._sim_compiled = cache
    compiled = cache.get(delay_jitter)
    if compiled is None or compiled.signature != _netlist_signature(netlist):
        compiled = _lower_netlist(netlist, delay_jitter)
        cache[delay_jitter] = compiled
    return compiled


def _lower_netlist(netlist: Netlist, jitter: int) -> CompiledNetlist:
    topo = netlist.topological_order()
    net_names = list(netlist.inputs) + list(netlist.latches) + topo
    net_id = {name: index for index, name in enumerate(net_names)}
    if len(net_id) != len(net_names):
        raise SimulationError(
            f"{netlist.name}: net driven by more than one of "
            f"input/latch/gate"
        )

    gate_outputs: List[int] = []
    gate_fanins: List[Tuple[int, ...]] = []
    gate_evals: List[Callable] = []
    gate_delays: List[int] = []
    fanout_gates: List[List[int]] = [[] for _ in net_names]
    for position, name in enumerate(topo):
        gate = netlist.gates[name]
        try:
            fanins = tuple(net_id[fanin] for fanin in gate.inputs)
        except KeyError as exc:
            raise SimulationError(
                f"{netlist.name}: gate {name!r} reads undriven net {exc}"
            ) from None
        gate_outputs.append(net_id[name])
        gate_fanins.append(fanins)
        gate_evals.append(_compile_table_int(gate.table))
        gate_delays.append(_gate_delay(name, jitter))
        for fanin in fanins:
            fanout_gates[fanin].append(position)

    latch_pairs = [
        (net_id[latch.output], net_id[latch.data])
        for latch in netlist.latches.values()
    ]
    return CompiledNetlist(
        jitter=jitter,
        n_nets=len(net_names),
        net_id=net_id,
        net_names=net_names,
        gate_outputs=gate_outputs,
        gate_fanins=gate_fanins,
        gate_evals=gate_evals,
        gate_delays=gate_delays,
        fanout_gates=fanout_gates,
        latch_pairs=latch_pairs,
        signature=_netlist_signature(netlist),
    )


# ---------------------------------------------------------------------------
# Event-driven kernel.
# ---------------------------------------------------------------------------


def simulate_design(
    design: ElaboratedDesign,
    vectors: VectorSet,
    collect_per_net: bool = False,
    idle_selects: str = "zero",
    delay_jitter: int = 0,
    kernel: str = "event",
) -> SimulationResult:
    """Replay the control table over the netlist for all lanes.

    ``idle_selects`` picks the idle-step control convention (see
    :meth:`repro.rtl.controller.Controller.resolved`).

    ``delay_jitter`` spreads per-gate delays over ``1 .. 1 + jitter``
    ticks, keyed deterministically by output net name. The paper's SA
    *estimator* assumes pure unit delay, but its *measurement* is a
    Quartus timing simulation with real routed delays and glitch
    filtering off; the jitter models that routing spread (0 restores
    the pure unit-delay model — the estimator-vs-measurement gap is an
    ablation bench).

    ``kernel`` selects the implementation: ``"event"`` (default) is the
    compiled event-driven kernel; ``"reference"`` is the original
    timed-waveform loop kept as the differential-testing oracle. Both
    produce byte-identical results.
    """
    if kernel == "reference":
        return _simulate_reference(
            design, vectors, collect_per_net, idle_selects, delay_jitter
        )
    if kernel != "event":
        raise SimulationError(
            f"unknown simulation kernel {kernel!r}; choose 'event' or "
            f"'reference'"
        )

    netlist = design.netlist
    lanes = vectors.lanes
    words = n_words(lanes)
    ones = (1 << lanes) - 1
    compiled = compile_netlist(netlist, delay_jitter)
    net_id = compiled.net_id

    controller = build_controller(design.datapath)
    control_values = controller.resolved(idle_selects)

    # One packed big int per net (bit i = lane i), indexed by dense id.
    state: List[int] = [0] * compiled.n_nets

    # Settle the all-zero state without counting (power-on, as in the
    # paper's simulator warm-up before vectors apply).
    gate_outputs = compiled.gate_outputs
    gate_fanins = compiled.gate_fanins
    gate_evals = compiled.gate_evals
    for position in range(compiled.n_gates):
        values = [state[i] for i in gate_fanins[position]]
        state[gate_outputs[position]] = gate_evals[position](values, ones)

    counters = {"comb": 0, "reg": 0, "pad": 0, "control": 0}
    net_toggles: Optional[List[int]] = (
        [0] * compiled.n_nets if collect_per_net else None
    )

    def drive(index: int, new_value: int, category: str,
              changed: List[int]) -> None:
        delta = state[index] ^ new_value
        if delta:
            toggles = delta.bit_count()
            counters[category] += toggles
            if net_toggles is not None:
                net_toggles[index] += toggles
            state[index] = new_value
            changed.append(index)

    n_steps = len(design.datapath.control)
    for step in range(n_steps):
        changed: List[int] = []

        # Pads present their vector at the load step.
        if step == 0:
            for position, nets in design.pad_nets.items():
                for bit, net in enumerate(nets):
                    drive(
                        net_id[net],
                        _words_to_int(vectors.pad_words(position, bit)),
                        "pad", changed,
                    )

        # Control signals take this step's value.
        for name, nets in design.control_nets.items():
            value = control_values.get(name)
            if value is None:
                continue
            step_value = value[step]
            for bit, net in enumerate(nets):
                bit_set = bool((step_value >> bit) & 1)
                drive(net_id[net], ones if bit_set else 0,
                      "control", changed)

        _settle_events(compiled, state, changed, ones, counters,
                       net_toggles)

        # Clock edge: all flip-flops load their data nets. Data values
        # are read out first — flops clock simultaneously.
        updates = [
            (q_index, state[data_index])
            for q_index, data_index in compiled.latch_pairs
        ]
        changed = []
        for q_index, new_q in updates:
            drive(q_index, new_q, "reg", changed)
        # Settle after the clock edge (counted — the paper's simulator
        # sees these transitions too, including after the final edge).
        _settle_events(compiled, state, changed, ones, counters,
                       net_toggles)

    outputs: Dict[int, List[int]] = {}
    for position, nets in design.output_nets.items():
        rows = [_int_to_words(state[net_id[net]], words) for net in nets]
        outputs[position] = [
            int(value) for value in unpack_lane_values(rows, lanes)
        ]

    per_net: Dict[str, int] = {}
    if net_toggles is not None:
        names = compiled.net_names
        for index, toggles in enumerate(net_toggles):
            if toggles:
                per_net[names[index]] = toggles

    return SimulationResult(
        lanes=lanes,
        steps=n_steps,
        comb_toggles=counters["comb"],
        register_toggles=counters["reg"],
        pad_toggles=counters["pad"],
        control_toggles=counters["control"],
        per_net=per_net,
        outputs=outputs,
    )


def _settle_events(
    compiled: CompiledNetlist,
    state: List[int],
    changed: List[int],
    ones: int,
    counters: Dict[str, int],
    net_toggles: Optional[List[int]],
) -> None:
    """Event-driven settling after source changes at time 0.

    ``changed`` lists net ids whose ``state`` entries already hold the
    new time-0 value. The wheel walks time forward one tick at a time:
    at each tick the pending transitions for that tick are applied to
    ``state``, then every gate with a fanin among them re-evaluates.
    A gate whose evaluation differs from its previous evaluation
    schedules its output transition ``delay`` ticks later and counts
    ``popcount(change)`` toggles — the same accounting as the reference
    waveform loop, just discovered in time order instead of per-gate.
    """
    if not changed:
        return
    fanout_gates = compiled.fanout_gates
    gate_outputs = compiled.gate_outputs
    gate_fanins = compiled.gate_fanins
    gate_evals = compiled.gate_evals
    gate_delays = compiled.gate_delays

    # Gate position -> last evaluated output value (the projected final
    # value; transitions in flight are compared against this, not
    # against the not-yet-updated state entry).
    pending: Dict[int, int] = {}
    # Tick -> transitions [(net id, new value)] to apply at that tick.
    wheel: Dict[int, List[Tuple[int, int]]] = {}
    comb = counters["comb"]
    time = 0
    in_flight = 0
    changed_now = changed
    while True:
        triggered = set()
        for index in changed_now:
            triggered.update(fanout_gates[index])
        for position in sorted(triggered):
            values = [state[i] for i in gate_fanins[position]]
            new_value = gate_evals[position](values, ones)
            out = gate_outputs[position]
            previous = pending.get(position)
            if previous is None:
                previous = state[out]
            delta = previous ^ new_value
            if delta:
                toggles = delta.bit_count()
                comb += toggles
                if net_toggles is not None:
                    net_toggles[out] += toggles
                wheel.setdefault(time + gate_delays[position], []).append(
                    (out, new_value)
                )
                pending[position] = new_value
                in_flight += 1
        if not in_flight:
            break
        # Next tick with scheduled transitions; all delays are >= 1 and
        # in-flight transitions sit strictly ahead of `time`, so this
        # walk terminates within the maximum delay.
        time += 1
        while time not in wheel:
            time += 1
        events = wheel.pop(time)
        in_flight -= len(events)
        changed_now = []
        for index, value in events:
            state[index] = value
            changed_now.append(index)
    counters["comb"] = comb


# ---------------------------------------------------------------------------
# Batched kernel: many (vectors x jitter x idle) configurations of the
# same netlist in one event-driven pass. Each configuration owns a
# contiguous block of bit lanes inside one wider packed big int, so the
# per-gate evaluators run once per event for every configuration at
# once; only the toggle accounting and the pack/unpack boundaries are
# per-configuration.
# ---------------------------------------------------------------------------


@dataclass
class BatchConfig:
    """One configuration of a batched simulation run.

    The netlist, datapath and control table come from the shared
    design; a configuration only varies the simulation knobs — the
    stimulus, the idle-step control convention and the delay spread.
    """

    vectors: VectorSet
    idle_selects: str = "zero"
    delay_jitter: int = 0


def simulate_batch(
    design: ElaboratedDesign,
    configs: List[BatchConfig],
    collect_per_net: bool = False,
    kernel: str = "event",
) -> List[SimulationResult]:
    """Simulate every configuration in one batched kernel pass.

    Returns one :class:`SimulationResult` per configuration, in order,
    byte-identical to what :func:`simulate_design` produces for that
    configuration alone (the differential suite pins this against the
    ``"reference"`` kernel).

    Layout: configuration ``c`` occupies lanes ``[offset_c, offset_c +
    lanes_c)`` of every net's packed big int. Bitwise ops never move
    bits across lanes, so the compiled per-gate evaluators are reused
    unchanged over the wider words. Configurations sharing a
    ``delay_jitter`` form a *delay group* with one per-gate delay
    vector; the time-wheel carries ``(net, value, group_mask)``
    transitions so groups with different delays coexist on one wheel,
    each landing only on its own lanes. Idle conventions differ only in
    the per-step control words, composed per-config with the same
    masks.

    ``kernel="reference"`` runs the oracle once per configuration —
    the batched path's differential baseline.
    """
    if kernel == "reference":
        return [
            _simulate_reference(
                design, config.vectors, collect_per_net,
                config.idle_selects, config.delay_jitter,
            )
            for config in configs
        ]
    if kernel != "event":
        raise SimulationError(
            f"unknown simulation kernel {kernel!r}; choose 'event' or "
            f"'reference'"
        )
    if not configs:
        return []

    netlist = design.netlist
    n_configs = len(configs)

    # Lane layout: contiguous blocks, one per configuration, each
    # starting on a byte boundary so toggle counting can slice the
    # delta's byte string per configuration (see
    # :func:`_settle_events_batch`). The padding lanes between blocks
    # are inert: nothing ever drives them away from their power-on
    # value, so they contribute zero to every delta.
    offsets: List[int] = []
    block_ones: List[int] = []
    byte_ranges: List[Tuple[int, int]] = []
    total_lanes = 0
    for config in configs:
        lanes = config.vectors.lanes
        offsets.append(total_lanes)
        block_ones.append(((1 << lanes) - 1) << total_lanes)
        byte_ranges.append(
            (total_lanes // 8, (total_lanes + lanes + 7) // 8)
        )
        total_lanes += (lanes + 7) & ~7
    ones = (1 << total_lanes) - 1
    n_bytes = total_lanes // 8
    blocks = list(zip(range(n_configs), block_ones))
    real_ones = 0
    for block in block_ones:
        real_ones |= block
    gap_mask = ones ^ real_ones

    # Delay groups: one compiled netlist per distinct jitter. The
    # lowering is identical across jitters except for the delay vector,
    # so any of them serves as the structural base.
    compiled_by_jitter = {
        jitter: compile_netlist(netlist, jitter)
        for jitter in {config.delay_jitter for config in configs}
    }
    compiled = compiled_by_jitter[configs[0].delay_jitter]
    net_id = compiled.net_id
    group_delays: List[List[int]] = []
    group_masks: List[int] = []
    group_of_jitter: Dict[int, int] = {}
    for index, config in enumerate(configs):
        group = group_of_jitter.get(config.delay_jitter)
        if group is None:
            group = len(group_delays)
            group_of_jitter[config.delay_jitter] = group
            group_delays.append(
                compiled_by_jitter[config.delay_jitter].gate_delays
            )
            group_masks.append(0)
        group_masks[group] |= block_ones[index]

    # Per-gate delay plan: groups whose delay for this gate coincides
    # share one wheel transition (their masks merge). With jittered
    # delays drawn from small ranges, a large fraction of gates end up
    # with a single merged entry covering every lane — those schedule
    # one event with no mask test at all.
    delay_plans: List[List[Tuple[int, int]]] = []
    for position in range(compiled.n_gates):
        merged: Dict[int, int] = {}
        for group, delays in enumerate(group_delays):
            tick = delays[position]
            merged[tick] = merged.get(tick, 0) | group_masks[group]
        delay_plans.append(sorted(merged.items()))
    # One tuple per gate keeps the settle loop to a single list index;
    # a plan of one merged entry is pre-split out of the tuple so the
    # common case needs no len() test. Fanin values are gathered with
    # ``operator.itemgetter`` (one C call) instead of a per-gate list
    # comprehension.
    gate_data = [
        (evaluate, _fanin_getter(fanins), out, plan,
         plan[0] if len(plan) == 1 else None)
        for evaluate, fanins, out, plan in zip(
            compiled.gate_evals, compiled.gate_fanins,
            compiled.gate_outputs, delay_plans,
        )
    ]
    # Settle-call scratch: epoch-stamped pending words (cheaper than a
    # dict in the hot loop) and the configs' byte-segment layout for
    # the vectorized toggle counting.
    pend_value = [0] * compiled.n_gates
    pend_epoch = [-1] * compiled.n_gates
    epoch_box = [0]
    seg_bounds = [start for start, _ in byte_ranges] + [n_bytes]
    seg_widths = {b - a for a, b in zip(seg_bounds, seg_bounds[1:])}
    seg_width = seg_widths.pop() if len(seg_widths) == 1 else 0
    seg_starts = np.array(seg_bounds[:-1], dtype=np.intp)

    # Idle conventions: per-step control words composed per mode.
    controller = build_controller(design.datapath)
    mode_values: Dict[str, Dict[str, List[int]]] = {}
    mode_masks: Dict[str, int] = {}
    for index, config in enumerate(configs):
        mode = config.idle_selects
        if mode not in mode_values:
            mode_values[mode] = controller.resolved(mode)
            mode_masks[mode] = 0
        mode_masks[mode] |= block_ones[index]
    modes = list(mode_values)

    # One packed big int per net; power-on settle, uncounted (every
    # configuration starts from the same all-zero state).
    state: List[int] = [0] * compiled.n_nets
    gate_outputs = compiled.gate_outputs
    gate_fanins = compiled.gate_fanins
    gate_evals = compiled.gate_evals
    for position in range(compiled.n_gates):
        values = [state[i] for i in gate_fanins[position]]
        state[gate_outputs[position]] = gate_evals[position](values, ones)

    counters = [
        {"comb": 0, "reg": 0, "pad": 0, "control": 0}
        for _ in range(n_configs)
    ]
    net_toggles: Optional[List[np.ndarray]] = (
        [np.zeros(compiled.n_nets, dtype=np.int64)
         for _ in range(n_configs)]
        if collect_per_net else None
    )

    def drive(index: int, new_value: int, category: str,
              changed: List[int]) -> None:
        if gap_mask:
            # Keep padding lanes pinned at their power-on value so
            # they never show up in any delta.
            new_value = (new_value & real_ones) | (state[index] & gap_mask)
        delta = state[index] ^ new_value
        if delta:
            for ci, block in blocks:
                part = delta & block
                if part:
                    toggles = part.bit_count()
                    counters[ci][category] += toggles
                    if net_toggles is not None:
                        net_toggles[ci][index] += toggles
            state[index] = new_value
            changed.append(index)

    n_steps = len(design.datapath.control)
    for step in range(n_steps):
        changed: List[int] = []

        # Pads present their vector at the load step: every
        # configuration's packed words, shifted into its lane block.
        if step == 0:
            for position, nets in design.pad_nets.items():
                for bit, net in enumerate(nets):
                    value = 0
                    for ci, config in enumerate(configs):
                        value |= _words_to_int(
                            config.vectors.pad_words(position, bit)
                        ) << offsets[ci]
                    drive(net_id[net], value, "pad", changed)

        # Control signals take this step's value, composed per idle
        # mode. A mode that does not drive a signal (resolved() returns
        # no entry) keeps that mode's lanes at their current value —
        # exactly the solo kernel's "skip" semantics.
        for name, nets in design.control_nets.items():
            per_mode = [
                (mode_masks[mode], mode_values[mode].get(name))
                for mode in modes
            ]
            if all(value is None for _, value in per_mode):
                continue
            for bit, net in enumerate(nets):
                index = net_id[net]
                new_value = state[index]
                for mask, value in per_mode:
                    if value is None:
                        continue
                    if (value[step] >> bit) & 1:
                        new_value |= mask
                    else:
                        new_value &= ~mask
                drive(index, new_value, "control", changed)

        _settle_events_batch(
            compiled, gate_data, state, changed, ones,
            n_bytes, seg_starts, seg_width, counters, net_toggles,
            pend_value, pend_epoch, epoch_box,
        )

        # Clock edge: all flip-flops load their data nets (read out
        # first — flops clock simultaneously, in every configuration).
        updates = [
            (q_index, state[data_index])
            for q_index, data_index in compiled.latch_pairs
        ]
        changed = []
        for q_index, new_q in updates:
            drive(q_index, new_q, "reg", changed)
        _settle_events_batch(
            compiled, gate_data, state, changed, ones,
            n_bytes, seg_starts, seg_width, counters, net_toggles,
            pend_value, pend_epoch, epoch_box,
        )

    results: List[SimulationResult] = []
    names = compiled.net_names
    for ci, config in enumerate(configs):
        lanes = config.vectors.lanes
        words = n_words(lanes)
        offset = offsets[ci]
        lane_mask = (1 << lanes) - 1
        outputs: Dict[int, List[int]] = {}
        for position, nets in design.output_nets.items():
            rows = [
                _int_to_words((state[net_id[net]] >> offset) & lane_mask,
                              words)
                for net in nets
            ]
            outputs[position] = [
                int(value) for value in unpack_lane_values(rows, lanes)
            ]
        per_net: Dict[str, int] = {}
        if net_toggles is not None:
            for index in np.nonzero(net_toggles[ci])[0]:
                per_net[names[index]] = int(net_toggles[ci][index])
        results.append(SimulationResult(
            lanes=lanes,
            steps=n_steps,
            comb_toggles=counters[ci]["comb"],
            register_toggles=counters[ci]["reg"],
            pad_toggles=counters[ci]["pad"],
            control_toggles=counters[ci]["control"],
            per_net=per_net,
            outputs=outputs,
        ))
    return results


#: Per-byte popcounts, for the vectorized delta counting below
#: (int16: segment sums in `np.add.reduceat` stay within dtype).
_POPCOUNT_TABLE = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.int16
)

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    def _popcount_bytes(matrix: np.ndarray) -> np.ndarray:
        return np.bitwise_count(matrix).astype(np.int16)
else:
    def _popcount_bytes(matrix: np.ndarray) -> np.ndarray:
        return _POPCOUNT_TABLE[matrix]


def _fanin_getter(fanins: List[int]) -> Callable:
    """One C-level call that gathers a gate's fanin values."""
    if len(fanins) > 1:
        return itemgetter(*fanins)
    if fanins:
        index = fanins[0]
        return lambda state: (state[index],)
    return lambda state: ()


def _settle_events_batch(
    compiled: CompiledNetlist,
    gate_data: List[Tuple],
    state: List[int],
    changed: List[int],
    ones: int,
    n_bytes: int,
    seg_starts: np.ndarray,
    seg_width: int,
    counters: List[Dict[str, int]],
    net_toggles: Optional[List[np.ndarray]],
    pend_value: List[int],
    pend_epoch: List[int],
    epoch_box: List[int],
) -> None:
    """Batched event-driven settling (see :func:`_settle_events`).

    Identical walk to the solo kernel, with two twists. A changed gate
    schedules one wheel transition per entry of its delay plan — delay
    groups whose delay for this gate coincides were merged into one
    entry up front — carrying the entry's lane mask: transitions land
    as ``state = (state & ~mask) | (value & mask)``, so groups with
    different delays never clobber each other's lanes. The pending
    word (epoch-stamped scratch arrays, one epoch per settle call)
    still holds the full projection — lanes an entry did not schedule
    are, by construction, equal to their previous value, so the
    full-word update is exact.

    And toggle counting is deferred: each nonzero evaluation delta is
    captured as its little-endian byte string, and one vectorized pass
    at the end popcounts every (delta, configuration) pair — per-byte
    popcounts summed per configuration at the (byte-aligned)
    lane-block boundaries (a reshape for uniform blocks, reduceat for
    ragged ones). That replaces ``n_configs`` big-int masks per event
    with one ``to_bytes`` per event plus a few numpy reductions per
    settle — a configuration whose lanes did not change still
    contributes nothing, even when a sibling's did.
    """
    if not changed:
        return
    fanout_gates = compiled.fanout_gates
    epoch_box[0] += 1
    epoch = epoch_box[0]

    delta_nets: List[int] = []
    delta_rows: List[bytes] = []
    nets_append = delta_nets.append
    rows_append = delta_rows.append
    # Tick -> transitions [(net id, new value, lane mask)].
    wheel: Dict[int, List[Tuple[int, int, int]]] = {}
    wheel_setdefault = wheel.setdefault
    time = 0
    in_flight = 0
    changed_now = changed
    while True:
        triggered = set()
        for index in changed_now:
            triggered.update(fanout_gates[index])
        for position in sorted(triggered):
            evaluate, gather, out, plan, single = gate_data[position]
            new_value = evaluate(gather(state), ones)
            if pend_epoch[position] == epoch:
                previous = pend_value[position]
            else:
                previous = state[out]
            delta = previous ^ new_value
            if delta:
                nets_append(out)
                rows_append(delta.to_bytes(n_bytes, "little"))
                if single is not None:
                    # Merged entry: its mask covers every lane, and the
                    # delta is nonzero, so it always schedules.
                    tick, mask = single
                    wheel_setdefault(time + tick, []).append(
                        (out, new_value, mask)
                    )
                    in_flight += 1
                else:
                    for tick, mask in plan:
                        if delta & mask:
                            wheel_setdefault(time + tick, []).append(
                                (out, new_value, mask)
                            )
                            in_flight += 1
                pend_value[position] = new_value
                pend_epoch[position] = epoch
        if not in_flight:
            break
        time += 1
        while time not in wheel:
            time += 1
        events = wheel.pop(time)
        in_flight -= len(events)
        changed_now = []
        for index, value, mask in events:
            state[index] = (state[index] & ~mask) | (value & mask)
            changed_now.append(index)

    if not delta_rows:
        return
    matrix = np.frombuffer(
        b"".join(delta_rows), dtype=np.uint8
    ).reshape(len(delta_rows), n_bytes)
    # (n_deltas, n_configs) toggle counts in two C calls: per-byte
    # popcount, then a segmented sum at the block starts (a block's
    # trailing padding bytes fold into its own segment and are always
    # zero in every delta). Uniform lane blocks — the usual case — sum
    # via a cheap reshape; ragged blocks fall back to reduceat.
    counts = _popcount_bytes(matrix)
    if seg_width:
        per_config = counts.reshape(
            len(delta_rows), -1, seg_width
        ).sum(axis=2, dtype=np.int64)
    else:
        per_config = np.add.reduceat(counts, seg_starts, axis=1)
    totals = per_config.sum(axis=0, dtype=np.int64)
    outs = np.asarray(delta_nets, dtype=np.intp)
    n_nets = compiled.n_nets
    for ci in range(len(seg_starts)):
        total = int(totals[ci])
        if not total:
            continue
        counters[ci]["comb"] += total
        if net_toggles is not None:
            # bincount's float64 weights are exact here (counts are
            # far below 2**53).
            net_toggles[ci] += np.bincount(
                outs, weights=per_config[:, ci], minlength=n_nets
            ).astype(np.int64)


# ---------------------------------------------------------------------------
# Reference kernel (the seed implementation, kept as the differential
# oracle: per-gate timed waveforms settled in topological order).
# ---------------------------------------------------------------------------


class _Waveform:
    """Timed transitions of one net within a control step."""

    __slots__ = ("times", "values")

    def __init__(self):
        self.times: List[int] = []
        self.values: List[np.ndarray] = []

    def value_at(self, time: int, steady: np.ndarray) -> np.ndarray:
        """Net value at (just after) ``time``."""
        result = steady
        for t, value in zip(self.times, self.values):
            if t <= time:
                result = value
            else:
                break
        return result


def _simulate_reference(
    design: ElaboratedDesign,
    vectors: VectorSet,
    collect_per_net: bool = False,
    idle_selects: str = "zero",
    delay_jitter: int = 0,
) -> SimulationResult:
    """The original timed-waveform simulator (see :func:`simulate_design`)."""
    netlist = design.netlist
    lanes = vectors.lanes
    words = n_words(lanes)
    ones = broadcast(True, lanes)
    zeros = np.zeros(words, dtype=np.uint64)

    controller = build_controller(design.datapath)
    control_values = controller.resolved(idle_selects)

    topo = netlist.topological_order()
    gates = [netlist.gates[net] for net in topo]
    evaluators = [_compile_table(gate.table) for gate in gates]
    delays = [_gate_delay(gate.output, delay_jitter) for gate in gates]
    fanout_positions: Dict[str, List[int]] = {}
    for position, gate in enumerate(gates):
        for name in gate.inputs:
            fanout_positions.setdefault(name, []).append(position)

    steady: Dict[str, np.ndarray] = {}
    for net in netlist.inputs:
        steady[net] = zeros.copy()
    for net in netlist.latches:
        steady[net] = zeros.copy()

    # Settle the all-zero state without counting (power-on, as in the
    # paper's simulator warm-up before vectors apply).
    for gate, evaluator in zip(gates, evaluators):
        values = [steady[name] for name in gate.inputs]
        steady[gate.output] = evaluator(values, ones, zeros)

    counters = {
        "comb": 0,
        "reg": 0,
        "pad": 0,
        "control": 0,
    }
    per_net: Dict[str, int] = {}

    def count(net: str, delta_words: np.ndarray, category: str) -> None:
        toggles = popcount(delta_words)
        if toggles:
            counters[category] += toggles
            if collect_per_net:
                per_net[net] = per_net.get(net, 0) + toggles

    def drive(net: str, new_value: np.ndarray, category: str, changed):
        old = steady[net]
        delta = old ^ new_value
        if delta.any():
            count(net, delta, category)
            steady[net] = new_value
            changed[net] = old  # remember pre-change value

    n_steps = len(design.datapath.control)
    for step in range(n_steps):
        changed: Dict[str, np.ndarray] = {}

        # Pads present their vector at the load step.
        if step == 0:
            for position, nets in design.pad_nets.items():
                for bit, net in enumerate(nets):
                    drive(net, vectors.pad_words(position, bit), "pad", changed)

        # Control signals take this step's value.
        for name, nets in design.control_nets.items():
            value = control_values.get(name)
            if value is None:
                continue
            step_value = value[step]
            for bit, net in enumerate(nets):
                bit_set = bool((step_value >> bit) & 1)
                drive(net, ones.copy() if bit_set else zeros.copy(),
                      "control", changed)

        _propagate(
            gates, evaluators, delays, fanout_positions, steady, changed,
            ones, zeros, count,
        )

        # Clock edge: all flip-flops load their data nets.
        updates = []
        for latch in netlist.latches.values():
            new_q = steady[latch.data]
            updates.append((latch.output, new_q))
        changed = {}
        for net, new_q in updates:
            drive(net, new_q.copy(), "reg", changed)
        # Settle after the clock edge (counted — the paper's simulator
        # sees these transitions too, including after the final edge).
        _propagate(
            gates, evaluators, delays, fanout_positions, steady, changed,
            ones, zeros, count,
        )

    outputs: Dict[int, List[int]] = {}
    for position, nets in design.output_nets.items():
        values = []
        for lane in range(lanes):
            value = 0
            for bit, net in enumerate(nets):
                if (int(steady[net][lane // 64]) >> (lane % 64)) & 1:
                    value |= 1 << bit
            values.append(value)
        outputs[position] = values

    return SimulationResult(
        lanes=lanes,
        steps=n_steps,
        comb_toggles=counters["comb"],
        register_toggles=counters["reg"],
        pad_toggles=counters["pad"],
        control_toggles=counters["control"],
        per_net=per_net,
        outputs=outputs,
    )


def golden_outputs(
    design: ElaboratedDesign, vectors: VectorSet
) -> Dict[int, List[int]]:
    """Expected primary-output values from CDFG semantics.

    Evaluates the dataflow graph with modular arithmetic at the
    datapath width, all lanes at once — the reference the simulated
    hardware must match bit-exactly.
    """
    cdfg = design.datapath.cdfg
    width = design.width
    if width > 64:
        raise SimulationError(f"datapath width {width} exceeds 64 bits")
    mask = np.uint64((1 << width) - 1)
    values: Dict[int, np.ndarray] = {
        var_id: vectors.lane_values(position)
        for position, var_id in enumerate(cdfg.primary_inputs)
    }
    for op in cdfg.topological_order():
        a = values[op.inputs[0]]
        b = values[op.inputs[1]]
        if op.op_type == "add":
            result = (a + b) & mask
        elif op.op_type == "sub":
            result = (a - b) & mask
        else:
            # uint64 wraps mod 2**64; masking keeps the low `width`
            # bits, which only depend on the low bits of the operands.
            result = (a * b) & mask
        values[op.output] = result
    return {
        position: [int(value) for value in values[var_id]]
        for position, var_id in enumerate(cdfg.primary_outputs)
    }


def _propagate(
    gates,
    evaluators,
    delays,
    fanout_positions,
    steady: Dict[str, np.ndarray],
    changed_sources: Dict[str, np.ndarray],
    ones: np.ndarray,
    zeros: np.ndarray,
    count,
) -> None:
    """Timed-waveform settling after source changes (unit delay).

    ``changed_sources`` maps nets that changed at time 0 to their
    *previous* value; ``steady`` already holds their new value.
    """
    if not changed_sources:
        return
    waveforms: Dict[str, _Waveform] = {}
    previous: Dict[str, np.ndarray] = {}
    for net, old in changed_sources.items():
        wave = _Waveform()
        wave.times.append(0)
        wave.values.append(steady[net])
        waveforms[net] = wave
        previous[net] = old

    dirty = [
        position
        for net in changed_sources
        for position in fanout_positions.get(net, [])
    ]
    dirty_set = set(dirty)

    for position, (gate, evaluator) in enumerate(zip(gates, evaluators)):
        if position not in dirty_set:
            continue
        delay = delays[position]
        input_waves = [
            (index, waveforms[name])
            for index, name in enumerate(gate.inputs)
            if name in waveforms
        ]
        if not input_waves:
            continue
        times = sorted(
            {t for _, wave in input_waves for t in wave.times}
        )
        old_output = steady[gate.output]
        base_values = [
            previous.get(name, steady[name]) for name in gate.inputs
        ]
        last_value = old_output
        wave = _Waveform()
        for t in times:
            current = list(base_values)
            for index, in_wave in input_waves:
                current[index] = in_wave.value_at(
                    t, previous.get(gate.inputs[index], steady[gate.inputs[index]])
                )
            new_value = evaluator(current, ones, zeros)
            if (new_value ^ last_value).any():
                wave.times.append(t + delay)
                wave.values.append(new_value)
                count(gate.output, new_value ^ last_value, "comb")
                last_value = new_value
        if wave.times:
            waveforms[gate.output] = wave
            previous[gate.output] = old_output
            steady[gate.output] = last_value
            for fan in fanout_positions.get(gate.output, []):
                dirty_set.add(fan)
