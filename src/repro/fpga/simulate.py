"""Exact unit-delay gate-level simulation with glitch counting.

This is the reproduction's stand-in for Quartus II's vector simulation
(with *glitch filtering set to never*, as the paper configures): every
signal transition — functional or glitch — is counted.

Model:

* every input vector occupies one bit lane; all lanes evaluate
  simultaneously through numpy bitwise ops on packed ``uint64`` words;
* each control step, the changed sources (clocked flip-flops, control
  signals, pads at load time) kick off a *timed waveform* evaluation of
  the combinational network in topological order: a gate re-evaluates
  at every discrete time at which one of its fanins changed, and its
  output change (if any) propagates one unit delay later — exactly the
  delay model the paper's SA estimator assumes (Section 4);
* every appended transition adds ``popcount(old XOR new)`` to the
  owning net's toggle counter;
* at the end of the step all flip-flops clock simultaneously (their
  output toggles are the register power contribution).

Functional correctness is checked against the CDFG's arithmetic
semantics (modular add/sub/mult) via :func:`golden_outputs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.fpga.elaborate import ElaboratedDesign
from repro.fpga.vectors import VectorSet, broadcast, n_words, popcount
from repro.netlist.gates import Netlist, TruthTable
from repro.rtl.controller import build_controller


@dataclass
class SimulationResult:
    """Transition counts from one run."""

    lanes: int
    steps: int
    comb_toggles: int
    register_toggles: int
    pad_toggles: int
    control_toggles: int
    per_net: Dict[str, int] = field(default_factory=dict)
    #: Primary-output position -> per-lane integer values.
    outputs: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def total_toggles(self) -> int:
        return (
            self.comb_toggles
            + self.register_toggles
            + self.pad_toggles
            + self.control_toggles
        )


_EVALUATOR_CACHE: Dict[Tuple[int, int], Callable] = {}


def _compile_table(table: TruthTable) -> Callable:
    """Compile a truth table into a packed-word evaluator.

    Shannon expansion over the inputs: ``2^k - 1`` select operations of
    the form ``(x & hi) | (~x & lo)``, bottoming out at constant words.
    Compiled once per distinct function and cached process-wide.
    """
    key = (table.n_inputs, table.bits)
    cached = _EVALUATOR_CACHE.get(key)
    if cached is not None:
        return cached

    n = table.n_inputs

    def build(level: int, bits: int):
        """Evaluator for the sub-function over inputs [0, level)."""
        if level == 0:
            return bool(bits & 1)
        half = 1 << (level - 1)
        mask = (1 << half) - 1
        lo = build(level - 1, bits & mask)
        hi = build(level - 1, bits >> half)
        if lo is hi or (isinstance(lo, bool) and lo == hi):
            return lo
        sel_index = level - 1

        if isinstance(lo, bool) and isinstance(hi, bool):
            if hi and not lo:
                return lambda values, ones: values[sel_index]
            # lo and not hi
            return lambda values, ones: values[sel_index] ^ ones

        def node(values, ones, lo=lo, hi=hi, sel_index=sel_index):
            sel = values[sel_index]
            lo_words = lo if isinstance(lo, np.ndarray) else (
                lo(values, ones) if callable(lo) else (ones if lo else None)
            )
            hi_words = hi if isinstance(hi, np.ndarray) else (
                hi(values, ones) if callable(hi) else (ones if hi else None)
            )
            if lo_words is None:  # constant 0
                return sel & hi_words
            if hi_words is None:
                return ~sel & lo_words
            return (sel & hi_words) | (~sel & lo_words)

        return node

    # Shannon on the full table; inputs ordered LSB-first like
    # TruthTable indices.
    root = build(n, table.bits)
    if isinstance(root, bool):
        constant = root

        def evaluator(values, ones, zeros):
            return ones.copy() if constant else zeros.copy()

    else:

        def evaluator(values, ones, zeros, root=root):
            result = root(values, ones)
            return result & ones  # mask tail lanes

    _EVALUATOR_CACHE[key] = evaluator
    return evaluator


class _Waveform:
    """Timed transitions of one net within a control step."""

    __slots__ = ("times", "values")

    def __init__(self):
        self.times: List[int] = []
        self.values: List[np.ndarray] = []

    def value_at(self, time: int, steady: np.ndarray) -> np.ndarray:
        """Net value at (just after) ``time``."""
        result = steady
        for t, value in zip(self.times, self.values):
            if t <= time:
                result = value
            else:
                break
        return result


def simulate_design(
    design: ElaboratedDesign,
    vectors: VectorSet,
    collect_per_net: bool = False,
    idle_selects: str = "zero",
    delay_jitter: int = 0,
) -> SimulationResult:
    """Replay the control table over the netlist for all lanes.

    ``idle_selects`` picks the idle-step control convention (see
    :meth:`repro.rtl.controller.Controller.resolved`).

    ``delay_jitter`` spreads per-gate delays over ``1 .. 1 + jitter``
    ticks, keyed deterministically by output net name. The paper's SA
    *estimator* assumes pure unit delay, but its *measurement* is a
    Quartus timing simulation with real routed delays and glitch
    filtering off; the jitter models that routing spread (0 restores
    the pure unit-delay model — the estimator-vs-measurement gap is an
    ablation bench).
    """
    netlist = design.netlist
    lanes = vectors.lanes
    words = n_words(lanes)
    ones = broadcast(True, lanes)
    zeros = np.zeros(words, dtype=np.uint64)

    controller = build_controller(design.datapath)
    control_values = controller.resolved(idle_selects)

    topo = netlist.topological_order()
    gates = [netlist.gates[net] for net in topo]
    evaluators = [_compile_table(gate.table) for gate in gates]
    delays = [_gate_delay(gate.output, delay_jitter) for gate in gates]
    fanout_positions: Dict[str, List[int]] = {}
    for position, gate in enumerate(gates):
        for name in gate.inputs:
            fanout_positions.setdefault(name, []).append(position)

    steady: Dict[str, np.ndarray] = {}
    for net in netlist.inputs:
        steady[net] = zeros.copy()
    for net in netlist.latches:
        steady[net] = zeros.copy()

    # Settle the all-zero state without counting (power-on, as in the
    # paper's simulator warm-up before vectors apply).
    for gate, evaluator in zip(gates, evaluators):
        values = [steady[name] for name in gate.inputs]
        steady[gate.output] = evaluator(values, ones, zeros)

    counters = {
        "comb": 0,
        "reg": 0,
        "pad": 0,
        "control": 0,
    }
    per_net: Dict[str, int] = {}
    pad_nets = {
        net for nets in design.pad_nets.values() for net in nets
    }
    control_net_names = {
        net for nets in design.control_nets.values() for net in nets
    }

    def count(net: str, delta_words: np.ndarray, category: str) -> None:
        toggles = popcount(delta_words)
        if toggles:
            counters[category] += toggles
            if collect_per_net:
                per_net[net] = per_net.get(net, 0) + toggles

    def drive(net: str, new_value: np.ndarray, category: str, changed):
        old = steady[net]
        delta = old ^ new_value
        if delta.any():
            count(net, delta, category)
            steady[net] = new_value
            changed[net] = old  # remember pre-change value

    n_steps = len(design.datapath.control)
    for step in range(n_steps):
        changed: Dict[str, np.ndarray] = {}

        # Pads present their vector at the load step.
        if step == 0:
            for position, nets in design.pad_nets.items():
                for bit, net in enumerate(nets):
                    drive(net, vectors.pad_words(position, bit), "pad", changed)

        # Control signals take this step's value.
        for name, nets in design.control_nets.items():
            value = control_values.get(name)
            if value is None:
                continue
            step_value = value[step]
            for bit, net in enumerate(nets):
                bit_set = bool((step_value >> bit) & 1)
                drive(net, ones.copy() if bit_set else zeros.copy(),
                      "control", changed)

        _propagate(
            gates, evaluators, delays, fanout_positions, steady, changed,
            ones, zeros, count,
        )

        # Clock edge: all flip-flops load their data nets.
        updates = []
        for latch in netlist.latches.values():
            new_q = steady[latch.data]
            updates.append((latch.output, new_q))
        changed = {}
        for net, new_q in updates:
            drive(net, new_q.copy(), "reg", changed)
        # Settle after the clock edge (counted — the paper's simulator
        # sees these transitions too, including after the final edge).
        _propagate(
            gates, evaluators, delays, fanout_positions, steady, changed,
            ones, zeros, count,
        )

    outputs: Dict[int, List[int]] = {}
    for position, nets in design.output_nets.items():
        values = []
        for lane in range(lanes):
            value = 0
            for bit, net in enumerate(nets):
                if (int(steady[net][lane // 64]) >> (lane % 64)) & 1:
                    value |= 1 << bit
            values.append(value)
        outputs[position] = values

    return SimulationResult(
        lanes=lanes,
        steps=n_steps,
        comb_toggles=counters["comb"],
        register_toggles=counters["reg"],
        pad_toggles=counters["pad"],
        control_toggles=counters["control"],
        per_net=per_net,
        outputs=outputs,
    )


def golden_outputs(
    design: ElaboratedDesign, vectors: VectorSet
) -> Dict[int, List[int]]:
    """Expected primary-output values from CDFG semantics.

    Evaluates the dataflow graph per lane with modular arithmetic at
    the datapath width — the reference the simulated hardware must
    match bit-exactly.
    """
    cdfg = design.datapath.cdfg
    width = design.width
    mask = (1 << width) - 1
    pad_of = {
        var_id: position
        for position, var_id in enumerate(cdfg.primary_inputs)
    }
    outputs: Dict[int, List[int]] = {
        position: [] for position in range(len(cdfg.primary_outputs))
    }
    order = cdfg.topological_order()
    for lane in range(vectors.lanes):
        values: Dict[int, int] = {
            var_id: vectors.lane_value(position, lane)
            for var_id, position in pad_of.items()
        }
        for op in order:
            a = values[op.inputs[0]]
            b = values[op.inputs[1]]
            if op.op_type == "add":
                result = (a + b) & mask
            elif op.op_type == "sub":
                result = (a - b) & mask
            else:
                result = (a * b) & mask
            values[op.output] = result
        for position, var_id in enumerate(cdfg.primary_outputs):
            outputs[position].append(values[var_id])
    return outputs


def _gate_delay(net: str, jitter: int) -> int:
    """Deterministic per-gate delay in ``1 .. 1 + jitter`` ticks."""
    if jitter <= 0:
        return 1
    import zlib

    return 1 + (zlib.crc32(net.encode()) % (jitter + 1))


def _propagate(
    gates,
    evaluators,
    delays,
    fanout_positions,
    steady: Dict[str, np.ndarray],
    changed_sources: Dict[str, np.ndarray],
    ones: np.ndarray,
    zeros: np.ndarray,
    count,
) -> None:
    """Timed-waveform settling after source changes (unit delay).

    ``changed_sources`` maps nets that changed at time 0 to their
    *previous* value; ``steady`` already holds their new value.
    """
    if not changed_sources:
        return
    waveforms: Dict[str, _Waveform] = {}
    previous: Dict[str, np.ndarray] = {}
    for net, old in changed_sources.items():
        wave = _Waveform()
        wave.times.append(0)
        wave.values.append(steady[net])
        waveforms[net] = wave
        previous[net] = old

    dirty = [
        position
        for net in changed_sources
        for position in fanout_positions.get(net, [])
    ]
    dirty_set = set(dirty)

    for position, (gate, evaluator) in enumerate(zip(gates, evaluators)):
        if position not in dirty_set:
            continue
        delay = delays[position]
        input_waves = [
            (index, waveforms[name])
            for index, name in enumerate(gate.inputs)
            if name in waveforms
        ]
        if not input_waves:
            continue
        times = sorted(
            {t for _, wave in input_waves for t in wave.times}
        )
        old_output = steady[gate.output]
        base_values = [
            previous.get(name, steady[name]) for name in gate.inputs
        ]
        last_value = old_output
        wave = _Waveform()
        for t in times:
            current = list(base_values)
            for index, in_wave in input_waves:
                current[index] = in_wave.value_at(
                    t, previous.get(gate.inputs[index], steady[gate.inputs[index]])
                )
            new_value = evaluator(current, ones, zeros)
            if (new_value ^ last_value).any():
                wave.times.append(t + delay)
                wave.values.append(new_value)
                count(gate.output, new_value ^ last_value, "comb")
                last_value = new_value
        if wave.times:
            waveforms[gate.output] = wave
            previous[gate.output] = old_output
            steady[gate.output] = last_value
            for fan in fanout_positions.get(gate.output, []):
                dirty_set.add(fan)
