"""Critical-path timing (the Quartus timing-analysis substitute).

The clock period is derived from the mapped netlist's critical path:
register overhead plus one LUT + routing delay per logic level. The
paper's Table 3 reports clock periods of 20-27 ns for these designs on
Cyclone II; the default device model lands in the same range for
comparable depths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import CYCLONE_II_LIKE, DeviceModel
from repro.netlist.gates import Netlist


@dataclass
class TimingReport:
    """Critical path of one mapped design."""

    depth_levels: int
    clock_period_ns: float

    @property
    def fmax_mhz(self) -> float:
        return 1e3 / self.clock_period_ns


def timing_report(
    mapped: Netlist, device: DeviceModel = CYCLONE_II_LIKE
) -> TimingReport:
    """Clock period of a mapped netlist under ``device``'s delays."""
    depth = mapped.depth()
    return TimingReport(depth, device.clock_period_ns(depth))
