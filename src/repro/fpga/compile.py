"""Compiled datapath elaboration (``elab_engine="fast"``).

:func:`~repro.fpga.elaborate.elaborate_datapath` rebuilds a structural
library netlist for every component instance — every register bank,
every mux of a given shape, every adder — and copies it gate by gate
through :meth:`Netlist.instantiate`, which re-runs a DFS topological
sort of the library cell per instance. On large datapaths both costs
dominate: a 4000-op schedule instantiates hundreds of identical
``(kind, size, width)`` cells.

This module compiles each distinct library cell once into a
:class:`_Template` — its gates frozen in topological order with shared
:class:`TruthTable` objects, plus latches and port lists — and stamps
instances out with a rename dict and direct gates-dict writes. The
instantiation order, net-name choreography (pad/select/mode naming,
pre-declared register nets, instance prefixes) and the final cleanup
mirror the reference exactly, so the produced netlist is byte-identical
(gate insertion order included); ``tests/fpga/test_elab_engines.py``
pins that equivalence across the paper benchmarks and corpus samples.

The reference path stays untouched behind ``elab_engine="reference"``;
:data:`ELAB_ENGINES` names the two paths the flow accepts, the same
contract as ``bind_engine`` and ``map_effort``.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ConfigError, NetlistError, RTLError
from repro.netlist.compile import clean_fast, make_gate
from repro.netlist.gates import GateType, Latch, Netlist, TruthTable
from repro.netlist.library import (
    build_addsub,
    build_functional_unit,
    build_mux,
    build_register,
    select_width,
)
from repro.fpga.elaborate import ElaboratedDesign, elaborate_datapath
from repro.rtl.datapath import Datapath, FUSpec, MuxSpec, SourceRef

#: The elaborate-stage engines the flow accepts ("fast" is the default).
ELAB_ENGINES: Tuple[str, ...] = ("fast", "reference")

#: One frozen gate: (output, inputs, table, gate_type).
_GateRecord = Tuple[str, Tuple[str, ...], TruthTable, GateType]
#: One frozen latch: (output, data, init, enable).
_LatchRecord = Tuple[str, str, bool, Optional[str]]


class _Template:
    """A library cell frozen for repeated stamping.

    Gates are stored in the cell's topological order — the order
    :meth:`Netlist.instantiate` copies them — so stamped instances
    land in the top-level gates dict in the reference insertion order.
    """

    __slots__ = ("inputs", "input_set", "gates", "latches", "outputs")

    def __init__(self, cell: Netlist) -> None:
        self.inputs: Tuple[str, ...] = tuple(cell.inputs)
        self.input_set: FrozenSet[str] = frozenset(cell.inputs)
        self.gates: Tuple[_GateRecord, ...] = tuple(
            (
                net,
                cell.gates[net].inputs,
                cell.gates[net].table,
                cell.gates[net].gate_type,
            )
            for net in cell.topological_order()
        )
        self.latches: Tuple[_LatchRecord, ...] = tuple(
            (latch.output, latch.data, latch.init, latch.enable)
            for latch in cell.latches.values()
        )
        self.outputs: Tuple[str, ...] = tuple(cell.outputs)


#: Compiled library cells by (kind, *params). Library builders are
#: deterministic, so one compile per shape serves every instance.
_TEMPLATES: Dict[Tuple, _Template] = {}


def _template(key: Tuple, build: Callable[[], Netlist]) -> _Template:
    template = _TEMPLATES.get(key)
    if template is None:
        template = _Template(build())
        _TEMPLATES[key] = template
    return template


def _stamp(
    top: Netlist,
    template: _Template,
    port_map: Dict[str, str],
    prefix: str,
    output_map: Optional[Dict[str, str]] = None,
) -> Dict[str, str]:
    """Copy a compiled cell into ``top``; the fast ``instantiate``.

    Same rename semantics as :meth:`Netlist.instantiate`: ports and
    mapped outputs take the given nets, everything else gets
    ``prefix`` + the cell-local name.
    """
    missing = [p for p in template.inputs if p not in port_map]
    if missing:
        raise NetlistError(
            f"instantiate: unconnected inputs {missing}"
        )
    rename = dict(port_map)
    if output_map:
        for cell_net, target in output_map.items():
            rename[cell_net] = target
    get = rename.get
    gates = top.gates
    latches = top.latches
    input_set = top._input_set
    for out, ins, table, gate_type in template.gates:
        new_ins = tuple(
            mapped if (mapped := get(name)) is not None else prefix + name
            for name in ins
        )
        new_out = get(out)
        if new_out is None:
            new_out = prefix + out
        if new_out in gates or new_out in latches or new_out in input_set:
            raise NetlistError(f"net {new_out!r} already driven")
        gates[new_out] = make_gate(new_out, new_ins, table, gate_type)
    for out, data, init, enable in template.latches:
        new_out = get(out)
        if new_out is None:
            new_out = prefix + out
        if new_out in gates or new_out in latches or new_out in input_set:
            raise NetlistError(f"net {new_out!r} already driven")
        new_data = get(data)
        if new_data is None:
            new_data = prefix + data
        new_enable = None
        if enable is not None:
            new_enable = get(enable)
            if new_enable is None:
                new_enable = prefix + enable
        latches[new_out] = Latch(new_out, new_data, init, new_enable)
    return {
        out: mapped if (mapped := get(out)) is not None else prefix + out
        for out in template.outputs
    }


def _stamp_mux(
    top: Netlist,
    name: str,
    select_name: str,
    mux: MuxSpec,
    width: int,
    resolve,
    control_bus,
) -> List[str]:
    """Fast twin of ``elaborate._build_mux_instance``."""
    if mux.size == 1:
        return [resolve(mux.sources[0], bit) for bit in range(width)]
    template = _template(
        ("mux", mux.size, width), lambda: build_mux(mux.size, width)
    )
    port_map: Dict[str, str] = {}
    for position, source in enumerate(mux.sources):
        for bit in range(width):
            port_map[f"d{position}_{bit}"] = resolve(source, bit)
    selects = control_bus(select_name, select_width(mux.size))
    for k, net in enumerate(selects):
        if f"sel{k}" in template.input_set:
            port_map[f"sel{k}"] = net
    out_map = _stamp(top, template, port_map, prefix=f"u_{name}/")
    return [out_map[f"y{bit}"] for bit in range(width)]


def _stamp_fu(
    top: Netlist,
    datapath: Datapath,
    spec: FUSpec,
    width: int,
    register_nets: Dict[int, List[str]],
    control_bus,
) -> List[str]:
    """Fast twin of ``elaborate._build_fu``."""
    fu = spec.unit.fu_id

    def resolve(source: SourceRef, bit: int) -> str:
        if source[0] != "reg":
            raise RTLError(f"FU port reads non-register source {source}")
        return register_nets[source[1]][bit]

    bus_a = _stamp_mux(
        top, f"fu{fu}_a", f"fu{fu}_sel_a", spec.mux_a, width,
        resolve, control_bus,
    )
    bus_b = _stamp_mux(
        top, f"fu{fu}_b", f"fu{fu}_sel_b", spec.mux_b, width,
        resolve, control_bus,
    )

    if spec.needs_mode:
        unit = _template(("addsub", width), lambda: build_addsub(width))
    elif spec.unit.fu_class == "mult":
        unit = _template(
            ("fu", "mult", width),
            lambda: build_functional_unit("mult", width),
        )
    else:
        op_types = {
            datapath.cdfg.operations[op_id].op_type
            for op_id in spec.unit.ops
        }
        fu_type = "sub" if op_types == {"sub"} else "add"
        unit = _template(
            ("fu", fu_type, width),
            lambda: build_functional_unit(fu_type, width),
        )
    port_map: Dict[str, str] = {}
    for bit in range(width):
        port_map[f"a{bit}"] = bus_a[bit]
        port_map[f"b{bit}"] = bus_b[bit]
    if spec.needs_mode:
        port_map["mode"] = control_bus(f"fu{fu}_mode", 1)[0]
    out_map = _stamp(top, unit, port_map, prefix=f"u_fu{fu}/")
    return [out_map[f"s{bit}"] for bit in range(width)]


def _stamp_register(
    top: Netlist,
    index: int,
    mux: MuxSpec,
    width: int,
    pad_nets: Dict[int, List[str]],
    fu_nets: Dict[int, List[str]],
    register_nets: Dict[int, List[str]],
    control_bus,
) -> None:
    """Fast twin of ``elaborate._build_register``."""

    def resolve(source: SourceRef, bit: int) -> str:
        kind, position = source
        if kind == "reg":
            return register_nets[position][bit]
        if kind == "pad":
            return pad_nets[position][bit]
        if kind == "fu":
            return fu_nets[position][bit]
        raise RTLError(f"unknown source kind {kind!r}")

    data_bus = _stamp_mux(
        top, f"reg{index}", f"reg{index}_sel", mux, width,
        resolve, control_bus,
    )
    bank = _template(
        ("reg", width), lambda: build_register(width, with_enable=True)
    )
    port_map: Dict[str, str] = {"en": control_bus(f"reg{index}_en", 1)[0]}
    for bit in range(width):
        port_map[f"d{bit}"] = data_bus[bit]
    output_map = {
        f"q{bit}": register_nets[index][bit] for bit in range(width)
    }
    _stamp(top, bank, port_map, prefix=f"u_reg{index}/", output_map=output_map)


def elaborate_datapath_fast(datapath: Datapath) -> ElaboratedDesign:
    """Template-stamped twin of :func:`~repro.fpga.elaborate.elaborate_datapath`."""
    width = datapath.width
    top = Netlist("design")

    pad_nets: Dict[int, List[str]] = {}
    n_pads = len(datapath.cdfg.primary_inputs)
    for position in range(n_pads):
        pad_nets[position] = [
            top.add_input(f"pi{position}_{bit}") for bit in range(width)
        ]

    control_nets: Dict[str, List[str]] = {}

    def control_bus(name: str, bits: int) -> List[str]:
        nets = [top.add_input(f"{name}_{k}") for k in range(bits)]
        control_nets[name] = nets
        return nets

    register_nets: Dict[int, List[str]] = {
        reg.index: [f"reg{reg.index}_q{bit}" for bit in range(width)]
        for reg in datapath.registers
    }

    fu_nets: Dict[int, List[str]] = {}
    for spec in datapath.fus:
        fu_nets[spec.unit.fu_id] = _stamp_fu(
            top, datapath, spec, width, register_nets, control_bus
        )

    for reg in datapath.registers:
        _stamp_register(
            top,
            reg.index,
            reg.mux,
            width,
            pad_nets,
            fu_nets,
            register_nets,
            control_bus,
        )

    output_nets: Dict[int, List[str]] = {}
    for position, register in enumerate(datapath.output_registers):
        nets = register_nets[register]
        for net in nets:
            top.set_output(net)
        output_nets[position] = nets

    clean_fast(top)
    return ElaboratedDesign(
        datapath=datapath,
        netlist=top,
        pad_nets=pad_nets,
        register_nets=register_nets,
        fu_nets=fu_nets,
        control_nets=control_nets,
        output_nets=output_nets,
    )


def elaborate_design(
    datapath: Datapath, engine: str = "fast"
) -> ElaboratedDesign:
    """Elaborate ``datapath`` with the selected engine.

    ``"fast"`` stamps compiled cell templates; ``"reference"`` runs the
    seed :func:`~repro.fpga.elaborate.elaborate_datapath` verbatim.
    Both produce byte-identical designs.
    """
    if engine == "fast":
        return elaborate_datapath_fast(datapath)
    if engine == "reference":
        return elaborate_datapath(datapath)
    raise ConfigError(
        f"unknown elab engine {engine!r}; choose from {ELAB_ENGINES}"
    )
