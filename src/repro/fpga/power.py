"""Dynamic power model (the PowerPlay Power Analyzer substitute).

PowerPlay converts a switching-activity file (toggle counts from
vector simulation) into dynamic power:

    P_dyn = 0.5 * Vdd^2 * sum_over_nets(C_net * toggle_rate_net)

which is the paper's Section 1 equation applied per net. Toggle rates
come from the simulator's exact transition counts over the *stimulus*
time base: the paper drives both bindings with the same ``.vwf``
waveform, so designs are compared at a common simulation clock — the
achieved clock period is a separate Table 3 column, not the power
normalizer. Capacitances come from the device model per net category
(LUT outputs, register outputs, pads and control lines).

The paper's Figure 3 "average toggle rate" — "number of transitions
per second ... reported by Quartus II" — is
:attr:`PowerReport.toggle_rate_mhz`: total design transitions per
second of stimulus, in millions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import CYCLONE_II_LIKE, DeviceModel
from repro.fpga.simulate import SimulationResult

#: Default stimulus clock period (the ``.vwf`` time base), ns.
DEFAULT_SIM_CLOCK_NS = 40.0


@dataclass
class PowerReport:
    """Dynamic power breakdown for one simulated design."""

    dynamic_power_mw: float
    comb_power_mw: float
    register_power_mw: float
    io_power_mw: float
    toggle_rate_mhz: float
    total_toggles: int
    simulated_time_ns: float


def power_report(
    sim: SimulationResult,
    sim_clock_ns: float = DEFAULT_SIM_CLOCK_NS,
    device: DeviceModel = CYCLONE_II_LIKE,
    n_nets: int = 0,
) -> PowerReport:
    """Convert toggle counts into dynamic power at the stimulus clock.

    ``n_nets`` (LUTs + flip-flops) makes the reported toggle rate a
    per-signal average, as PowerPlay reports it; 0 leaves the rate as
    a whole-design total.
    """
    if sim_clock_ns <= 0:
        raise ValueError(f"stimulus clock must be positive: {sim_clock_ns}")
    if n_nets < 0:
        raise ValueError(f"n_nets must be >= 0, got {n_nets}")
    per_lane_time_ns = sim.steps * sim_clock_ns
    total_time_s = per_lane_time_ns * 1e-9 * sim.lanes

    def power_mw(toggles: int, capacitance_ff: float) -> float:
        energy_j = toggles * device.switch_energy_j(capacitance_ff)
        return energy_j / total_time_s * 1e3

    comb = power_mw(sim.comb_toggles, device.c_lut_ff)
    regs = power_mw(sim.register_toggles, device.c_register_ff)
    pads = power_mw(sim.pad_toggles, device.c_pad_ff)
    control = power_mw(sim.control_toggles, device.c_register_ff)

    design_toggles = sim.comb_toggles + sim.register_toggles
    toggle_rate = design_toggles / total_time_s / 1e6 / (n_nets or 1)

    return PowerReport(
        dynamic_power_mw=comb + regs + pads + control,
        comb_power_mw=comb,
        register_power_mw=regs + control,
        io_power_mw=pads,
        toggle_rate_mhz=toggle_rate,
        total_toggles=sim.total_toggles,
        simulated_time_ns=per_lane_time_ns,
    )
