"""Datapath elaboration to a flat gate-level netlist.

Instantiates the structural library for every datapath component —
register banks (with enable recirculation), register input muxes, FU
port muxes, and the arithmetic units — and wires them per the binding.
Mux select lines, register enables and add/sub mode bits become primary
inputs of the netlist; the simulator drives them with the control table
(an ideal FSM), and the SA estimator treats them as low-activity
sources.

The elaborated netlist is then cleaned (constant propagation, buffer
and dead-logic sweep) — the non-restructuring subset of what Quartus'
synthesis would do under the paper's settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import RTLError
from repro.netlist.gates import Netlist
from repro.netlist.library import (
    build_addsub,
    build_functional_unit,
    build_mux,
    build_register,
    select_width,
)
from repro.netlist.transform import clean
from repro.rtl.datapath import Datapath, FUSpec, MuxSpec, SourceRef


@dataclass
class ElaboratedDesign:
    """Flat netlist plus the name maps the simulator needs."""

    datapath: Datapath
    netlist: Netlist
    #: Pad position -> per-bit primary input nets.
    pad_nets: Dict[int, List[str]]
    #: Register index -> per-bit flip-flop output nets.
    register_nets: Dict[int, List[str]]
    #: FU id -> per-bit result nets.
    fu_nets: Dict[int, List[str]]
    #: Control signal name -> list of nets (select bus bits / enable).
    control_nets: Dict[str, List[str]]
    #: Primary-output position -> per-bit nets.
    output_nets: Dict[int, List[str]]

    @property
    def width(self) -> int:
        return self.datapath.width


def elaborate_datapath(datapath: Datapath) -> ElaboratedDesign:
    """Build the flat gate-level netlist of ``datapath``."""
    width = datapath.width
    top = Netlist("design")

    pad_nets: Dict[int, List[str]] = {}
    n_pads = len(datapath.cdfg.primary_inputs)
    for position in range(n_pads):
        pad_nets[position] = [
            top.add_input(f"pi{position}_{bit}") for bit in range(width)
        ]

    control_nets: Dict[str, List[str]] = {}

    def control_bus(name: str, bits: int) -> List[str]:
        nets = [top.add_input(f"{name}_{k}") for k in range(bits)]
        control_nets[name] = nets
        return nets

    # Register outputs must exist before FU muxes reference them, and
    # FU outputs before register muxes do; declare latch outputs first
    # by reserving their net names, then build logic in two passes.
    register_nets: Dict[int, List[str]] = {
        reg.index: [f"reg{reg.index}_q{bit}" for bit in range(width)]
        for reg in datapath.registers
    }

    # Pass 1: FU port muxes and arithmetic.
    fu_nets: Dict[int, List[str]] = {}
    for spec in datapath.fus:
        fu_nets[spec.unit.fu_id] = _build_fu(
            top, datapath, spec, width, register_nets, control_bus
        )

    # Pass 2: register input muxes and flip-flops.
    for reg in datapath.registers:
        _build_register(
            top,
            reg.index,
            reg.mux,
            width,
            pad_nets,
            fu_nets,
            register_nets,
            control_bus,
        )

    output_nets: Dict[int, List[str]] = {}
    for position, register in enumerate(datapath.output_registers):
        nets = register_nets[register]
        for net in nets:
            top.set_output(net)
        output_nets[position] = nets

    clean(top)
    return ElaboratedDesign(
        datapath=datapath,
        netlist=top,
        pad_nets=pad_nets,
        register_nets=register_nets,
        fu_nets=fu_nets,
        control_nets=control_nets,
        output_nets=output_nets,
    )


def _resolve_source(
    source: SourceRef,
    bit: int,
    pad_nets: Dict[int, List[str]],
    fu_nets: Dict[int, List[str]],
    register_nets: Dict[int, List[str]],
) -> str:
    kind, index = source
    if kind == "reg":
        return register_nets[index][bit]
    if kind == "pad":
        return pad_nets[index][bit]
    if kind == "fu":
        return fu_nets[index][bit]
    raise RTLError(f"unknown source kind {kind!r}")


def _build_mux_instance(
    top: Netlist,
    name: str,
    select_name: str,
    mux: MuxSpec,
    width: int,
    resolve,
    control_bus,
) -> List[str]:
    """Instantiate one mux; returns its output bus nets.

    ``select_name`` must match the controller's signal naming
    (:mod:`repro.rtl.controller`) so the simulator can drive it.
    """
    if mux.size == 1:
        return [resolve(mux.sources[0], bit) for bit in range(width)]
    instance = build_mux(mux.size, width)
    port_map: Dict[str, str] = {}
    for position, source in enumerate(mux.sources):
        for bit in range(width):
            port_map[f"d{position}_{bit}"] = resolve(source, bit)
    selects = control_bus(select_name, select_width(mux.size))
    for k, net in enumerate(selects):
        if f"sel{k}" in instance.inputs:
            port_map[f"sel{k}"] = net
    out_map = top.instantiate(instance, port_map, prefix=f"u_{name}/")
    return [out_map[f"y{bit}"] for bit in range(width)]


def _build_fu(
    top: Netlist,
    datapath: Datapath,
    spec: FUSpec,
    width: int,
    register_nets: Dict[int, List[str]],
    control_bus,
) -> List[str]:
    fu = spec.unit.fu_id

    def resolve(source: SourceRef, bit: int) -> str:
        if source[0] != "reg":
            raise RTLError(f"FU port reads non-register source {source}")
        return register_nets[source[1]][bit]

    bus_a = _build_mux_instance(
        top, f"fu{fu}_a", f"fu{fu}_sel_a", spec.mux_a, width,
        resolve, control_bus,
    )
    bus_b = _build_mux_instance(
        top, f"fu{fu}_b", f"fu{fu}_sel_b", spec.mux_b, width,
        resolve, control_bus,
    )

    if spec.needs_mode:
        unit = build_addsub(width)
    elif spec.unit.fu_class == "mult":
        unit = build_functional_unit("mult", width)
    else:
        # A unit of the adder class holding only subtractions still
        # elaborates as a subtractor; mixed units took the branch above.
        op_types = {
            datapath.cdfg.operations[op_id].op_type
            for op_id in spec.unit.ops
        }
        fu_type = "sub" if op_types == {"sub"} else "add"
        unit = build_functional_unit(fu_type, width)
    port_map: Dict[str, str] = {}
    for bit in range(width):
        port_map[f"a{bit}"] = bus_a[bit]
        port_map[f"b{bit}"] = bus_b[bit]
    if spec.needs_mode:
        port_map["mode"] = control_bus(f"fu{fu}_mode", 1)[0]
    out_map = top.instantiate(unit, port_map, prefix=f"u_fu{fu}/")
    return [out_map[f"s{bit}"] for bit in range(width)]


def _build_register(
    top: Netlist,
    index: int,
    mux: MuxSpec,
    width: int,
    pad_nets: Dict[int, List[str]],
    fu_nets: Dict[int, List[str]],
    register_nets: Dict[int, List[str]],
    control_bus,
) -> None:
    def resolve(source: SourceRef, bit: int) -> str:
        return _resolve_source(source, bit, pad_nets, fu_nets, register_nets)

    data_bus = _build_mux_instance(
        top, f"reg{index}", f"reg{index}_sel", mux, width,
        resolve, control_bus,
    )
    bank = build_register(width, with_enable=True)
    port_map: Dict[str, str] = {"en": control_bus(f"reg{index}_en", 1)[0]}
    for bit in range(width):
        port_map[f"d{bit}"] = data_bus[bit]
    # Force the flop outputs onto the pre-declared net names the FU
    # muxes already reference.
    output_map = {
        f"q{bit}": register_nets[index][bit] for bit in range(width)
    }
    top.instantiate(bank, port_map, prefix=f"u_reg{index}/", output_map=output_map)
