"""Random stimulus generation and bit-lane packing.

The simulator evaluates all input vectors simultaneously: vector ``i``
lives in bit ``i % 64`` of word ``i // 64`` of every net's value
array. This module packs and unpacks that representation and generates
the seeded random vectors standing in for the paper's Quartus ``.vwf``
waveform file (1000 random input vectors).

Packing and unpacking are vectorized through ``np.packbits`` /
``np.unpackbits`` (little bit order): reinterpreting the ``uint64``
words as bytes matches the lane numbering exactly on little-endian
hosts, with a portable scalar fallback elsewhere.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import SimulationError

_LITTLE_ENDIAN = sys.byteorder == "little"


def n_words(n_lanes: int) -> int:
    if n_lanes < 1:
        raise SimulationError(f"need at least one lane, got {n_lanes}")
    return (n_lanes + 63) // 64


def pack_values(bits: Sequence[bool]) -> np.ndarray:
    """Pack per-lane booleans into a uint64 word array."""
    words = n_words(len(bits))
    if not _LITTLE_ENDIAN:
        packed = np.zeros(words, dtype=np.uint64)
        for lane, bit in enumerate(bits):
            if bit:
                packed[lane // 64] |= np.uint64(1) << np.uint64(lane % 64)
        return packed
    lanes = np.zeros(words * 64, dtype=np.uint8)
    lanes[: len(bits)] = np.asarray(bits, dtype=np.uint8)
    return np.packbits(lanes, bitorder="little").view(np.uint64)


def unpack_values(words: np.ndarray, lanes: int) -> List[bool]:
    """Inverse of :func:`pack_values`."""
    if not _LITTLE_ENDIAN:
        return [
            bool((int(words[lane // 64]) >> (lane % 64)) & 1)
            for lane in range(lanes)
        ]
    raw = np.ascontiguousarray(words, dtype=np.uint64).view(np.uint8)
    return np.unpackbits(raw, bitorder="little")[:lanes].astype(bool).tolist()


def unpack_lane_values(
    bit_words: Sequence[np.ndarray], lanes: int
) -> np.ndarray:
    """Per-lane integer values of a packed bus.

    ``bit_words[k]`` holds bit ``k`` of every lane (a ``uint64`` word
    array as produced by :func:`pack_values`); the result is a
    ``uint64`` array of length ``lanes`` with each lane's bus value.
    This is the vectorized primary-output extraction of the simulator.
    """
    if not bit_words:
        return np.zeros(lanes, dtype=np.uint64)
    if len(bit_words) > 64:
        # The uint64 weights below wrap silently past bit 63.
        raise SimulationError(
            f"bus too wide to unpack: {len(bit_words)} bits (max 64)"
        )
    if _LITTLE_ENDIAN:
        stacked = np.stack(
            [np.ascontiguousarray(w, dtype=np.uint64) for w in bit_words]
        ).view(np.uint8)
        bits = np.unpackbits(stacked, axis=1, bitorder="little")[:, :lanes]
    else:
        bits = np.zeros((len(bit_words), lanes), dtype=np.uint8)
        for k, word_array in enumerate(bit_words):
            for lane in range(lanes):
                bits[k, lane] = (int(word_array[lane // 64]) >> (lane % 64)) & 1
    weights = np.left_shift(
        np.uint64(1), np.arange(len(bit_words), dtype=np.uint64)
    )
    return (bits.astype(np.uint64) * weights[:, None]).sum(
        axis=0, dtype=np.uint64
    )


def broadcast(value: bool, lanes: int) -> np.ndarray:
    """All lanes equal to ``value`` (used for control signals)."""
    words = np.zeros(n_words(lanes), dtype=np.uint64)
    if value:
        words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        _mask_tail(words, lanes)
    return words


def _mask_tail(words: np.ndarray, lanes: int) -> None:
    tail = lanes % 64
    if tail:
        words[-1] &= (np.uint64(1) << np.uint64(tail)) - np.uint64(1)


def popcount(words: np.ndarray) -> int:
    """Total set bits across a word array."""
    return int(np.bitwise_count(words).sum())


@dataclass
class VectorSet:
    """Packed random stimulus for one simulation run."""

    lanes: int
    #: Per pad-bus position: per bit: packed lane values.
    pads: Dict[int, List[np.ndarray]]

    def pad_words(self, position: int, bit: int) -> np.ndarray:
        return self.pads[position][bit]

    def lane_value(self, position: int, lane: int) -> int:
        """Integer value of pad ``position`` in one lane."""
        bits = self.pads[position]
        value = 0
        for index, words in enumerate(bits):
            if (int(words[lane // 64]) >> (lane % 64)) & 1:
                value |= 1 << index
        return value

    def lane_values(self, position: int) -> np.ndarray:
        """Integer value of pad ``position`` in every lane at once."""
        return unpack_lane_values(self.pads[position], self.lanes)


def random_vectors(
    n_pads: int, width: int, lanes: int, seed: int = 0
) -> VectorSet:
    """Uniform random input vectors (the ``.vwf`` substitute)."""
    rng = np.random.default_rng(seed)
    words = n_words(lanes)
    pads: Dict[int, List[np.ndarray]] = {}
    for position in range(n_pads):
        bits = []
        for _ in range(width):
            data = rng.integers(
                0, np.iinfo(np.uint64).max, size=words,
                dtype=np.uint64, endpoint=True,
            )
            _mask_tail(data, lanes)
            bits.append(data)
        pads[position] = bits
    return VectorSet(lanes, pads)
