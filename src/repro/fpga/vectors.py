"""Random stimulus generation and bit-lane packing.

The simulator evaluates all input vectors simultaneously: vector ``i``
lives in bit ``i % 64`` of word ``i // 64`` of every net's value
array. This module packs and unpacks that representation and generates
the seeded random vectors standing in for the paper's Quartus ``.vwf``
waveform file (1000 random input vectors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import SimulationError


def n_words(n_lanes: int) -> int:
    if n_lanes < 1:
        raise SimulationError(f"need at least one lane, got {n_lanes}")
    return (n_lanes + 63) // 64


def pack_values(bits: Sequence[bool]) -> np.ndarray:
    """Pack per-lane booleans into a uint64 word array."""
    words = np.zeros(n_words(len(bits)), dtype=np.uint64)
    for lane, bit in enumerate(bits):
        if bit:
            words[lane // 64] |= np.uint64(1) << np.uint64(lane % 64)
    return words


def unpack_values(words: np.ndarray, lanes: int) -> List[bool]:
    """Inverse of :func:`pack_values`."""
    return [
        bool((int(words[lane // 64]) >> (lane % 64)) & 1)
        for lane in range(lanes)
    ]


def broadcast(value: bool, lanes: int) -> np.ndarray:
    """All lanes equal to ``value`` (used for control signals)."""
    words = np.zeros(n_words(lanes), dtype=np.uint64)
    if value:
        words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        _mask_tail(words, lanes)
    return words


def _mask_tail(words: np.ndarray, lanes: int) -> None:
    tail = lanes % 64
    if tail:
        words[-1] &= (np.uint64(1) << np.uint64(tail)) - np.uint64(1)


def popcount(words: np.ndarray) -> int:
    """Total set bits across a word array."""
    return int(np.bitwise_count(words).sum())


@dataclass
class VectorSet:
    """Packed random stimulus for one simulation run."""

    lanes: int
    #: Per pad-bus position: per bit: packed lane values.
    pads: Dict[int, List[np.ndarray]]

    def pad_words(self, position: int, bit: int) -> np.ndarray:
        return self.pads[position][bit]

    def lane_value(self, position: int, lane: int) -> int:
        """Integer value of pad ``position`` in one lane."""
        bits = self.pads[position]
        value = 0
        for index, words in enumerate(bits):
            if (int(words[lane // 64]) >> (lane % 64)) & 1:
                value |= 1 << index
        return value


def random_vectors(
    n_pads: int, width: int, lanes: int, seed: int = 0
) -> VectorSet:
    """Uniform random input vectors (the ``.vwf`` substitute)."""
    rng = np.random.default_rng(seed)
    words = n_words(lanes)
    pads: Dict[int, List[np.ndarray]] = {}
    for position in range(n_pads):
        bits = []
        for _ in range(width):
            data = rng.integers(
                0, np.iinfo(np.uint64).max, size=words,
                dtype=np.uint64, endpoint=True,
            )
            _mask_tail(data, lanes)
            bits.append(data)
        pads[position] = bits
    return VectorSet(lanes, pads)
