"""Cyclone II-like device model.

Constants roughly matching Altera's Cyclone II (90 nm, 4-input LUTs,
1.2 V core): per-level logic+routing delays that land combinational
paths of 15-20 LUT levels in the paper's 20-27 ns clock-period range,
and effective capacitances dominated by routing. Absolute watts are
explicitly out of scope (DESIGN.md); the model's job is to convert
toggle counts into power *consistently* for both binders.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceModel:
    """Electrical and timing constants of the target FPGA."""

    name: str = "cyclone2-like"
    lut_inputs: int = 4
    vdd_v: float = 1.2
    #: Combinational cell delay per LUT level (ns).
    lut_delay_ns: float = 0.45
    #: Average routing delay per level (ns).
    routing_delay_ns: float = 0.95
    #: Register clock-to-Q plus setup (ns).
    register_overhead_ns: float = 1.2
    #: Effective switched capacitance per LUT output, incl. routing (fF).
    c_lut_ff: float = 180.0
    #: Effective switched capacitance per register output (fF).
    c_register_ff: float = 120.0
    #: Effective switched capacitance per I/O pad (fF).
    c_pad_ff: float = 900.0

    def clock_period_ns(self, depth: int) -> float:
        """Clock period for a ``depth``-level critical path."""
        levels = max(1, depth)
        return (
            self.register_overhead_ns
            + levels * (self.lut_delay_ns + self.routing_delay_ns)
        )

    def switch_energy_j(self, capacitance_ff: float) -> float:
        """Energy of one output transition: ``0.5 * C * Vdd^2``."""
        return 0.5 * capacitance_ff * 1e-15 * self.vdd_v ** 2


#: The default device every bench uses.
CYCLONE_II_LIKE = DeviceModel()
