"""K-feasible cut enumeration and cone collapsing.

A *cut* of node ``n`` is a set of nets (leaves) such that every path
from a source to ``n`` passes through a leaf; a cut with at most ``K``
leaves can be implemented by one K-input LUT computing the collapsed
cone function. Enumeration follows Cong-Wu-Ding [8]: the cut set of a
node is the cross-merge of its fanins' cut sets plus the trivial cut
``{n}``, with dominated cuts pruned and the list truncated to a
priority cap (smallest, shallowest cuts first).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MappingError
from repro.netlist.gates import Netlist, TruthTable

#: A cut is a frozen set of leaf net names.
Cut = FrozenSet[str]

#: Default bound on cuts kept per node.
DEFAULT_CUT_CAP = 8


def enumerate_cuts(
    netlist: Netlist,
    k: int = 4,
    cap: int = DEFAULT_CUT_CAP,
    depths: Optional[Dict[str, int]] = None,
) -> Dict[str, List[Cut]]:
    """All (pruned) K-feasible cuts for every net of ``netlist``.

    Each node's list includes its trivial cut ``{node}`` (needed when
    the node serves as a leaf of a fanout's cut); callers selecting an
    implementation cut for the node itself must skip it. Lists are
    sorted by ``(estimated depth, size)`` and truncated to ``cap``
    entries, with the trivial cut always retained.

    ``depths`` optionally supplies unit-delay levels used for the depth
    estimate; when omitted, :meth:`Netlist.levels` is used.
    """
    if k < 2:
        raise MappingError(f"LUT input count must be >= 2, got {k}")
    if cap < 1:
        raise MappingError(f"cut cap must be >= 1, got {cap}")
    levels = depths if depths is not None else netlist.levels()

    def depth_estimate(cut: Cut) -> int:
        return max((levels.get(leaf, 0) for leaf in cut), default=0)

    cuts: Dict[str, List[Cut]] = {}
    for net in list(netlist.inputs) + list(netlist.latches):
        cuts[net] = [frozenset((net,))]

    for net in netlist.topological_order():
        gate = netlist.gates[net]
        trivial = frozenset((net,))
        if not gate.inputs:
            cuts[net] = [trivial]
            continue
        fanin_lists = [cuts[name] for name in gate.inputs]
        merged = _cross_merge(fanin_lists, k)
        merged = _prune_dominated(merged)
        merged.sort(key=lambda c: (depth_estimate(c), len(c)))
        cuts[net] = [trivial] + merged[: cap - 1] if cap > 1 else [trivial]
    return cuts


def _cross_merge(fanin_lists: Sequence[List[Cut]], k: int) -> List[Cut]:
    """Pairwise-merge fanin cut lists, keeping unions of size <= k."""
    current: List[Cut] = [frozenset()]
    for cut_list in fanin_lists:
        next_level: List[Cut] = []
        seen = set()
        for base in current:
            for cut in cut_list:
                union = base | cut
                if len(union) <= k and union not in seen:
                    seen.add(union)
                    next_level.append(union)
        if not next_level:
            return []
        current = next_level
    return current


def _prune_dominated(cuts: List[Cut]) -> List[Cut]:
    """Drop cuts that are strict supersets of another cut."""
    ordered = sorted(cuts, key=len)
    kept: List[Cut] = []
    for cut in ordered:
        if any(existing <= cut for existing in kept):
            continue
        kept.append(cut)
    return kept


def cone_nodes(netlist: Netlist, root: str, leaves: Cut) -> List[str]:
    """Gate outputs inside the cone of ``root`` bounded by ``leaves``.

    Returned in topological (leaves-to-root) order; ``root`` is last.
    Raises :class:`MappingError` if the cone escapes through a source
    that is not a leaf (i.e. ``leaves`` is not actually a cut).
    """
    if root in leaves:
        return []
    order: List[str] = []
    state: Dict[str, int] = {}
    stack: List[Tuple[str, int]] = [(root, 0)]
    while stack:
        net, phase = stack.pop()
        if phase == 0:
            if net in state:
                continue
            state[net] = 0
            stack.append((net, 1))
            gate = netlist.gates.get(net)
            if gate is None:
                raise MappingError(
                    f"cone of {root!r} reaches source {net!r} "
                    f"outside cut {sorted(leaves)}"
                )
            for fanin in gate.inputs:
                if fanin not in leaves and fanin not in state:
                    stack.append((fanin, 0))
                elif fanin not in leaves and state.get(fanin) == 0:
                    raise MappingError(f"cyclic cone at {fanin!r}")
        else:
            state[net] = 1
            order.append(net)
    return order


def cone_function(
    netlist: Netlist, root: str, leaves: Sequence[str]
) -> TruthTable:
    """Collapse the cone of ``root`` over ``leaves`` into a truth table.

    ``leaves`` fixes the input ordering of the result (leaf ``i`` is
    input ``i``). Uses bit-parallel evaluation: each net's value over
    all ``2**len(leaves)`` leaf assignments is a single integer mask.
    """
    n = len(leaves)
    if n > 16:
        raise MappingError(f"cone collapse limited to 16 leaves, got {n}")
    width = 1 << n
    full = (1 << width) - 1

    masks: Dict[str, int] = {}
    for i, leaf in enumerate(leaves):
        mask = 0
        for combo in range(width):
            if (combo >> i) & 1:
                mask |= 1 << combo
        masks[leaf] = mask

    if root in masks:
        return TruthTable(n, masks[root])

    for net in cone_nodes(netlist, root, frozenset(leaves)):
        gate = netlist.gates[net]
        out_mask = 0
        table = gate.table
        fanin_masks = [masks[name] for name in gate.inputs]
        for combo in range(1 << table.n_inputs):
            if not (table.bits >> combo) & 1:
                continue
            term = full
            for pos, fanin_mask in enumerate(fanin_masks):
                if (combo >> pos) & 1:
                    term &= fanin_mask
                else:
                    term &= full ^ fanin_mask
                if not term:
                    break
            out_mask |= term
        masks[net] = out_mask
    return TruthTable(n, masks[root])
