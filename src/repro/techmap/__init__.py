"""FPGA technology mapping (GlitchMap [6] reimplementation).

K-feasible cut enumeration with dominance pruning (Cong-Wu-Ding [8])
and a glitch-aware low-power LUT mapper that selects, per node, the cut
with the lowest effective switching activity under the unit-delay model
of Section 4. The mapper is the connection between the high-level
binding and the gate level: the paper's dynamic power estimation "is
accomplished using a low-power FPGA technology mapper [6]".

Two implementations share the algorithm (see docs/techmap.md): the
compiled fast path (:mod:`repro.techmap.compile` — interned net ids,
bitmask cuts, NPN-keyed cone memoization, batched numpy evaluation)
and the seed mapper, kept verbatim behind ``effort="reference"`` as
the differential-testing oracle. ``effort="exhaustive"`` lifts the
per-node evaluation budget.
"""

from repro.techmap.compile import (
    ConeMemo,
    compile_map_netlist,
    enumerate_cuts_ids,
    npn_key,
)
from repro.techmap.cuts import Cut, cone_function, enumerate_cuts
from repro.techmap.mapper import (
    MAP_EFFORTS,
    MapResult,
    map_netlist,
)

__all__ = [
    "ConeMemo",
    "Cut",
    "MAP_EFFORTS",
    "MapResult",
    "compile_map_netlist",
    "cone_function",
    "enumerate_cuts",
    "enumerate_cuts_ids",
    "map_netlist",
    "npn_key",
]
