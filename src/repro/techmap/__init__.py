"""FPGA technology mapping (GlitchMap [6] reimplementation).

K-feasible cut enumeration with dominance pruning (Cong-Wu-Ding [8])
and a glitch-aware low-power LUT mapper that selects, per node, the cut
with the lowest effective switching activity under the unit-delay model
of Section 4. The mapper is the connection between the high-level
binding and the gate level: the paper's dynamic power estimation "is
accomplished using a low-power FPGA technology mapper [6]".
"""

from repro.techmap.cuts import Cut, cone_function, enumerate_cuts
from repro.techmap.mapper import MapResult, map_netlist

__all__ = ["Cut", "cone_function", "enumerate_cuts", "MapResult", "map_netlist"]
