"""Glitch-aware low-power LUT mapping.

Reimplementation of the mapping strategy of GlitchMap [6] as described
in Section 4 of the paper:

1. enumerate K-feasible cuts per node (:mod:`repro.techmap.cuts`);
2. for every candidate cut, collapse the cone into a truth table,
   compute the cut's output signal probability (weighted averaging over
   leaf probabilities [12]) and its per-time-step switching activity
   under the unit-delay model, where the leaf arrival times are the
   depths of the already-mapped leaves;
3. select per node the cut minimizing *SA-flow* — the cut's own
   effective activity plus the fanout-shared SA-flow of its leaves.
   SA-flow is the switching-activity analogue of the classic area-flow
   heuristic and approximates the total SA of the final cover, so the
   mapper neither duplicates logic (pure per-node SA selection would
   pick tiny cuts everywhere) nor ignores glitching. Ties break toward
   lower depth, then lower area-flow;
4. cover the netlist from the outputs with the selected cuts; the sum
   of the selected cuts' activities is the netlist ``SA`` of
   Equation (3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MappingError
from repro.activity.glitch import (
    DEFAULT_INPUT_ACTIVITY,
    GlitchWaveform,
    source_waveform,
)
from repro.activity.probability import (
    DEFAULT_INPUT_PROBABILITY,
    gate_output_probability,
)
from repro.activity.transition import (
    clamp_activity,
    held_distribution,
    mixed_joint_matrix,
    pair_distribution,
    switching_activity,
)
from repro.netlist.gates import GateType, Netlist, TruthTable
from repro.techmap.cuts import (
    DEFAULT_CUT_CAP,
    Cut,
    cone_function,
    enumerate_cuts,
)

#: How many candidate cuts get a full SA evaluation per node.
DEFAULT_SA_EVAL_LIMIT = 5


@dataclass
class MapResult:
    """Result of mapping a netlist to K-input LUTs."""

    netlist: Netlist
    k: int
    area: int
    depth: int
    total_sa: float
    functional_sa: float
    glitch_sa: float
    lut_sa: Dict[str, float] = field(default_factory=dict)
    waveforms: Dict[str, GlitchWaveform] = field(default_factory=dict)
    selected_cuts: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def glitch_fraction(self) -> float:
        if self.total_sa <= 0.0:
            return 0.0
        return self.glitch_sa / self.total_sa


def map_netlist(
    netlist: Netlist,
    k: int = 4,
    cut_cap: int = DEFAULT_CUT_CAP,
    sa_eval_limit: int = DEFAULT_SA_EVAL_LIMIT,
    glitch_aware: bool = True,
    input_probs: Optional[Mapping[str, float]] = None,
    input_activities: Optional[Mapping[str, float]] = None,
    default_probability: float = DEFAULT_INPUT_PROBABILITY,
    default_activity: float = DEFAULT_INPUT_ACTIVITY,
) -> MapResult:
    """Map ``netlist`` to K-input LUTs minimizing glitch-aware SA.

    With ``glitch_aware=False`` the mapper ranks cuts by the zero-delay
    switching activity instead — the conventional low-power mapping the
    paper improves on; the resulting LUT network shape is comparable,
    which makes the pair a clean ablation.
    """
    cuts = enumerate_cuts(netlist, k, cut_cap)
    fanouts = {
        net: max(1, len(readers))
        for net, readers in netlist.fanout_map().items()
    }

    waveforms: Dict[str, GlitchWaveform] = {}
    depths: Dict[str, int] = {}
    sa_flow: Dict[str, float] = {}
    area_flow: Dict[str, float] = {}
    for net in list(netlist.inputs) + list(netlist.latches):
        prob = (input_probs or {}).get(net, default_probability)
        act = (input_activities or {}).get(net, default_activity)
        waveforms[net] = source_waveform(prob, act)
        depths[net] = 0
        sa_flow[net] = 0.0
        area_flow[net] = 0.0

    chosen: Dict[str, Tuple[Tuple[str, ...], TruthTable]] = {}
    for net in netlist.topological_order():
        gate = netlist.gates[net]
        if not gate.inputs:
            value = gate.table.is_constant()
            if value is None:
                raise MappingError(f"zero-input non-constant gate {net!r}")
            waveforms[net] = GlitchWaveform(1.0 if value else 0.0, {}, 0)
            depths[net] = 0
            sa_flow[net] = 0.0
            area_flow[net] = 0.0
            chosen[net] = ((), gate.table)
            continue
        candidates = [c for c in cuts[net] if c != frozenset((net,))]
        if not candidates:
            raise MappingError(f"no implementable cut for node {net!r}")
        best = None
        for cut in candidates[: max(1, sa_eval_limit)]:
            leaves = tuple(sorted(cut))
            table = cone_function(netlist, net, leaves)
            wave, depth = _evaluate_cut(
                table, [waveforms[l] for l in leaves],
                [depths[l] for l in leaves], glitch_aware,
            )
            flow = wave.total() + sum(
                sa_flow[l] / fanouts[l] for l in leaves
            )
            af = 1.0 + sum(area_flow[l] / fanouts[l] for l in leaves)
            cost = (flow, depth, af)
            if best is None or cost < best[0]:
                best = (cost, leaves, table, wave, depth)
        (flow, depth, af), leaves, table, wave, depth = best
        waveforms[net] = wave
        depths[net] = depth
        sa_flow[net] = flow
        area_flow[net] = af
        chosen[net] = (leaves, table)

    mapped, lut_sa = _cover(netlist, chosen, waveforms)
    total = sum(lut_sa.values())
    functional = sum(
        waveforms[net].functional() for net in lut_sa
    )
    depth = max(
        (depths.get(net, 0) for net in _root_nets(netlist)), default=0
    )
    return MapResult(
        netlist=mapped,
        k=k,
        area=mapped.num_gates(),
        depth=depth,
        total_sa=total,
        functional_sa=functional,
        glitch_sa=total - functional,
        lut_sa=lut_sa,
        waveforms=waveforms,
        selected_cuts={net: leaves for net, (leaves, _) in chosen.items()},
    )


def _evaluate_cut(
    table: TruthTable,
    leaf_waves: Sequence[GlitchWaveform],
    leaf_depths: Sequence[int],
    glitch_aware: bool,
) -> Tuple[GlitchWaveform, int]:
    """Waveform and depth of a LUT implementing ``table`` over leaves."""
    depth = 1 + max(leaf_depths, default=0)
    probs = [w.probability for w in leaf_waves]
    out_prob = gate_output_probability(table, probs)
    if not glitch_aware:
        acts = [clamp_activity(w.probability, w.total()) for w in leaf_waves]
        activity = switching_activity(table, probs, acts)
        activity = clamp_activity(out_prob, activity)
        steps = {depth: activity} if activity > 0.0 else {}
        return GlitchWaveform(out_prob, steps, depth), depth

    column = np.array(table.output_column(), dtype=np.float64)
    differs = column[:, None] != column[None, :]
    steps: Dict[int, float] = {}
    trigger_times = sorted({t for w in leaf_waves for t in w.steps})
    for t in trigger_times:
        joints = []
        for wave in leaf_waves:
            s_t = wave.steps.get(t, 0.0)
            if s_t > 0.0:
                s_t = clamp_activity(wave.probability, s_t)
                joints.append(pair_distribution(wave.probability, s_t))
            else:
                joints.append(held_distribution(wave.probability))
        matrix = mixed_joint_matrix(table.n_inputs, joints)
        activity = float(matrix[differs].sum())
        if activity > 0.0:
            steps[t + 1] = clamp_activity(out_prob, activity)
    return GlitchWaveform(out_prob, steps, depth), depth


def _root_nets(netlist: Netlist) -> List[str]:
    """Nets that must be available in the mapped netlist."""
    roots: List[str] = []
    for net in netlist.outputs:
        roots.append(net)
    for latch in netlist.latches.values():
        roots.append(latch.data)
        if latch.enable is not None:
            roots.append(latch.enable)
    return roots


def _cover(
    netlist: Netlist,
    chosen: Dict[str, Tuple[Tuple[str, ...], TruthTable]],
    waveforms: Dict[str, GlitchWaveform],
) -> Tuple[Netlist, Dict[str, float]]:
    """Instantiate LUTs for the cuts reachable from the roots."""
    mapped = Netlist(netlist.name + "_mapped")
    for net in netlist.inputs:
        mapped.add_input(net)
    for latch in netlist.latches.values():
        mapped.add_latch(latch.data, latch.output, latch.init, latch.enable)

    required: List[str] = []
    seen = set()
    for root in _root_nets(netlist):
        if root not in seen:
            seen.add(root)
            required.append(root)

    lut_sa: Dict[str, float] = {}
    index = 0
    while index < len(required):
        net = required[index]
        index += 1
        if netlist.is_source(net):
            continue
        if net not in chosen:
            raise MappingError(f"required net {net!r} was never mapped")
        leaves, table = chosen[net]
        gate_type = GateType.LUT if leaves else table.classify()
        mapped.add_gate(table, leaves, net, gate_type)
        lut_sa[net] = waveforms[net].total()
        for leaf in leaves:
            if leaf not in seen:
                seen.add(leaf)
                required.append(leaf)

    for net in netlist.outputs:
        mapped.set_output(net)
    mapped.validate()
    return mapped, lut_sa
