"""Glitch-aware low-power LUT mapping.

Reimplementation of the mapping strategy of GlitchMap [6] as described
in Section 4 of the paper:

1. enumerate K-feasible cuts per node (:mod:`repro.techmap.cuts`);
2. for every candidate cut, collapse the cone into a truth table,
   compute the cut's output signal probability (weighted averaging over
   leaf probabilities [12]) and its per-time-step switching activity
   under the unit-delay model, where the leaf arrival times are the
   depths of the already-mapped leaves;
3. select per node the cut minimizing *SA-flow* — the cut's own
   effective activity plus the fanout-shared SA-flow of its leaves.
   SA-flow is the switching-activity analogue of the classic area-flow
   heuristic and approximates the total SA of the final cover, so the
   mapper neither duplicates logic (pure per-node SA selection would
   pick tiny cuts everywhere) nor ignores glitching. Ties break toward
   lower depth, then lower area-flow;
4. cover the netlist from the outputs with the selected cuts; the sum
   of the selected cuts' activities is the netlist ``SA`` of
   Equation (3).

Three effort levels share this algorithm (see :data:`MAP_EFFORTS` and
docs/techmap.md):

* ``"fast"`` (default) — the compiled mapper
  (:mod:`repro.techmap.compile`): interned net ids, bitmask cut
  enumeration, NPN-keyed memoization of cone evaluations, and batched
  numpy SA evaluation. Bit-identical results to ``"reference"``,
  several times faster.
* ``"exhaustive"`` — the compiled mapper with the per-node SA
  evaluation budget lifted: every surviving cut is evaluated instead
  of the first :data:`DEFAULT_SA_EVAL_LIMIT`.
* ``"reference"`` — the original mapper, kept verbatim as the
  differential-testing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MappingError
from repro.activity.glitch import (
    DEFAULT_INPUT_ACTIVITY,
    GlitchWaveform,
    source_waveform,
)
from repro.activity.probability import (
    DEFAULT_INPUT_PROBABILITY,
    gate_output_probability,
)
from repro.activity.transition import (
    clamp_activity,
    held_distribution,
    mixed_joint_matrix,
    pair_distribution,
    switching_activity,
)
from repro.netlist.gates import Gate, GateType, Netlist, TruthTable
from repro.techmap.compile import (
    ConeMemo,
    HashedKey,
    compile_map_netlist,
    batch_evaluate,
    enumerate_cuts_ids,
    npn_key,
)
from repro.techmap.cuts import (
    DEFAULT_CUT_CAP,
    Cut,
    cone_function,
    enumerate_cuts,
)

#: How many candidate cuts get a full SA evaluation per node.
DEFAULT_SA_EVAL_LIMIT = 5

#: Valid mapper effort levels.
MAP_EFFORTS = ("fast", "exhaustive", "reference")


@dataclass
class MapResult:
    """Result of mapping a netlist to K-input LUTs."""

    netlist: Netlist
    k: int
    area: int
    depth: int
    total_sa: float
    functional_sa: float
    glitch_sa: float
    lut_sa: Dict[str, float] = field(default_factory=dict)
    waveforms: Dict[str, GlitchWaveform] = field(default_factory=dict)
    selected_cuts: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def glitch_fraction(self) -> float:
        if self.total_sa <= 0.0:
            return 0.0
        return self.glitch_sa / self.total_sa


def map_netlist(
    netlist: Netlist,
    k: int = 4,
    cut_cap: int = DEFAULT_CUT_CAP,
    sa_eval_limit: int = DEFAULT_SA_EVAL_LIMIT,
    glitch_aware: bool = True,
    input_probs: Optional[Mapping[str, float]] = None,
    input_activities: Optional[Mapping[str, float]] = None,
    default_probability: float = DEFAULT_INPUT_PROBABILITY,
    default_activity: float = DEFAULT_INPUT_ACTIVITY,
    effort: str = "fast",
    cone_memo: Optional[ConeMemo] = None,
) -> MapResult:
    """Map ``netlist`` to K-input LUTs minimizing glitch-aware SA.

    With ``glitch_aware=False`` the mapper ranks cuts by the zero-delay
    switching activity instead — the conventional low-power mapping the
    paper improves on; the resulting LUT network shape is comparable,
    which makes the pair a clean ablation.

    ``effort`` selects the implementation (see module docstring):
    ``"fast"`` and ``"reference"`` produce bit-identical results;
    ``"exhaustive"`` evaluates every surviving cut per node.
    ``cone_memo`` optionally carries memoized cone evaluations across
    calls (the flow's techmap stage shares one per elaborated netlist
    via the artifact cache); it is only consulted for exact matches,
    so results never depend on its state.
    """
    if effort not in MAP_EFFORTS:
        raise MappingError(
            f"unknown mapper effort {effort!r}; choose from {MAP_EFFORTS}"
        )
    if effort == "reference":
        return _map_reference(
            netlist, k, cut_cap, sa_eval_limit, glitch_aware, input_probs,
            input_activities, default_probability, default_activity,
        )
    return _map_fast(
        netlist, k, cut_cap, sa_eval_limit, glitch_aware, input_probs,
        input_activities, default_probability, default_activity,
        exhaustive=(effort == "exhaustive"),
        memo=cone_memo if cone_memo is not None else ConeMemo(),
    )


# ---------------------------------------------------------------------------
# The reference mapper — the seed implementation, kept verbatim as the
# differential-testing oracle for the compiled fast path.
# ---------------------------------------------------------------------------


def _map_reference(
    netlist: Netlist,
    k: int = 4,
    cut_cap: int = DEFAULT_CUT_CAP,
    sa_eval_limit: int = DEFAULT_SA_EVAL_LIMIT,
    glitch_aware: bool = True,
    input_probs: Optional[Mapping[str, float]] = None,
    input_activities: Optional[Mapping[str, float]] = None,
    default_probability: float = DEFAULT_INPUT_PROBABILITY,
    default_activity: float = DEFAULT_INPUT_ACTIVITY,
) -> MapResult:
    cuts = enumerate_cuts(netlist, k, cut_cap)
    fanouts = {
        net: max(1, len(readers))
        for net, readers in netlist.fanout_map().items()
    }

    waveforms: Dict[str, GlitchWaveform] = {}
    depths: Dict[str, int] = {}
    sa_flow: Dict[str, float] = {}
    area_flow: Dict[str, float] = {}
    for net in list(netlist.inputs) + list(netlist.latches):
        prob = (input_probs or {}).get(net, default_probability)
        act = (input_activities or {}).get(net, default_activity)
        waveforms[net] = source_waveform(prob, act)
        depths[net] = 0
        sa_flow[net] = 0.0
        area_flow[net] = 0.0

    chosen: Dict[str, Tuple[Tuple[str, ...], TruthTable]] = {}
    for net in netlist.topological_order():
        gate = netlist.gates[net]
        if not gate.inputs:
            value = gate.table.is_constant()
            if value is None:
                raise MappingError(f"zero-input non-constant gate {net!r}")
            waveforms[net] = GlitchWaveform(1.0 if value else 0.0, {}, 0)
            depths[net] = 0
            sa_flow[net] = 0.0
            area_flow[net] = 0.0
            chosen[net] = ((), gate.table)
            continue
        candidates = [c for c in cuts[net] if c != frozenset((net,))]
        if not candidates:
            raise MappingError(_no_cut_message(net, k, cut_cap))
        best = None
        for cut in candidates[: max(1, sa_eval_limit)]:
            leaves = tuple(sorted(cut))
            table = cone_function(netlist, net, leaves)
            wave, depth = _evaluate_cut(
                table, [waveforms[l] for l in leaves],
                [depths[l] for l in leaves], glitch_aware,
            )
            flow = wave.total() + sum(
                sa_flow[l] / fanouts[l] for l in leaves
            )
            af = 1.0 + sum(area_flow[l] / fanouts[l] for l in leaves)
            cost = (flow, depth, af)
            if best is None or cost < best[0]:
                best = (cost, leaves, table, wave, depth)
        (flow, depth, af), leaves, table, wave, depth = best
        waveforms[net] = wave
        depths[net] = depth
        sa_flow[net] = flow
        area_flow[net] = af
        chosen[net] = (leaves, table)

    return _finish(netlist, k, chosen, waveforms, depths)


def _evaluate_cut(
    table: TruthTable,
    leaf_waves: Sequence[GlitchWaveform],
    leaf_depths: Sequence[int],
    glitch_aware: bool,
) -> Tuple[GlitchWaveform, int]:
    """Waveform and depth of a LUT implementing ``table`` over leaves."""
    depth = 1 + max(leaf_depths, default=0)
    probs = [w.probability for w in leaf_waves]
    out_prob = gate_output_probability(table, probs)
    if not glitch_aware:
        acts = [clamp_activity(w.probability, w.total()) for w in leaf_waves]
        activity = switching_activity(table, probs, acts)
        activity = clamp_activity(out_prob, activity)
        steps = {depth: activity} if activity > 0.0 else {}
        return GlitchWaveform(out_prob, steps, depth), depth

    column = np.array(table.output_column(), dtype=np.float64)
    differs = column[:, None] != column[None, :]
    steps: Dict[int, float] = {}
    trigger_times = sorted({t for w in leaf_waves for t in w.steps})
    for t in trigger_times:
        joints = []
        for wave in leaf_waves:
            s_t = wave.steps.get(t, 0.0)
            if s_t > 0.0:
                s_t = clamp_activity(wave.probability, s_t)
                joints.append(pair_distribution(wave.probability, s_t))
            else:
                joints.append(held_distribution(wave.probability))
        matrix = mixed_joint_matrix(table.n_inputs, joints)
        activity = float(matrix[differs].sum())
        if activity > 0.0:
            steps[t + 1] = clamp_activity(out_prob, activity)
    return GlitchWaveform(out_prob, steps, depth), depth


# ---------------------------------------------------------------------------
# The compiled fast path.
# ---------------------------------------------------------------------------


class _Candidate:
    """One prepared (node, cut) evaluation."""

    __slots__ = (
        "leaf_ids", "table", "depth", "shift", "stats",
        "exact_key", "value",
    )

    def __init__(self, leaf_ids, table, depth, shift, stats,
                 exact_key, value):
        self.leaf_ids = leaf_ids
        self.table = table
        self.depth = depth
        self.shift = shift
        self.stats = stats
        self.exact_key = exact_key
        self.value = value


def _map_fast(
    netlist: Netlist,
    k: int,
    cut_cap: int,
    sa_eval_limit: int,
    glitch_aware: bool,
    input_probs: Optional[Mapping[str, float]],
    input_activities: Optional[Mapping[str, float]],
    default_probability: float,
    default_activity: float,
    exhaustive: bool,
    memo: ConeMemo,
) -> MapResult:
    cm = compile_map_netlist(netlist)
    candidates_by_id = enumerate_cuts_ids(cm, k, cut_cap)
    n_nets = len(cm.names)

    waveforms: Dict[str, GlitchWaveform] = {}
    depths: Dict[str, int] = {}
    wave_of: List[Optional[GlitchWaveform]] = [None] * n_nets
    depth_of: List[int] = [0] * n_nets
    sa_flow: List[float] = [0.0] * n_nets
    area_flow: List[float] = [0.0] * n_nets
    #: Per-net normalization-ready signature of its waveform:
    #: (probability, ascending (time, s) tuple, earliest step time,
    #: interned (probability, steps) pair reused by shift-0 stats).
    sig_of: List[Optional[Tuple[float, Tuple, int, Tuple]]] = (
        [None] * n_nets
    )

    def _settle(net_id: int, wave: GlitchWaveform) -> None:
        # Steps dicts are constructed in ascending-time order by every
        # producer below (sources, constants, winner reconstruction),
        # so no sort is needed.
        wave_of[net_id] = wave
        items = tuple(wave.steps.items())
        sig_of[net_id] = (
            wave.probability, items, items[0][0] if items else 0,
            (wave.probability, items),
        )

    for net_id in range(cm.n_sources):
        name = cm.names[net_id]
        prob = (input_probs or {}).get(name, default_probability)
        act = (input_activities or {}).get(name, default_activity)
        wave = source_waveform(prob, act)
        _settle(net_id, wave)
        waveforms[name] = wave
        depths[name] = 0

    # Nodes grouped by structural level: every candidate cut's leaves
    # sit at strictly lower levels, so one level's nodes can be
    # prepared, deduplicated and batch-evaluated together — this is
    # what turns thousands of per-node numpy calls into a handful of
    # large per-level batches.
    nodes_by_level: Dict[int, List[int]] = {}
    for net_id in cm.order:
        nodes_by_level.setdefault(cm.levels[net_id], []).append(net_id)

    chosen: Dict[str, Tuple[Tuple[str, ...], TruthTable]] = {}
    fanouts = cm.fanout
    limit = None if exhaustive else max(1, sa_eval_limit)
    #: (leaf id, shift) -> that leaf's time-shifted signature; shifted
    #: tuples repeat across the candidates of bit-sliced structures.
    shifted_sigs: Dict[Tuple[int, int], Tuple] = {}
    for level in sorted(nodes_by_level):
        level_nodes: List[Tuple[int, List[_Candidate]]] = []
        #: exact key -> candidates awaiting the same evaluation (the
        #: cross-node bit-slice duplicates within this level).
        pending: Dict[Tuple, List[_Candidate]] = {}
        jobs_by_arity: Dict[int, List[_Candidate]] = {}

        for net_id in nodes_by_level[level]:
            name = cm.names[net_id]
            if not cm.gate_inputs[net_id]:
                table = cm.tables[net_id]
                value = table.is_constant()
                if value is None:
                    raise MappingError(
                        f"zero-input non-constant gate {name!r}"
                    )
                wave = GlitchWaveform(1.0 if value else 0.0, {}, 0)
                _settle(net_id, wave)
                waveforms[name] = wave
                depths[name] = 0
                chosen[name] = ((), table)
                continue
            candidates = candidates_by_id[net_id]
            if not candidates:
                raise MappingError(_no_cut_message(name, k, cut_cap))
            if limit is not None:
                candidates = candidates[:limit]

            prepared: List[_Candidate] = []
            for mask, leaf_ids in candidates:
                table = cm.cone_table(net_id, leaf_ids, mask)
                depth = 1 + max(depth_of[l] for l in leaf_ids)
                sigs = [sig_of[l] for l in leaf_ids]
                if glitch_aware:
                    shift = 0
                    seen_steps = False
                    for s in sigs:
                        if s[1] and (not seen_steps or s[2] < shift):
                            shift = s[2]
                            seen_steps = True
                    if shift == 0:
                        stats = tuple(s[3] for s in sigs)
                    else:
                        stats = tuple(
                            _shifted_sig(shifted_sigs, l, s, shift)
                            for s, l in zip(sigs, leaf_ids)
                        )
                else:
                    shift = 0
                    stats = tuple(
                        (s[0], wave_of[l].total())
                        for s, l in zip(sigs, leaf_ids)
                    )
                exact_key = HashedKey(
                    (table.bits, len(leaf_ids), glitch_aware, stats)
                )
                # The NPN class key is only needed when storing a new
                # entry; hits skip its computation entirely.
                entry = _Candidate(
                    leaf_ids, table, depth, shift, stats,
                    exact_key, memo.lookup(exact_key),
                )
                prepared.append(entry)
                if entry.value is None:
                    waiting = pending.get(exact_key)
                    if waiting is None:
                        pending[exact_key] = [entry]
                        jobs_by_arity.setdefault(
                            len(leaf_ids), []
                        ).append(entry)
                    else:
                        waiting.append(entry)
            level_nodes.append((net_id, prepared))

        # Evaluate this level's distinct misses, one batch per arity.
        for arity, job_entries in jobs_by_arity.items():
            if glitch_aware:
                batched = batch_evaluate(
                    [(e.table, e.stats) for e in job_entries]
                )
            else:
                batched = [None] * len(job_entries)
            for slot, entry in enumerate(job_entries):
                table = entry.table
                probs = tuple(p for p, _ in entry.stats)
                out_prob = _memo_probability(memo, table, probs)
                if glitch_aware:
                    # Inlined clamp_activity (raw > 0, so the max(.., 0)
                    # arm is the identity; the conditional is min()).
                    out_bound = 2.0 * min(out_prob, 1.0 - out_prob)
                    steps_norm = tuple(
                        (t, raw if raw < out_bound else out_bound)
                        for t, raw in batched[slot]
                        if raw > 0.0
                    )
                    # The total is shift-invariant and summed in the
                    # reference's ascending-step order.
                    value = (
                        out_prob, steps_norm,
                        float(sum(act for _, act in steps_norm)),
                    )
                else:
                    acts = [
                        clamp_activity(p, total)
                        for p, total in entry.stats
                    ]
                    activity = switching_activity(
                        table, list(probs), acts
                    )
                    activity = clamp_activity(out_prob, activity)
                    value = (out_prob, activity, None)
                memo.store(npn_key(table), entry.exact_key, value)
                for waiting in pending[entry.exact_key]:
                    waiting.value = value

        # Select per node, in the reference's candidate order with the
        # reference's exact cost arithmetic. The waveform itself is
        # only materialized for the winning cut — its total is the
        # same left-to-right float sum either way (memo payloads keep
        # the reference's ascending step order).
        for net_id, prepared in level_nodes:
            best = None
            for entry in prepared:
                value = entry.value
                depth = entry.depth
                if glitch_aware:
                    total = value[2]
                else:
                    payload = value[1]
                    total = payload if payload > 0.0 else 0.0
                # sum() seeds at 0 and adds sequentially; this loop
                # reproduces that association exactly while computing
                # both flows in one pass.
                flow_leaves = 0.0
                af_leaves = 0.0
                for l in entry.leaf_ids:
                    fanout = fanouts[l]
                    flow_leaves = flow_leaves + sa_flow[l] / fanout
                    af_leaves = af_leaves + area_flow[l] / fanout
                flow = total + flow_leaves
                af = 1.0 + af_leaves
                cost = (flow, depth, af)
                if best is None or cost < best[0]:
                    best = (cost, entry)
            (flow, depth, af), entry = best
            out_prob, payload = entry.value[0], entry.value[1]
            if glitch_aware:
                shift = entry.shift
                steps = {t + shift: act for t, act in payload}
            else:
                steps = {entry.depth: payload} if payload > 0.0 else {}
            wave = GlitchWaveform(out_prob, steps, entry.depth)
            name = cm.names[net_id]
            _settle(net_id, wave)
            depth_of[net_id] = entry.depth
            sa_flow[net_id] = flow
            area_flow[net_id] = af
            waveforms[name] = wave
            depths[name] = entry.depth
            chosen[name] = (
                tuple(cm.names[l] for l in entry.leaf_ids),
                entry.table,
            )

    return _finish(netlist, k, chosen, waveforms, depths)


def _no_cut_message(net: str, k: int, cut_cap: int) -> str:
    """Diagnose an empty candidate list (audited edge case)."""
    message = f"no implementable cut for node {net!r} with k={k}"
    if cut_cap == 1:
        message += (
            f": cut_cap={cut_cap} keeps only the trivial cut; "
            f"cut_cap >= 2 is required to map"
        )
    return message


def _shifted_sig(
    cache: Dict[Tuple[int, int], Tuple],
    leaf_id: int,
    sig: Tuple[float, Tuple, int],
    shift: int,
) -> Tuple[float, Tuple]:
    key = (leaf_id, shift)
    shifted = cache.get(key)
    if shifted is None:
        shifted = (
            sig[0], tuple((t - shift, v) for t, v in sig[1])
        )
        cache[key] = shifted
    return shifted


def _memo_probability(
    memo: ConeMemo, table: TruthTable, probs: Tuple[float, ...]
) -> float:
    key = (table.bits, table.n_inputs, probs)
    cached = memo.prob_cache.get(key)
    if cached is None:
        cached = gate_output_probability(table, list(probs))
        memo.prob_cache[key] = cached
    return cached


# ---------------------------------------------------------------------------
# Shared cover construction.
# ---------------------------------------------------------------------------


def _finish(
    netlist: Netlist,
    k: int,
    chosen: Dict[str, Tuple[Tuple[str, ...], TruthTable]],
    waveforms: Dict[str, GlitchWaveform],
    depths: Dict[str, int],
) -> MapResult:
    """Cover the netlist and assemble the result (both mapper paths)."""
    mapped, lut_sa = _cover(netlist, chosen, waveforms)
    total = sum(lut_sa.values())
    functional = sum(
        waveforms[net].functional() for net in lut_sa
    )
    depth = max(
        (depths.get(net, 0) for net in _root_nets(netlist)), default=0
    )
    return MapResult(
        netlist=mapped,
        k=k,
        area=mapped.num_gates(),
        depth=depth,
        total_sa=total,
        functional_sa=functional,
        glitch_sa=total - functional,
        lut_sa=lut_sa,
        waveforms=waveforms,
        selected_cuts={net: leaves for net, (leaves, _) in chosen.items()},
    )


def _root_nets(netlist: Netlist) -> List[str]:
    """Nets that must be available in the mapped netlist."""
    roots: List[str] = []
    for net in netlist.outputs:
        roots.append(net)
    for latch in netlist.latches.values():
        roots.append(latch.data)
        if latch.enable is not None:
            roots.append(latch.enable)
    return roots


def _cover(
    netlist: Netlist,
    chosen: Dict[str, Tuple[Tuple[str, ...], TruthTable]],
    waveforms: Dict[str, GlitchWaveform],
) -> Tuple[Netlist, Dict[str, float]]:
    """Instantiate LUTs for the cuts reachable from the roots."""
    mapped = Netlist(netlist.name + "_mapped")
    for net in netlist.inputs:
        mapped.add_input(net)
    for latch in netlist.latches.values():
        mapped.add_latch(latch.data, latch.output, latch.init, latch.enable)

    required: List[str] = []
    seen = set()
    for root in _root_nets(netlist):
        if root not in seen:
            seen.add(root)
            required.append(root)

    lut_sa: Dict[str, float] = {}
    sources = set(netlist.inputs)
    sources.update(netlist.latches)
    index = 0
    while index < len(required):
        net = required[index]
        index += 1
        if net in sources:
            continue
        if net not in chosen:
            raise MappingError(f"required net {net!r} was never mapped")
        leaves, table = chosen[net]
        gate_type = GateType.LUT if leaves else table.classify()
        # Direct insert: equivalent to add_gate, minus the duplicate-
        # driver scan — `required` is deduplicated and every chosen net
        # was a uniquely-driven gate output of the source netlist.
        mapped.gates[net] = Gate(net, tuple(leaves), table, gate_type)
        lut_sa[net] = waveforms[net].total()
        for leaf in leaves:
            if leaf not in seen:
                seen.add(leaf)
                required.append(leaf)

    for net in netlist.outputs:
        mapped.set_output(net)
    mapped.validate()
    return mapped, lut_sa
