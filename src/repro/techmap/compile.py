"""Compiled fast path of the glitch-aware LUT mapper.

The seed mapper (:func:`repro.techmap.mapper.map_netlist` with
``effort="reference"``) spends almost all of its time in two places:

* **cut bookkeeping** — ``FrozenSet[str]`` unions, subset tests and
  hashing during Cong-Wu-Ding cross-merging, repeated per node;
* **per-cut SA evaluation** — one ``2**n x 2**n`` mixed joint matrix
  per (candidate cut, trigger time), built from per-leaf 2x2 laws with
  ``np.ix_`` gathers, even though bit-sliced datapaths evaluate the
  exact same cone over the exact same leaf statistics once per bit.

This module removes both without changing a single output bit:

* nets are interned to dense int ids once per netlist
  (:func:`compile_map_netlist`, cached on the netlist object exactly
  like the simulator's ``compile_netlist``), and cuts become int
  *bitmasks* over those ids — union is ``|``, dominance is
  ``a & b == a``, dedup is int hashing (:func:`enumerate_cuts_ids`
  mirrors the reference enumeration order decision for decision, so
  the candidate lists are element-wise identical);
* collapsed cone functions are memoized per netlist by
  ``(root id, cut mask)`` and across netlists the cone *evaluations*
  are memoized in a :class:`ConeMemo` keyed by NPN-canonical truth
  table (:func:`npn_key`), with the concrete ``(bits, leaf statistics)``
  as the inner key;
* cache misses are evaluated in numpy batches: all candidate cuts of a
  node with the same arity share one ``(B, T, 2**n, 2**n)`` joint-law
  product (:func:`batch_evaluate`).

Bit-exactness contract
----------------------

The differential suite (``tests/techmap/test_mapper_differential.py``)
pins ``effort="fast"`` byte-identical to the seed mapper, which
dictates three implementation rules:

1. the memo's inner key is the **exact** ``(table bits, per-leaf
   (probability, step) statistics)`` — NPN-equivalent cones whose
   concrete tables differ are *not* merged, because reassociating the
   per-input joint-law product (a different input order) can move the
   result by an ulp. The NPN class is the outer key: it groups the
   entries of structurally repeated cones and is what the bench
   reports, but reuse happens only on exact matches;
2. leaf statistics are normalized by shifting every step time so the
   earliest trigger is 0 (the unit-delay evaluation is invariant under
   a uniform time shift), which is what makes bit slice ``i`` of a
   ripple structure hit the entry written by bit slice ``i - 1``;
3. batched evaluation vectorizes the joint-law construction and the
   matrix products (element-wise, so IEEE-deterministic), but performs
   each final masked reduction as a contiguous 1-D ``.sum()`` per
   (cut, trigger time) — numpy's pairwise summation blocks differently
   for 2-D axis reductions, and only the 1-D reduction reproduces the
   reference float exactly.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EstimationError, MappingError
from repro.activity.transition import MAX_EXACT_INPUTS
from repro.netlist.gates import Netlist, TruthTable

#: Widest table for which the exact NPN canonical form is computed;
#: wider tables fall back to a deterministic semi-canonical key.
NPN_EXACT_MAX = 4


# ---------------------------------------------------------------------------
# NPN canonical keys.
# ---------------------------------------------------------------------------

#: Per-arity transform tables: an int matrix of shape
#: ``(n! * 2**n, 2**n)`` whose row r maps output-column positions
#: through one (permutation, input-negation) pair.
_NPN_TRANSFORMS: Dict[int, np.ndarray] = {}

#: Memoized keys per concrete function (process-wide; tables repeat
#: heavily across netlists).
_NPN_KEYS: Dict[Tuple[int, int], Tuple] = {}


def _npn_transforms(n: int) -> np.ndarray:
    matrix = _NPN_TRANSFORMS.get(n)
    if matrix is None:
        size = 1 << n
        combos = np.arange(size)
        rows = []
        for perm in itertools.permutations(range(n)):
            # new input k reads old input perm[k]
            base = np.zeros(size, dtype=np.int64)
            for new_pos, old_pos in enumerate(perm):
                base |= ((combos >> new_pos) & 1) << old_pos
            for neg in range(size):
                rows.append(base ^ neg)
        matrix = np.array(rows, dtype=np.int64)
        _NPN_TRANSFORMS[n] = matrix
    return matrix


def npn_key(table: TruthTable) -> Tuple:
    """A deterministic NPN-class key for ``table``.

    Exact for up to :data:`NPN_EXACT_MAX` inputs (the minimum packed
    table over all input permutations, input negations and output
    negation). Wider tables get a cheap *semi*-canonical key —
    output-polarity normalization plus an input sort by cofactor
    signature — which is deterministic but may split one true NPN
    class into a few keys. Either way the key only organizes the
    :class:`ConeMemo`; correctness never depends on its canonicity.
    """
    n = table.n_inputs
    cached = _NPN_KEYS.get((n, table.bits))
    if cached is not None:
        return cached
    if n <= NPN_EXACT_MAX:
        size = 1 << n
        column = np.array(table.output_column(), dtype=np.int64)
        outs = column[_npn_transforms(n)]
        weights = np.int64(1) << np.arange(size, dtype=np.int64)
        packed = outs @ weights
        full = (1 << size) - 1
        best = int(min(packed.min(), (full ^ packed).min()))
        key: Tuple = ("npn", n, best)
    else:
        size = 1 << n
        full = (1 << size) - 1
        bits = min(table.bits, full ^ table.bits)
        norm = TruthTable(n, bits)
        signature = tuple(
            sorted(
                (
                    bin(norm.cofactor(v, True).bits).count("1"),
                    bin(norm.boolean_difference(v).bits).count("1"),
                )
                for v in range(n)
            )
        )
        key = ("npn-semi", n, bits, signature)
    _NPN_KEYS[(n, table.bits)] = key
    return key


# ---------------------------------------------------------------------------
# Compiled netlist view.
# ---------------------------------------------------------------------------


class CompiledMapNetlist:
    """Dense-int view of a netlist for the fast mapper.

    ``names``/``ids`` intern nets; ``rank`` maps an id to the
    lexicographic rank of its name, so sorting leaf ids by rank
    reproduces the reference mapper's ``sorted(cut)`` leaf ordering
    exactly. ``cone_tables`` memoizes collapsed cone functions by
    ``(root id, cut mask)`` — pure netlist structure, so it is valid
    across every (k, cap, effort, activity) run on this netlist.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        order = netlist.topological_order()
        sources = list(netlist.inputs) + list(netlist.latches)
        names: List[str] = []
        ids: Dict[str, int] = {}
        for name in sources + order:
            ids[name] = len(names)
            names.append(name)
        self.names = names
        self.ids = ids
        self.n_sources = len(sources)
        self.order = [ids[name] for name in order]
        by_name = sorted(range(len(names)), key=lambda i: names[i])
        rank = [0] * len(names)
        for position, net_id in enumerate(by_name):
            rank[net_id] = position
        self.rank = rank

        self.gate_inputs: List[Optional[Tuple[int, ...]]] = (
            [None] * len(names)
        )
        self.tables: List[Optional[TruthTable]] = [None] * len(names)
        for name in order:
            gate = netlist.gates[name]
            net_id = ids[name]
            self.gate_inputs[net_id] = tuple(ids[i] for i in gate.inputs)
            self.tables[net_id] = gate.table

        fanout = [0] * len(names)
        for gate in netlist.gates.values():
            for name in gate.inputs:
                fanout[ids[name]] += 1
        self.fanout = [max(1, count) for count in fanout]

        levels = [0] * len(names)
        for net_id in self.order:
            inputs = self.gate_inputs[net_id]
            if inputs:
                levels[net_id] = 1 + max(levels[i] for i in inputs)
        self.levels = levels

        self.cone_tables: Dict[Tuple[int, int], TruthTable] = {}

    # -- cone collapsing ---------------------------------------------------

    def cone_table(
        self, root: int, leaves: Sequence[int], mask: int
    ) -> TruthTable:
        """Collapse the cone of ``root`` over ``leaves`` (bit-parallel).

        Same algorithm and result as
        :func:`repro.techmap.cuts.cone_function`, over int ids.
        """
        cached = self.cone_tables.get((root, mask))
        if cached is not None:
            return cached
        leaves = tuple(leaves)
        if self.gate_inputs[root] == leaves:
            # Single-gate cone with leaves already in the gate's input
            # order: the collapse is the identity (about a third of
            # all candidates on bit-sliced netlists).
            table = self.tables[root]
            self.cone_tables[(root, mask)] = table
            return table
        n = len(leaves)
        if n > 16:
            raise MappingError(
                f"cone collapse limited to 16 leaves, got {n}"
            )
        width = 1 << n
        full = (1 << width) - 1
        position_masks = _leaf_position_masks(n)
        masks: Dict[int, int] = {
            leaf: position_masks[position]
            for position, leaf in enumerate(leaves)
        }

        if root in masks:
            table = TruthTable(n, masks[root])
            self.cone_tables[(root, mask)] = table
            return table

        for net_id in self._cone_order(root, mask):
            table = self.tables[net_id]
            fanin_masks = [masks[i] for i in self.gate_inputs[net_id]]
            out_mask = 0
            for combo in range(1 << table.n_inputs):
                if not (table.bits >> combo) & 1:
                    continue
                term = full
                for pos, fanin_mask in enumerate(fanin_masks):
                    if (combo >> pos) & 1:
                        term &= fanin_mask
                    else:
                        term &= full ^ fanin_mask
                    if not term:
                        break
                out_mask |= term
            masks[net_id] = out_mask
        table = TruthTable(n, masks[root])
        self.cone_tables[(root, mask)] = table
        return table

    def _cone_order(self, root: int, leaf_mask: int) -> List[int]:
        """Cone gate ids in topological order, bounded by ``leaf_mask``."""
        order: List[int] = []
        state: Dict[int, int] = {}
        stack: List[Tuple[int, int]] = [(root, 0)]
        while stack:
            net_id, phase = stack.pop()
            if phase == 0:
                if net_id in state:
                    continue
                state[net_id] = 0
                stack.append((net_id, 1))
                inputs = self.gate_inputs[net_id]
                if inputs is None:
                    raise MappingError(
                        f"cone of {self.names[root]!r} reaches source "
                        f"{self.names[net_id]!r} outside its cut"
                    )
                for fanin in inputs:
                    if (leaf_mask >> fanin) & 1:
                        continue
                    if fanin not in state:
                        stack.append((fanin, 0))
                    elif state.get(fanin) == 0:
                        raise MappingError(
                            f"cyclic cone at {self.names[fanin]!r}"
                        )
            else:
                state[net_id] = 1
                order.append(net_id)
        return order


#: Per-arity bit-parallel input patterns for cone collapsing: entry
#: ``[n][p]`` is the mask whose bit ``c`` is input ``p``'s value in
#: combination ``c``.
_POSITION_MASKS: Dict[int, List[int]] = {}


def _leaf_position_masks(n: int) -> List[int]:
    masks = _POSITION_MASKS.get(n)
    if masks is None:
        width = 1 << n
        masks = []
        for position in range(n):
            mask = 0
            for combo in range(width):
                if (combo >> position) & 1:
                    mask |= 1 << combo
            masks.append(mask)
        _POSITION_MASKS[n] = masks
    return masks


def compile_map_netlist(netlist: Netlist) -> CompiledMapNetlist:
    """Compile (or fetch the cached compilation of) ``netlist``.

    Cached on the netlist object, like the simulator's
    ``compile_netlist``; a gate or latch added after compilation
    invalidates the entry.
    """
    token = (len(netlist.gates), len(netlist.latches), len(netlist.inputs))
    cached = getattr(netlist, "_map_compiled", None)
    if cached is not None and cached[0] == token:
        return cached[1]
    compiled = CompiledMapNetlist(netlist)
    netlist._map_compiled = (token, compiled)
    return compiled


# ---------------------------------------------------------------------------
# Bitmask cut enumeration.
# ---------------------------------------------------------------------------


def enumerate_cuts_ids(
    cm: CompiledMapNetlist, k: int, cap: int
) -> List[Optional[List[Tuple[int, Tuple[int, ...]]]]]:
    """Per-node non-trivial candidate cuts as ``(mask, sorted leaves)``.

    Mirrors :func:`repro.techmap.cuts.enumerate_cuts` decision for
    decision — same cross-merge order, same dominance prune, same
    ``(depth, size)`` stable sort, same ``cap - 1`` truncation — so
    index ``j`` of a node's candidate list is the same cut the
    reference mapper would evaluate ``j``-th. The trivial cut is not
    materialized (the mapper skips it anyway); sources hold their
    trivial cut only.
    """
    if k < 2:
        raise MappingError(f"LUT input count must be >= 2, got {k}")
    if cap < 1:
        raise MappingError(f"cut cap must be >= 1, got {cap}")
    n_nets = len(cm.names)
    levels = cm.levels
    rank = cm.rank
    # Per net: the full cut list (trivial first) used for merging, and
    # the truncated candidate list used for selection.
    merged_lists: List[Optional[List[Tuple[int, int, int]]]] = (
        [None] * n_nets
    )
    full_lists: List[List[Tuple[int, int, int]]] = [[] for _ in range(n_nets)]
    for source in range(cm.n_sources):
        full_lists[source] = [(1 << source, 1, levels[source])]

    for net_id in cm.order:
        inputs = cm.gate_inputs[net_id]
        trivial = (1 << net_id, 1, levels[net_id])
        if not inputs:
            full_lists[net_id] = [trivial]
            merged_lists[net_id] = []
            continue
        current: List[Tuple[int, int, int]] = [(0, 0, 0)]
        for fanin in inputs:
            cut_list = full_lists[fanin]
            next_level: List[Tuple[int, int, int]] = []
            seen = set()
            for base_mask, _, base_depth in current:
                for cut_mask, _, cut_depth in cut_list:
                    union = base_mask | cut_mask
                    size = union.bit_count()
                    if size <= k and union not in seen:
                        seen.add(union)
                        next_level.append(
                            (union, size, max(base_depth, cut_depth))
                        )
            current = next_level
            if not current:
                break
        # Dominance prune: stable sort by size, drop supersets.
        current.sort(key=lambda item: item[1])
        kept: List[Tuple[int, int, int]] = []
        for item in current:
            mask = item[0]
            if any(existing[0] & mask == existing[0] for existing in kept):
                continue
            kept.append(item)
        kept.sort(key=lambda item: (item[2], item[1]))
        candidates = kept[: cap - 1] if cap > 1 else []
        merged_lists[net_id] = [
            (mask, _mask_leaves(mask, rank)) for mask, _, _ in candidates
        ]
        full_lists[net_id] = [trivial] + candidates
    return merged_lists


def _mask_leaves(mask: int, rank: List[int]) -> Tuple[int, ...]:
    leaves = []
    remaining = mask
    while remaining:
        low = remaining & -remaining
        leaves.append(low.bit_length() - 1)
        remaining ^= low
    leaves.sort(key=rank.__getitem__)
    return tuple(leaves)


def mask_leaves(cm: CompiledMapNetlist, mask: int) -> Tuple[int, ...]:
    """Leaf ids of ``mask`` in the reference's sorted-by-name order."""
    return _mask_leaves(mask, cm.rank)


# ---------------------------------------------------------------------------
# The cross-netlist cone-evaluation memo.
# ---------------------------------------------------------------------------


class HashedKey:
    """A memo key with its hash precomputed.

    The exact keys are nested tuples (table bits + per-leaf float
    statistics); hashing one costs a full tree walk, and each
    candidate key is consulted by several dicts (memo, pending batch
    dedup). Wrapping the tuple caches the walk; equality still
    compares the full tuple, exactly as a dict would.
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: Tuple):
        self.key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashedKey) and self.key == other.key

    def __getstate__(self):
        return self.key

    def __setstate__(self, state):
        self.key = state
        self._hash = hash(state)


class ConeMemo:
    """Memoized cone SA evaluations, grouped by NPN class.

    Entries are memoized under their NPN-canonical truth-table key
    (:func:`npn_key`): ``classes`` maps each class to its per-entry
    count, and every stored entry carries the exact
    ``(table bits, glitch_aware, per-leaf statistics)`` inner key (see
    the module docstring for why reuse must be exact; lookups go
    through the flat ``entries`` dict so the hot path pays one cached
    hash instead of two hops). Glitch-aware values are
    ``(out_prob, ((out_time, activity), ...), total)`` with times
    normalized so the earliest leaf trigger is 0 — callers shift them
    back; glitch-blind values are ``(out_prob, activity, None)``.

    Instances are plain picklable containers; the techmap stage
    registers one per elaborated netlist in the flow's
    :class:`~repro.flow.cache.ArtifactCache`, so every sweep cell that
    shares the netlist prefix (different ``k``, cut cap, effort or
    control activity) reuses the evaluations.
    """

    def __init__(self) -> None:
        self.entries: Dict["HashedKey", Tuple] = {}
        self.classes: Dict[Tuple, int] = {}
        self.prob_cache: Dict[Tuple, float] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, exact_key: "HashedKey") -> Optional[Tuple]:
        value = self.entries.get(exact_key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def store(
        self, class_key: Tuple, exact_key: "HashedKey", value: Tuple
    ) -> None:
        if exact_key not in self.entries:
            self.classes[class_key] = self.classes.get(class_key, 0) + 1
        self.entries[exact_key] = value

    def stats(self) -> Dict[str, int]:
        return {
            "npn_classes": len(self.classes),
            "entries": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
        }


# ---------------------------------------------------------------------------
# Batched SA evaluation.
# ---------------------------------------------------------------------------

#: Cached per-table evaluation scaffolding: output column (float),
#: flat indices of the "output differs" pairs, minterm bit patterns.
_TABLE_EVAL: Dict[Tuple[int, int], Tuple] = {}


def _table_eval(table: TruthTable) -> Tuple:
    key = (table.n_inputs, table.bits)
    cached = _TABLE_EVAL.get(key)
    if cached is None:
        column = np.array(table.output_column(), dtype=np.float64)
        differs = column[:, None] != column[None, :]
        flat_idx = np.flatnonzero(differs.ravel())
        size = 1 << table.n_inputs
        combos = np.arange(size)
        bits = [
            (combos >> i) & 1 for i in range(table.n_inputs)
        ]
        cached = (column, flat_idx, bits)
        _TABLE_EVAL[key] = cached
    return cached


def batch_evaluate(
    jobs: Sequence[Tuple[TruthTable, Tuple]],
) -> List[Tuple[Tuple[int, float], ...]]:
    """Evaluate several same-arity glitch-aware cuts in one numpy batch.

    Each job is ``(table, leaf_stats)`` where ``leaf_stats`` is the
    normalized per-leaf ``(probability, ((time, s_t), ...))`` tuple.
    Returns, per job, the normalized output steps
    ``((time + 1, raw_activity), ...)`` — *unclamped*, ascending by
    time; the caller applies the output clamp (it depends on the
    output probability, which the caller already knows).

    Bit-exactness: the per-element joint products run in the same
    input order as the reference, and every final reduction is a
    contiguous 1-D ``.sum()`` over exactly the elements the reference
    sums (see module docstring).
    """
    n = jobs[0][0].n_inputs
    size = 1 << n
    n_jobs = len(jobs)
    # Jobs with identical leaf statistics share one joint-matrix row
    # (e.g. the sum and carry cones of one adder slice): dedup them
    # before any numpy work. Trigger times are a function of the
    # statistics, so they are per-row too.
    row_of: Dict[Tuple, int] = {}
    job_row: List[int] = []
    row_stats: List[Tuple] = []
    for _, leaf_stats in jobs:
        row = row_of.get(leaf_stats)
        if row is None:
            row = len(row_stats)
            row_of[leaf_stats] = row
            row_stats.append(leaf_stats)
        job_row.append(row)
    trigger_sets: List[List[int]] = []
    for leaf_stats in row_stats:
        times = sorted({t for _, steps in leaf_stats for t, _ in steps})
        trigger_sets.append(times)
    t_max = max((len(times) for times in trigger_sets), default=0)
    if t_max == 0:
        return [() for _ in jobs]
    if n > MAX_EXACT_INPUTS:
        # Mirror the reference path: mixed_joint_matrix refuses cones
        # wider than the exact pair computation the moment a trigger
        # time must be evaluated (trigger-free wide cones pass, above).
        raise EstimationError(
            f"exact pair computation limited to {MAX_EXACT_INPUTS} inputs"
        )
    t_min = min(len(times) for times in trigger_sets)
    if t_min != t_max:
        # Mixed trigger counts would pad every short row up to t_max;
        # partition the jobs by their row's trigger count and evaluate
        # each uniform-T subset padding-free. Per-job results are
        # unaffected — only dead padded slots disappear.
        by_t: Dict[int, List[int]] = {}
        for j in range(n_jobs):
            by_t.setdefault(len(trigger_sets[job_row[j]]), []).append(j)
        results_mixed: List[Tuple[Tuple[int, float], ...]] = [()] * n_jobs
        for indices in by_t.values():
            for j, result in zip(
                indices, batch_evaluate([jobs[j] for j in indices])
            ):
                results_mixed[j] = result
        return results_mixed
    n_rows = len(row_stats)

    # Per (row, leaf, time): the 2x2 joint law, built vectorized from
    # (probability, clamped step activity). Padded time slots hold the
    # held law; their products are computed and discarded.
    probs = np.array(
        [[prob for prob, _ in leaf_stats] for leaf_stats in row_stats],
        dtype=np.float64,
    )
    s_t = np.zeros((n_rows, n, t_max), dtype=np.float64)
    fill_j: List[int] = []
    fill_l: List[int] = []
    fill_p: List[int] = []
    fill_v: List[float] = []
    for row, leaf_stats in enumerate(row_stats):
        index = {t: pos for pos, t in enumerate(trigger_sets[row])}
        for leaf_pos, (_, steps) in enumerate(leaf_stats):
            for t, activity in steps:
                fill_j.append(row)
                fill_l.append(leaf_pos)
                fill_p.append(index[t])
                fill_v.append(activity)
    if fill_j:
        s_t[fill_j, fill_l, fill_p] = fill_v
    # clamp_activity, vectorized with the reference's exact expression:
    # min(max(s, 0), 2 * min(p, 1 - p)); only applied where s > 0 (the
    # reference uses the held law otherwise, which equals the pair law
    # at s == 0).
    bound = 2.0 * np.minimum(probs, 1.0 - probs)
    clamped = np.minimum(np.maximum(s_t, 0.0), bound[:, :, None])
    half = clamped / 2.0
    p3 = probs[:, :, None]
    joints = np.empty((n_rows, n, t_max, 2, 2), dtype=np.float64)
    # pair_distribution(p, s): [[1-p-h, h], [h, p-h]] with the same
    # left-to-right arithmetic ((1.0 - p) - h).
    joints[..., 0, 0] = (1.0 - p3) - half
    joints[..., 0, 1] = half
    joints[..., 1, 0] = half
    joints[..., 1, 1] = p3 - half
    # Where s == 0 the pair law reduces exactly to held_distribution:
    # h == 0, so [[1-p, 0], [0, p]] — nothing special to do.

    # Left-associated per-element product in input order, exactly as
    # the reference's ``ones *= J_0 ... *= J_{n-1}`` (``1.0 * x == x``,
    # so the first factor seeds the accumulator directly).
    _, _, bits = _table_eval(jobs[0][0])
    matrices = joints[:, 0][
        :, :, bits[0][:, None], bits[0][None, :]
    ]
    for leaf_pos in range(1, n):
        gathered = joints[:, leaf_pos][
            :, :, bits[leaf_pos][:, None], bits[leaf_pos][None, :]
        ]
        np.multiply(matrices, gathered, out=matrices)

    flat = matrices.reshape(n_rows, t_max, size * size)
    # One extraction per distinct table; every final reduction is a
    # contiguous 1-D pairwise sum (see module docstring).
    groups: Dict[int, List[int]] = {}
    for j, (table, _) in enumerate(jobs):
        groups.setdefault(table.bits, []).append(j)
    results: List[Tuple[Tuple[int, float], ...]] = [()] * n_jobs
    add_reduce = np.add.reduce  # identical reduction to ndarray.sum()
    for indices in groups.values():
        _, flat_idx, _ = _table_eval(jobs[indices[0]][0])
        picked = flat[[job_row[j] for j in indices]][:, :, flat_idx]
        for slot, j in enumerate(indices):
            rows = picked[slot]
            results[j] = tuple(
                (t + 1, float(add_reduce(rows[pos])))
                for pos, t in enumerate(trigger_sets[job_row[j]])
            )
    return results
