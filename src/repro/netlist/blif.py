"""BLIF reader and writer.

The paper generates partial datapaths "in .blif format [19]" (Figure 2)
before running the switching-activity estimation on them, so the
reproduction keeps the same interchange format. Supported constructs:
``.model``, ``.inputs``, ``.outputs``, ``.names`` (single-output cover
with ``0``/``1``/``-`` literals, on-set or off-set), ``.latch`` and
``.end``. ``.search``/``.subckt`` are resolved at construction time by
:meth:`repro.netlist.gates.Netlist.instantiate`, so emitted files are
flat.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.errors import NetlistError
from repro.netlist.gates import GateType, Netlist, TruthTable, iter_minterms


def write_blif(netlist: Netlist, stream: TextIO) -> None:
    """Write ``netlist`` to ``stream`` in flat BLIF."""
    stream.write(f".model {netlist.name}\n")
    _write_wrapped(stream, ".inputs", netlist.inputs)
    _write_wrapped(stream, ".outputs", netlist.outputs)
    for latch in netlist.latches.values():
        init = 1 if latch.init else 0
        stream.write(f".latch {latch.data} {latch.output} {init}\n")
    for net in netlist.topological_order():
        gate = netlist.gates[net]
        _write_names(stream, gate.inputs, net, gate.table)
    stream.write(".end\n")


def blif_text(netlist: Netlist) -> str:
    """Return the flat BLIF for ``netlist`` as a string."""
    import io

    buffer = io.StringIO()
    write_blif(netlist, buffer)
    return buffer.getvalue()


def _write_wrapped(stream: TextIO, keyword: str, names: Iterable[str]) -> None:
    line = keyword
    for name in names:
        if len(line) + len(name) + 1 > 78:
            stream.write(line + " \\\n")
            line = " "
        line += " " + name
    stream.write(line + "\n")


def _write_names(
    stream: TextIO,
    inputs: Tuple[str, ...],
    output: str,
    table: TruthTable,
) -> None:
    stream.write(".names " + " ".join(list(inputs) + [output]) + "\n")
    constant = table.is_constant()
    if constant is True:
        stream.write("1\n" if not inputs else "-" * len(inputs) + " 1\n")
        return
    if constant is False:
        return  # empty cover = constant 0
    for minterm in iter_minterms(table):
        pattern = "".join("1" if bit else "0" for bit in minterm)
        stream.write(pattern + " 1\n")


def parse_blif(source: Union[str, TextIO], name: Optional[str] = None) -> Netlist:
    """Parse flat BLIF text (or a stream) into a :class:`Netlist`."""
    text = source if isinstance(source, str) else source.read()
    lines = _logical_lines(text)
    netlist = Netlist(name or "top")
    declared_outputs: List[str] = []

    index = 0
    while index < len(lines):
        tokens = lines[index].split()
        index += 1
        if not tokens:
            continue
        keyword = tokens[0]
        if keyword == ".model":
            if len(tokens) > 1 and name is None:
                netlist.name = tokens[1]
        elif keyword == ".inputs":
            for net in tokens[1:]:
                netlist.add_input(net)
        elif keyword == ".outputs":
            declared_outputs.extend(tokens[1:])
        elif keyword == ".latch":
            data, output, init = _parse_latch(tokens, lines[index - 1])
            _check_driver(netlist, output, ".latch")
            netlist.add_latch(data, output, init)
        elif keyword == ".names":
            signals = tokens[1:]
            if not signals:
                raise NetlistError(".names with no signals")
            cover: List[str] = []
            while index < len(lines) and not lines[index].startswith("."):
                row = lines[index].strip()
                if row:
                    cover.append(row)
                index += 1
            _check_driver(netlist, signals[-1], ".names")
            _add_cover(netlist, signals[:-1], signals[-1], cover)
        elif keyword == ".end":
            break
        elif keyword in (".search", ".subckt"):
            raise NetlistError(
                f"hierarchical BLIF not supported by the parser: {keyword}"
            )
        # Silently ignore other dot-directives (.default_input_arrival...).

    for net in declared_outputs:
        if not (net in netlist.gates or net in netlist.latches
                or net in netlist.inputs):
            raise NetlistError(
                f"declared .outputs net {net!r} is never driven"
            )
        netlist.set_output(net)
    return netlist


def _parse_latch(tokens: List[str], line: str) -> Tuple[str, str, bool]:
    """Decode ``.latch <in> <out> [<type> [<control>]] [<init>]``.

    The init value is the last token only when it is one of the four
    BLIF init literals ``0``/``1``/``2``/``3`` (2 = don't care, 3 =
    unknown — both model as 0 here). Only rising-edge (``re``) trigger
    types are representable in the IR.
    """
    rest = tokens[1:]
    init = False
    if rest and rest[-1] in ("0", "1", "2", "3"):
        init = rest[-1] == "1"
        rest = rest[:-1]
    if len(rest) < 2 or len(rest) > 4:
        raise NetlistError(f"malformed .latch: {line!r}")
    if len(rest) > 2 and rest[2] != "re":
        raise NetlistError(
            f"unsupported .latch trigger type {rest[2]!r} "
            f"(only 're' is modeled): {line!r}"
        )
    return rest[0], rest[1], init


def _check_driver(netlist: Netlist, net: str, construct: str) -> None:
    """Parse-time driver validation with BLIF-level error messages."""
    if net in netlist.inputs:
        raise NetlistError(
            f"{construct} redefines declared .inputs net {net!r}"
        )
    if net in netlist.gates or net in netlist.latches:
        raise NetlistError(
            f"net {net!r} is driven more than once "
            f"(duplicate {construct} definition)"
        )


def _logical_lines(text: str) -> List[str]:
    """Split BLIF text into lines, joining ``\\`` continuations."""
    merged: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line and not pending:
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        merged.append(pending + line)
        pending = ""
    if pending:
        merged.append(pending)
    return merged


def _add_cover(
    netlist: Netlist,
    inputs: List[str],
    output: str,
    cover: List[str],
) -> None:
    n = len(inputs)
    if not cover:
        netlist.add_const(False, output)
        return
    if n == 0:
        if len(cover) > 1:
            raise NetlistError(
                f"zero-input cover for {output!r} has {len(cover)} rows; "
                f"expected a single 0/1 row"
            )
        row = cover[0].strip()
        if row not in ("0", "1"):
            raise NetlistError(
                f"bad zero-input cover row {row!r} for {output!r}"
            )
        netlist.add_const(row == "1", output)
        return

    on_bits = 0
    off_bits = 0
    saw_on = saw_off = False
    for row in cover:
        parts = row.split()
        if len(parts) != 2:
            raise NetlistError(f"malformed cover row {row!r} for {output!r}")
        pattern, value = parts
        if len(pattern) != n:
            raise NetlistError(
                f"cover row {row!r} arity mismatch for {output!r}"
            )
        mask = _pattern_mask(pattern)
        if value == "1":
            on_bits |= mask
            saw_on = True
        elif value == "0":
            off_bits |= mask
            saw_off = True
        else:
            raise NetlistError(f"bad cover value {value!r} for {output!r}")
    if saw_on and saw_off:
        raise NetlistError(f"mixed on-set/off-set cover for {output!r}")
    if saw_off:
        size = 1 << n
        bits = ((1 << size) - 1) ^ off_bits
    else:
        bits = on_bits
    netlist.add_gate(TruthTable(n, bits), inputs, output)


def _pattern_mask(pattern: str) -> int:
    """Bitmask of input combinations matched by a cube like ``1-0``.

    BLIF lists the first input as the leftmost character; our truth
    tables use input 0 as the least-significant index bit.
    """
    indices = [0]
    for position, char in enumerate(pattern):
        bit = 1 << position
        if char == "1":
            indices = [i | bit for i in indices]
        elif char == "0":
            pass
        elif char == "-":
            indices = indices + [i | bit for i in indices]
        else:
            raise NetlistError(f"bad cube character {char!r} in {pattern!r}")
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask
