"""Netlist cleanup transforms.

The structural builders are deliberately literal (a ripple adder always
instantiates a carry-in constant, an enabled register always has its
recirculation mux), so elaborated datapaths contain constants, buffers
and dead cones. These transforms normalize the netlist before
technology mapping — the same role logic sweeping plays inside Quartus'
synthesis, minus any restructuring that would change the high-level
datapath shape (the paper explicitly disables such optimizations).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.netlist.gates import Gate, GateType, Netlist, TruthTable


def propagate_constants(netlist: Netlist) -> int:
    """Fold constant gate inputs into smaller truth tables.

    Returns the number of gates rewritten. Gates that become constant
    are replaced by constant gates; single-input identity functions
    become buffers. Iterates to a fixpoint.
    """
    rewrites = 0
    changed = True
    while changed:
        changed = False
        constants = _constant_nets(netlist)
        for net in netlist.topological_order():
            gate = netlist.gates[net]
            if gate.gate_type in (GateType.CONST0, GateType.CONST1):
                continue
            new_gate = _fold_gate(gate, constants)
            if new_gate is not None:
                netlist.gates[net] = new_gate
                rewrites += 1
                changed = True
    return rewrites


def _constant_nets(netlist: Netlist) -> Dict[str, bool]:
    constants: Dict[str, bool] = {}
    for net, gate in netlist.gates.items():
        value = gate.table.is_constant()
        if value is not None and not gate.inputs:
            constants[net] = value
        elif value is not None:
            constants[net] = value
    return constants


def _fold_gate(gate: Gate, constants: Dict[str, bool]) -> Optional[Gate]:
    bound = [
        (pos, constants[name])
        for pos, name in enumerate(gate.inputs)
        if name in constants
    ]
    if not bound:
        return None
    table = gate.table
    inputs = list(gate.inputs)
    # Cofactor from the highest index down so positions stay valid.
    for pos, value in sorted(bound, reverse=True):
        table = table.cofactor(pos, value)
        del inputs[pos]
    constant = table.is_constant()
    if constant is not None:
        const_type = GateType.CONST1 if constant else GateType.CONST0
        return Gate(gate.output, (), TruthTable.constant(constant), const_type)
    return Gate(gate.output, tuple(inputs), table, table.classify())


def sweep_buffers(netlist: Netlist) -> int:
    """Bypass BUF gates (rewire readers to the buffer's input).

    Buffers driving primary outputs are kept so output names survive.
    Returns the number of buffers removed.
    """
    outputs = set(netlist.outputs)
    alias: Dict[str, str] = {}
    for net, gate in netlist.gates.items():
        if gate.gate_type is GateType.BUF and net not in outputs:
            alias[net] = gate.inputs[0]

    def resolve(net: str) -> str:
        seen = []
        while net in alias:
            seen.append(net)
            net = alias[net]
        for name in seen:
            alias[name] = net
        return net

    for net, gate in list(netlist.gates.items()):
        if net in alias:
            continue
        new_inputs = tuple(resolve(i) for i in gate.inputs)
        if new_inputs != gate.inputs:
            netlist.gates[net] = Gate(
                net, new_inputs, gate.table, gate.gate_type
            )
    for latch in netlist.latches.values():
        latch.data = resolve(latch.data)
        if latch.enable is not None:
            latch.enable = resolve(latch.enable)
    for name in alias:
        del netlist.gates[name]
    return len(alias)


def sweep_dead(netlist: Netlist) -> int:
    """Remove gates and latches not in the fanin cone of any output.

    Latch data/enable nets count as uses while the latch is live.
    Returns the number of removed elements.
    """
    live: Set[str] = set()
    frontier = list(netlist.outputs)
    while frontier:
        net = frontier.pop()
        if net in live:
            continue
        live.add(net)
        gate = netlist.gates.get(net)
        if gate is not None:
            frontier.extend(gate.inputs)
        latch = netlist.latches.get(net)
        if latch is not None:
            frontier.append(latch.data)
            if latch.enable is not None:
                frontier.append(latch.enable)

    removed = 0
    for net in list(netlist.gates):
        if net not in live:
            del netlist.gates[net]
            removed += 1
    for net in list(netlist.latches):
        if net not in live:
            del netlist.latches[net]
            removed += 1
    return removed


def clean(netlist: Netlist) -> Tuple[int, int, int]:
    """Constant-propagate, drop buffers, and sweep dead logic.

    Returns ``(folded, buffers, dead)`` counts. The netlist is modified
    in place and re-validated.
    """
    folded = propagate_constants(netlist)
    buffers = sweep_buffers(netlist)
    dead = sweep_dead(netlist)
    netlist.validate()
    return folded, buffers, dead
