"""Gate-level netlist substrate.

This subpackage provides the gate-level intermediate representation used
throughout the reproduction: the binding algorithm generates partial
datapath netlists from it (paper Section 5.2.2, Figure 2), the
switching-activity estimator consumes it (Section 4), and the virtual
FPGA flow elaborates full datapaths into it for simulation.

Public API:

* :class:`~repro.netlist.gates.Netlist` — the IR itself.
* :class:`~repro.netlist.gates.TruthTable` — small boolean functions.
* :mod:`~repro.netlist.blif` — BLIF reader/writer.
* :mod:`~repro.netlist.library` — structural generators (adders,
  multipliers, muxes, registers).
"""

from repro.netlist.gates import Gate, GateType, Netlist, TruthTable
from repro.netlist.blif import parse_blif, write_blif
from repro.netlist.compile import clean_fast, propagate_constants_fast
from repro.netlist.library import (
    build_adder,
    build_addsub,
    build_equality_comparator,
    build_functional_unit,
    build_mux,
    build_partial_datapath,
    build_multiplier,
    build_register,
    build_subtractor,
)

__all__ = [
    "Gate",
    "GateType",
    "Netlist",
    "TruthTable",
    "parse_blif",
    "write_blif",
    "clean_fast",
    "propagate_constants_fast",
    "build_adder",
    "build_addsub",
    "build_equality_comparator",
    "build_functional_unit",
    "build_mux",
    "build_multiplier",
    "build_partial_datapath",
    "build_register",
    "build_subtractor",
]
