"""Structural netlist generators for the resource library.

The paper's resource library contains "a multiplier, an adder, a
register, and multiplexers" (Section 6.1), all single-cycle. These
builders produce flat gate-level netlists for each, mirroring the
pre-existing ``.blif`` instantiations the paper imports in Figure 2:

* ripple-carry adder / subtractor (two's complement, truncating),
* array multiplier (truncated to the datapath width),
* N-input multiplexer with a binary select bus, built as a 2:1 tree
  (unbalanced trees are exactly what creates the ``muxDiff`` glitch
  imbalance the paper optimizes),
* enabled register (bank of D flip-flops).

All builders use bus naming ``<port><bit>`` (e.g. ``a0, a1, ...``) so
netlists compose predictably in :func:`build_partial_datapath` and in
the full datapath elaboration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.gates import GateType, Netlist

#: Operation types understood by :func:`build_functional_unit`.
FU_TYPES = ("add", "sub", "mult")


def bus(name: str, width: int) -> List[str]:
    """Net names of a ``width``-bit bus: ``name0 .. name{width-1}``."""
    return [f"{name}{i}" for i in range(width)]


def select_width(n_inputs: int) -> int:
    """Number of binary select lines for an ``n_inputs``-way mux."""
    if n_inputs < 1:
        raise NetlistError(f"mux needs at least one input, got {n_inputs}")
    return max(1, (n_inputs - 1).bit_length())


def _full_adder(
    netlist: Netlist, a: str, b: str, cin: str
) -> Tuple[str, str]:
    """Add a full adder; returns ``(sum, carry_out)`` nets."""
    axb = netlist.add_simple(GateType.XOR, (a, b))
    total = netlist.add_simple(GateType.XOR, (axb, cin))
    and1 = netlist.add_simple(GateType.AND, (a, b))
    and2 = netlist.add_simple(GateType.AND, (axb, cin))
    carry = netlist.add_simple(GateType.OR, (and1, and2))
    return total, carry


def build_adder(width: int, name: str = "add") -> Netlist:
    """Ripple-carry adder: ``s = a + b`` truncated to ``width`` bits."""
    return _build_addsub(width, subtract=False, name=name)


def build_subtractor(width: int, name: str = "sub") -> Netlist:
    """Ripple-borrow subtractor: ``s = a - b`` (two's complement)."""
    return _build_addsub(width, subtract=True, name=name)


def _build_addsub(width: int, subtract: bool, name: str) -> Netlist:
    if width < 1:
        raise NetlistError(f"adder width must be positive, got {width}")
    netlist = Netlist(name)
    a_bits = [netlist.add_input(net) for net in bus("a", width)]
    b_bits = [netlist.add_input(net) for net in bus("b", width)]
    if subtract:
        b_bits = [netlist.add_simple(GateType.NOT, (b,)) for b in b_bits]
        carry = netlist.add_const(True)
    else:
        carry = netlist.add_const(False)
    for i in range(width):
        total, carry = _full_adder(netlist, a_bits[i], b_bits[i], carry)
        out = netlist.add_simple(GateType.BUF, (total,), f"s{i}")
        netlist.set_output(out)
    return netlist


def build_addsub(width: int, name: str = "addsub") -> Netlist:
    """Adder/subtractor with a ``mode`` input (0 = add, 1 = subtract).

    The textbook sharing structure: ``s = a + (b xor mode) + mode``.
    Used when a bound FU serves both ``add`` and ``sub`` operations
    (they share the adder resource class in the paper's library).
    """
    if width < 1:
        raise NetlistError(f"addsub width must be positive, got {width}")
    netlist = Netlist(name)
    a_bits = [netlist.add_input(net) for net in bus("a", width)]
    b_bits = [netlist.add_input(net) for net in bus("b", width)]
    mode = netlist.add_input("mode")
    b_bits = [
        netlist.add_simple(GateType.XOR, (b, mode)) for b in b_bits
    ]
    carry = mode
    for i in range(width):
        total, carry = _full_adder(netlist, a_bits[i], b_bits[i], carry)
        out = netlist.add_simple(GateType.BUF, (total,), f"s{i}")
        netlist.set_output(out)
    return netlist


def build_multiplier(width: int, name: str = "mult") -> Netlist:
    """Array multiplier, output truncated to ``width`` bits.

    Classic carry-save array: partial products ``a_i & b_j`` are reduced
    with rows of full adders. Only the low ``width`` product bits are
    kept, matching a fixed-width datapath; the deep, unbalanced carry
    chains of this structure are the dominant glitch source in the
    paper's datapaths.
    """
    if width < 1:
        raise NetlistError(f"multiplier width must be positive, got {width}")
    netlist = Netlist(name)
    a_bits = [netlist.add_input(net) for net in bus("a", width)]
    b_bits = [netlist.add_input(net) for net in bus("b", width)]

    # Row 0: partial products of b0.
    row = [
        netlist.add_simple(GateType.AND, (a_bits[k], b_bits[0]))
        for k in range(width)
    ]
    outputs = [row[0]]
    running = row[1:]  # bits width-1 .. 1 of the running sum, LSB first

    for j in range(1, width):
        partial = [
            netlist.add_simple(GateType.AND, (a_bits[k], b_bits[j]))
            for k in range(width - j)
        ]
        carry: Optional[str] = None
        new_running: List[str] = []
        for k, pp in enumerate(partial):
            acc = running[k] if k < len(running) else None
            if acc is None and carry is None:
                total = pp
            elif acc is None:
                total, carry = _half_sum(netlist, pp, carry)
            elif carry is None:
                total, carry = _half_sum(netlist, pp, acc)
            else:
                total, carry = _full_adder(netlist, pp, acc, carry)
            new_running.append(total)
        outputs.append(new_running[0])
        running = new_running[1:]

    for i, net in enumerate(outputs):
        out = netlist.add_simple(GateType.BUF, (net,), f"s{i}")
        netlist.set_output(out)
    return netlist


def _half_sum(netlist: Netlist, a: str, b: str) -> Tuple[str, str]:
    """Half adder; returns ``(sum, carry_out)`` nets."""
    total = netlist.add_simple(GateType.XOR, (a, b))
    carry = netlist.add_simple(GateType.AND, (a, b))
    return total, carry


def build_mux(n_inputs: int, width: int, name: Optional[str] = None) -> Netlist:
    """``n_inputs``-to-1 multiplexer over ``width``-bit data ports.

    Data ports are ``d<i>_<bit>``, the binary select bus is ``sel<k>``,
    and the output bus is ``y<bit>``. A 1-input "mux" degenerates to
    wires (no select). The tree is built pairwise over the input list,
    so an input count that is not a power of two yields the unbalanced
    structure real RTL synthesis produces.
    """
    if n_inputs < 1:
        raise NetlistError(f"mux needs at least one input, got {n_inputs}")
    if width < 1:
        raise NetlistError(f"mux width must be positive, got {width}")
    netlist = Netlist(name or f"mux{n_inputs}")
    data = [
        [netlist.add_input(f"d{i}_{bit}") for bit in range(width)]
        for i in range(n_inputs)
    ]
    if n_inputs == 1:
        for bit in range(width):
            out = netlist.add_simple(GateType.BUF, (data[0][bit],), f"y{bit}")
            netlist.set_output(out)
        return netlist

    selects = [
        netlist.add_input(f"sel{k}") for k in range(select_width(n_inputs))
    ]
    level = data
    for sel_index, sel in enumerate(selects):
        next_level: List[List[str]] = []
        for pair_start in range(0, len(level), 2):
            if pair_start + 1 == len(level):
                next_level.append(level[pair_start])
                continue
            low = level[pair_start]
            high = level[pair_start + 1]
            merged = [
                netlist.add_simple(GateType.MUX, (sel, low[b], high[b]))
                for b in range(width)
            ]
            next_level.append(merged)
        level = next_level
        if len(level) == 1:
            break
    if len(level) != 1:
        raise NetlistError(
            f"mux tree for {n_inputs} inputs did not reduce to one bus"
        )
    for bit in range(width):
        out = netlist.add_simple(GateType.BUF, (level[0][bit],), f"y{bit}")
        netlist.set_output(out)
    return netlist


def build_register(
    width: int, with_enable: bool = True, name: str = "reg"
) -> Netlist:
    """Bank of ``width`` D flip-flops; data ``d<bit>``, output ``q<bit>``.

    With ``with_enable``, an ``en`` input gates the update (implemented
    as a recirculating mux in front of each flop, as on an FPGA).
    """
    if width < 1:
        raise NetlistError(f"register width must be positive, got {width}")
    netlist = Netlist(name)
    data = [netlist.add_input(f"d{bit}") for bit in range(width)]
    enable = netlist.add_input("en") if with_enable else None
    for bit in range(width):
        q_name = f"q{bit}"
        if enable is not None:
            # q <= en ? d : q — recirculation keeps q a latch output net.
            d_mux = netlist.new_net("ce")
            q = netlist.add_latch(d_mux, q_name)
            netlist.add_simple(GateType.MUX, (enable, q, data[bit]), d_mux)
        else:
            q = netlist.add_latch(data[bit], q_name)
        netlist.set_output(q)
    return netlist


def build_equality_comparator(width: int, name: str = "eq") -> Netlist:
    """``y0 = (a == b)`` over ``width``-bit buses (controller helper)."""
    if width < 1:
        raise NetlistError(f"comparator width must be positive, got {width}")
    netlist = Netlist(name)
    a_bits = [netlist.add_input(net) for net in bus("a", width)]
    b_bits = [netlist.add_input(net) for net in bus("b", width)]
    eq_bits = [
        netlist.add_simple(GateType.XNOR, (a_bits[i], b_bits[i]))
        for i in range(width)
    ]
    if len(eq_bits) == 1:
        out = netlist.add_simple(GateType.BUF, (eq_bits[0],), "y0")
    else:
        out = netlist.add_simple(GateType.AND, tuple(eq_bits), "y0")
    netlist.set_output(out)
    return netlist


def build_functional_unit(
    fu_type: str, width: int, name: Optional[str] = None
) -> Netlist:
    """Dispatch to the structural builder for ``fu_type``.

    ``add`` and ``sub`` share the adder resource class in the paper's
    library; ``mult`` is the array multiplier.
    """
    if fu_type == "add":
        return build_adder(width, name or "add")
    if fu_type == "sub":
        return build_subtractor(width, name or "sub")
    if fu_type == "mult":
        return build_multiplier(width, name or "mult")
    raise NetlistError(f"unknown functional unit type {fu_type!r}")


def build_partial_datapath(
    fu_type: str,
    mux_a_size: int,
    mux_b_size: int,
    width: int,
    name: Optional[str] = None,
) -> Netlist:
    """The paper's Figure 2 structure: two input muxes feeding one FU.

    All mux data inputs and select lines are primary inputs of the
    result (they come from registers and the controller in the real
    datapath); the FU result bus ``s*`` is the primary output. This is
    the netlist whose glitch-aware switching activity is precalculated
    for every ``(fu_type, mux_a_size, mux_b_size)`` combination and
    looked up during binding (Section 5.2.2).
    """
    if fu_type not in FU_TYPES:
        raise NetlistError(f"unknown functional unit type {fu_type!r}")
    top = Netlist(name or f"{fu_type}_{mux_a_size}_{mux_b_size}")

    ports_a = _instantiate_mux(top, "a", mux_a_size, width)
    ports_b = _instantiate_mux(top, "b", mux_b_size, width)

    fu = build_functional_unit(fu_type, width)
    fu_ports = {}
    for bit in range(width):
        fu_ports[f"a{bit}"] = ports_a[bit]
        fu_ports[f"b{bit}"] = ports_b[bit]
    out_map = top.instantiate(
        fu,
        fu_ports,
        prefix="u_fu/",
        output_map={f"s{bit}": f"s{bit}" for bit in range(width)},
    )
    for bit in range(width):
        top.set_output(out_map[f"s{bit}"])
    return top


def _instantiate_mux(
    top: Netlist, port: str, n_inputs: int, width: int
) -> List[str]:
    """Place one input mux; returns the mux output bus nets in ``top``."""
    mux = build_mux(n_inputs, width)
    port_map = {}
    for i in range(n_inputs):
        for bit in range(width):
            port_map[f"d{i}_{bit}"] = top.add_input(f"{port}_d{i}_{bit}")
    for k in range(select_width(n_inputs)):
        if f"sel{k}" in mux.inputs:
            port_map[f"sel{k}"] = top.add_input(f"{port}_sel{k}")
    out_map = top.instantiate(mux, port_map, prefix=f"u_mux_{port}/")
    return [out_map[f"y{bit}"] for bit in range(width)]
