"""Worklist netlist cleanup (the compiled elaboration's clean pass).

:func:`repro.netlist.transform.propagate_constants` re-walks the whole
netlist once per folding pass: every pass rebuilds the constant-net
dict and the topological order, so a chain of K dependent constants
costs K full traversals. This module re-implements the fixpoint as a
worklist over a consumers map built once — each pass only visits the
gates that actually read a net that became constant in the previous
pass.

The rewrite sequence is provably identical to the reference pass
structure: within one reference pass every gate folds against the
constant snapshot taken at pass start, so the per-pass fold set and
the fold results are order-independent, and a gate's inputs can only
contain constants discovered in the immediately preceding pass (older
constant inputs were already cofactored away). The worklist's wave
``p`` therefore folds exactly the gates reference pass ``p`` folds,
with the same :func:`~repro.netlist.transform._fold_gate` and the same
cumulative constants — same rewrite count, same final gates.

Buffer and dead-logic sweeps are already linear-time; the reference
implementations run unchanged, so :func:`clean_fast` produces a
netlist byte-identical to :func:`~repro.netlist.transform.clean`
(``tests/netlist/test_clean_fast.py`` pins the equivalence).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netlist.gates import Gate, GateType, Netlist
from repro.netlist.transform import _fold_gate

_CONST_TYPES = (GateType.CONST0, GateType.CONST1)


def make_gate(
    output: str, inputs: Tuple[str, ...], table, gate_type: GateType
) -> Gate:
    """Build a :class:`Gate` skipping the dataclass arity re-check.

    Only for callers that copy an existing gate or template record —
    the table arity is already known to match ``inputs``.
    """
    gate = Gate.__new__(Gate)
    gate.output = output
    gate.inputs = inputs
    gate.table = table
    gate.gate_type = gate_type
    return gate


def propagate_constants_fast(netlist: Netlist) -> int:
    """Worklist version of :func:`~repro.netlist.transform.propagate_constants`.

    Returns the same rewrite count and leaves the same gates dict as
    the reference fixpoint.
    """
    gates = netlist.gates
    consumers: Dict[str, List[str]] = {}
    constants: Dict[str, bool] = {}
    for net, gate in gates.items():
        value = gate.table.is_constant()
        if value is not None:
            constants[net] = value
        for name in gate.inputs:
            readers = consumers.get(name)
            if readers is None:
                consumers[name] = [net]
            else:
                readers.append(net)

    rewrites = 0
    wave = list(constants)
    while wave:
        # Gates reading a net that became constant last wave, each
        # once. Folding only ever removes inputs, so the consumers map
        # built above stays a superset of the live fanout — and a net
        # newly constant this wave was never constant before, hence
        # never cofactored out of any reader.
        dirty: List[str] = []
        seen = set()
        for net in wave:
            for reader in consumers.get(net, ()):
                if reader not in seen:
                    seen.add(reader)
                    dirty.append(reader)
        # Defer new constants to the end of the wave: the reference
        # folds every gate of a pass against the snapshot taken at
        # pass start.
        found: List[Tuple[str, bool]] = []
        for net in dirty:
            gate = gates.get(net)
            if gate is None or gate.gate_type in _CONST_TYPES:
                continue
            new_gate = _fold_gate(gate, constants)
            if new_gate is None:
                continue
            gates[net] = new_gate
            rewrites += 1
            value = new_gate.table.is_constant()
            if value is not None and net not in constants:
                found.append((net, value))
        wave = []
        for net, value in found:
            constants[net] = value
            wave.append(net)
    return rewrites


def sweep_buffers_fast(netlist: Netlist) -> int:
    """Flat version of :func:`~repro.netlist.transform.sweep_buffers`.

    Resolves every buffer alias to its final target up front instead of
    path-compressing lazily per reference, then rewires in one pass.
    Same removals, same rewritten gates, same return count.
    """
    gates = netlist.gates
    outputs = set(netlist.outputs)
    alias: Dict[str, str] = {}
    for net, gate in gates.items():
        if gate.gate_type is GateType.BUF and net not in outputs:
            alias[net] = gate.inputs[0]

    final: Dict[str, str] = {}
    for net in alias:
        target = net
        chain = []
        while target in alias:
            resolved = final.get(target)
            if resolved is not None:
                target = resolved
                break
            chain.append(target)
            target = alias[target]
        for name in chain:
            final[name] = target

    get = final.get
    for net, gate in gates.items():
        if net in alias:
            continue
        old_inputs = gate.inputs
        hit = False
        for name in old_inputs:
            if name in final:
                hit = True
                break
        if not hit:
            continue
        new_inputs = tuple(
            mapped if (mapped := get(name)) is not None else name
            for name in old_inputs
        )
        gates[net] = make_gate(net, new_inputs, gate.table, gate.gate_type)
    for latch in netlist.latches.values():
        latch.data = final.get(latch.data, latch.data)
        if latch.enable is not None:
            latch.enable = final.get(latch.enable, latch.enable)
    for name in alias:
        del gates[name]
    return len(alias)


def sweep_dead_fast(netlist: Netlist) -> int:
    """Flat version of :func:`~repro.netlist.transform.sweep_dead`.

    Same live cone, same removals, same return count; the frontier
    walk just avoids a latch-dict probe for nets that are gates.
    """
    gates = netlist.gates
    latches = netlist.latches
    live = set()
    frontier = list(netlist.outputs)
    while frontier:
        net = frontier.pop()
        if net in live:
            continue
        live.add(net)
        gate = gates.get(net)
        if gate is not None:
            frontier.extend(gate.inputs)
            continue
        latch = latches.get(net)
        if latch is not None:
            frontier.append(latch.data)
            if latch.enable is not None:
                frontier.append(latch.enable)

    removed = 0
    for net in [net for net in gates if net not in live]:
        del gates[net]
        removed += 1
    for net in [net for net in latches if net not in live]:
        del latches[net]
        removed += 1
    return removed


def clean_fast(netlist: Netlist) -> Tuple[int, int, int]:
    """Drop-in for :func:`~repro.netlist.transform.clean`.

    Same ``(folded, buffers, dead)`` counts, same final netlist; each
    pass is the worklist/flat twin of its reference transform.
    """
    folded = propagate_constants_fast(netlist)
    buffers = sweep_buffers_fast(netlist)
    dead = sweep_dead_fast(netlist)
    netlist.validate()
    return folded, buffers, dead
