"""Gate-level netlist intermediate representation.

The IR is deliberately simple: a :class:`Netlist` is a set of named nets,
primary inputs, primary outputs, combinational :class:`Gate` instances
(each driving exactly one net), and D flip-flops. Every combinational
gate carries a :class:`TruthTable`, so estimation and simulation never
need per-type special cases; the :class:`GateType` enum only exists to
keep BLIF output and debugging readable.

The paper's binding algorithm writes partial datapaths in this IR
(Figure 2), the switching-activity estimator of Section 4 walks it, and
the technology mapper covers it with K-input LUTs (which are just gates
whose truth table has K inputs).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import NetlistError


class GateType(enum.Enum):
    """Readable tags for common gate functions.

    ``LUT`` is the generic tag used for mapped look-up tables and for any
    function that does not match a named type.
    """

    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # inputs: (sel, a, b) -> b if sel else a
    LUT = "lut"


class TruthTable:
    """A boolean function of ``n_inputs`` variables.

    The function is stored as a bitmask ``bits``: bit ``i`` holds the
    output for the input combination whose binary encoding is ``i``
    (input 0 is the least-significant bit of ``i``).

    Instances are immutable and hashable, so they can key caches in the
    switching-activity estimator.
    """

    __slots__ = ("n_inputs", "bits")

    def __init__(self, n_inputs: int, bits: int):
        if n_inputs < 0:
            raise NetlistError(f"negative input count: {n_inputs}")
        size = 1 << n_inputs
        mask = (1 << size) - 1
        self.n_inputs = n_inputs
        self.bits = bits & mask

    # -- constructors -------------------------------------------------

    @classmethod
    def constant(cls, value: bool) -> "TruthTable":
        return cls(0, 1 if value else 0)

    @classmethod
    def from_function(cls, n_inputs: int, fn) -> "TruthTable":
        """Build a table by evaluating ``fn(tuple_of_bools) -> bool``."""
        bits = 0
        for i in range(1 << n_inputs):
            inputs = tuple(bool((i >> k) & 1) for k in range(n_inputs))
            if fn(inputs):
                bits |= 1 << i
        return cls(n_inputs, bits)

    @classmethod
    def for_type(cls, gate_type: GateType, n_inputs: int) -> "TruthTable":
        """Truth table for a named gate type with ``n_inputs`` inputs."""
        if gate_type is GateType.CONST0:
            return cls.constant(False)
        if gate_type is GateType.CONST1:
            return cls.constant(True)
        if gate_type is GateType.BUF:
            if n_inputs != 1:
                raise NetlistError("BUF takes exactly one input")
            return cls(1, 0b10)
        if gate_type is GateType.NOT:
            if n_inputs != 1:
                raise NetlistError("NOT takes exactly one input")
            return cls(1, 0b01)
        if gate_type is GateType.MUX:
            if n_inputs != 3:
                raise NetlistError("MUX takes exactly (sel, a, b)")
            # out = b if sel else a; sel is input 0, a input 1, b input 2.
            return cls.from_function(3, lambda v: v[2] if v[0] else v[1])
        if n_inputs < 1:
            raise NetlistError(f"{gate_type.value} needs at least one input")
        if gate_type is GateType.AND:
            return cls.from_function(n_inputs, all)
        if gate_type is GateType.NAND:
            return cls.from_function(n_inputs, lambda v: not all(v))
        if gate_type is GateType.OR:
            return cls.from_function(n_inputs, any)
        if gate_type is GateType.NOR:
            return cls.from_function(n_inputs, lambda v: not any(v))
        if gate_type is GateType.XOR:
            return cls.from_function(n_inputs, lambda v: sum(v) % 2 == 1)
        if gate_type is GateType.XNOR:
            return cls.from_function(n_inputs, lambda v: sum(v) % 2 == 0)
        raise NetlistError(f"no canonical truth table for {gate_type}")

    # -- queries -------------------------------------------------------

    def evaluate(self, inputs: Sequence[bool]) -> bool:
        """Evaluate the function on a concrete input assignment."""
        if len(inputs) != self.n_inputs:
            raise NetlistError(
                f"expected {self.n_inputs} inputs, got {len(inputs)}"
            )
        index = 0
        for k, value in enumerate(inputs):
            if value:
                index |= 1 << k
        return bool((self.bits >> index) & 1)

    def output_column(self) -> List[bool]:
        """All outputs in input-combination order (length ``2**n``)."""
        return [bool((self.bits >> i) & 1) for i in range(1 << self.n_inputs)]

    def cofactor(self, var: int, value: bool) -> "TruthTable":
        """Shannon cofactor with input ``var`` fixed to ``value``.

        The result has ``n_inputs - 1`` inputs; remaining variables keep
        their relative order.
        """
        if not 0 <= var < self.n_inputs:
            raise NetlistError(f"variable {var} out of range")
        n = self.n_inputs - 1
        bits = 0
        for i in range(1 << n):
            low = i & ((1 << var) - 1)
            high = i >> var
            full = low | (int(value) << var) | (high << (var + 1))
            if (self.bits >> full) & 1:
                bits |= 1 << i
        return TruthTable(n, bits)

    def boolean_difference(self, var: int) -> "TruthTable":
        """``dF/dx_var = F|x=1 XOR F|x=0`` (Najm's transition density)."""
        hi = self.cofactor(var, True)
        lo = self.cofactor(var, False)
        return TruthTable(hi.n_inputs, hi.bits ^ lo.bits)

    def depends_on(self, var: int) -> bool:
        """True when the output actually depends on input ``var``."""
        return self.boolean_difference(var).bits != 0

    def support(self) -> List[int]:
        """Indices of inputs the function truly depends on."""
        return [v for v in range(self.n_inputs) if self.depends_on(v)]

    def is_constant(self) -> Optional[bool]:
        """Return the constant value if the function is constant."""
        size = 1 << self.n_inputs
        if self.bits == 0:
            return False
        if self.bits == (1 << size) - 1:
            return True
        return None

    def negate(self) -> "TruthTable":
        size = 1 << self.n_inputs
        return TruthTable(self.n_inputs, self.bits ^ ((1 << size) - 1))

    def permute(self, order: Sequence[int]) -> "TruthTable":
        """Reorder inputs: new input ``k`` is old input ``order[k]``."""
        if sorted(order) != list(range(self.n_inputs)):
            raise NetlistError(f"bad permutation {order!r}")
        bits = 0
        for i in range(1 << self.n_inputs):
            old_index = 0
            for new_pos, old_pos in enumerate(order):
                if (i >> new_pos) & 1:
                    old_index |= 1 << old_pos
            if (self.bits >> old_index) & 1:
                bits |= 1 << i
        return TruthTable(self.n_inputs, bits)

    def classify(self) -> GateType:
        """Best-effort named type for this function (else ``LUT``)."""
        for gate_type in (
            GateType.BUF,
            GateType.NOT,
            GateType.AND,
            GateType.OR,
            GateType.NAND,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ):
            try:
                if TruthTable.for_type(gate_type, self.n_inputs) == self:
                    return gate_type
            except NetlistError:
                continue
        constant = self.is_constant()
        if constant is True:
            return GateType.CONST1
        if constant is False:
            return GateType.CONST0
        return GateType.LUT

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TruthTable)
            and self.n_inputs == other.n_inputs
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.n_inputs, self.bits))

    def __repr__(self) -> str:
        return f"TruthTable({self.n_inputs}, 0b{self.bits:0{1 << self.n_inputs}b})"


@dataclass
class Gate:
    """A combinational gate driving exactly one net."""

    output: str
    inputs: Tuple[str, ...]
    table: TruthTable
    gate_type: GateType = GateType.LUT

    def __post_init__(self) -> None:
        if self.table.n_inputs != len(self.inputs):
            raise NetlistError(
                f"gate {self.output!r}: table arity {self.table.n_inputs} "
                f"!= {len(self.inputs)} inputs"
            )


@dataclass
class Latch:
    """A D flip-flop: ``output`` takes the value of ``data`` each clock."""

    output: str
    data: str
    init: bool = False
    enable: Optional[str] = None


class Netlist:
    """A gate-level netlist with named nets.

    Nets are strings. Primary inputs and flip-flop outputs are sources;
    every other referenced net must be driven by exactly one gate.
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: Dict[str, Gate] = {}
        self.latches: Dict[str, Latch] = {}
        self._fresh = itertools.count()
        # Set mirror of ``inputs``: membership tests during construction
        # must stay O(1) or netlist building goes quadratic in the pad
        # count (every add_gate would scan the primary-input list).
        self._input_set: Set[str] = set()

    def __setstate__(self, state: Dict[str, object]) -> None:
        # Netlists pickled before the input-set mirror existed restore
        # without it; rebuild so membership checks keep working.
        self.__dict__.update(state)
        if "_input_set" not in state:
            self._input_set = set(self.inputs)

    # -- construction --------------------------------------------------

    def new_net(self, prefix: str = "n") -> str:
        """Return a fresh net name not yet used in this netlist."""
        while True:
            name = f"{prefix}{next(self._fresh)}"
            if not self._is_used(name):
                return name

    def _is_used(self, net: str) -> bool:
        return net in self.gates or net in self.latches or net in self._input_set

    def add_input(self, name: Optional[str] = None) -> str:
        net = name if name is not None else self.new_net("pi")
        if self._is_used(net):
            raise NetlistError(f"net {net!r} already driven")
        self.inputs.append(net)
        self._input_set.add(net)
        return net

    def set_output(self, net: str) -> None:
        if net not in self.outputs:
            self.outputs.append(net)

    def add_gate(
        self,
        table: TruthTable,
        inputs: Sequence[str],
        output: Optional[str] = None,
        gate_type: Optional[GateType] = None,
    ) -> str:
        """Add a combinational gate; returns its output net."""
        net = output if output is not None else self.new_net()
        if self._is_used(net):
            raise NetlistError(f"net {net!r} already driven")
        if gate_type is None:
            gate_type = table.classify()
        self.gates[net] = Gate(net, tuple(inputs), table, gate_type)
        return net

    def add_simple(
        self,
        gate_type: GateType,
        inputs: Sequence[str],
        output: Optional[str] = None,
    ) -> str:
        """Add a gate of a named type (arity from ``inputs``)."""
        table = TruthTable.for_type(gate_type, len(inputs))
        return self.add_gate(table, inputs, output, gate_type)

    def add_const(self, value: bool, output: Optional[str] = None) -> str:
        gate_type = GateType.CONST1 if value else GateType.CONST0
        return self.add_gate(TruthTable.constant(value), (), output, gate_type)

    def add_latch(
        self,
        data: str,
        output: Optional[str] = None,
        init: bool = False,
        enable: Optional[str] = None,
    ) -> str:
        net = output if output is not None else self.new_net("q")
        if self._is_used(net):
            raise NetlistError(f"net {net!r} already driven")
        self.latches[net] = Latch(net, data, init, enable)
        return net

    # -- queries --------------------------------------------------------

    def driver(self, net: str) -> Optional[Gate]:
        return self.gates.get(net)

    def is_source(self, net: str) -> bool:
        """True for nets not driven by combinational logic."""
        return net in self._input_set or net in self.latches

    def all_nets(self) -> Set[str]:
        nets: Set[str] = set(self.inputs)
        nets.update(self.gates)
        nets.update(self.latches)
        for gate in self.gates.values():
            nets.update(gate.inputs)
        for latch in self.latches.values():
            nets.add(latch.data)
            if latch.enable is not None:
                nets.add(latch.enable)
        nets.update(self.outputs)
        return nets

    def undriven_nets(self) -> Set[str]:
        """Nets referenced but not driven by anything."""
        driven = set(self.inputs) | set(self.gates) | set(self.latches)
        return {net for net in self.all_nets() if net not in driven}

    def fanout_map(self) -> Dict[str, List[str]]:
        """Map from net to the output nets of gates reading it."""
        fanout: Dict[str, List[str]] = {net: [] for net in self.all_nets()}
        for gate in self.gates.values():
            for net in gate.inputs:
                fanout[net].append(gate.output)
        return fanout

    def num_gates(self) -> int:
        return len(self.gates)

    def num_latches(self) -> int:
        return len(self.latches)

    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling nets or comb. cycles."""
        undriven = self.undriven_nets()
        if undriven:
            sample = sorted(undriven)[:5]
            raise NetlistError(
                f"{self.name}: {len(undriven)} undriven nets, e.g. {sample}"
            )
        self.topological_order()  # raises on a combinational cycle

    # -- traversal ------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Combinational gate outputs in dependence order.

        Sources (primary inputs, latch outputs) are not included. Raises
        :class:`NetlistError` if the combinational logic has a cycle.
        """
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        for root in list(self.gates):
            if root in state:
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                net, phase = stack.pop()
                if phase == 0:
                    if net in state:
                        continue
                    state[net] = 0
                    stack.append((net, 1))
                    gate = self.gates.get(net)
                    if gate is None:
                        continue
                    for fanin in gate.inputs:
                        if fanin in self.gates:
                            mark = state.get(fanin)
                            if mark == 0:
                                raise NetlistError(
                                    f"combinational cycle through {fanin!r}"
                                )
                            if mark is None:
                                stack.append((fanin, 0))
                else:
                    state[net] = 1
                    if net in self.gates:
                        order.append(net)
        return order

    def depth(self) -> int:
        """Longest source-to-output path length, in gate levels."""
        return max(self.levels().values(), default=0)

    def levels(self) -> Dict[str, int]:
        """Unit-delay arrival level per net (sources are level 0)."""
        level: Dict[str, int] = {net: 0 for net in self.inputs}
        for net in self.latches:
            level[net] = 0
        for net in self.topological_order():
            gate = self.gates[net]
            if gate.inputs:
                level[net] = 1 + max(level.get(i, 0) for i in gate.inputs)
            else:
                level[net] = 0
        return level

    def transitive_fanin(self, nets: Iterable[str]) -> Set[str]:
        """All nets in the cone feeding ``nets`` (inclusive)."""
        seen: Set[str] = set()
        stack = list(nets)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            gate = self.gates.get(net)
            if gate is not None:
                stack.extend(gate.inputs)
        return seen

    # -- composition ----------------------------------------------------

    def instantiate(
        self,
        sub: "Netlist",
        port_map: Dict[str, str],
        prefix: str,
        output_map: Optional[Dict[str, str]] = None,
    ) -> Dict[str, str]:
        """Copy ``sub`` into this netlist (paper Figure 2's ``.subckt``).

        ``port_map`` maps the subcircuit's primary input names to nets of
        this netlist. Internal nets and outputs are renamed with
        ``prefix``, except outputs listed in ``output_map``, which take
        the given names (useful to pre-declare nets other logic already
        references). Latches are copied as latches. Returns a map from
        the subcircuit's output names to the new nets here.

        This mirrors the paper's partial-datapath netlist generation:
        "importing existing instantiations of the multiplexers and
        functional units, and making the necessary connections".
        """
        missing = [p for p in sub.inputs if p not in port_map]
        if missing:
            raise NetlistError(
                f"instantiate {sub.name!r}: unconnected inputs {missing}"
            )

        rename: Dict[str, str] = dict(port_map)
        if output_map:
            for sub_net, target in output_map.items():
                if sub_net not in sub.outputs:
                    raise NetlistError(
                        f"instantiate {sub.name!r}: {sub_net!r} is not "
                        f"an output"
                    )
                rename[sub_net] = target

        def resolve(net: str) -> str:
            if net not in rename:
                rename[net] = f"{prefix}{net}"
            return rename[net]

        for net in sub.topological_order():
            gate = sub.gates[net]
            new_inputs = tuple(resolve(i) for i in gate.inputs)
            self.add_gate(gate.table, new_inputs, resolve(net), gate.gate_type)
        for latch in sub.latches.values():
            enable = resolve(latch.enable) if latch.enable else None
            self.add_latch(
                resolve(latch.data), resolve(latch.output), latch.init, enable
            )
        return {out: resolve(out) for out in sub.outputs}

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, pis={len(self.inputs)}, "
            f"pos={len(self.outputs)}, gates={len(self.gates)}, "
            f"latches={len(self.latches)})"
        )


def iter_minterms(table: TruthTable) -> Iterator[Tuple[bool, ...]]:
    """Yield the input combinations for which ``table`` is true."""
    for i in range(1 << table.n_inputs):
        if (table.bits >> i) & 1:
            yield tuple(bool((i >> k) & 1) for k in range(table.n_inputs))
