"""HLPower reproduction: FPGA-targeted glitch-aware high-level binding.

Reproduction of Cromar, Lee & Chen, "FPGA-Targeted High-Level Binding
Algorithm for Power and Area Reduction with Glitch-Estimation"
(DAC 2009). See README.md for a tour and DESIGN.md for the system
inventory and substitution notes.

Typical use::

    from repro import (
        load_benchmark, benchmark_spec, list_schedule,
        FlowConfig, compare_binders,
    )

    spec = benchmark_spec("pr")
    schedule = list_schedule(load_benchmark("pr"), spec.constraints)
    results = compare_binders(schedule, spec.constraints, FlowConfig())
    print(results["hlpower"].power.dynamic_power_mw)
"""

from repro.cdfg import (
    BENCHMARK_NAMES,
    CDFG,
    CORPUS_FAMILIES,
    CORPUS_NAMES,
    Schedule,
    benchmark_spec,
    corpus_instances,
    figure1_example,
    generate_cdfg,
    load_benchmark,
)
from repro.scheduling import (
    alap_schedule,
    asap_schedule,
    force_directed_schedule,
    list_schedule,
)
from repro.binding import (
    BindingSolution,
    HLPowerConfig,
    SATable,
    assign_ports,
    bind_hlpower,
    bind_lopass,
    bind_registers,
)
from repro.rtl import build_datapath, emit_vhdl, mux_report
from repro.flow import (
    ArtifactCache,
    BinderConfig,
    EstimateResult,
    FlowConfig,
    FlowResult,
    Pipeline,
    SweepResult,
    SweepSpec,
    compare_binders,
    expand_grid,
    run_estimate,
    run_flow,
    run_sweep,
)
from repro.hls import HLSConfig, HLSResult, synthesize

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_NAMES",
    "CDFG",
    "CORPUS_FAMILIES",
    "CORPUS_NAMES",
    "Schedule",
    "benchmark_spec",
    "corpus_instances",
    "figure1_example",
    "generate_cdfg",
    "load_benchmark",
    "alap_schedule",
    "asap_schedule",
    "force_directed_schedule",
    "list_schedule",
    "BindingSolution",
    "HLPowerConfig",
    "SATable",
    "assign_ports",
    "bind_hlpower",
    "bind_lopass",
    "bind_registers",
    "build_datapath",
    "emit_vhdl",
    "mux_report",
    "ArtifactCache",
    "BinderConfig",
    "EstimateResult",
    "FlowConfig",
    "FlowResult",
    "Pipeline",
    "SweepResult",
    "SweepSpec",
    "compare_binders",
    "expand_grid",
    "run_estimate",
    "run_flow",
    "run_sweep",
    "HLSConfig",
    "HLSResult",
    "synthesize",
    "__version__",
]
