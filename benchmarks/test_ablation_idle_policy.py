"""Ablation — idle-step control convention (design-choice study).

DESIGN.md calls out the idle-select convention as a load-bearing
modeling choice: a plain FSM decodes idle selects to 0 (our default,
matching the paper's Quartus flow), while a power-aware controller
would hold them (operand isolation). This bench measures the power
cost of the default-zero convention — i.e. how much power the paper's
future-work controller could save — and verifies function is
unaffected.
"""

import pytest

from repro import FlowConfig, benchmark_spec, list_schedule, load_benchmark
from repro.flow import format_table, percent_change, run_flow

from benchmarks.conftest import bench_names, bench_width, write_result


def compare_policies(sa_table):
    names = [n for n in bench_names() if n in ("pr", "wang", "honda")] or (
        list(bench_names())[:2]
    )
    rows = []
    savings = []
    for name in names:
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        results = {}
        for policy in ("zero", "hold"):
            config = FlowConfig(
                width=bench_width(), n_vectors=128,
                sa_table=sa_table, idle_selects=policy,
            )
            results[policy] = run_flow(
                schedule, spec.constraints, "hlpower", config
            )
        delta = percent_change(
            results["zero"].power.dynamic_power_mw,
            results["hold"].power.dynamic_power_mw,
        )
        savings.append(delta)
        rows.append(
            [
                name,
                f"{results['zero'].power.dynamic_power_mw:.2f}",
                f"{results['hold'].power.dynamic_power_mw:.2f}",
                f"{delta:+.1f}",
            ]
        )
    return rows, savings


@pytest.mark.slow
def test_ablation_idle_policy(benchmark, sa_table):
    rows, savings = benchmark.pedantic(
        compare_policies, args=(sa_table,), rounds=1, iterations=1
    )
    text = format_table(
        ["Bench", "Default-0 (mW)", "Hold (mW)", "Change %"],
        rows,
        title=(
            "Ablation: idle control convention — holding selects "
            "(operand isolation) vs plain FSM decode-to-zero"
        ),
    )
    write_result("ablation_idle_policy.txt", text)

    # Operand isolation can only help (it removes spurious FU input
    # changes); require it helps on average.
    assert sum(savings) / len(savings) < 0.0
