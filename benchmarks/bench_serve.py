"""Serve-daemon load benchmark — concurrent estimate traffic, cold vs warm.

Two phases against in-process ``repro serve`` daemons (ephemeral
port, resident executor), each run cold then warm:

1. **Latency probe** — one serial request per distinct configuration
   on a fresh daemon, then again on the now-warm daemon. Serial round
   trips keep connection churn out of the measurement, so the
   cold-vs-warm speedup is exactly what the resident executor's memos
   (elaboration memo, artifact cache, SA table) buy per request.
2. **Load waves** — thousands of genuinely concurrent requests
   cycling over the same configurations, on a second fresh daemon.
   Wall clock here is dominated by single-core connection handling;
   the interesting numbers are error-free completion of every request
   and in-flight deduplication collapsing the duplicates onto ~one
   executor submission per distinct configuration.

Every distinct configuration's response is then byte-checked against
a direct :func:`repro.flow.run.run_estimate` call — the daemon must
be a transparent cache, never an approximation.

Results land in ``BENCH_serve.json`` at the repo root so later PRs can
track the trend.

This is a standalone script (not collected by pytest — the full load
run costs tens of seconds):

    PYTHONPATH=src python benchmarks/bench_serve.py

Knobs (environment variables): ``REPRO_SERVE_REQUESTS`` (default
1000 — all genuinely in flight at once), ``REPRO_SERVE_WIDTHS``
(default ``4,8``), ``REPRO_SERVE_BINDERS`` (default
``lopass,hlpower``), ``REPRO_SERVE_BENCHES`` (default all seven),
``REPRO_SERVE_CACHE_ENTRIES`` (default 2048 — the daemon must be
provisioned to hold the working set, see below).
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro import BENCHMARK_NAMES, benchmark_spec
from repro.cdfg import load_benchmark
from repro.flow import FlowConfig
from repro.flow.run import run_estimate
from repro.scheduling import list_schedule
from repro.serve import FlowServer, ServeConfig

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_serve.json")

N_REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", "1000"))
# A serving daemon must be provisioned for its working set: the
# default 64-entry LRU holds ~12 configs' stage artifacts, and
# cycling through more than that is worst-case eviction order (each
# config's artifacts are gone before it comes around again).
CACHE_ENTRIES = int(os.environ.get("REPRO_SERVE_CACHE_ENTRIES", "2048"))
WIDTHS = [
    int(token) for token in
    os.environ.get("REPRO_SERVE_WIDTHS", "4,8").split(",")
]
BINDERS = os.environ.get(
    "REPRO_SERVE_BINDERS", "lopass,hlpower"
).split(",")
BENCHES = os.environ.get(
    "REPRO_SERVE_BENCHES", ",".join(BENCHMARK_NAMES)
).split(",")

#: The distinct request bodies the load cycles over.
CONFIGS = [
    {"benchmark": bench, "binder": binder, "width": width}
    for bench in BENCHES
    for binder in BINDERS
    for width in WIDTHS
]


async def _estimate_request(port: int, body: dict) -> tuple:
    """One POST /estimate; returns (latency_s, status, payload)."""
    started = time.perf_counter()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode()
    head = (
        f"POST /estimate HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, response_body = raw.partition(b"\r\n\r\n")
    status = int(header.split(None, 2)[1])
    return time.perf_counter() - started, status, response_body


async def _scrape_metrics(port: int) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n"
                 b"Content-Length: 0\r\nConnection: close\r\n\r\n")
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return json.loads(raw.partition(b"\r\n\r\n")[2])


async def _serial_probe(server: FlowServer, label: str) -> tuple:
    """One request per distinct config, sequentially.

    Serial round trips isolate per-request latency from connection
    churn, so the cold-vs-warm comparison measures exactly what the
    resident executor's memos buy."""
    latencies = []
    samples = {}
    started = time.perf_counter()
    for body in CONFIGS:
        latency, status, response = await _estimate_request(
            server.port, body
        )
        if status != 200:
            raise SystemExit(
                f"{label} probe: {body} -> {status}: {response!r}"
            )
        latencies.append(latency)
        key = (body["benchmark"], body["binder"], body["width"])
        samples.setdefault(key, json.loads(response))
    wall = time.perf_counter() - started
    record = {
        "requests": len(CONFIGS),
        "wall_s": round(wall, 3),
        "mean_ms": round(1e3 * sum(latencies) / len(latencies), 2),
        "max_ms": round(1e3 * max(latencies), 2),
    }
    print(f"  {label} probe: {wall:6.2f}s wall, "
          f"mean {record['mean_ms']:8.1f}ms, "
          f"max {record['max_ms']:8.1f}ms per request")
    return record, samples


async def _wave(server: FlowServer, label: str) -> tuple:
    """Fire N_REQUESTS concurrent estimate requests; return
    (wave record, one representative payload per distinct config)."""
    bodies = [CONFIGS[i % len(CONFIGS)] for i in range(N_REQUESTS)]
    before = await _scrape_metrics(server.port)
    started = time.perf_counter()
    outcomes = await asyncio.gather(*[
        _estimate_request(server.port, body) for body in bodies
    ])
    wall = time.perf_counter() - started
    after = await _scrape_metrics(server.port)

    failures = [status for _, status, _ in outcomes if status != 200]
    if failures:
        raise SystemExit(
            f"{label} wave: {len(failures)} non-200 responses "
            f"(first: {failures[0]})"
        )
    latencies = sorted(latency for latency, _, _ in outcomes)
    samples = {}
    for body, (_, _, response) in zip(bodies, outcomes):
        key = (body["benchmark"], body["binder"], body["width"])
        samples.setdefault(key, json.loads(response))

    submissions = (after["executor"]["submissions"]
                   - before["executor"]["submissions"])
    deduped = after["deduped"] - before["deduped"]
    record = {
        "n_requests": N_REQUESTS,
        "wall_s": round(wall, 3),
        "throughput_rps": round(N_REQUESTS / wall, 1),
        "p50_ms": round(1e3 * latencies[len(latencies) // 2], 2),
        "p99_ms": round(1e3 * latencies[int(len(latencies) * 0.99) - 1], 2),
        "max_ms": round(1e3 * latencies[-1], 2),
        "executor_submissions": submissions,
        "deduped": deduped,
        "cache_hit_rate": round(
            after["executor"]["cache"]["hit_rate"], 4
        ),
    }
    print(f"  {label}: {wall:6.2f}s wall, "
          f"{record['throughput_rps']:8.1f} req/s, "
          f"p50 {record['p50_ms']:.1f}ms, p99 {record['p99_ms']:.1f}ms, "
          f"{submissions} executor submissions for {N_REQUESTS} "
          f"requests ({deduped} deduped in flight)")
    return record, samples


def _direct_metrics(body: dict) -> dict:
    spec = benchmark_spec(body["benchmark"])
    schedule = list_schedule(
        load_benchmark(body["benchmark"]), spec.constraints
    )
    config = FlowConfig(width=body["width"], flow="estimate")
    result = run_estimate(
        schedule, spec.constraints, body["binder"], config
    )
    return result.metrics()


async def _run() -> dict:
    print(f"serve load: {N_REQUESTS} concurrent estimate requests over "
          f"{len(CONFIGS)} distinct configs "
          f"({len(BENCHES)} benchmarks x {len(BINDERS)} binders x "
          f"{len(WIDTHS)} widths)")
    # Phase 1 — per-request latency, cold vs warm. Serial round trips
    # on a fresh daemon isolate what the resident memos buy.
    probe_server = FlowServer(
        ServeConfig(port=0, cache_entries=CACHE_ENTRIES)
    )
    await probe_server.start()
    try:
        cold_probe, samples = await _serial_probe(probe_server, "cold")
        warm_probe, _ = await _serial_probe(probe_server, "warm")
    finally:
        await probe_server.stop()
    probe_speedup = cold_probe["wall_s"] / warm_probe["wall_s"]
    print(f"  warm-over-cold latency speedup: {probe_speedup:.1f}x")

    # Phase 2 — sustained concurrency on a second fresh daemon (the
    # probes above would otherwise pre-warm the cold wave). Here
    # connection churn dominates wall clock; the interesting numbers
    # are the error-free completion of every request and the in-flight
    # dedup collapsing ~1000 requests onto ~one submission per
    # distinct config.
    server = FlowServer(ServeConfig(port=0, cache_entries=CACHE_ENTRIES))
    await server.start()
    try:
        cold, _ = await _wave(server, "cold")
        warm, _ = await _wave(server, "warm")
    finally:
        await server.stop()
    load_speedup = cold["wall_s"] / warm["wall_s"]
    print(f"  warm-over-cold load-wall speedup: {load_speedup:.2f}x")

    print(f"\nbyte-checking {len(CONFIGS)} distinct configs against "
          f"direct run_estimate...")
    mismatched = []
    for config in CONFIGS:
        key = (config["benchmark"], config["binder"], config["width"])
        served = samples[key]["metrics"]
        direct = _direct_metrics(config)
        if served != direct:
            mismatched.append(key)
    if mismatched:
        raise SystemExit(
            f"served metrics diverge from run_estimate: {mismatched}"
        )
    print("  all byte-identical")

    return {
        "n_requests": N_REQUESTS,
        "distinct_configs": len(CONFIGS),
        "latency": {
            "cold": cold_probe,
            "warm": warm_probe,
            "warm_speedup": round(probe_speedup, 2),
        },
        "load": {
            "cold": cold,
            "warm": warm,
            "warm_speedup": round(load_speedup, 3),
        },
        "byte_identical_configs": len(CONFIGS),
    }


def main() -> None:
    record = asyncio.run(_run())
    with open(_OUT_PATH, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nresults written to {_OUT_PATH}")


if __name__ == "__main__":
    main()
