"""Component micro-benchmarks (pytest-benchmark timings).

These benches time the individual engines — the binder, the baseline,
the glitch-aware estimator, the mapper and the simulator — so runtime
regressions in any stage are visible. (The HLPower runtime column of
Table 2 comes from ``test_table2_schedule.py``.)
"""

import pytest

from repro import benchmark_spec, list_schedule, load_benchmark
from repro.activity import estimate_switching_activity
from repro.binding import (
    HLPowerConfig,
    assign_ports,
    bind_hlpower,
    bind_lopass,
    bind_registers,
)
from repro.fpga import elaborate_datapath, random_vectors, simulate_design
from repro.netlist.library import build_partial_datapath
from repro.netlist.transform import clean
from repro.rtl import build_datapath
from repro.techmap import map_netlist


@pytest.fixture(scope="module")
def pr_schedule():
    spec = benchmark_spec("pr")
    return list_schedule(load_benchmark("pr"), spec.constraints), spec


@pytest.fixture(scope="module")
def honda_schedule():
    spec = benchmark_spec("honda")
    return list_schedule(load_benchmark("honda"), spec.constraints), spec


def test_perf_hlpower_binding_pr(benchmark, pr_schedule, sa_table):
    schedule, spec = pr_schedule
    registers = bind_registers(schedule)
    ports = assign_ports(schedule.cdfg)
    config = HLPowerConfig(sa_table=sa_table)
    bind_hlpower(schedule, spec.constraints, registers, ports, config)  # warm

    result = benchmark(
        bind_hlpower, schedule, spec.constraints, registers, ports, config
    )
    assert result.fus.constraint_met


def test_perf_hlpower_binding_honda(benchmark, honda_schedule, sa_table):
    schedule, spec = honda_schedule
    registers = bind_registers(schedule)
    ports = assign_ports(schedule.cdfg)
    config = HLPowerConfig(sa_table=sa_table)
    bind_hlpower(schedule, spec.constraints, registers, ports, config)

    result = benchmark(
        bind_hlpower, schedule, spec.constraints, registers, ports, config
    )
    assert result.fus.constraint_met


def test_perf_lopass_binding_pr(benchmark, pr_schedule):
    schedule, spec = pr_schedule
    registers = bind_registers(schedule)
    ports = assign_ports(schedule.cdfg)
    result = benchmark(
        bind_lopass, schedule, spec.constraints, registers, ports
    )
    assert result.fus.allocation() == spec.constraints


def test_perf_register_binding(benchmark, honda_schedule):
    schedule, _ = honda_schedule
    result = benchmark(bind_registers, schedule)
    assert result.n_registers > 0


def test_perf_glitch_estimator(benchmark):
    netlist = build_partial_datapath("mult", 4, 4, 4)
    clean(netlist)
    report = benchmark(estimate_switching_activity, netlist)
    assert report.total > 0


def test_perf_mapper(benchmark):
    netlist = build_partial_datapath("mult", 3, 3, 6)
    clean(netlist)
    result = benchmark(map_netlist, netlist)
    assert result.area > 0


def test_perf_simulator(benchmark, pr_schedule, sa_table):
    schedule, spec = pr_schedule
    solution = bind_hlpower(
        schedule, spec.constraints, config=HLPowerConfig(sa_table=sa_table)
    )
    datapath = build_datapath(solution, width=6)
    design = elaborate_datapath(datapath)
    vectors = random_vectors(
        len(design.pad_nets), 6, lanes=128, seed=1
    )
    sim = benchmark(simulate_design, design, vectors)
    assert sim.comb_toggles > 0
