"""Figure 3 — Average toggle rate.

The paper's bar chart: per-benchmark average toggle rates for LOPASS,
HLPower alpha = 1, and HLPower alpha = 0.5 (average decreases of 8.4%
and 21.9% respectively vs LOPASS). We regenerate the same series and
render it as an ASCII chart.
"""

import statistics

from repro.flow import format_table, percent_change

from benchmarks.conftest import CONFIGS, bench_names, write_result

_LABELS = {
    "lopass": "LOPASS",
    "hlpower_a1": "HLPower a=1",
    "hlpower_a05": "HLPower a=0.5",
}


def build_fig3_series(suite):
    """Whole-design transitions per second of stimulus, in millions.

    Quartus reports an average per-signal rate; the whole-design total
    is the same quantity times the signal count and is what the
    paper's power equation integrates, so it is the faithful basis for
    the LOPASS-vs-HLPower comparison (a per-signal average would be
    silently deflated by HLPower's smaller designs).
    """
    series = {config: {} for config in CONFIGS}
    for name in bench_names():
        for config in CONFIGS:
            result = suite.of(name, config)
            sim = result.simulation
            time_s = result.power.simulated_time_ns * 1e-9 * sim.lanes
            toggles = sim.comb_toggles + sim.register_toggles
            series[config][name] = toggles / time_s / 1e6
    return series


def render_bars(series):
    lines = []
    peak = max(
        rate for rates in series.values() for rate in rates.values()
    )
    scale = 46.0 / peak if peak > 0 else 1.0
    for name in bench_names():
        lines.append(f"{name}:")
        for config in CONFIGS:
            rate = series[config][name]
            bar = "#" * max(1, int(round(rate * scale)))
            lines.append(f"  {_LABELS[config]:14s} {bar} {rate:.2f}")
    return "\n".join(lines)


def test_fig3_toggle_rate(benchmark, suite):
    series = benchmark.pedantic(
        build_fig3_series, args=(suite,), rounds=1, iterations=1
    )

    rows = []
    for name in bench_names():
        rows.append(
            [name]
            + [f"{series[config][name]:.2f}" for config in CONFIGS]
            + [
                f"{percent_change(series['lopass'][name], series['hlpower_a05'][name]):+.1f}",
            ]
        )
    decrease_a1 = statistics.mean(
        percent_change(series["lopass"][n], series["hlpower_a1"][n])
        for n in bench_names()
    )
    decrease_a05 = statistics.mean(
        percent_change(series["lopass"][n], series["hlpower_a05"][n])
        for n in bench_names()
    )
    table = format_table(
        ["Bench", "LOPASS", "HL a=1", "HL a=0.5", "d(a=0.5)%"],
        rows,
        title=(
            "Figure 3: average toggle rate (M transitions/s per signal) — "
            f"measured avg change a=1: {decrease_a1:+.1f}%, "
            f"a=0.5: {decrease_a05:+.1f}% (paper: -8.4%, -21.9%)"
        ),
    )
    write_result(
        "fig3_toggle_rate.txt", table + "\n\n" + render_bars(series)
    )

    # Shape: both HLPower settings lower the average toggle rate vs
    # LOPASS (the paper's claim; on our substrate the alpha ordering
    # between -8.4%/-21.9% is not always preserved — alpha=1 sometimes
    # edges alpha=0.5 on raw toggles while alpha=0.5 wins Table 4's
    # balance; see EXPERIMENTS.md).
    assert decrease_a05 < 0.0
    assert decrease_a1 < 0.0
    assert decrease_a05 <= decrease_a1 + 8.0
