"""Ablation (extension) — port-assignment optimization.

The paper binds operator ports randomly; its reference [2] (Chen &
Cong, ASP-DAC'04) optimizes port orientation of commutative operations
for multiplexer reduction. This bench measures how much of HLPower's
remaining mux cost the cited optimization recovers on top of the
paper's flow.
"""

import statistics

from repro.flow import format_table, percent_change
from repro.binding import optimize_ports
from repro.rtl import mux_report

from benchmarks.conftest import bench_names, write_result


def run_portopt(suite):
    rows = []
    length_gains = []
    for name in bench_names():
        solution = suite.of(name, "hlpower_a05").solution
        before = mux_report(solution)
        optimized, flips = optimize_ports(solution)
        after = mux_report(optimized)
        gain = percent_change(before.fu_mux_length, after.fu_mux_length)
        length_gains.append(gain)
        rows.append(
            [
                name,
                flips,
                f"{before.fu_mux_length}->{after.fu_mux_length}",
                f"{gain:+.1f}",
                f"{before.mux_diff_mean:.2f}->{after.mux_diff_mean:.2f}",
                f"{before.largest_mux}->{after.largest_mux}",
            ]
        )
    return rows, length_gains


def test_ablation_portopt(benchmark, suite):
    rows, gains = benchmark.pedantic(
        run_portopt, args=(suite,), rounds=1, iterations=1
    )
    text = format_table(
        ["Bench", "Flips", "FU mux length", "dLen%", "muxDiff mean",
         "largest"],
        rows,
        title=(
            "Extension: port-assignment optimization [2] applied after "
            "HLPower (paper binds ports randomly)"
        ),
    )
    write_result("ablation_portopt.txt", text)

    # The pass is monotone by construction; it must help on average.
    assert statistics.mean(gains) <= 0.0
    assert all(g <= 1e-9 for g in gains)
