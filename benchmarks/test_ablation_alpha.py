"""Ablation — the alpha weighting coefficient of Equation (4).

The paper reports alpha = 1 (SA only) yielding -6.5% power / -5.1%
area, and alpha = 0.5 yielding -19.3% / -9.1%, i.e. the combination of
SA and muxDiff beats either extreme. This bench sweeps alpha over
{0, 0.25, 0.5, 0.75, 1} on a subset of benchmarks and reports the
power/area/balance trade-off curve.
"""

import statistics

import pytest

from repro import FlowConfig, benchmark_spec, list_schedule, load_benchmark
from repro.binding import assign_ports, bind_registers
from repro.flow import format_table, percent_change, run_flow

from benchmarks.conftest import bench_names, bench_vectors, bench_width, write_result

ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def sweep_alpha(sa_table):
    names = [n for n in bench_names() if n in ("pr", "wang", "honda", "mcm")]
    if not names:
        names = list(bench_names())[:2]
    width = bench_width()
    vectors = max(64, bench_vectors() // 2)
    baselines = {}
    sweeps = {alpha: {} for alpha in ALPHAS}
    for name in names:
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        registers = bind_registers(schedule)
        ports = assign_ports(schedule.cdfg)
        config = FlowConfig(width=width, n_vectors=vectors, sa_table=sa_table)
        baselines[name] = run_flow(
            schedule, spec.constraints, "lopass", config, registers, ports
        )
        for alpha in ALPHAS:
            config = FlowConfig(
                width=width, n_vectors=vectors, alpha=alpha,
                sa_table=sa_table,
            )
            sweeps[alpha][name] = run_flow(
                schedule, spec.constraints, "hlpower", config,
                registers, ports,
            )
    return names, baselines, sweeps


@pytest.mark.slow
def test_ablation_alpha(benchmark, sa_table):
    names, baselines, sweeps = benchmark.pedantic(
        sweep_alpha, args=(sa_table,), rounds=1, iterations=1
    )
    rows = []
    balance_by_alpha = {}
    power_by_alpha = {}
    for alpha in ALPHAS:
        d_power = statistics.mean(
            percent_change(
                baselines[n].power.dynamic_power_mw,
                sweeps[alpha][n].power.dynamic_power_mw,
            )
            for n in names
        )
        d_area = statistics.mean(
            percent_change(
                baselines[n].area_luts, sweeps[alpha][n].area_luts
            )
            for n in names
        )
        balance = statistics.mean(
            sweeps[alpha][n].muxes.mux_diff_mean for n in names
        )
        balance_by_alpha[alpha] = balance
        power_by_alpha[alpha] = d_power
        rows.append(
            [f"{alpha:.2f}", f"{d_power:+.2f}", f"{d_area:+.2f}",
             f"{balance:.2f}"]
        )
    text = format_table(
        ["alpha", "dPower% vs LOPASS", "dArea%", "muxDiff mean"],
        rows,
        title=(
            "Ablation: alpha sweep (paper: a=1 -> -6.5% power, "
            "a=0.5 -> -19.3%)"
        ),
    )
    write_result("ablation_alpha.txt", text)

    # The muxDiff term must do its job: balance improves as alpha
    # decreases from 1 toward 0 (monotone within noise).
    assert balance_by_alpha[0.0] <= balance_by_alpha[1.0] + 0.3
    # Every alpha produces a valid flow with measurable power.
    for alpha in ALPHAS:
        for name in names:
            assert sweeps[alpha][name].power.dynamic_power_mw > 0
