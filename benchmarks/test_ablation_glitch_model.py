"""Ablation — glitch-aware vs zero-delay switching-activity estimation.

The paper's core premise: glitches are a major, *estimable* component
of dynamic activity ("glitches can account for up to 19% of the total
power", and much more of the dynamic part). This bench quantifies, on
the actual partial datapaths the binder scores, how much activity the
unit-delay glitch model sees that a zero-delay model misses — and
checks the estimator's glitch fraction against the glitch fraction the
exact simulation measures on full designs.
"""

from repro import FlowConfig, benchmark_spec, list_schedule, load_benchmark
from repro.activity import estimate_switching_activity
from repro.flow import format_table, run_flow
from repro.netlist.library import build_partial_datapath
from repro.netlist.transform import clean

from benchmarks.conftest import bench_names, bench_width, write_result


def partial_datapath_deltas():
    rows = []
    for fu_class in ("add", "mult"):
        for sizes in ((1, 1), (3, 3), (6, 6), (2, 8)):
            netlist = build_partial_datapath(fu_class, *sizes, 4)
            clean(netlist)
            aware = estimate_switching_activity(netlist, glitch_aware=True)
            blind = estimate_switching_activity(netlist, glitch_aware=False)
            rows.append(
                [
                    f"{fu_class}({sizes[0]},{sizes[1]})",
                    f"{blind.total:.1f}",
                    f"{aware.total:.1f}",
                    f"{aware.glitch_fraction:.1%}",
                ]
            )
    return rows


def test_ablation_glitch_model(benchmark, sa_table):
    rows = benchmark(partial_datapath_deltas)
    text = format_table(
        ["Partial datapath", "Zero-delay SA", "Glitch-aware SA", "Glitch %"],
        rows,
        title="Ablation: zero-delay vs unit-delay glitch-aware estimation",
    )

    # A simulated cross-check on one small full design.
    name = "pr" if "pr" in bench_names() else bench_names()[0]
    spec = benchmark_spec(name)
    schedule = list_schedule(load_benchmark(name), spec.constraints)
    result = run_flow(
        schedule,
        spec.constraints,
        "hlpower",
        FlowConfig(width=min(6, bench_width()), n_vectors=64,
                   sa_table=sa_table),
    )
    estimated_fraction = result.mapping.glitch_fraction
    text += (
        f"\n\n{name}: estimated glitch fraction of the mapped design: "
        f"{estimated_fraction:.1%} (paper: glitches up to 19% of total "
        f"power, more of dynamic power)"
    )
    write_result("ablation_glitch_model.txt", text)

    # Every structure must show the glitch model seeing extra activity.
    for row in rows:
        assert float(row[2]) > float(row[1])
    # The estimator attributes a substantial share to glitches.
    assert estimated_fraction > 0.10
