"""Ablation — precalculated SA table vs dynamic SA estimation.

Section 5.2.2: "Experimental results show that this method [the
precalculated table] provided us with the same results as running the
algorithm with dynamic SA estimation, but with a much shorter run
time." We verify both halves: identical binding solutions, and a large
speedup for the (warm) table.
"""

import time

import pytest

from repro import benchmark_spec, list_schedule, load_benchmark
from repro.binding import (
    HLPowerConfig,
    SATable,
    assign_ports,
    bind_hlpower,
    bind_registers,
)
from repro.binding.sa_table import SATableConfig
from repro.flow import format_table

from benchmarks.conftest import bench_names, write_result


class DynamicSATable(SATable):
    """An SA 'table' that never caches — every lookup re-estimates."""

    def get(self, fu_class, mux_a, mux_b):
        key = self.normalize(fu_class, mux_a, mux_b)
        return self._estimate(key)


def compare_modes(sa_table):
    names = [n for n in bench_names() if n in ("pr", "wang")] or list(
        bench_names()
    )[:1]
    rows = []
    all_identical = True
    speedups = []
    for name in names:
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        registers = bind_registers(schedule)
        ports = assign_ports(schedule.cdfg)

        started = time.perf_counter()
        cached = bind_hlpower(
            schedule, spec.constraints, registers, ports,
            HLPowerConfig(sa_table=sa_table),
        )
        cached_time = time.perf_counter() - started

        dynamic_table = DynamicSATable(sa_table.config)
        started = time.perf_counter()
        dynamic = bind_hlpower(
            schedule, spec.constraints, registers, ports,
            HLPowerConfig(sa_table=dynamic_table),
        )
        dynamic_time = time.perf_counter() - started

        identical = [sorted(u.ops) for u in cached.fus.units] == [
            sorted(u.ops) for u in dynamic.fus.units
        ]
        all_identical &= identical
        speedup = dynamic_time / max(cached_time, 1e-9)
        speedups.append(speedup)
        rows.append(
            [name, identical, f"{cached_time:.3f}", f"{dynamic_time:.3f}",
             f"{speedup:.1f}x"]
        )
    return rows, all_identical, speedups


@pytest.mark.slow
def test_ablation_sa_table(benchmark, sa_table):
    # Warm the table first so the cached run measures lookups only.
    for name in bench_names():
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        bind_hlpower(
            schedule, spec.constraints,
            config=HLPowerConfig(sa_table=sa_table),
        )
    rows, all_identical, speedups = benchmark.pedantic(
        compare_modes, args=(sa_table,), rounds=1, iterations=1
    )
    text = format_table(
        ["Bench", "Identical binding", "Table (s)", "Dynamic (s)", "Speedup"],
        rows,
        title=(
            "Ablation: precalculated SA table vs dynamic estimation "
            "(paper: identical results, much faster)"
        ),
    )
    write_result("ablation_sa_table.txt", text)

    assert all_identical
    assert max(speedups) > 2.0
