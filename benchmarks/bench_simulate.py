"""Simulator kernel benchmark — the first point on the perf trajectory.

Times :func:`repro.fpga.simulate_design` on the largest paper benchmark
("chem": 171 adds / 176 mults, Table 1) with both kernels, checks they
agree byte-for-byte, and writes the numbers to ``BENCH_sim.json`` at
the repo root so later PRs can track the trend. A ``batched`` section
times :func:`repro.fpga.simulate_batch` over a mixed config set
(stimulus x idle policy x jitter) against the same configs run solo.

This is a standalone script (not collected by pytest — the reference
kernel alone costs tens of seconds):

    PYTHONPATH=src python benchmarks/bench_simulate.py

Knobs (environment variables): ``REPRO_SIM_BENCH`` (default ``chem``),
``REPRO_SIM_WIDTH`` (default 8), ``REPRO_SIM_VECTORS`` (default 256),
``REPRO_SIM_REPEATS`` (default 3; best-of timing, reference runs once).
"""

from __future__ import annotations

import json
import os
import time

from repro import benchmark_spec, list_schedule, load_benchmark
from repro.binding import assign_ports, bind_lopass, bind_registers
from repro.fpga import (
    BatchConfig,
    ElaboratedDesign,
    elaborate_datapath,
    random_vectors,
    simulate_batch,
    simulate_design,
)
from repro.rtl import build_datapath
from repro.techmap import map_netlist

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_sim.json")

BENCH = os.environ.get("REPRO_SIM_BENCH", "chem")
WIDTH = int(os.environ.get("REPRO_SIM_WIDTH", "8"))
VECTORS = int(os.environ.get("REPRO_SIM_VECTORS", "256"))
REPEATS = int(os.environ.get("REPRO_SIM_REPEATS", "3"))


def build_design():
    """Elaborate + map the benchmark once (not part of the timing)."""
    spec = benchmark_spec(BENCH)
    schedule = list_schedule(load_benchmark(BENCH), spec.constraints)
    registers = bind_registers(schedule)
    ports = assign_ports(schedule.cdfg)
    solution = bind_lopass(schedule, spec.constraints, registers, ports)
    datapath = build_datapath(solution, WIDTH)
    design = elaborate_datapath(datapath)
    mapping = map_netlist(design.netlist, k=4)
    mapped = ElaboratedDesign(
        datapath,
        mapping.netlist,
        design.pad_nets,
        design.register_nets,
        design.fu_nets,
        design.control_nets,
        design.output_nets,
    )
    vectors = random_vectors(
        len(schedule.cdfg.primary_inputs), WIDTH, VECTORS, seed=7
    )
    return mapped, vectors


def time_kernel(design, vectors, kernel: str, repeats: int):
    """Best-of-``repeats`` wall time plus the last result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = simulate_design(design, vectors, kernel=kernel)
        best = min(best, time.perf_counter() - started)
    return best, result


def batched_section(design, vectors) -> dict:
    """Batched kernel vs the same configs run solo, byte-checked."""
    n_pads = len(design.datapath.cdfg.primary_inputs)
    alt = random_vectors(n_pads, WIDTH, VECTORS, seed=8)
    configs = [
        BatchConfig(stimulus, idle, jitter)
        for stimulus in (vectors, alt)
        for idle in ("zero", "hold")
        for jitter in (0, 1)
    ]

    def run_solo():
        return [
            simulate_design(design, c.vectors, idle_selects=c.idle_selects,
                            delay_jitter=c.delay_jitter)
            for c in configs
        ]

    # Warm both paths (compile + codegen caches), then best-of time.
    run_solo()
    simulate_batch(design, configs)
    solo_s = float("inf")
    batch_s = float("inf")
    solo = batched = None
    for _ in range(max(1, REPEATS)):
        started = time.perf_counter()
        solo = run_solo()
        solo_s = min(solo_s, time.perf_counter() - started)
        started = time.perf_counter()
        batched = simulate_batch(design, configs)
        batch_s = min(batch_s, time.perf_counter() - started)
    if batched != solo:
        raise SystemExit("batched kernel disagrees with solo runs")
    print(f"  batched ({len(configs)} configs): {batch_s:8.3f} s "
          f"vs solo total {solo_s:8.3f} s "
          f"({solo_s / batch_s:.2f}x)")
    return {
        "n_configs": len(configs),
        "solo_total_s": round(solo_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup": round(solo_s / batch_s, 2),
        "byte_identical": True,
    }


def main() -> int:
    print(f"building {BENCH} (width={WIDTH}, vectors={VECTORS}) ...")
    design, vectors = build_design()
    netlist = design.netlist
    print(f"  mapped netlist: {netlist.num_gates()} LUTs, "
          f"{netlist.num_latches()} FFs")

    # Warm the compile cache so the event timing is the steady-state
    # per-call cost (the compiled netlist is reused across calls).
    simulate_design(design, vectors)
    event_s, event = time_kernel(design, vectors, "event", REPEATS)
    print(f"  event kernel:     {event_s:8.3f} s")
    reference_s, reference = time_kernel(design, vectors, "reference", 1)
    print(f"  reference kernel: {reference_s:8.3f} s")
    if event != reference:
        raise SystemExit("kernels disagree — refusing to record timings")

    payload = {
        "benchmark": BENCH,
        "width": WIDTH,
        "n_vectors": VECTORS,
        "luts": netlist.num_gates(),
        "flipflops": netlist.num_latches(),
        "total_toggles": event.total_toggles,
        "event_s": round(event_s, 4),
        "reference_s": round(reference_s, 4),
        "speedup": round(reference_s / event_s, 2),
        "byte_identical": True,
        "batched": batched_section(design, vectors),
        "recorded": time.strftime("%Y-%m-%d"),
    }
    with open(_OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"  speedup: {payload['speedup']}x  -> {_OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
