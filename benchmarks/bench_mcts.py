"""MCTS binder bench — heuristic-to-oracle gap closed vs search budget.

For every oracle-feasible classic corpus instance (the same 62-instance
slice `repro corpus --oracle` tabulates) this script records the
branch-and-bound objective (total FU mux inputs) of:

* the better of the two heuristics (HLPower / LOPASS fast paths) — the
  MCTS binder's incumbent baseline;
* the exact optimum (``bind_optimal``) — the floor;
* the MCTS binder at each budget on the curve.

Per budget it reports how many instances strictly improved on the best
heuristic, how many landed exactly on the oracle, and the aggregate
**gap closed**: ``(best_heuristic - mcts) / (best_heuristic - oracle)``
summed over the instances where the heuristics are not already optimal.
Budget 0 is on the default curve deliberately — it must close 0% of
the gap (the degenerate search returns the incumbent untouched), which
pins the curve's origin.

The run **fails loudly** if any (instance, budget) point is worse than
the best heuristic (the search's never-regress contract) or better
than the oracle (a costing bug), or if the largest budget improves
nowhere.

Results land in ``BENCH_mcts.json`` at the repo root. Standalone
script, not collected by pytest:

    PYTHONPATH=src python benchmarks/bench_mcts.py

Knobs (environment variables): ``REPRO_MCTS_BUDGETS`` (comma-separated
curve, default ``0,32,128,256``), ``REPRO_MCTS_SEED`` (default 1),
``REPRO_MCTS_LIMIT`` (cap the instance count, for smoke runs).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.binding import bind_optimal
from repro.binding.compile import bind_hlpower_fast, bind_lopass_fast
from repro.binding.mcts import MCTSConfig, bind_mcts
from repro.cdfg import load_benchmark
from repro.cdfg.corpus import (
    classic_corpus_names,
    corpus_instances,
    oracle_feasible,
)
from repro.flow.run import prepare_flow_inputs
from repro.rtl.metrics import mux_report
from repro.scheduling import list_schedule

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_mcts.json")

BUDGETS = tuple(
    int(token)
    for token in os.environ.get("REPRO_MCTS_BUDGETS", "0,32,128,256").split(",")
    if token.strip()
)
SEED = int(os.environ.get("REPRO_MCTS_SEED", "1"))
LIMIT = int(os.environ.get("REPRO_MCTS_LIMIT", "0"))


def oracle_slice():
    classic = set(classic_corpus_names())
    instances = [
        instance for instance in corpus_instances()
        if instance.name in classic and oracle_feasible(instance)
    ]
    return instances[:LIMIT] if LIMIT else instances


def length_of(solution) -> int:
    return mux_report(solution).fu_mux_length


def measure_instance(instance) -> dict:
    schedule = list_schedule(
        load_benchmark(instance.name), instance.constraints
    )
    registers, ports = prepare_flow_inputs(schedule)
    limits = instance.constraints
    best_heuristic = min(
        length_of(bind_hlpower_fast(schedule, limits, registers, ports)),
        length_of(bind_lopass_fast(schedule, limits, registers, ports)),
    )
    oracle = length_of(bind_optimal(schedule, limits, registers, ports))
    points = {}
    for budget in BUDGETS:
        start = time.perf_counter()
        mcts = length_of(bind_mcts(
            schedule, limits, registers, ports,
            MCTSConfig(budget=budget, seed=SEED),
        ))
        wall = time.perf_counter() - start
        if mcts > best_heuristic:
            raise SystemExit(
                f"REGRESSION: {instance.name} budget {budget}: mcts "
                f"{mcts} > best heuristic {best_heuristic}"
            )
        if mcts < oracle:
            raise SystemExit(
                f"COSTING BUG: {instance.name} budget {budget}: mcts "
                f"{mcts} < oracle {oracle}"
            )
        points[budget] = {"mux_length": mcts, "wall_s": round(wall, 4)}
    return {
        "instance": instance.name,
        "best_heuristic": best_heuristic,
        "oracle": oracle,
        "points": points,
    }


def summarize(rows, budget) -> dict:
    improved = sum(
        1 for row in rows
        if row["points"][budget]["mux_length"] < row["best_heuristic"]
    )
    at_oracle = sum(
        1 for row in rows
        if row["points"][budget]["mux_length"] == row["oracle"]
    )
    gapped = [row for row in rows if row["best_heuristic"] > row["oracle"]]
    closed = sum(
        row["best_heuristic"] - row["points"][budget]["mux_length"]
        for row in gapped
    )
    gap = sum(row["best_heuristic"] - row["oracle"] for row in gapped)
    return {
        "budget": budget,
        "improved": improved,
        "at_oracle": at_oracle,
        "instances_with_gap": len(gapped),
        "gap_closed": round(closed / gap, 4) if gap else 1.0,
        "total_wall_s": round(
            sum(row["points"][budget]["wall_s"] for row in rows), 3
        ),
    }


def main() -> int:
    instances = oracle_slice()
    print(f"bench_mcts: {len(instances)} oracle-feasible instances, "
          f"budgets {list(BUDGETS)}, seed {SEED}")
    rows = [measure_instance(instance) for instance in instances]
    curve = [summarize(rows, budget) for budget in BUDGETS]
    for point in curve:
        print(f"  budget {point['budget']:5d}: improved "
              f"{point['improved']:3d}/{len(rows)}  at-oracle "
              f"{point['at_oracle']:3d}  gap closed "
              f"{point['gap_closed'] * 100:6.2f}%  "
              f"{point['total_wall_s']:.2f}s")

    top = curve[-1]
    if max(BUDGETS) > 0 and summarize(rows, max(BUDGETS))["improved"] == 0:
        print("FAIL: the largest budget improved on the heuristics "
              "nowhere", file=sys.stderr)
        return 1
    if 0 in BUDGETS and summarize(rows, 0)["gap_closed"] != 0.0:
        print("FAIL: budget 0 must close exactly 0% of the gap",
              file=sys.stderr)
        return 1

    payload = {
        "bench": "mcts",
        "seed": SEED,
        "budgets": list(BUDGETS),
        "n_instances": len(rows),
        "curve": curve,
        "instances": rows,
    }
    with open(_OUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {_OUT_PATH} (top budget {top['budget']}: "
          f"{top['improved']}/{len(rows)} improved, "
          f"{top['gap_closed'] * 100:.2f}% of the gap closed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
