"""Ablations — beta scaling and simulator delay spread.

Two smaller design-choice studies DESIGN.md calls out:

* **beta**: Equation (4)'s per-class scale factor ("beta ~= 30 for add
  operations, and 1000 for mult", calibrated to the authors' SA
  magnitudes). We sweep beta for the mult class and check the binder
  stays valid and the balance trend responds.
* **delay jitter**: the measurement simulator's per-gate delay spread
  (0 = the paper's pure unit-delay model; >0 models routed-delay
  spread). Functional results must be invariant; transition counts may
  only grow.
"""

import pytest

from repro import FlowConfig, benchmark_spec, list_schedule, load_benchmark
from repro.binding import HLPowerConfig, bind_hlpower
from repro.flow import format_table, run_flow
from repro.rtl import mux_report

from benchmarks.conftest import bench_names, bench_width, write_result


def sweep_beta(sa_table):
    name = "mcm" if "mcm" in bench_names() else bench_names()[0]
    spec = benchmark_spec(name)
    schedule = list_schedule(load_benchmark(name), spec.constraints)
    rows = []
    for beta_mult in (30.0, 100.0, 1000.0, 10000.0):
        solution = bind_hlpower(
            schedule,
            spec.constraints,
            config=HLPowerConfig(
                alpha=0.5,
                beta={"add": 30.0, "mult": beta_mult},
                sa_table=sa_table,
            ),
        )
        solution.validate()
        report = mux_report(solution)
        rows.append(
            [
                f"{beta_mult:.0f}",
                f"{report.mux_diff_mean:.2f}",
                f"{report.mux_diff_variance:.2f}",
                report.mux_length,
            ]
        )
    return name, rows


def test_ablation_beta(benchmark, sa_table):
    name, rows = benchmark.pedantic(
        sweep_beta, args=(sa_table,), rounds=1, iterations=1
    )
    text = format_table(
        ["beta(mult)", "muxDiff mean", "variance", "mux length"],
        rows,
        title=f"Ablation: beta sweep for the mult class on {name}",
    )
    write_result("ablation_beta.txt", text)
    assert len(rows) == 4


def compare_jitter(sa_table):
    name = "pr" if "pr" in bench_names() else bench_names()[0]
    spec = benchmark_spec(name)
    schedule = list_schedule(load_benchmark(name), spec.constraints)
    rows = []
    toggles = {}
    for jitter in (0, 2, 4):
        config = FlowConfig(
            width=min(6, bench_width()), n_vectors=96,
            sa_table=sa_table, delay_jitter=jitter,
        )
        result = run_flow(schedule, spec.constraints, "hlpower", config)
        toggles[jitter] = result.simulation.comb_toggles
        rows.append(
            [
                jitter,
                result.simulation.comb_toggles,
                f"{result.power.dynamic_power_mw:.2f}",
            ]
        )
    return name, rows, toggles


@pytest.mark.slow
def test_ablation_delay_jitter(benchmark, sa_table):
    name, rows, toggles = benchmark.pedantic(
        compare_jitter, args=(sa_table,), rounds=1, iterations=1
    )
    text = format_table(
        ["delay jitter", "comb toggles", "dynamic power (mW)"],
        rows,
        title=(
            f"Ablation: per-gate delay spread on {name} "
            "(0 = paper's unit-delay model)"
        ),
    )
    write_result("ablation_delay_jitter.txt", text)

    # Functional check is inside run_flow (check_function=True), so
    # reaching here means outputs matched under every jitter. Delay
    # spread should not reduce transitions materially.
    assert toggles[4] >= toggles[0] * 0.9
