"""Table 1 — Benchmark Profiles.

Regenerates the paper's benchmark profile table from our synthetic
CDFGs and asserts the published PI/PO/add/mult counts are matched
exactly (the edge count uses our binary-op convention; see
EXPERIMENTS.md).
"""

from repro import benchmark_spec, load_benchmark
from repro.flow import format_table

from benchmarks.conftest import bench_names, write_result


def build_table1_rows():
    rows = []
    for name in bench_names():
        spec = benchmark_spec(name)
        cdfg = load_benchmark(name)
        rows.append(
            [
                name,
                len(cdfg.primary_inputs),
                len(cdfg.primary_outputs),
                cdfg.num_operations("add"),
                cdfg.num_operations("mult"),
                cdfg.num_edges(),
                spec.paper_edges,
            ]
        )
    return rows


def test_table1_profiles(benchmark):
    rows = benchmark(build_table1_rows)
    text = format_table(
        ["Bench", "PIs", "POs", "Adds", "Mults", "Edges", "Paper edges"],
        rows,
        title="Table 1: Benchmark Profiles (ours vs paper)",
    )
    write_result("table1.txt", text)

    for row in rows:
        spec = benchmark_spec(row[0])
        assert row[1] == spec.profile.n_inputs
        assert row[2] == spec.profile.n_outputs
        assert row[3] == spec.profile.n_adds
        assert row[4] == spec.profile.n_mults
        assert abs(row[5] - row[6]) <= 0.35 * row[6]
