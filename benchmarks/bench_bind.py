"""Bind-stage benchmark — seed binders vs the vectorized engines.

Times the bind stage on the largest paper benchmark ("chem" by
default) for both binders three ways, asserting identical binding
solutions throughout:

1. **reference** — the seed binders (``bind_engine="reference"``):
   HLPower's per-edge Python weight dicts and the networkx min-cost
   flow of the LOPASS baseline;
2. **fast (cold)** — the vectorized engines of
   :mod:`repro.binding.compile` with an empty :class:`BindMemo`, the
   cost of a first-ever bind stage;
3. **fast (warm memo)** — the fast HLPower engine re-run against the
   memo the cold run filled, the cost of a bind stage in a sweep
   whose sibling cells (e.g. another alpha) already weighted the same
   matching rounds (the memo is shared through the flow's artifact
   cache; LOPASS takes no memo and is re-timed cold).

Results land in ``BENCH_bind.json`` at the repo root so later PRs can
track the trend; the recorded per-binder and combined
``speedup_cold`` are the headline numbers (medians over
``REPRO_BIND_TRIALS`` runs).

Standalone script (not collected by pytest):

    PYTHONPATH=src python benchmarks/bench_bind.py

Knobs (environment variables): ``REPRO_BIND_BENCH`` (default
``chem``), ``REPRO_BIND_TRIALS`` (default 5).
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro import benchmark_spec
from repro.binding import SATable, bind_hlpower, bind_lopass
from repro.binding.compile import (
    BindMemo,
    bind_hlpower_fast,
    bind_lopass_fast,
)
from repro.binding.hlpower import HLPowerConfig
from repro.cdfg import load_benchmark
from repro.flow.run import prepare_flow_inputs
from repro.scheduling import list_schedule

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_bind.json")
_TABLE_PATH = os.path.join(_REPO_ROOT, "data", "sa_table.txt")

BENCH = os.environ.get("REPRO_BIND_BENCH", "chem")
TRIALS = int(os.environ.get("REPRO_BIND_TRIALS", "5"))


def _check_identical(reference, fast) -> None:
    if len(reference.fus.units) != len(fast.fus.units) or any(
        (a.fu_id, a.fu_class, a.ops) != (b.fu_id, b.fu_class, b.ops)
        for a, b in zip(reference.fus.units, fast.fus.units)
    ):
        raise SystemExit("fast binding engine diverged from the seed binder")


def main() -> None:
    spec = benchmark_spec(BENCH)
    schedule = list_schedule(load_benchmark(BENCH), spec.constraints)
    registers, ports = prepare_flow_inputs(schedule)
    table = SATable(path=_TABLE_PATH)
    hl_cfg = HLPowerConfig(sa_table=table)
    n_ops = len(schedule.cdfg.operations)
    print(f"{BENCH}: {n_ops} operations to bind, {TRIALS} trials")

    times = {key: [] for key in (
        "hl_ref", "hl_cold", "hl_warm", "lo_ref", "lo_cold"
    )}
    memo_stats = {}
    for _ in range(TRIALS):
        started = time.perf_counter()
        hl_ref = bind_hlpower(
            schedule, spec.constraints, registers, ports, hl_cfg
        )
        times["hl_ref"].append(time.perf_counter() - started)

        memo = BindMemo()
        started = time.perf_counter()
        hl_fast = bind_hlpower_fast(
            schedule, spec.constraints, registers, ports, hl_cfg, memo
        )
        times["hl_cold"].append(time.perf_counter() - started)

        started = time.perf_counter()
        hl_warm = bind_hlpower_fast(
            schedule, spec.constraints, registers, ports, hl_cfg, memo
        )
        times["hl_warm"].append(time.perf_counter() - started)
        memo_stats = memo.stats()

        started = time.perf_counter()
        lo_ref = bind_lopass(schedule, spec.constraints, registers, ports)
        times["lo_ref"].append(time.perf_counter() - started)

        started = time.perf_counter()
        lo_fast = bind_lopass_fast(
            schedule, spec.constraints, registers, ports
        )
        times["lo_cold"].append(time.perf_counter() - started)

        _check_identical(hl_ref, hl_fast)
        _check_identical(hl_ref, hl_warm)
        _check_identical(lo_ref, lo_fast)

    med = {key: statistics.median(values) for key, values in times.items()}
    ref_total = med["hl_ref"] + med["lo_ref"]
    cold_total = med["hl_cold"] + med["lo_cold"]
    speedup_cold = ref_total / cold_total
    print(f"  hlpower reference : {med['hl_ref'] * 1e3:7.1f}ms")
    print(f"  hlpower fast cold : {med['hl_cold'] * 1e3:7.1f}ms  "
          f"({med['hl_ref'] / med['hl_cold']:.2f}x)")
    print(f"  hlpower fast warm : {med['hl_warm'] * 1e3:7.1f}ms  "
          f"({med['hl_ref'] / med['hl_warm']:.2f}x, "
          f"{memo_stats['entries']} memo blocks)")
    print(f"  lopass  reference : {med['lo_ref'] * 1e3:7.1f}ms")
    print(f"  lopass  fast cold : {med['lo_cold'] * 1e3:7.1f}ms  "
          f"({med['lo_ref'] / med['lo_cold']:.2f}x)")
    print(f"  both binders cold : {ref_total * 1e3:.1f}ms -> "
          f"{cold_total * 1e3:.1f}ms ({speedup_cold:.2f}x)")

    record = {
        "benchmark": BENCH,
        "n_operations": n_ops,
        "trials": TRIALS,
        "hlpower_reference_s": round(med["hl_ref"], 4),
        "hlpower_fast_cold_s": round(med["hl_cold"], 4),
        "hlpower_fast_warm_s": round(med["hl_warm"], 4),
        "hlpower_speedup_cold": round(med["hl_ref"] / med["hl_cold"], 3),
        "hlpower_speedup_warm": round(med["hl_ref"] / med["hl_warm"], 3),
        "lopass_reference_s": round(med["lo_ref"], 4),
        "lopass_fast_cold_s": round(med["lo_cold"], 4),
        "lopass_speedup_cold": round(med["lo_ref"] / med["lo_cold"], 3),
        "speedup_cold": round(speedup_cold, 3),
        "memo_blocks": memo_stats["entries"],
        "solutions_identical": True,
    }
    with open(_OUT_PATH, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nresults written to {_OUT_PATH}")


if __name__ == "__main__":
    main()
