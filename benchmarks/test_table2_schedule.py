"""Table 2 — Resource constraints, schedule length, registers, runtime.

Regenerates the paper's Table 2 on our substrate: the schedule length
produced by list scheduling under the published constraints, the
register allocation from lifetime analysis, and the measured HLPower
binding runtime (paper ran a 2.8 GHz Pentium 4; we report our own).
"""

import time

from repro import benchmark_spec, list_schedule, load_benchmark
from repro.binding import HLPowerConfig, bind_hlpower, bind_registers
from repro.flow import format_table

from benchmarks.conftest import bench_names, write_result


def build_table2_rows(sa_table):
    rows = []
    for name in bench_names():
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        registers = bind_registers(schedule)
        started = time.perf_counter()
        solution = bind_hlpower(
            schedule,
            spec.constraints,
            registers,
            config=HLPowerConfig(sa_table=sa_table),
        )
        runtime = time.perf_counter() - started
        rows.append(
            [
                name,
                spec.add_units,
                spec.mult_units,
                schedule.length,
                spec.paper_cycles,
                registers.n_registers,
                spec.paper_registers,
                f"{runtime:.2f}",
                f"{spec.paper_runtime_s:.0f}",
            ]
        )
        assert solution.fus.constraint_met
    return rows


def test_table2_schedule(benchmark, sa_table):
    rows = benchmark.pedantic(
        build_table2_rows, args=(sa_table,), rounds=1, iterations=1
    )
    text = format_table(
        [
            "Bench", "Add", "Mult", "Cycle", "Paper cyc",
            "Reg", "Paper reg", "Runtime(s)", "Paper rt(s)",
        ],
        rows,
        title="Table 2: Constraints, schedule length, registers, runtime",
    )
    write_result("table2.txt", text)

    for row in rows:
        name = row[0]
        spec = benchmark_spec(name)
        # Schedule length must match the paper exactly (the generator
        # is parameterized to Table 2's shape).
        assert row[3] == spec.paper_cycles, name
        # Register counts are substrate-dependent; same order of
        # magnitude as the paper's.
        assert 0.25 * spec.paper_registers <= row[5] <= 2.0 * spec.paper_registers
        # Our binder is dramatically faster than 2009 hardware; just
        # sanity-bound the runtime.
        assert float(row[7]) < 120.0
