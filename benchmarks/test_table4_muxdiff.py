"""Table 4 — muxDiff mean and variance across allocated resources.

The paper shows LOPASS -> HLPower(alpha=1) -> HLPower(alpha=0.5)
progressively shrinking both the mean and the variance of the
difference between each FU's two input multiplexer sizes (averages
3.9/13.8 -> 3.2/8.3 -> 2.6/6.2), i.e. the muxDiff term in Equation (4)
actively balances multiplexers.
"""

import statistics

from repro.flow import format_table

from benchmarks.conftest import CONFIGS, bench_names, write_result


def build_table4_rows(suite):
    rows = []
    means = {config: [] for config in CONFIGS}
    variances = {config: [] for config in CONFIGS}
    for name in bench_names():
        row = [name]
        for config in CONFIGS:
            report = suite.of(name, config).muxes
            row.append(
                f"{report.mux_diff_mean:.1f}/{report.mux_diff_variance:.1f}"
            )
            means[config].append(report.mux_diff_mean)
            variances[config].append(report.mux_diff_variance)
        row.append(suite.of(name, "hlpower_a05").muxes.n_fus)
        rows.append(row)
    average = ["average"]
    for config in CONFIGS:
        average.append(
            f"{statistics.mean(means[config]):.1f}"
            f"/{statistics.mean(variances[config]):.1f}"
        )
    average.append("")
    rows.append(average)
    return rows, means, variances


def test_table4_muxdiff(benchmark, suite):
    rows, means, variances = benchmark.pedantic(
        build_table4_rows, args=(suite,), rounds=1, iterations=1
    )
    text = format_table(
        [
            "Bench", "LOPASS m/v", "HL a=1 m/v", "HL a=0.5 m/v", "# muxes",
        ],
        rows,
        title=(
            "Table 4: muxDiff mean/variance — paper averages: "
            "LOPASS 3.9/13.8, HL a=1 3.2/8.3, HL a=0.5 2.6/6.2"
        ),
    )
    write_result("table4.txt", text)

    mean_lo = statistics.mean(means["lopass"])
    mean_a1 = statistics.mean(means["hlpower_a1"])
    mean_a05 = statistics.mean(means["hlpower_a05"])
    var_lo = statistics.mean(variances["lopass"])
    var_a05 = statistics.mean(variances["hlpower_a05"])
    # The paper's trend on the average: HLPower's muxDiff term improves
    # balance over LOPASS. Strict on the full suite, tolerant on
    # subsets (per-benchmark numbers are noisy; the paper's own Table 4
    # has wang/pr moving against the trend at alpha=0.5).
    if len(bench_names()) == 7:
        assert mean_a05 <= mean_lo
        assert mean_a05 <= mean_a1 + 0.25
        assert var_a05 <= var_lo + 1e-9
    else:
        assert mean_a05 <= mean_lo + 0.75
        assert var_a05 <= var_lo + 2.0
