"""Tech-mapper benchmark — seed mapper vs the compiled fast mapper.

Times the techmap stage on the largest paper benchmark ("chem" by
default) three ways, asserting bit-identical covers throughout:

1. **reference** — the seed mapper (``effort="reference"``), the
   pre-PR-4 techmap stage;
2. **fast (cold)** — the compiled mapper with every per-netlist cache
   and the cone memo empty, the cost of a first-ever techmap stage;
3. **fast (warm memo)** — the compiled mapper re-run against the cone
   memo the cold run filled, the cost of a techmap stage in a sweep
   whose sibling cells already mapped the same netlist (the memo is
   shared through the flow's artifact cache).

Results land in ``BENCH_techmap.json`` at the repo root so later PRs
can track the trend; the recorded ``speedup_cold`` is the headline
number (medians over ``REPRO_TECHMAP_TRIALS`` runs).

Standalone script (not collected by pytest):

    PYTHONPATH=src python benchmarks/bench_techmap.py

Knobs (environment variables): ``REPRO_TECHMAP_BENCH`` (default
``chem``), ``REPRO_TECHMAP_WIDTH`` (default 8), ``REPRO_TECHMAP_K``
(default 4), ``REPRO_TECHMAP_TRIALS`` (default 3).
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro import benchmark_spec
from repro.cdfg import load_benchmark
from repro.flow.run import FlowConfig, build_pipeline
from repro.scheduling import list_schedule
from repro.techmap import map_netlist
from repro.techmap.compile import ConeMemo

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_techmap.json")

BENCH = os.environ.get("REPRO_TECHMAP_BENCH", "chem")
WIDTH = int(os.environ.get("REPRO_TECHMAP_WIDTH", "8"))
K = int(os.environ.get("REPRO_TECHMAP_K", "4"))
TRIALS = int(os.environ.get("REPRO_TECHMAP_TRIALS", "3"))


def _drop_netlist_caches(netlist) -> None:
    """Reset every mapper cache so each trial is a truly cold run.

    Covers the per-netlist compilation and the process-wide
    per-function caches (NPN keys, table scaffolding, position
    masks) that a fresh process would also have to rebuild.
    """
    from repro.techmap import compile as compile_mod

    if hasattr(netlist, "_map_compiled"):
        delattr(netlist, "_map_compiled")
    compile_mod._NPN_KEYS.clear()
    compile_mod._NPN_TRANSFORMS.clear()
    compile_mod._TABLE_EVAL.clear()
    compile_mod._POSITION_MASKS.clear()


def main() -> None:
    spec = benchmark_spec(BENCH)
    schedule = list_schedule(load_benchmark(BENCH), spec.constraints)
    pipe = build_pipeline(
        schedule, spec.constraints, "lopass", FlowConfig(width=WIDTH)
    )
    design = pipe.artifact("elaborate")
    netlist = design.netlist
    activities = {
        net: FlowConfig().control_activity
        for nets in design.control_nets.values()
        for net in nets
    }
    print(f"{BENCH} (width {WIDTH}, K={K}): "
          f"{netlist.num_gates()} gates to map, {TRIALS} trials")

    reference_s, cold_s, warm_s = [], [], []
    reference = fast = warm = None
    memo_stats = {}
    for trial in range(TRIALS):
        started = time.perf_counter()
        reference = map_netlist(
            netlist, k=K, input_activities=activities, effort="reference"
        )
        reference_s.append(time.perf_counter() - started)

        _drop_netlist_caches(netlist)
        memo = ConeMemo()
        started = time.perf_counter()
        fast = map_netlist(
            netlist, k=K, input_activities=activities, effort="fast",
            cone_memo=memo,
        )
        cold_s.append(time.perf_counter() - started)

        started = time.perf_counter()
        warm = map_netlist(
            netlist, k=K, input_activities=activities, effort="fast",
            cone_memo=memo,
        )
        warm_s.append(time.perf_counter() - started)
        memo_stats = memo.stats()

        if (reference.selected_cuts != fast.selected_cuts
                or reference.lut_sa != fast.lut_sa
                or reference.total_sa != fast.total_sa
                or warm.total_sa != reference.total_sa):
            raise SystemExit("fast mapper diverged from the seed mapper")

    med_ref = statistics.median(reference_s)
    med_cold = statistics.median(cold_s)
    med_warm = statistics.median(warm_s)
    speedup_cold = med_ref / med_cold
    speedup_warm = med_ref / med_warm
    print(f"  reference (seed) : {med_ref:6.2f}s")
    print(f"  fast, cold       : {med_cold:6.2f}s  ({speedup_cold:.2f}x)")
    print(f"  fast, warm memo  : {med_warm:6.2f}s  ({speedup_warm:.2f}x)")
    print(f"  cone memo: {memo_stats['entries']} entries in "
          f"{memo_stats['npn_classes']} NPN classes "
          f"(covers byte-identical)")

    record = {
        "benchmark": BENCH,
        "width": WIDTH,
        "k": K,
        "n_gates": netlist.num_gates(),
        "cover_luts": reference.area,
        "total_sa": reference.total_sa,
        "trials": TRIALS,
        "reference_s": round(med_ref, 4),
        "fast_cold_s": round(med_cold, 4),
        "fast_warm_s": round(med_warm, 4),
        "speedup_cold": round(speedup_cold, 3),
        "speedup_warm": round(speedup_warm, 3),
        "memo_entries": memo_stats["entries"],
        "memo_npn_classes": memo_stats["npn_classes"],
        "covers_identical": True,
    }
    with open(_OUT_PATH, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nresults written to {_OUT_PATH}")


if __name__ == "__main__":
    main()
