"""Golden regression: the sweep engine must keep reproducing the
checked-in Table 3 numbers.

``benchmarks/results/table3.txt`` is committed output of the seed
flow. The session ``suite`` fixture now runs through
:func:`repro.flow.run_sweep`, so comparing its cells for one small
benchmark against the checked-in file pins the whole pipeline —
scheduling, binding, mapping, simulation, power — to its historical
behavior within tight tolerances.

Skipped when the scaling knobs (``REPRO_BENCH_*``) deviate from the
configuration the golden file was produced with.
"""

import os
import re

import pytest

from benchmarks.conftest import bench_names, bench_vectors, bench_width

_GOLDEN = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "table3.txt"
)

#: The benchmark whose row we pin (the smallest, so re-deriving it is
#: cheap even when the suite subset shrinks).
BENCH = "pr"

_ROW = re.compile(
    rf"^{BENCH}\s+"
    r"(?P<pow_lo>[\d.]+)/(?P<pow_hl>[\d.]+)\s+"
    r"(?P<clk_lo>[\d.]+)/(?P<clk_hl>[\d.]+)\s+"
    r"(?P<luts_lo>\d+)/(?P<luts_hl>\d+)\s+"
    r"(?P<lrg_lo>\d+)/(?P<lrg_hl>\d+)\s+"
    r"(?P<len_lo>\d+)/(?P<len_hl>\d+)\s",
    re.MULTILINE,
)


def _golden_row():
    if not os.path.exists(_GOLDEN):
        pytest.skip("no checked-in table3.txt to compare against")
    match = _ROW.search(open(_GOLDEN).read())
    if match is None:
        pytest.skip(f"no {BENCH!r} row in the golden table")
    return {key: float(value) for key, value in match.groupdict().items()}


@pytest.fixture(scope="module")
def golden(suite):
    if bench_width() != 8 or bench_vectors() != 256:
        pytest.skip("golden values assume width=8, vectors=256")
    if BENCH not in bench_names():
        pytest.skip(f"{BENCH!r} not in the selected benchmark subset")
    return _golden_row()


class TestGoldenTable3:
    def test_power_within_tolerance(self, suite, golden):
        lo = suite.of(BENCH, "lopass").power.dynamic_power_mw
        hl = suite.of(BENCH, "hlpower_a05").power.dynamic_power_mw
        # The printed golden values are rounded to 0.01 mW; 2% covers
        # that plus genuine (unacceptable-drift-excluded) noise.
        assert lo == pytest.approx(golden["pow_lo"], rel=0.02)
        assert hl == pytest.approx(golden["pow_hl"], rel=0.02)

    def test_clock_period_within_tolerance(self, suite, golden):
        lo = suite.of(BENCH, "lopass").timing.clock_period_ns
        hl = suite.of(BENCH, "hlpower_a05").timing.clock_period_ns
        assert lo == pytest.approx(golden["clk_lo"], rel=0.02)
        assert hl == pytest.approx(golden["clk_hl"], rel=0.02)

    def test_luts_within_tolerance(self, suite, golden):
        lo = suite.of(BENCH, "lopass").area_luts
        hl = suite.of(BENCH, "hlpower_a05").area_luts
        assert lo == pytest.approx(golden["luts_lo"], rel=0.02)
        assert hl == pytest.approx(golden["luts_hl"], rel=0.02)

    def test_mux_metrics_exact(self, suite, golden):
        """Mux structure is seed-free and must match exactly."""
        lo = suite.of(BENCH, "lopass").muxes
        hl = suite.of(BENCH, "hlpower_a05").muxes
        assert lo.largest_mux == int(golden["lrg_lo"])
        assert hl.largest_mux == int(golden["lrg_hl"])
        assert lo.mux_length == int(golden["len_lo"])
        assert hl.mux_length == int(golden["len_hl"])

    def test_hlpower_still_wins_power(self, suite, golden):
        """The paper's headline direction survives on this benchmark."""
        lo = suite.of(BENCH, "lopass").power.dynamic_power_mw
        hl = suite.of(BENCH, "hlpower_a05").power.dynamic_power_mw
        assert hl < lo
