"""Staged-pipeline benchmark — per-stage cost and the cached speedup.

Three measurements on the largest paper benchmark ("chem" by default):

1. **Stage profile** — one cold :func:`repro.flow.run_flow` with
   per-stage wall clock, showing where the flow spends its time
   (tech-mapping dominates, which is why caching the bound-and-mapped
   prefix pays).
2. **Cached-sweep speedup** — the dominant sweep shape: a grid varying
   only simulation-stage knobs (vector seed x delay jitter x idle
   policy) over one fixed (benchmark, binder, alpha). Run once with
   the per-worker artifact cache and once cold; assert every cell's
   metrics are byte-identical; report the end-to-end speedup.
3. **Batched-dispatch speedup** — the same sweep with per-cell
   (``sim_batch=1``) vs batched simulate dispatch (one packed kernel
   pass per techmap-fingerprint group); metrics byte-checked again.

Results land in ``BENCH_flow.json`` at the repo root so later PRs can
track the trend.

This is a standalone script (not collected by pytest — the cold sweep
alone costs tens of seconds):

    PYTHONPATH=src python benchmarks/bench_flow_stages.py

Knobs (environment variables): ``REPRO_FLOW_BENCH`` (default
``chem``), ``REPRO_FLOW_WIDTH`` (default 8), ``REPRO_FLOW_VECTORS``
(default 128), ``REPRO_FLOW_SEEDS`` (default 8 — 32 cells, one full
batched kernel pass), ``REPRO_FLOW_BINDER`` (default ``lopass``).
"""

from __future__ import annotations

import json
import os
import time

from repro import benchmark_spec, run_sweep
from repro.flow import FlowConfig, SweepSpec, run_flow
from repro.cdfg import load_benchmark
from repro.scheduling import list_schedule

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_flow.json")

BENCH = os.environ.get("REPRO_FLOW_BENCH", "chem")
WIDTH = int(os.environ.get("REPRO_FLOW_WIDTH", "8"))
VECTORS = int(os.environ.get("REPRO_FLOW_VECTORS", "128"))
SEEDS = int(os.environ.get("REPRO_FLOW_SEEDS", "8"))
BINDER = os.environ.get("REPRO_FLOW_BINDER", "lopass")


def stage_profile() -> dict:
    """One cold full flow, timed stage by stage."""
    spec = benchmark_spec(BENCH)
    schedule = list_schedule(load_benchmark(BENCH), spec.constraints)
    config = FlowConfig(width=WIDTH, n_vectors=VECTORS)
    started = time.perf_counter()
    result = run_flow(schedule, spec.constraints, BINDER, config)
    total = time.perf_counter() - started
    print(f"cold {BENCH} flow ({BINDER}, width {WIDTH}, "
          f"{VECTORS} vectors): {total:.2f}s")
    for stage, seconds in result.stage_timings.items():
        print(f"  {stage:10s} {seconds:7.3f}s  {seconds / total:6.1%}")
    return {
        "total_s": round(total, 4),
        "stages_s": {
            stage: round(seconds, 4)
            for stage, seconds in result.stage_timings.items()
        },
    }


def sweep_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        benchmarks=[BENCH],
        binders=(BINDER,),
        widths=(WIDTH,),
        vector_seeds=tuple(range(7, 7 + SEEDS)),
        n_vectors=VECTORS,
        idle_modes=("zero", "hold"),
        jitters=(0, 1),
        baseline="none",
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def cached_speedup() -> dict:
    """Simulation-knob sweep, cached vs cold, metrics asserted equal."""
    spec = sweep_spec()
    n_cells = SEEDS * 2 * 2
    print(f"\nsimulation-knob sweep: {n_cells} cells "
          f"({SEEDS} seeds x 2 idle modes x 2 jitters), fixed "
          f"({BENCH}, {BINDER})")

    started = time.perf_counter()
    cached = run_sweep(spec, jobs=1, use_cache=True)
    cached_s = time.perf_counter() - started

    started = time.perf_counter()
    cold = run_sweep(spec, jobs=1, use_cache=False)
    cold_s = time.perf_counter() - started

    mismatch = [
        (a.key, b.key)
        for a, b in zip(cached.cells, cold.cells)
        if a.key != b.key or a.metrics != b.metrics
    ]
    if mismatch:
        raise SystemExit(f"cached vs cold metrics diverge: {mismatch}")

    speedup = cold_s / cached_s
    print(f"  cached: {cached_s:6.2f}s "
          f"({cached.stage_cache_hits} stage hits / "
          f"{cached.stage_cache_misses} computed)")
    print(f"  cold:   {cold_s:6.2f}s")
    print(f"  speedup: {speedup:.2f}x  (metrics byte-identical)")
    return {
        "n_cells": n_cells,
        "cached_wall_s": round(cached_s, 3),
        "uncached_wall_s": round(cold_s, 3),
        "speedup": round(speedup, 3),
        "stage_cache_hits": cached.stage_cache_hits,
        "stage_cache_misses": cached.stage_cache_misses,
    }


def batched_speedup() -> dict:
    """The same sim-knob sweep, per-cell vs batched simulate dispatch.

    Both runs use the per-worker artifact cache (the prefix reuse
    already measured above); the only variable is whether the simulate
    stage runs one kernel pass per cell (``sim_batch=1``) or one
    batched pass per techmap-fingerprint group.
    """
    n_cells = SEEDS * 2 * 2
    print(f"\nbatched simulate dispatch: same {n_cells}-cell sweep, "
          f"per-cell vs batched kernel passes")

    started = time.perf_counter()
    percell = run_sweep(sweep_spec(sim_batch=1), jobs=1)
    percell_s = time.perf_counter() - started

    started = time.perf_counter()
    batched = run_sweep(sweep_spec(), jobs=1)
    batched_s = time.perf_counter() - started

    mismatch = [
        (a.key, b.key)
        for a, b in zip(percell.cells, batched.cells)
        if a.key != b.key or a.metrics != b.metrics
    ]
    if mismatch:
        raise SystemExit(
            f"per-cell vs batched metrics diverge: {mismatch}")

    speedup = percell_s / batched_s
    print(f"  per-cell: {percell_s:6.2f}s")
    print(f"  batched:  {batched_s:6.2f}s "
          f"({batched.sim_batched_cells} cells in "
          f"{batched.sim_batches} kernel passes, "
          f"{batched.sim_batch_wall_s:.2f}s in the kernel)")
    print(f"  speedup: {speedup:.2f}x  (metrics byte-identical)")
    return {
        "n_cells": n_cells,
        "percell_wall_s": round(percell_s, 3),
        "batched_wall_s": round(batched_s, 3),
        "speedup": round(speedup, 3),
        "sim_batches": batched.sim_batches,
        "batched_cells": batched.sim_batched_cells,
        "batch_wall_s": round(batched.sim_batch_wall_s, 3),
    }


def main() -> None:
    record = {
        "benchmark": BENCH,
        "binder": BINDER,
        "width": WIDTH,
        "n_vectors": VECTORS,
        "stage_profile": stage_profile(),
        "cached_sweep": cached_speedup(),
        "batched_sweep": batched_speedup(),
    }
    with open(_OUT_PATH, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nresults written to {_OUT_PATH}")


if __name__ == "__main__":
    main()
