"""Asymptotic scaling bench — per-stage cost vs operation count.

Runs the estimate flow (bind → datapath → elaborate → techmap →
timing) stage by stage over a curve of corpus instances spanning the
micro (8 ops) to SoC (4096 ops) regime — better than two orders of
magnitude of op count — recording per stage:

* wall-clock seconds (the pipeline's own :attr:`Pipeline.timings`,
  measured in an uninstrumented pass — ``tracemalloc`` inflates
  allocation-heavy stages several-fold);
* peak Python-heap bytes (``tracemalloc``, reset per stage, in a
  second pass over a fresh pipeline);
* process peak RSS after the stage (``resource.getrusage``).

On the largest instance of the curve it additionally times the
compiled elaborator (``elab_engine="fast"``) against the seed one
(``"reference"``) — elaborate plus ``clean()`` — and records the
speedup; the run **fails** if the compiled path is less than
``REPRO_SCALE_MIN_SPEEDUP`` (default 3.0) times faster.

Results land in ``BENCH_scale.json`` at the repo root. When a previous
``BENCH_scale.json`` exists, its per-stage heap peaks are the memory
baseline: any (instance, stage) whose peak grew more than 25% (and
more than 1 MiB, to ignore allocator noise on tiny stages) fails the
run loudly. Set ``REPRO_SCALE_UPDATE=1`` to accept a deliberate
ceiling change and rewrite the baseline anyway.

This is a standalone script (not collected by pytest — the SoC points
cost tens of seconds each):

    PYTHONPATH=src python benchmarks/bench_scale.py

Knobs (environment variables): ``REPRO_SCALE_CURVE`` (comma-separated
corpus instance names; the default spans 8..4096 ops),
``REPRO_SCALE_BINDER`` (default ``lopass``), ``REPRO_SCALE_WIDTH``
(default 8), ``REPRO_SCALE_MIN_SPEEDUP`` (default 3.0),
``REPRO_SCALE_UPDATE`` (accept memory-baseline changes).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
import tracemalloc

from repro.cdfg import load_benchmark
from repro.cdfg.corpus import corpus_instance
from repro.flow.pipeline import ESTIMATE_STAGES, Pipeline
from repro.flow.run import FlowConfig, prepare_flow_inputs
from repro.fpga.compile import elaborate_design
from repro.scheduling import list_schedule

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT_PATH = os.path.join(_REPO_ROOT, "BENCH_scale.json")

#: Default curve: one instance per op-count decade step, 8 -> 4096.
_DEFAULT_CURVE = (
    "micro-n8-m50-d100-s0",
    "kernel-n32-m40-d100-s0",
    "wide-n96-m50-d90-s0",
    "huge-n256-m40-d100-s0",
    "huge-n512-m40-d100-s0",
    "huge-n1024-m40-d100-s0",
    "soc-n2048-m35-d80-s0",
    "soc-n4096-m35-d80-s0",
)

CURVE = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_SCALE_CURVE", ",".join(_DEFAULT_CURVE)
    ).split(",")
    if name.strip()
)
BINDER = os.environ.get("REPRO_SCALE_BINDER", "lopass")
WIDTH = int(os.environ.get("REPRO_SCALE_WIDTH", "8"))
MIN_SPEEDUP = float(os.environ.get("REPRO_SCALE_MIN_SPEEDUP", "3.0"))
UPDATE_BASELINE = os.environ.get("REPRO_SCALE_UPDATE", "") == "1"

#: Memory-regression gate: >25% growth and >1 MiB absolute.
_MEM_RATIO = 1.25
_MEM_SLACK_BYTES = 1 << 20


def _mb(n_bytes: float) -> float:
    return round(n_bytes / 2**20, 2)


def _fresh_pipeline(name: str):
    instance = corpus_instance(name)
    schedule = list_schedule(load_benchmark(name), instance.constraints)
    registers, ports = prepare_flow_inputs(schedule)
    config = FlowConfig(width=WIDTH, flow="estimate")
    return instance, Pipeline(
        schedule, instance.constraints, BINDER, config, registers, ports
    )


def measure_instance(name: str) -> dict:
    """Two estimate flows: one for wall clock, one for memory peaks."""
    # Pass 1 — wall clock, uninstrumented.
    instance, pipe = _fresh_pipeline(name)
    for stage in ESTIMATE_STAGES:
        pipe.artifact(stage)
    walls = dict(pipe.timings)

    # Pass 2 — per-stage Python-heap peak and process RSS, on a fresh
    # pipeline so nothing is served from the first pass's cache.
    _, pipe = _fresh_pipeline(name)
    stages = {}
    tracemalloc.start()
    try:
        for stage in ESTIMATE_STAGES:
            tracemalloc.reset_peak()
            pipe.artifact(stage)
            _, heap_peak = tracemalloc.get_traced_memory()
            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            stages[stage] = {
                "wall_s": round(walls[stage], 4),
                "heap_peak_mb": _mb(heap_peak),
                "rss_mb": round(rss_kb / 1024, 1),
            }
    finally:
        tracemalloc.stop()
    total = sum(walls[stage] for stage in ESTIMATE_STAGES)
    print(f"{name:24s} ops {instance.n_ops:5d}  total {total:7.2f}s  " +
          "  ".join(
              f"{stage} {data['wall_s']:.2f}s/{data['heap_peak_mb']:.0f}MB"
              for stage, data in stages.items()
          ))
    return {
        "instance": name,
        "family": instance.family,
        "n_ops": instance.n_ops,
        "total_s": round(total, 4),
        "stages": stages,
    }


def elab_speedup(name: str) -> dict:
    """Fast vs reference elaborate+clean on one instance (best of 2)."""
    instance = corpus_instance(name)
    schedule = list_schedule(load_benchmark(name), instance.constraints)
    registers, ports = prepare_flow_inputs(schedule)
    config = FlowConfig(width=WIDTH, flow="estimate")
    pipe = Pipeline(
        schedule, instance.constraints, BINDER, config, registers, ports
    )
    datapath = pipe.artifact("datapath")
    timings = {}
    for engine in ("fast", "reference"):
        best = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            elaborate_design(datapath, engine)
            best = min(best, time.perf_counter() - started)
        timings[engine] = best
    speedup = timings["reference"] / timings["fast"]
    print(f"elaborate+clean on {name}: fast {timings['fast']:.3f}s, "
          f"reference {timings['reference']:.3f}s -> {speedup:.2f}x")
    return {
        "instance": name,
        "fast_s": round(timings["fast"], 4),
        "reference_s": round(timings["reference"], 4),
        "speedup": round(speedup, 2),
    }


def check_memory_baseline(curve: list, baseline: dict) -> list:
    """(instance, stage, old, new) for every heap-peak regression."""
    old_stages = {
        point["instance"]: point["stages"]
        for point in baseline.get("curve", [])
    }
    regressions = []
    for point in curve:
        for stage, data in point["stages"].items():
            old = old_stages.get(point["instance"], {}).get(stage)
            if old is None:
                continue
            old_b = old["heap_peak_mb"] * 2**20
            new_b = data["heap_peak_mb"] * 2**20
            if new_b > old_b * _MEM_RATIO and new_b - old_b > _MEM_SLACK_BYTES:
                regressions.append(
                    (point["instance"], stage,
                     old["heap_peak_mb"], data["heap_peak_mb"])
                )
    return regressions


def main() -> int:
    baseline = None
    if os.path.exists(_OUT_PATH):
        with open(_OUT_PATH) as handle:
            baseline = json.load(handle)

    curve = [measure_instance(name) for name in CURVE]

    largest = max(CURVE, key=lambda name: corpus_instance(name).n_ops)
    speedup = elab_speedup(largest)

    op_counts = [point["n_ops"] for point in curve]
    result = {
        "bench": "scale",
        "flow": "estimate",
        "binder": BINDER,
        "width": WIDTH,
        "op_count_span": [min(op_counts), max(op_counts)],
        "curve": curve,
        "elab_speedup": speedup,
    }

    failures = []
    if speedup["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"compiled elaborate+clean is only {speedup['speedup']:.2f}x "
            f"the reference on {largest} (need >= {MIN_SPEEDUP:.1f}x)"
        )
    if baseline is not None and not UPDATE_BASELINE:
        for instance, stage, old_mb, new_mb in check_memory_baseline(
            curve, baseline
        ):
            failures.append(
                f"{instance} {stage}: heap peak {old_mb:.2f} MB -> "
                f"{new_mb:.2f} MB (>25% over the recorded baseline; "
                f"rerun with REPRO_SCALE_UPDATE=1 to accept)"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    with open(_OUT_PATH, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"results written to {_OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
