"""Table 3 — Power, clock period, LUTs, and multiplexer results.

The paper's headline table: LOPASS vs HLPower (alpha = 0.5), per
benchmark and on average — dynamic power, clock period, LUT count,
largest mux and mux length, with percentage changes.

Paper averages: power -19.28%, clock +0.58%, LUTs -9.11%,
largest mux -2.6 (absolute), mux length -7.2%.

Shape assertions (see EXPERIMENTS.md for the magnitude discussion):
HLPower must win power and area on the benchmark average and must
reduce the average largest mux.
"""

import statistics

from repro.flow import format_table, percent_change

from benchmarks.conftest import bench_names, write_result


def build_table3_rows(suite):
    rows = []
    deltas = {"power": [], "clock": [], "luts": [], "largest": [], "length": []}
    for name in bench_names():
        lo = suite.of(name, "lopass")
        hl = suite.of(name, "hlpower_a05")
        d_power = percent_change(
            lo.power.dynamic_power_mw, hl.power.dynamic_power_mw
        )
        d_clock = percent_change(
            lo.timing.clock_period_ns, hl.timing.clock_period_ns
        )
        d_luts = percent_change(lo.area_luts, hl.area_luts)
        d_largest = hl.muxes.largest_mux - lo.muxes.largest_mux
        d_length = percent_change(lo.muxes.mux_length, hl.muxes.mux_length)
        deltas["power"].append(d_power)
        deltas["clock"].append(d_clock)
        deltas["luts"].append(d_luts)
        deltas["largest"].append(d_largest)
        deltas["length"].append(d_length)
        rows.append(
            [
                name,
                f"{lo.power.dynamic_power_mw:.2f}/{hl.power.dynamic_power_mw:.2f}",
                f"{lo.timing.clock_period_ns:.1f}/{hl.timing.clock_period_ns:.1f}",
                f"{lo.area_luts}/{hl.area_luts}",
                f"{lo.muxes.largest_mux}/{hl.muxes.largest_mux}",
                f"{lo.muxes.mux_length}/{hl.muxes.mux_length}",
                f"{d_power:+.2f}",
                f"{d_clock:+.2f}",
                f"{d_luts:+.2f}",
                f"{d_largest:+d}",
                f"{d_length:+.1f}",
            ]
        )
    averages = {key: statistics.mean(values) for key, values in deltas.items()}
    rows.append(
        [
            "Average",
            "",
            "",
            "",
            "",
            "",
            f"{averages['power']:+.2f}",
            f"{averages['clock']:+.2f}",
            f"{averages['luts']:+.2f}",
            f"{averages['largest']:+.1f}",
            f"{averages['length']:+.1f}",
        ]
    )
    return rows, averages, deltas


def test_table3_power_area(benchmark, suite):
    rows, averages, deltas = benchmark.pedantic(
        build_table3_rows, args=(suite,), rounds=1, iterations=1
    )
    text = format_table(
        [
            "Bench", "Pow mW L/H", "Clk ns L/H", "LUTs L/H",
            "LrgMux L/H", "MuxLen L/H", "dPow%", "dClk%", "dLUT%",
            "dLrg", "dLen%",
        ],
        rows,
        title=(
            "Table 3: LOPASS vs HLPower (alpha=0.5) — paper averages: "
            "power -19.28%, clock +0.58%, LUTs -9.11%, largest -2.6, "
            "length -7.2%"
        ),
    )
    write_result("table3.txt", text)

    # Shape: HLPower reduces power, area, largest mux and mux length on
    # the benchmark average (the paper's direction). The strict checks
    # apply to the full suite; subsets (REPRO_BENCH_BENCHMARKS) only
    # get the weak direction checks, since per-benchmark results are
    # noisy (the paper's own spread is -1.9% .. -42.8%).
    full_suite = len(bench_names()) == 7
    assert averages["luts"] < 0.0
    assert averages["length"] < 0.0
    # Clock period stays within a few percent either way (paper +0.6%).
    assert abs(averages["clock"]) < 10.0
    if full_suite:
        assert averages["power"] < 0.0
        assert averages["largest"] < 0.0
        # Most benchmarks individually see a power win (paper: all 7).
        wins = sum(1 for d in deltas["power"] if d < 0)
        assert wins >= (len(deltas["power"]) + 1) // 2
    else:
        assert averages["largest"] <= 0.5
