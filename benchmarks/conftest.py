"""Shared infrastructure for the reproduction benches.

The heavyweight work — running the full flow (bind, elaborate, map,
simulate) for every benchmark under every binder configuration — is
done once per session and cached; each table/figure bench then formats
and checks its slice of the results.

Scaling knobs (environment variables):

* ``REPRO_BENCH_BENCHMARKS`` — comma-separated subset (default: all 7);
* ``REPRO_BENCH_WIDTH`` — datapath bit-width (default 8);
* ``REPRO_BENCH_VECTORS`` — number of random input vectors (default
  256; the paper uses 1000, which quadruples runtime and does not move
  the aggregate numbers by more than a point).

The SA table is persisted to ``data/sa_table.txt`` (the paper's "text
file ... read in when HLPower is initially run"), so repeated bench
runs skip the precalculation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

import pytest

from repro import (
    BENCHMARK_NAMES,
    FlowConfig,
    benchmark_spec,
    list_schedule,
    load_benchmark,
)
from repro.binding import SATable, bind_registers, assign_ports
from repro.flow import FlowResult, run_flow
from repro.flow.run import _run_binder

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TABLE_PATH = os.path.join(_REPO_ROOT, "data", "sa_table.txt")
_RESULTS_DIR = os.path.join(_REPO_ROOT, "benchmarks", "results")

#: The three configurations Tables 3/4 and Figure 3 compare.
CONFIGS = ("lopass", "hlpower_a1", "hlpower_a05")


def bench_names() -> Tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_BENCHMARKS")
    if not raw:
        return BENCHMARK_NAMES
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    for name in names:
        benchmark_spec(name)  # raises on typos
    return names


def bench_width() -> int:
    return int(os.environ.get("REPRO_BENCH_WIDTH", "8"))


def bench_vectors() -> int:
    return int(os.environ.get("REPRO_BENCH_VECTORS", "256"))


@dataclass
class SuiteResults:
    """All flow results, keyed by (benchmark, config)."""

    results: Dict[Tuple[str, str], FlowResult]
    width: int
    n_vectors: int

    def of(self, name: str, config: str) -> FlowResult:
        return self.results[(name, config)]


@pytest.fixture(scope="session")
def sa_table() -> SATable:
    table = SATable(path=_TABLE_PATH)
    yield table
    table.save_if_dirty()


@pytest.fixture(scope="session")
def suite(sa_table) -> SuiteResults:
    """Run the full measurement flow for every (benchmark, config)."""
    width = bench_width()
    vectors = bench_vectors()
    results: Dict[Tuple[str, str], FlowResult] = {}
    for name in bench_names():
        spec = benchmark_spec(name)
        schedule = list_schedule(load_benchmark(name), spec.constraints)
        registers = bind_registers(schedule)
        ports = assign_ports(schedule.cdfg)
        for config in CONFIGS:
            alpha = 1.0 if config == "hlpower_a1" else 0.5
            flow_config = FlowConfig(
                width=width,
                n_vectors=vectors,
                alpha=alpha,
                sa_table=sa_table,
            )
            binder = "lopass" if config == "lopass" else "hlpower"
            results[(name, config)] = run_flow(
                schedule, spec.constraints, binder, flow_config,
                registers, ports,
            )
    sa_table.save_if_dirty()
    return SuiteResults(results, width, vectors)


def write_result(filename: str, text: str) -> None:
    """Persist a bench's table under benchmarks/results/ and print it."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, filename), "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
