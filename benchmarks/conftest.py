"""Shared infrastructure for the reproduction benches.

The heavyweight work — running the full flow (bind, elaborate, map,
simulate) for every benchmark under every binder configuration — is
done once per session through the sweep engine
(:func:`repro.flow.run_sweep`, the same path ``python -m repro sweep``
and ``suite`` drive) and cached; each table/figure bench then formats
and checks its slice of the results.

Scaling knobs (environment variables):

* ``REPRO_BENCH_BENCHMARKS`` — comma-separated subset (default: all 7);
* ``REPRO_BENCH_WIDTH`` — datapath bit-width (default 8);
* ``REPRO_BENCH_VECTORS`` — number of random input vectors (default
  256; the paper uses 1000, which quadruples runtime and does not move
  the aggregate numbers by more than a point).

The SA table is persisted to ``data/sa_table.txt`` (the paper's "text
file ... read in when HLPower is initially run"), so repeated bench
runs skip the precalculation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

import pytest

from repro import BENCHMARK_NAMES, benchmark_spec, run_sweep
from repro.binding import SATable
from repro.flow import BinderConfig, FlowResult, SweepSpec

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_TABLE_PATH = os.path.join(_REPO_ROOT, "data", "sa_table.txt")
_RESULTS_DIR = os.path.join(_REPO_ROOT, "benchmarks", "results")

#: The three configurations Tables 3/4 and Figure 3 compare.
CONFIGS = ("lopass", "hlpower_a1", "hlpower_a05")

#: Binder/alpha behind each configuration label.
BINDER_CONFIGS = (
    BinderConfig("lopass", "lopass", 0.5),
    BinderConfig("hlpower_a1", "hlpower", 1.0),
    BinderConfig("hlpower_a05", "hlpower", 0.5),
)


def bench_names() -> Tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_BENCHMARKS")
    if not raw:
        return BENCHMARK_NAMES
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    for name in names:
        benchmark_spec(name)  # raises on typos
    return names


def bench_width() -> int:
    return int(os.environ.get("REPRO_BENCH_WIDTH", "8"))


def bench_vectors() -> int:
    return int(os.environ.get("REPRO_BENCH_VECTORS", "256"))


@dataclass
class SuiteResults:
    """All flow results, keyed by (benchmark, config)."""

    results: Dict[Tuple[str, str], FlowResult]
    width: int
    n_vectors: int

    def of(self, name: str, config: str) -> FlowResult:
        return self.results[(name, config)]


@pytest.fixture(scope="session")
def sa_table() -> SATable:
    table = SATable(path=_TABLE_PATH)
    yield table
    table.save_if_dirty()


@pytest.fixture(scope="session")
def suite(sa_table) -> SuiteResults:
    """Run the full measurement flow for every (benchmark, config).

    Uses the sweep engine's in-process mode (``jobs=1``) with
    ``keep_results=True``: the benches need the full
    :class:`FlowResult` objects (mux lists, mapping, simulation), not
    just the per-cell metric records.
    """
    width = bench_width()
    vectors = bench_vectors()
    spec = SweepSpec(
        benchmarks=list(bench_names()),
        configs=list(BINDER_CONFIGS),
        widths=(width,),
        n_vectors=vectors,
    )
    sweep = run_sweep(spec, jobs=1, sa_table=sa_table, keep_results=True)
    sa_table.save_if_dirty()
    results = {
        (name, config): sweep.result_of(name, config)
        for name in bench_names()
        for config in CONFIGS
    }
    return SuiteResults(results, width, vectors)


def write_result(filename: str, text: str) -> None:
    """Persist a bench's table under benchmarks/results/ and print it."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, filename), "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
