"""Byte pins for the report helpers (tables and sweep summaries).

:func:`format_sweep_summary` builds its output via list-append +
``str.join`` (quadratic ``+=`` growth would bite on thousand-cell
sweeps); these tests freeze the exact bytes so the rebuild stays a
pure refactor, and so future axis additions change the summary only
deliberately. The synthetic :class:`SweepResult` fixtures carry fixed
wall clocks and cache counters — nothing here runs a flow.
"""

from repro.flow.batch import SweepResult
from repro.flow.grid import SweepCell, SweepSpec
from repro.flow.report import (
    format_change,
    format_table,
    format_sweep_summary,
    percent_change,
)


def estimate_cell(config: str, sa: float) -> SweepCell:
    return SweepCell(
        benchmark="pr", config=config, binder=config, alpha=0.5, width=8,
        vector_seed=7,
        metrics={"estimated_sa": sa, "glitch_fraction": 0.25,
                 "area_luts": 100, "largest_mux": 6,
                 "clock_period_ns": 12.0},
        runtime_s=1.5, schedule_cache_hit=False, sa_new_entries=2,
        stage_timings={"bind": 0.25, "techmap": 1.0, "elaborate": 0.5},
    )


def full_cell(seed: int, elab: str, power: float) -> SweepCell:
    return SweepCell(
        benchmark="pr", config="lopass", binder="lopass", alpha=0.5,
        width=8, vector_seed=seed,
        metrics={"dynamic_power_mw": power, "toggle_rate_mhz": 4.0,
                 "area_luts": 100, "largest_mux": 6,
                 "clock_period_ns": 12.0},
        runtime_s=1.5, schedule_cache_hit=True, sa_new_entries=0,
        elab_engine=elab,
    )


class TestTableHelpers:
    def test_percent_change(self):
        assert percent_change(2.0, 1.0) == -50.0
        assert percent_change(0.0, 1.0) == 0.0

    def test_format_change(self):
        assert format_change(-19.34) == "-19.34%"
        assert format_change(2.5) == "+2.50%"

    def test_format_table_bytes(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="t"
        )
        assert table == (
            "t\n"
            "name  value\n"
            "----  -----\n"
            "a         1\n"
            "bb       22"
        )


class TestSweepSummaryBytes:
    def test_estimate_summary_pinned(self):
        spec = SweepSpec(
            benchmarks=["pr"], binders=("lopass", "hlpower"),
            widths=(8,), flow="estimate", baseline="lopass",
        )
        sweep = SweepResult(
            spec=spec,
            cells=[estimate_cell("lopass", 40.0),
                   estimate_cell("hlpower", 30.0)],
            jobs=1, wall_s=3.25,
            schedule_cache_hits=1, schedule_cache_misses=1,
            sa_precalc_entries=5, sa_new_entries=2,
            stage_cache_hits=3, stage_cache_misses=7,
        )
        assert format_sweep_summary(sweep) == (
            "Sweep: 2 cells (estimate-only, 1 benchmarks x 2 configs), "
            "jobs=1, wall 3.2s\n"
            "bench   config  est SA  glitch  clk ns  LUTs  lrg mux      dSA\n"
            "-----  -------  ------  ------  ------  ----  -------  -------\n"
            "pr      lopass    40.0   25.0%    12.0   100        6   +0.00%\n"
            "pr     hlpower    30.0   25.0%    12.0   100        6  -25.00%\n"
            "elaboration cache: 1 hits / 1 misses; "
            "pipeline stages: 3 cached / 7 computed (30% hit rate); "
            "SA table: 5 precalculated, 2 new entries\n"
            "stage wall: bind 0.50s, elaborate 1.00s, techmap 2.00s"
        )

    def test_full_flow_with_elab_axis_pinned(self):
        spec = SweepSpec(
            benchmarks=["pr"], binders=("lopass",), widths=(8,),
            vector_seeds=(7, 8), baseline="none",
            elab_engine="fast", elab_engines=("fast", "reference"),
        )
        sweep = SweepResult(
            spec=spec,
            cells=[full_cell(7, "fast", 2.0), full_cell(8, "fast", 3.0),
                   full_cell(7, "reference", 2.0),
                   full_cell(8, "reference", 3.0)],
            jobs=2, wall_s=10.0,
            schedule_cache_hits=3, schedule_cache_misses=1,
            sa_precalc_entries=0, sa_new_entries=0,
            sim_batches=1, sim_batched_cells=4, sim_batch_wall_s=0.5,
        )
        assert format_sweep_summary(sweep) == (
            "Sweep: 4 cells (1 benchmarks x 1 configs x 2 elabs x "
            "2 seeds), jobs=2, wall 10.0s\n"
            "bench  config       elab   power mW  tog MHz  clk ns  LUTs"
            "  lrg mux  dPow\n"
            "-----  ------  ---------  ---------  -------  ------  ----"
            "  -------  ----\n"
            "pr     lopass       fast  2.50±0.71     4.00    12.0   100"
            "        6   n/a\n"
            "pr     lopass  reference  2.50±0.71     4.00    12.0   100"
            "        6   n/a\n"
            "elaboration cache: 3 hits / 1 misses; "
            "pipeline stages: 0 cached / 0 computed; "
            "SA table: 0 precalculated, 0 new entries; "
            "batched simulation: 4 cells in 1 kernel passes (0.5s)"
        )
