"""Staged-pipeline tests: cache correctness, partial flows, estimates.

The load-bearing property is the determinism contract: a pipeline run
served from the artifact cache must produce byte-identical
``FlowResult.metrics()`` to a cold run — across binders, idle
policies, delay jitter and both simulation kernels — because the
cache only ever substitutes content-addressed recomputations.
"""

import pytest

import repro.flow.pipeline as pipeline_mod
from repro.binding import SATable
from repro.binding.sa_table import SATableConfig
from repro.errors import ConfigError
from repro.flow import (
    ArtifactCache,
    ESTIMATE_STAGES,
    EstimateResult,
    FlowConfig,
    STAGE_NAMES,
    build_pipeline,
    execute_flow,
    run_estimate,
    run_flow,
)

CONSTRAINTS = {"add": 2, "mult": 1}

#: Pipeline prefix untouched by simulation-only knobs.
PREFIX = ("bind", "datapath", "elaborate", "techmap", "timing")


def config(**overrides):
    kwargs = dict(width=4, n_vectors=16,
                  sa_table=SATable(SATableConfig(width=3)))
    kwargs.update(overrides)
    return FlowConfig(**kwargs)


class TestCachedVsCold:
    @pytest.mark.parametrize(
        "binder,idle,jitter,kernel",
        [
            ("lopass", "zero", 0, "event"),
            ("hlpower", "zero", 0, "event"),
            ("hlpower", "hold", 1, "event"),
            ("lopass", "zero", 1, "reference"),
        ],
    )
    def test_warm_run_metrics_byte_identical(
        self, figure1_schedule, binder, idle, jitter, kernel
    ):
        cfg = config(idle_selects=idle, delay_jitter=jitter,
                     sim_kernel=kernel)
        cache = ArtifactCache()
        cold = run_flow(figure1_schedule, CONSTRAINTS, binder, cfg,
                        cache=cache)
        warm = run_flow(figure1_schedule, CONSTRAINTS, binder, cfg,
                        cache=cache)
        independent = run_flow(figure1_schedule, CONSTRAINTS, binder, cfg)
        assert cold.cache_hits == []
        assert set(warm.cache_hits) == set(STAGE_NAMES)
        assert warm.metrics() == cold.metrics()  # exact, not approx
        assert independent.metrics() == cold.metrics()

    @pytest.mark.slow
    def test_full_knob_cross_product(self, figure1_schedule):
        """Exhaustive cached-vs-cold sweep over every simulation knob."""
        for binder in ("lopass", "hlpower"):
            cache = ArtifactCache()
            for idle in ("zero", "hold"):
                for jitter in (0, 1):
                    for kernel in ("event", "reference"):
                        cfg = config(idle_selects=idle, delay_jitter=jitter,
                                     sim_kernel=kernel)
                        shared = run_flow(figure1_schedule, CONSTRAINTS,
                                          binder, cfg, cache=cache)
                        cold = run_flow(figure1_schedule, CONSTRAINTS,
                                        binder, cfg)
                        assert shared.metrics() == cold.metrics()
                        # Simulation knobs never invalidate the prefix.
                        if (idle, jitter, kernel) != ("zero", 0, "event"):
                            assert set(PREFIX) <= set(shared.cache_hits)

    def test_eviction_pressure_keeps_results_identical(
        self, figure1_schedule
    ):
        cfg = config()
        cache = ArtifactCache(max_entries=2)
        first = run_flow(figure1_schedule, CONSTRAINTS, "lopass", cfg,
                         cache=cache)
        second = run_flow(figure1_schedule, CONSTRAINTS, "lopass", cfg,
                          cache=cache)
        assert cache.evictions > 0
        assert second.metrics() == first.metrics()


class TestFingerprintInvalidation:
    def run_pair(self, schedule, cfg_a, cfg_b, binder="lopass"):
        cache = ArtifactCache()
        run_flow(schedule, CONSTRAINTS, binder, cfg_a, cache=cache)
        return run_flow(schedule, CONSTRAINTS, binder, cfg_b, cache=cache)

    def test_vector_seed_change_reuses_prefix(self, figure1_schedule):
        second = self.run_pair(
            figure1_schedule, config(), config(vector_seed=8)
        )
        assert set(second.cache_hits) == set(PREFIX)

    def test_k_change_invalidates_mapping_not_bind(self, figure1_schedule):
        second = self.run_pair(figure1_schedule, config(), config(k=3))
        assert set(second.cache_hits) == {
            "bind", "datapath", "elaborate", "vectors"
        }

    def test_width_change_invalidates_all_but_bind(self, figure1_schedule):
        # Binding is width-independent; every built artifact is not.
        second = self.run_pair(figure1_schedule, config(), config(width=5))
        assert second.cache_hits == ["bind"]

    def test_alpha_change_misses_for_hlpower_only(self, figure1_schedule):
        # HLPower reads alpha: the whole bind cone recomputes.
        second = self.run_pair(
            figure1_schedule, config(alpha=0.5), config(alpha=1.0),
            binder="hlpower",
        )
        assert set(second.cache_hits) == {"vectors"}
        # LOPASS ignores alpha: everything hits.
        second = self.run_pair(
            figure1_schedule, config(alpha=0.5), config(alpha=1.0),
            binder="lopass",
        )
        assert set(second.cache_hits) == set(STAGE_NAMES)

    def test_callable_binder_is_uncacheable(self, figure1_schedule):
        from repro.binding import bind_lopass

        def binder(schedule, constraints, registers, ports):
            return bind_lopass(schedule, constraints, registers, ports)

        cfg = config()
        cache = ArtifactCache()
        run_flow(figure1_schedule, CONSTRAINTS, binder, cfg, cache=cache)
        second = run_flow(figure1_schedule, CONSTRAINTS, binder, cfg,
                          cache=cache)
        # Only the binder-independent vectors stage can be shared.
        assert set(second.cache_hits) == {"vectors"}

    def test_sa_table_settings_enter_bind_fingerprint(
        self, figure1_schedule
    ):
        # Different SATableConfig widths can change HLPower's weights,
        # so they must not share a cached binding.
        cache = ArtifactCache()
        run_flow(
            figure1_schedule, CONSTRAINTS, "hlpower",
            config(sa_table=SATable(SATableConfig(width=3))), cache=cache,
        )
        second = run_flow(
            figure1_schedule, CONSTRAINTS, "hlpower",
            config(sa_table=SATable(SATableConfig(width=4))), cache=cache,
        )
        assert "bind" not in second.cache_hits


class TestPartialFlows:
    def test_estimate_never_simulates(self, figure1_schedule, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("the estimate flow must not simulate")

        monkeypatch.setattr(pipeline_mod, "simulate_design", boom)
        monkeypatch.setattr(pipeline_mod, "random_vectors", boom)
        result = run_estimate(figure1_schedule, CONSTRAINTS, "hlpower",
                              config())
        assert isinstance(result, EstimateResult)
        assert result.estimated_sa > 0
        assert result.metrics()["estimated_sa"] == result.mapping.total_sa
        assert set(result.stage_timings) == set(ESTIMATE_STAGES)

    def test_estimate_matches_full_flow_equation3(self, figure1_schedule):
        cfg = config()
        cache = ArtifactCache()
        estimate = run_estimate(figure1_schedule, CONSTRAINTS, "hlpower",
                                cfg, cache=cache)
        full = run_flow(figure1_schedule, CONSTRAINTS, "hlpower", cfg,
                        cache=cache)
        assert estimate.estimated_sa == full.estimated_sa
        assert estimate.area_luts == full.area_luts
        assert estimate.metrics()["largest_mux"] == (
            full.metrics()["largest_mux"]
        )
        # The full flow reused the estimate's entire prefix.
        assert set(PREFIX) <= set(full.cache_hits)

    def test_run_flow_rejects_estimate_config(self, figure1_schedule):
        with pytest.raises(ConfigError):
            run_flow(figure1_schedule, CONSTRAINTS, "lopass",
                     config(flow="estimate"))

    def test_execute_flow_dispatches_on_flow_mode(self, figure1_schedule):
        estimate = execute_flow(figure1_schedule, CONSTRAINTS, "lopass",
                                config(flow="estimate"))
        assert isinstance(estimate, EstimateResult)
        full = execute_flow(figure1_schedule, CONSTRAINTS, "lopass",
                            config())
        assert full.power.dynamic_power_mw > 0

    def test_pipeline_materializes_only_requested_stages(
        self, figure1_schedule
    ):
        pipe = build_pipeline(figure1_schedule, CONSTRAINTS, "lopass",
                              config())
        pipe.artifact("techmap")
        assert set(pipe.timings) == {
            "bind", "datapath", "elaborate", "techmap"
        }

    def test_unknown_stage_rejected(self, figure1_schedule):
        pipe = build_pipeline(figure1_schedule, CONSTRAINTS, "lopass",
                              config())
        with pytest.raises(ConfigError):
            pipe.artifact("route")


class TestStageInstrumentation:
    def test_timings_cover_all_stages(self, figure1_schedule):
        result = run_flow(figure1_schedule, CONSTRAINTS, "lopass", config())
        assert set(result.stage_timings) == set(STAGE_NAMES)
        assert all(t >= 0 for t in result.stage_timings.values())
        assert "runtime_s" not in result.metrics()
        assert "stage_timings" not in result.metrics()
