"""End-to-end flow tests."""

import pytest

from repro.errors import SimulationError
from repro.binding import SATable, bind_lopass
from repro.binding.sa_table import SATableConfig
from repro.flow import FlowConfig, compare_binders, run_flow


@pytest.fixture()
def flow_config(sa_table):
    return FlowConfig(width=4, n_vectors=32, sa_table=sa_table)


class TestRunFlow:
    def test_full_flow_hlpower(self, figure1_schedule, flow_config):
        result = run_flow(
            figure1_schedule, {"add": 2, "mult": 1}, "hlpower", flow_config
        )
        assert result.solution.algorithm == "hlpower"
        assert result.power.dynamic_power_mw > 0
        assert result.area_luts > result.controller_luts > 0
        assert result.timing.depth_levels >= 1
        assert result.muxes.n_fus == 3
        assert result.estimated_sa > 0
        assert result.runtime_s > 0

    def test_full_flow_lopass(self, figure1_schedule, flow_config):
        result = run_flow(
            figure1_schedule, {"add": 2, "mult": 1}, "lopass", flow_config
        )
        assert result.solution.algorithm == "lopass"
        assert result.power.dynamic_power_mw > 0

    def test_functional_check_enforced(self, figure1_schedule, flow_config):
        # Sanity: check passes by default (no exception raised).
        run_flow(figure1_schedule, {"add": 2, "mult": 1}, "hlpower",
                 flow_config)

    def test_custom_binder_callable(self, figure1_schedule, flow_config):
        calls = []

        def binder(schedule, constraints, registers, ports):
            calls.append(1)
            return bind_lopass(schedule, constraints, registers, ports)

        result = run_flow(
            figure1_schedule, {"add": 2, "mult": 1}, binder, flow_config
        )
        assert calls == [1]
        assert result.power.dynamic_power_mw > 0

    def test_unknown_binder_rejected(self, figure1_schedule, flow_config):
        with pytest.raises(ValueError):
            run_flow(figure1_schedule, {"add": 2, "mult": 1}, "magic",
                     flow_config)

    def test_small_benchmark_flow(self, small_schedule, flow_config):
        result = run_flow(
            small_schedule, {"add": 2, "mult": 2}, "hlpower", flow_config
        )
        assert result.power.dynamic_power_mw > 0


class TestFlowConfigValidation:
    """FlowConfig rejects bad knobs eagerly, not deep inside the flow."""

    @pytest.mark.parametrize("field,value", [
        ("width", 0), ("width", -3), ("k", 0), ("n_vectors", 0),
        ("n_vectors", -1),
    ])
    def test_non_positive_sizes_rejected(self, field, value):
        with pytest.raises(ValueError):
            FlowConfig(**{field: value})

    @pytest.mark.parametrize("field,value", [
        ("sim_kernel", "quantum"),
        ("idle_selects", "float"),
        ("flow", "partial"),
    ])
    def test_unknown_enum_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            FlowConfig(**{field: value})

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            FlowConfig(delay_jitter=-1)

    def test_bool_sizes_rejected(self):
        # bool is an int subclass; a typo'd True must not become width=1.
        with pytest.raises(ValueError):
            FlowConfig(width=True)

    def test_config_error_is_a_value_error(self):
        from repro.errors import ConfigError

        assert issubclass(ConfigError, ValueError)

    def test_defaults_valid(self):
        assert FlowConfig().flow == "full"


class TestCompareBinders:
    def test_shared_registers_and_ports(self, figure1_schedule, flow_config):
        results = compare_binders(
            figure1_schedule, {"add": 2, "mult": 1}, flow_config
        )
        assert set(results) == {"lopass", "hlpower"}
        lo, hl = results["lopass"], results["hlpower"]
        assert lo.solution.registers is hl.solution.registers
        assert lo.solution.ports is hl.solution.ports

    def test_same_stimulus_time_base(self, figure1_schedule, flow_config):
        results = compare_binders(
            figure1_schedule, {"add": 2, "mult": 1}, flow_config
        )
        assert (
            results["lopass"].power.simulated_time_ns
            == results["hlpower"].power.simulated_time_ns
        )

    def test_custom_binder_set(self, figure1_schedule, flow_config):
        results = compare_binders(
            figure1_schedule,
            {"add": 2, "mult": 1},
            flow_config,
            binders={"only": "lopass"},
        )
        assert set(results) == {"only"}

    def test_caller_config_never_mutated(self, figure1_schedule):
        """A table-less config stays table-less after the comparison."""
        cfg = FlowConfig(width=4, n_vectors=16)
        before = dict(cfg.__dict__)
        compare_binders(figure1_schedule, {"add": 2, "mult": 1}, cfg)
        assert cfg.__dict__ == before
        assert cfg.sa_table is None


class TestReportHelpers:
    def test_percent_change(self):
        from repro.flow import percent_change

        assert percent_change(100.0, 81.0) == pytest.approx(-19.0)
        assert percent_change(0.0, 5.0) == 0.0

    def test_format_change(self):
        from repro.flow import format_change

        assert format_change(-19.28) == "-19.28%"
        assert format_change(0.58) == "+0.58%"

    def test_format_table(self):
        from repro.flow import format_table

        text = format_table(
            ["name", "value"],
            [["chem", 1602.3], ["dir", 709.1]],
            title="Table",
        )
        lines = text.splitlines()
        assert lines[0] == "Table"
        assert set(lines[2]) <= {"-", " "}
        assert "chem" in lines[3]
        assert "709.1" in lines[4]
