"""Sweep engine tests: grid expansion, parallel determinism, caching,
and (de)serialization of the result store."""

import os

import pytest

from repro.binding import SATable
from repro.binding.sa_table import SATableConfig
from repro.errors import ConfigError
from repro.flow import (
    BinderConfig,
    SweepResult,
    SweepSpec,
    expand_grid,
    run_sweep,
)


def small_spec(**overrides):
    """A pr-only grid small enough for full in-test execution."""
    kwargs = dict(
        benchmarks=["pr"],
        binders=("lopass", "hlpower"),
        alphas=(0.5,),
        widths=(4,),
        vector_seeds=(7, 8),
        n_vectors=16,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


@pytest.fixture(scope="module")
def serial_sweep():
    """The small grid, run in-process with results retained."""
    return run_sweep(small_spec(), jobs=1, keep_results=True)


@pytest.fixture(scope="module")
def parallel_sweep():
    """The same grid across two worker processes."""
    return run_sweep(small_spec(), jobs=2)


class TestExpandGrid:
    def test_cross_product_size_and_order(self):
        spec = SweepSpec(
            benchmarks=["pr", "wang"],
            binders=("lopass", "hlpower"),
            alphas=(0.0, 1.0),
            widths=(4, 8),
            vector_seeds=(7, 8, 9),
        )
        jobs = expand_grid(spec)
        assert len(jobs) == 2 * 2 * 2 * 2 * 3
        assert [job.index for job in jobs] == list(range(len(jobs)))
        # Benchmark-major: all pr jobs precede all wang jobs.
        benchmarks = [job.benchmark for job in jobs]
        assert benchmarks == sorted(benchmarks, key=["pr", "wang"].index)

    def test_alpha_labels(self):
        spec = SweepSpec(benchmarks=["pr"], alphas=(0.0, 0.5))
        labels = {config.label for config in spec.binder_configs()}
        assert labels == {
            "lopass_a0", "lopass_a0.5", "hlpower_a0", "hlpower_a0.5"
        }

    def test_explicit_configs_override_product(self):
        spec = SweepSpec(
            benchmarks=["pr"],
            configs=[
                BinderConfig("lopass", "lopass", 0.5),
                BinderConfig("hlpower_a1", "hlpower", 1.0),
                BinderConfig("hlpower_a05", "hlpower", 0.5),
            ],
        )
        assert len(expand_grid(spec)) == 3

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(Exception):
            expand_grid(SweepSpec(benchmarks=["nope"]))

    def test_bad_scheduler_rejected(self):
        with pytest.raises(ConfigError):
            expand_grid(SweepSpec(benchmarks=["pr"], scheduler="magic"))

    def test_unknown_binder_rejected_before_any_job_runs(self):
        with pytest.raises(ConfigError):
            expand_grid(SweepSpec(benchmarks=["pr"], binders=("magic",)))

    def test_unknown_binder_rejected_at_construction(self):
        # Regression: a typo'd binder used to survive until run_binder
        # saw the first job. Construction itself must fail, naming the
        # offending binder.
        with pytest.raises(ConfigError, match="bogus"):
            SweepSpec(benchmarks=["pr"], binders=("lopass", "bogus"))

    def test_unknown_binder_rejected_in_explicit_configs(self):
        with pytest.raises(ConfigError, match="bogus"):
            SweepSpec(
                benchmarks=["pr"],
                configs=[BinderConfig("label", "bogus")],
            )

    def test_unknown_binder_rejected_by_from_dict(self):
        good = SweepSpec(benchmarks=["pr"]).to_dict()
        bad = dict(good, binders=["lopass", "bogus"])
        with pytest.raises(ConfigError, match="bogus"):
            SweepSpec.from_dict(bad)

    def test_mcts_knobs_round_trip_through_dict(self):
        spec = SweepSpec(benchmarks=["pr"], binders=("mcts",),
                         baseline="none", mcts_budget=64, mcts_seed=9)
        again = SweepSpec.from_dict(spec.to_dict())
        assert (again.mcts_budget, again.mcts_seed) == (64, 9)

    def test_duplicate_labels_rejected(self):
        spec = SweepSpec(
            benchmarks=["pr"],
            configs=[
                BinderConfig("x", "lopass"),
                BinderConfig("x", "hlpower"),
            ],
        )
        with pytest.raises(ConfigError):
            expand_grid(spec)

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            expand_grid(SweepSpec(benchmarks=[]))
        with pytest.raises(ConfigError):
            expand_grid(SweepSpec(benchmarks=["pr"], widths=()))

    def test_unknown_sim_kernel_rejected(self):
        with pytest.raises(ConfigError):
            expand_grid(SweepSpec(benchmarks=["pr"], sim_kernel="quantum"))


class TestSimKernel:
    def test_reference_kernel_metrics_identical(self):
        """The sweep-level kernel flag must not move any metric."""
        spec = small_spec(binders=("lopass",), vector_seeds=(7,))
        event = run_sweep(spec, jobs=1)
        reference = run_sweep(
            small_spec(
                binders=("lopass",), vector_seeds=(7,),
                sim_kernel="reference",
            ),
            jobs=1,
        )
        assert event.cells[0].metrics == reference.cells[0].metrics


class TestParallelDeterminism:
    def test_jobs1_vs_jobs2_metrics_identical(
        self, serial_sweep, parallel_sweep
    ):
        """Per-cell metrics must not depend on the execution mode."""
        serial = {cell.key: cell.metrics for cell in serial_sweep.cells}
        parallel = {cell.key: cell.metrics for cell in parallel_sweep.cells}
        assert serial == parallel  # exact, not approx

    def test_all_cells_present(self, serial_sweep):
        keys = {cell.key for cell in serial_sweep.cells}
        assert len(keys) == 4
        # Cell keys carry every grid axis, sim-only axes included.
        assert ("pr", "lopass", 4, 7, "zero", 0, "event", "fast",
                "fast", "fast") in keys
        assert ("pr", "hlpower", 4, 8, "zero", 0, "event", "fast",
                "fast", "fast") in keys

    def test_jobs_recorded(self, serial_sweep, parallel_sweep):
        assert serial_sweep.jobs == 1
        assert parallel_sweep.jobs == 2
        assert serial_sweep.wall_s > 0


class TestCacheAccounting:
    def test_serial_elaboration_cache(self, serial_sweep):
        # One benchmark, four jobs: first elaborates, the rest hit.
        assert serial_sweep.schedule_cache_misses == 1
        assert serial_sweep.schedule_cache_hits == 3

    def test_parallel_elaboration_cache(self, parallel_sweep):
        # Each worker elaborates at most once per benchmark; with four
        # jobs on two workers at least one must be a hit.
        assert (
            parallel_sweep.schedule_cache_hits
            + parallel_sweep.schedule_cache_misses
            == 4
        )
        assert parallel_sweep.schedule_cache_hits > 0

    def test_sa_entries_flow_back_from_workers(self, tmp_path):
        table = SATable(SATableConfig(width=3), str(tmp_path / "sa.txt"))
        sweep = run_sweep(small_spec(vector_seeds=(7,)), jobs=2,
                          sa_table=table)
        # Workers computed entries the parent never saw; they must be
        # merged into the parent's table and counted.
        assert sweep.sa_new_entries > 0
        assert len(table) == sweep.sa_new_entries
        table.save_if_dirty()
        assert os.path.exists(table.path)

    def test_precalc_runs_once_up_front(self, tmp_path):
        table = SATable(SATableConfig(width=3), str(tmp_path / "sa.txt"))
        spec = small_spec(binders=("lopass",), vector_seeds=(7,))
        sweep = run_sweep(spec, jobs=1, sa_table=table, precalc_max_mux=2)
        # add/mult x {(1,1),(1,2),(2,2)} = 6 entries precalculated.
        assert sweep.sa_precalc_entries == 6
        assert len(table) >= 6


class TestKeepResults:
    def test_results_retained_in_process(self, serial_sweep):
        result = serial_sweep.result_of("pr", "lopass", vector_seed=7)
        assert result.power.dynamic_power_mw > 0
        assert result.solution.algorithm == "lopass"

    def test_keep_results_needs_jobs1(self):
        with pytest.raises(ConfigError):
            run_sweep(small_spec(), jobs=2, keep_results=True)

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ConfigError):
            run_sweep(small_spec(), jobs=0)

    def test_cache_dir_without_cache_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            run_sweep(small_spec(), jobs=1, use_cache=False,
                      cache_dir=str(tmp_path))


class TestSweepResultStore:
    def test_json_round_trip(self, serial_sweep):
        restored = SweepResult.from_json(serial_sweep.to_json())
        assert [vars(c) for c in restored.cells] == [
            vars(c) for c in serial_sweep.cells
        ]
        assert restored.schedule_cache_hits == (
            serial_sweep.schedule_cache_hits
        )
        assert list(restored.spec.benchmarks) == ["pr"]
        assert restored.spec.n_vectors == 16
        # Aggregates recompute identically from the restored cells.
        assert restored.aggregates() == serial_sweep.aggregates()

    def test_save_load(self, serial_sweep, tmp_path):
        path = str(tmp_path / "sweep.json")
        serial_sweep.save(path)
        restored = SweepResult.load(path)
        assert len(restored.cells) == len(serial_sweep.cells)

    def test_cell_lookup(self, serial_sweep):
        cell = serial_sweep.cell("pr", "hlpower", vector_seed=7)
        assert cell.binder == "hlpower"
        assert cell.metrics["dynamic_power_mw"] > 0
        with pytest.raises(KeyError):
            serial_sweep.cell("pr", "nope")
        with pytest.raises(KeyError):
            serial_sweep.cell("pr", "hlpower")  # ambiguous: two seeds

    def test_aggregates(self, serial_sweep):
        aggs = {
            (a["benchmark"], a["config"]): a
            for a in serial_sweep.aggregates()
        }
        assert set(aggs) == {("pr", "lopass"), ("pr", "hlpower")}
        lo = aggs[("pr", "lopass")]
        assert lo["n_seeds"] == 2
        assert lo["power_mean_mw"] > 0
        assert lo["power_stdev_mw"] >= 0
        assert lo["d_power_vs_baseline_pct"] == pytest.approx(0.0)
        hl = aggs[("pr", "hlpower")]
        expected = (
            (hl["power_mean_mw"] - lo["power_mean_mw"])
            / lo["power_mean_mw"] * 100.0
        )
        assert hl["d_power_vs_baseline_pct"] == pytest.approx(expected)

    def test_metrics_exclude_wall_clock(self, serial_sweep):
        for cell in serial_sweep.cells:
            assert "runtime_s" not in cell.metrics
            assert cell.runtime_s > 0

    def test_aggregates_without_baseline_report_none(self):
        """baseline='none' -> None deltas, not a misleading +0.00%."""
        sweep = run_sweep(
            small_spec(
                binders=("hlpower",), vector_seeds=(7,), baseline="none"
            ),
            jobs=1,
        )
        (agg,) = sweep.aggregates()
        assert agg["d_power_vs_baseline_pct"] is None
        from repro.flow import format_sweep_summary

        assert "n/a" in format_sweep_summary(sweep)

    def test_missing_baseline_rejected_up_front(self):
        """A typo'd or absent baseline fails before any job runs."""
        with pytest.raises(ConfigError):
            expand_grid(small_spec(binders=("hlpower",)))  # lopass absent
        with pytest.raises(ConfigError):
            expand_grid(small_spec(baseline="lopas"))  # typo

    def test_ambiguous_baseline_rejected(self):
        """'hlpower' across several alphas must be named by label."""
        with pytest.raises(ConfigError):
            expand_grid(
                small_spec(alphas=(0.0, 0.5), baseline="hlpower")
            )
        # LOPASS ignores alpha, so its columns are interchangeable.
        jobs = expand_grid(small_spec(alphas=(0.0, 0.5)))
        assert jobs  # baseline="lopass" stays valid


class TestSimOnlyAxes:
    """Grid axes that vary nothing before the simulate stage."""

    def test_grid_size_includes_new_axes(self):
        spec = small_spec(
            binders=("lopass",), vector_seeds=(7,),
            idle_modes=("zero", "hold"), jitters=(0, 1),
            sim_kernels=("event", "reference"),
        )
        jobs = expand_grid(spec)
        assert len(jobs) == 2 * 2 * 2
        kernels = {job.sim_kernel for job in jobs}
        assert kernels == {"event", "reference"}

    def test_invalid_axis_values_rejected(self):
        with pytest.raises(ConfigError):
            expand_grid(small_spec(idle_modes=("float",)))
        with pytest.raises(ConfigError):
            expand_grid(small_spec(jitters=(-1,)))
        with pytest.raises(ConfigError):
            expand_grid(small_spec(sim_kernels=("quantum",)))
        with pytest.raises(ConfigError):
            expand_grid(small_spec(flow="partial"))

    @pytest.mark.slow
    def test_cached_sweep_metrics_identical_to_cold(self):
        """The acceptance property: a sweep varying only simulation
        knobs reuses cached bind/map artifacts while every metric stays
        byte-identical to the uncached path."""
        spec = small_spec(
            binders=("lopass",), vector_seeds=(7, 8),
            idle_modes=("zero", "hold"), jitters=(0, 1),
        )
        cached = run_sweep(spec, jobs=1, use_cache=True)
        cold = run_sweep(spec, jobs=1, use_cache=False)
        assert [c.key for c in cached.cells] == [c.key for c in cold.cells]
        assert [c.metrics for c in cached.cells] == [
            c.metrics for c in cold.cells
        ]
        # Eight cells share one (benchmark, binder, alpha, width)
        # prefix: everything after the first cell is simulate-only.
        assert cached.stage_cache_hits > 0
        assert cold.stage_cache_hits == 0
        prefix = {"bind", "datapath", "elaborate", "techmap", "timing"}
        for cell in cached.cells[1:]:
            assert prefix <= set(cell.cache_hits)

    def test_cell_lookup_by_axis(self):
        spec = small_spec(
            binders=("lopass",), vector_seeds=(7,),
            idle_modes=("zero", "hold"),
        )
        sweep = run_sweep(spec, jobs=1)
        cell = sweep.cell("pr", "lopass", idle_selects="hold")
        assert cell.idle_selects == "hold"
        with pytest.raises(KeyError):
            sweep.cell("pr", "lopass")  # ambiguous across idle modes

    def test_stage_timings_surfaced_in_cells(self):
        sweep = run_sweep(
            small_spec(binders=("lopass",), vector_seeds=(7,)), jobs=1
        )
        (cell,) = sweep.cells
        assert set(cell.stage_timings) >= {"bind", "techmap", "simulate"}
        assert sweep.stage_time_totals()["simulate"] > 0

    def test_disk_cache_layer_shared_across_sweeps(self, tmp_path):
        spec = small_spec(binders=("lopass",), vector_seeds=(7,))
        first = run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        second = run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        assert first.stage_cache_hits == 0
        # A fresh in-process worker state: every hit came from disk.
        # Simulate/power (unique per cell) and bind (SA-table side
        # effect) are deliberately memory-only.
        assert set(second.cells[0].cache_hits) == {
            "datapath", "elaborate", "techmap", "timing", "vectors"
        }
        assert second.cells[0].metrics == first.cells[0].metrics

    def test_disk_cache_never_skips_sa_table_population(self, tmp_path):
        """A warm disk cache must not leave a fresh SA table empty."""
        spec = small_spec(binders=("hlpower",), vector_seeds=(7,),
                          baseline="none")
        cache_dir = str(tmp_path / "artifacts")
        run_sweep(spec, jobs=1, sa_table=SATable(SATableConfig(width=3)),
                  cache_dir=cache_dir)
        table = SATable(SATableConfig(width=3), str(tmp_path / "sa.txt"))
        sweep = run_sweep(spec, jobs=1, sa_table=table, cache_dir=cache_dir)
        assert sweep.sa_new_entries > 0
        assert len(table) > 0


class TestBatchedSimulate:
    """Fingerprint-grouped batched dispatch of the simulate stage."""

    @staticmethod
    def _knob_spec(**overrides):
        kwargs = dict(
            binders=("lopass",), vector_seeds=(7, 8),
            idle_modes=("zero", "hold"), jitters=(0, 1),
        )
        kwargs.update(overrides)
        return small_spec(**kwargs)

    def test_batched_metrics_identical_to_solo_and_cold(self):
        """The acceptance property: batching the simulate stage must not
        move any metric relative to per-cell dispatch or a cold run."""
        batched = run_sweep(self._knob_spec(), jobs=1)
        solo = run_sweep(self._knob_spec(sim_batch=1), jobs=1)
        cold = run_sweep(self._knob_spec(), jobs=1, use_cache=False)
        assert [c.key for c in batched.cells] == [c.key for c in solo.cells]
        assert [c.metrics for c in batched.cells] == [
            c.metrics for c in solo.cells
        ]
        assert [c.metrics for c in batched.cells] == [
            c.metrics for c in cold.cells
        ]
        # Eight cells share one techmap fingerprint: one kernel pass.
        assert batched.sim_batches == 1
        assert batched.sim_batched_cells == 8
        assert batched.sim_batch_wall_s > 0
        assert any(cell.sim_batch == 8 for cell in batched.cells)
        # Solo dispatch and the cache-less path never batch.
        assert solo.sim_batches == 0
        assert all(cell.sim_batch == 0 for cell in solo.cells)
        assert cold.sim_batches == 0

    def test_batch_size_limit_respected(self):
        sweep = run_sweep(self._knob_spec(sim_batch=2), jobs=1)
        sizes = [cell.sim_batch for cell in sweep.cells if cell.sim_batch]
        assert sizes and max(sizes) <= 2
        assert sweep.sim_batches == 4
        assert sweep.sim_batched_cells == 8

    def test_batched_cells_annotated_with_wall_clock(self):
        sweep = run_sweep(self._knob_spec(), jobs=1)
        for cell in sweep.cells:
            if cell.sim_batch:
                assert cell.sim_batch_s > 0

    def test_invalid_sim_batch_rejected(self):
        with pytest.raises(ConfigError):
            expand_grid(small_spec(sim_batch=0))

    def test_round_trip_carries_batch_fields(self):
        sweep = run_sweep(self._knob_spec(), jobs=1)
        restored = SweepResult.from_json(sweep.to_json())
        assert restored.sim_batches == sweep.sim_batches
        assert restored.sim_batched_cells == sweep.sim_batched_cells
        assert restored.sim_batch_wall_s == pytest.approx(
            sweep.sim_batch_wall_s
        )
        assert [c.sim_batch for c in restored.cells] == [
            c.sim_batch for c in sweep.cells
        ]

    def test_reference_kernel_cells_never_batched(self):
        sweep = run_sweep(
            self._knob_spec(jitters=(0,), sim_kernels=("reference",)),
            jobs=1,
        )
        assert sweep.sim_batches == 0
        assert all(cell.sim_batch == 0 for cell in sweep.cells)

    def test_summary_reports_batching(self):
        from repro.flow import format_sweep_summary

        sweep = run_sweep(self._knob_spec(), jobs=1)
        assert "batched simulation: 8 cells" in format_sweep_summary(sweep)

    def test_summary_reports_hit_rate_and_stage_wall(self):
        from repro.flow import format_sweep_summary

        sweep = run_sweep(self._knob_spec(), jobs=1)
        summary = format_sweep_summary(sweep)
        assert "% hit rate)" in summary
        # Per-stage wall clock, in pipeline order.
        wall_line = summary.splitlines()[-1]
        assert wall_line.startswith("stage wall: ")
        assert wall_line.index("bind ") < wall_line.index("techmap ")
        assert "simulate " in wall_line


class TestEstimateFlow:
    def test_estimate_cells_carry_equation3_metrics(self):
        sweep = run_sweep(small_spec(flow="estimate"), jobs=1)
        for cell in sweep.cells:
            assert cell.metrics["estimated_sa"] > 0
            assert "dynamic_power_mw" not in cell.metrics

    def test_sim_axes_collapse_in_estimate_mode(self):
        spec = small_spec(
            flow="estimate", vector_seeds=(7, 8, 9),
            idle_modes=("zero", "hold"), jitters=(0, 1, 2),
        )
        # 1 benchmark x 2 binders; sim-only axes cannot move any
        # estimate metric, so they do not multiply cells.
        assert len(expand_grid(spec)) == 2

    def test_estimate_aggregates_and_summary(self):
        from repro.flow import format_sweep_summary

        sweep = run_sweep(small_spec(flow="estimate"), jobs=1)
        aggs = {a["config"]: a for a in sweep.aggregates()}
        assert aggs["lopass"]["sa_mean"] > 0
        assert aggs["lopass"]["d_sa_vs_baseline_pct"] == pytest.approx(0.0)
        assert aggs["hlpower"]["d_sa_vs_baseline_pct"] is not None
        assert "est SA" in format_sweep_summary(sweep)

    def test_estimate_round_trip(self):
        sweep = run_sweep(small_spec(flow="estimate"), jobs=1)
        restored = SweepResult.from_json(sweep.to_json())
        assert restored.spec.flow == "estimate"
        assert restored.aggregates() == sweep.aggregates()


class TestForceScheduler:
    def test_force_schedule_binds_its_own_lower_bound(self):
        """Table 2 constraints can be infeasible for a latency-balanced
        schedule ('dir' needs 3 mult units); the sweep must bind
        against the schedule's min_resources, like repro.hls does."""
        spec = SweepSpec(
            benchmarks=["dir"],
            binders=("lopass",),
            widths=(4,),
            vector_seeds=(7,),
            n_vectors=8,
            scheduler="force",
        )
        sweep = run_sweep(spec, jobs=1)
        assert sweep.cell("dir", "lopass").metrics["area_luts"] > 0


class TestBindEngineAxis:
    """The bind-engine axis: grid shape, validation, and equivalence."""

    def test_grid_size_includes_engine_axis(self):
        spec = small_spec(
            binders=("lopass",), vector_seeds=(7,),
            bind_engines=("fast", "reference"),
        )
        jobs = expand_grid(spec)
        assert len(jobs) == 2
        assert {job.bind_engine for job in jobs} == {"fast", "reference"}

    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigError):
            expand_grid(small_spec(bind_engine="turbo"))
        with pytest.raises(ConfigError):
            expand_grid(small_spec(bind_engines=("fast", "turbo")))

    def test_spec_round_trips_engine_axis(self):
        spec = small_spec(bind_engines=("fast", "reference"))
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone.engines() == ["fast", "reference"]
        assert clone.bind_engine == spec.bind_engine

    def test_engine_cells_byte_identical(self):
        """fast and reference cells agree on every estimate metric."""
        spec = small_spec(
            binders=("lopass", "hlpower"), vector_seeds=(7,),
            bind_engines=("fast", "reference"), flow="estimate",
        )
        sweep = run_sweep(spec, jobs=1)
        for config in ("lopass", "hlpower"):
            fast = sweep.cell("pr", config, bind_engine="fast")
            reference = sweep.cell("pr", config, bind_engine="reference")
            assert fast.metrics == reference.metrics

    def test_corpus_instance_through_sweep(self):
        """A corpus name is a first-class benchmark in the sweep engine."""
        spec = small_spec(
            benchmarks=["micro-n8-m30-d70-s0"],
            binders=("lopass", "hlpower"), vector_seeds=(7,),
            flow="estimate",
        )
        sweep = run_sweep(spec, jobs=1)
        assert len(sweep.cells) == 2
        for cell in sweep.cells:
            assert cell.metrics["mux_length"] > 0
            assert cell.metrics["fu_mux_length"] >= 0
