"""Cross-process tests for the shared sharded artifact store.

The disk layer of :class:`~repro.flow.cache.ArtifactCache` is the only
piece of the pipeline that two processes mutate simultaneously without
a lock: a resident ``repro serve`` daemon and an ad-hoc ``repro
sweep`` can point at the same ``--cache-dir``. These tests hammer one
directory from two real processes at once — stores, lookups, and
LRU evictions interleaving — and check the atomicity contract: a
reader sees a complete pickle or nothing, never a torn write, and
writer debris (``.tmp`` orphans, quarantined ``.corrupt`` entries) is
swept once stale.
"""

import multiprocessing
import os
import pathlib
import random

from repro.flow.cache import STALE_TMP_SECONDS, ArtifactCache, fingerprint

N_KEYS = 32
N_OPS = 250
DISK_MAX = 12

# fork, not spawn: the workers are closures over this test module,
# and the suite only targets Linux.
_CTX = multiprocessing.get_context("fork")


def _key(index):
    return fingerprint("xproc-cache", index)


def _value(index):
    """Deterministic per-key payload, so a hit served by *either*
    process can be validated byte-for-byte by the other."""
    return {"index": index, "blob": bytes([index % 251]) * (300 + 17 * index)}


def _hammer(disk_dir, seed, queue):
    """Mixed store/lookup traffic over the shared key universe."""
    rng = random.Random(seed)
    cache = ArtifactCache(
        max_entries=4, disk_dir=disk_dir, disk_max_entries=DISK_MAX
    )
    torn = 0
    for op in range(N_OPS):
        index = rng.randrange(N_KEYS)
        if op % 3:
            cache.store(_key(index), _value(index))
        else:
            hit, value = cache.lookup(_key(index))
            if hit and value != _value(index):
                torn += 1
        if op % 5 == 0:
            # Drop the in-memory layer so lookups keep exercising the
            # contended disk path instead of private memory.
            cache.clear()
    stats = cache.stats_typed().to_dict()
    stats["torn"] = torn
    queue.put(stats)


def _lookup_once(disk_dir, index, queue):
    cache = ArtifactCache(disk_dir=disk_dir)
    hit, _ = cache.lookup(_key(index))
    queue.put({"hit": hit, "disk_corrupt": cache.disk_corrupt})


class TestTwoProcessSharedStore:
    def test_simultaneous_store_lookup_evict(self, tmp_path):
        disk_dir = str(tmp_path / "store")
        queue = _CTX.Queue()
        workers = [
            _CTX.Process(target=_hammer, args=(disk_dir, seed, queue))
            for seed in (1, 2)
        ]
        for worker in workers:
            worker.start()
        stats = [queue.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)

        # No torn reads: every hit unpickled to exactly the payload
        # the key fingerprints, and no reader ever saw a partial
        # write (atomic temp+rename publishes complete files only).
        assert sum(record["torn"] for record in stats) == 0
        assert sum(record["disk_corrupt"] for record in stats) == 0

        # Both processes actually shared work through the directory,
        # and the entry bound forced evictions under contention.
        assert all(record["disk_hits"] > 0 for record in stats)
        assert sum(record["disk_evictions"] for record in stats) > 0

        tree = pathlib.Path(disk_dir)
        pickles = list(tree.rglob("*.pkl"))
        # The count bound is enforced on every write; concurrent
        # writers can race one another's prune scan by a write or two.
        assert len(pickles) <= DISK_MAX + 2
        # Every temp file was either renamed into place or unlinked.
        assert list(tree.rglob("*.tmp")) == []

    def test_concurrent_readers_tolerate_planted_corruption(self, tmp_path):
        disk_dir = str(tmp_path / "store")
        cache = ArtifactCache(disk_dir=disk_dir)
        path = cache._disk_path(_key(0))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"\x80\x04not a pickle, truncated")

        queue = _CTX.Queue()
        readers = [
            _CTX.Process(target=_lookup_once, args=(disk_dir, 0, queue))
            for _ in range(2)
        ]
        for reader in readers:
            reader.start()
        outcomes = [queue.get(timeout=60) for _ in readers]
        for reader in readers:
            reader.join(timeout=60)

        assert all(reader.exitcode == 0 for reader in readers)
        # Both racing readers degrade to a clean miss; at least one
        # quarantined the entry, and the slot is writable again.
        assert all(not outcome["hit"] for outcome in outcomes)
        assert sum(outcome["disk_corrupt"] for outcome in outcomes) >= 1
        assert not os.path.exists(path)
        cache.store(_key(0), _value(0))
        assert cache.lookup(_key(0)) == (True, _value(0))


class TestDebrisSweep:
    def test_stale_tmp_and_corrupt_orphans_pruned(self, tmp_path):
        disk_dir = str(tmp_path / "store")
        cache = ArtifactCache(disk_dir=disk_dir, disk_max_entries=DISK_MAX)
        cache.store(_key(0), _value(0))
        shard = os.path.dirname(cache._disk_path(_key(0)))

        old = os.path.getmtime(cache._disk_path(_key(0))) \
            - STALE_TMP_SECONDS - 60
        stale_tmp = os.path.join(shard, "deadbeef0000.tmp")
        stale_corrupt = os.path.join(shard, "cafebabe.pkl.corrupt")
        young_tmp = os.path.join(shard, "feedface0000.tmp")
        for path in (stale_tmp, stale_corrupt, young_tmp):
            with open(path, "wb") as handle:
                handle.write(b"leftover")
        for path in (stale_tmp, stale_corrupt):
            os.utime(path, (old, old))

        cache.store(_key(1), _value(1))  # any write runs the sweep

        # A crashed writer's orphan and an old quarantined entry are
        # gone; a fresh temp file may belong to a live writer and is
        # left alone.
        assert not os.path.exists(stale_tmp)
        assert not os.path.exists(stale_corrupt)
        assert os.path.exists(young_tmp)
