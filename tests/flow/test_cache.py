"""Unit tests for the content-addressed artifact cache layer."""

import dataclasses
import os
import pickle
import time

import pytest

from repro.flow.cache import (
    STALE_TMP_SECONDS,
    ArtifactCache,
    CacheStats,
    fingerprint,
)


@dataclasses.dataclass(frozen=True)
class _Token:
    name: str
    value: float


def _disk_pickles(root):
    """Every .pkl path under the sharded store, shard dirs included."""
    found = []
    for directory, _, names in os.walk(str(root)):
        found += [
            os.path.join(directory, name)
            for name in names
            if name.endswith(".pkl")
        ]
    return found


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint("a", 1, 2.5) == fingerprint("a", 1, 2.5)

    def test_order_sensitive(self):
        assert fingerprint("a", "b") != fingerprint("b", "a")

    def test_type_tags_distinguish_lookalikes(self):
        # "1", 1, 1.0 and True must not collide.
        digests = {
            fingerprint("1"),
            fingerprint(1),
            fingerprint(1.0),
            fingerprint(True),
        }
        assert len(digests) == 4

    def test_dict_iteration_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_nested_containers_and_none(self):
        a = fingerprint((1, [2, 3], {"k": None}, frozenset({4, 5})))
        b = fingerprint((1, [2, 3], {"k": None}, frozenset({5, 4})))
        assert a == b

    def test_dataclass_tokens(self):
        assert fingerprint(_Token("x", 1.0)) == fingerprint(_Token("x", 1.0))
        assert fingerprint(_Token("x", 1.0)) != fingerprint(_Token("x", 2.0))

    def test_unfingerprintable_value_rejected(self):
        with pytest.raises(TypeError):
            fingerprint(object())


class TestArtifactCache:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        hit, value = cache.lookup("k1")
        assert not hit and value is None
        cache.store("k1", "artifact")
        hit, value = cache.lookup("k1")
        assert hit and value == "artifact"
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "evictions": 0,
            "disk_hits": 0,
        }

    def test_lru_eviction(self):
        cache = ArtifactCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("a")  # refresh "a": "b" becomes least-recent
        cache.store("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)

    def test_pinned_entry_survives_eviction_pressure(self):
        cache = ArtifactCache(max_entries=2)
        cache.store("prefetch", "batched", pin=True)
        cache.store("b", 2)
        cache.store("c", 3)
        cache.store("d", 4)
        # "prefetch" is the LRU-oldest entry yet outlives the churn;
        # the unpinned entries get evicted around it.
        hit, value = cache.lookup("prefetch")
        assert hit and value == "batched"

    def test_pin_drops_after_first_lookup(self):
        cache = ArtifactCache(max_entries=2)
        cache.store("prefetch", "batched", pin=True)
        cache.lookup("prefetch")  # consumed: now plain LRU
        cache.store("b", 2)
        cache.store("c", 3)
        assert "prefetch" not in cache

    def test_all_pinned_overflows_rather_than_evicts(self):
        cache = ArtifactCache(max_entries=1)
        cache.store("p1", 1, pin=True)
        cache.store("p2", 2, pin=True)
        assert len(cache) == 2 and cache.evictions == 0
        assert cache.lookup("p1") == (True, 1)
        assert cache.lookup("p2") == (True, 2)

    def test_clear_drops_pins(self):
        cache = ArtifactCache(max_entries=1)
        cache.store("p", 1, pin=True)
        cache.clear()
        cache.store("a", 1)
        cache.store("b", 2)  # would overflow if "p"'s pin leaked
        assert len(cache) == 1

    def test_clear_drops_memory(self):
        cache = ArtifactCache()
        cache.store("a", 1)
        cache.clear()
        assert len(cache) == 0
        hit, _ = cache.lookup("a")
        assert not hit


class TestCacheStats:
    def test_typed_snapshot_counts_and_latency(self):
        cache = ArtifactCache()
        cache.lookup("k1")  # miss
        cache.store("k1", "artifact")
        cache.lookup("k1")  # hit
        stats = cache.stats_typed()
        assert isinstance(stats, CacheStats)
        assert stats.hits == 1 and stats.misses == 1
        assert stats.stores == 1 and stats.entries == 1
        assert stats.lookups == 2
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.lookup_s > 0.0

    def test_disk_latency_counters(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.store("k1", list(range(1000)))
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        fresh.lookup("k1")
        assert cache.stats_typed().disk_write_s > 0.0
        assert fresh.stats_typed().disk_read_s > 0.0

    def test_since_delta(self):
        cache = ArtifactCache()
        cache.lookup("a")
        before = cache.stats_typed()
        cache.store("a", 1)
        cache.lookup("a")
        delta = cache.stats_typed().since(before)
        assert delta.hits == 1 and delta.misses == 0 and delta.stores == 1

    def test_merge_accumulates(self):
        total = CacheStats()
        total.merge(CacheStats(hits=2, misses=1, lookup_s=0.5))
        total.merge(CacheStats(hits=1, misses=1, disk_hits=1))
        assert total.hits == 3 and total.misses == 2
        assert total.disk_hits == 1
        assert total.lookup_s == pytest.approx(0.5)
        assert total.hit_rate == pytest.approx(0.6)

    def test_to_dict_round_trip(self):
        stats = CacheStats(hits=3, misses=1)
        data = stats.to_dict()
        assert data["hits"] == 3
        assert data["hit_rate"] == pytest.approx(0.75)


class TestDiskLayer:
    def test_disk_round_trip_across_instances(self, tmp_path):
        writer = ArtifactCache(disk_dir=str(tmp_path))
        writer.store("k1", {"payload": [1, 2, 3]})
        reader = ArtifactCache(disk_dir=str(tmp_path))  # cold memory
        hit, value = reader.lookup("k1")
        assert hit and value == {"payload": [1, 2, 3]}
        assert reader.disk_hits == 1
        # Promoted to memory: the next lookup is served without disk.
        hit, _ = reader.lookup("k1")
        assert hit and reader.disk_hits == 1

    def test_store_is_sharded_by_key_prefix(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        key = fingerprint("artifact")
        cache.store(key, "value")
        expected = os.path.join(str(tmp_path), key[:2], key + ".pkl")
        assert os.path.exists(expected)

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        path = cache._disk_path("bad")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        hit, value = cache.lookup("bad")
        assert not hit and value is None

    def test_truncated_entry_quarantined_not_raised(self, tmp_path):
        # The regression the shared store requires: a writer dying (or
        # a reader racing a non-atomic copy) leaves a truncated pickle;
        # readers must degrade to a miss, count it, and quarantine the
        # file so the slot can be rewritten.
        writer = ArtifactCache(disk_dir=str(tmp_path))
        writer.store("k1", {"payload": list(range(100))})
        path = writer._disk_path("k1")
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(size // 2)
        reader = ArtifactCache(disk_dir=str(tmp_path))
        hit, value = reader.lookup("k1")
        assert not hit and value is None
        assert reader.disk_corrupt == 1
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        # The slot is writable again and future reads are clean hits.
        reader.store("k1", "fresh")
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        assert fresh.lookup("k1") == (True, "fresh")
        assert fresh.disk_corrupt == 0

    def test_contains_does_not_quarantine(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        path = cache._disk_path("bad")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert "bad" not in cache
        # Read-only probe: the corrupt file is left in place untouched.
        assert os.path.exists(path)
        assert cache.disk_corrupt == 0

    def test_unpicklable_artifact_stays_in_memory(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.store("fn", lambda: None)  # pickling fails, silently
        hit, value = cache.lookup("fn")
        assert hit and callable(value)
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        hit, _ = fresh.lookup("fn")
        assert not hit

    def test_persist_false_stays_memory_only(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.store("mem", "value", persist=False)
        hit, _ = cache.lookup("mem")
        assert hit
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        hit, _ = fresh.lookup("mem")
        assert not hit

    def test_disk_prune_bounds_entry_count(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path), disk_max_entries=2)
        for index in range(5):
            cache.store(f"k{index}", index)
        assert len(_disk_pickles(tmp_path)) == 2
        assert cache.disk_evictions == 3

    def test_disk_prune_bounds_total_bytes(self, tmp_path):
        blob = list(range(500))  # ~a couple of KB pickled
        probe = ArtifactCache(disk_dir=str(tmp_path / "probe"))
        probe.store("probe", blob)
        (pickle_path,) = _disk_pickles(tmp_path / "probe")
        entry_bytes = os.path.getsize(pickle_path)

        cache = ArtifactCache(
            disk_dir=str(tmp_path / "store"),
            disk_max_bytes=int(entry_bytes * 2.5),
        )
        for index in range(5):
            cache.store(f"k{index}", blob)
            time.sleep(0.01)  # distinct mtimes: deterministic victims
        kept = _disk_pickles(tmp_path / "store")
        assert len(kept) == 2
        # Oldest-first eviction: the newest entries survive.
        names = {os.path.basename(path) for path in kept}
        assert names == {"k3.pkl", "k4.pkl"}
        assert cache.disk_evictions == 3

    def test_disk_max_bytes_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(disk_dir=str(tmp_path), disk_max_bytes=0)

    def test_read_refreshes_mtime_for_disk_lru(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.store("old", 1)
        path = cache._disk_path("old")
        past = time.time() - 1000
        os.utime(path, (past, past))
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        fresh.lookup("old")
        assert os.path.getmtime(path) > past + 500

    def test_memory_eviction_keeps_disk_copy(self, tmp_path):
        cache = ArtifactCache(max_entries=1, disk_dir=str(tmp_path))
        cache.store("a", 1)
        cache.store("b", 2)  # evicts "a" from memory
        hit, value = cache.lookup("a")  # ... but disk still has it
        assert hit and value == 1
        assert cache.disk_hits == 1

    def test_stale_tmp_orphans_pruned_on_write(self, tmp_path):
        # A writer that dies between mkstemp and os.replace leaves a
        # .tmp file behind; the next prune must sweep it (but leave
        # fresh ones alone — they may belong to a live writer). Both
        # shard subdirs and the root (the pre-sharding flat layout)
        # are swept.
        shard = os.path.join(str(tmp_path), "de")
        os.makedirs(shard)
        stale = os.path.join(shard, "deadbeef0000.tmp")
        flat_stale = os.path.join(str(tmp_path), "feedface0000.tmp")
        fresh = os.path.join(shard, "cafebabe0000.tmp")
        for path in (stale, flat_stale, fresh):
            with open(path, "wb") as handle:
                handle.write(b"partial pickle")
        old = time.time() - STALE_TMP_SECONDS - 60
        os.utime(stale, (old, old))
        os.utime(flat_stale, (old, old))
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.store("k1", "artifact")  # store triggers _disk_prune
        assert not os.path.exists(stale)
        assert not os.path.exists(flat_stale)
        assert os.path.exists(fresh)
        assert os.path.exists(cache._disk_path("k1"))

    def test_stale_quarantined_entries_swept(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        path = cache._disk_path("bad")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"truncated")
        cache.lookup("bad")  # quarantines to bad.pkl.corrupt
        corrupt = path + ".corrupt"
        assert os.path.exists(corrupt)
        old = time.time() - STALE_TMP_SECONDS - 60
        os.utime(corrupt, (old, old))
        cache.store("k1", "artifact")  # prune sweeps stale quarantine
        assert not os.path.exists(corrupt)

    def test_flat_layout_pickles_still_bounded(self, tmp_path):
        # Directories written by the pre-sharding layout hold .pkl
        # files at the root; the pruner must keep counting them.
        for index in range(4):
            with open(os.path.join(str(tmp_path), f"flat{index}.pkl"),
                      "wb") as handle:
                pickle.dump(index, handle)
            time.sleep(0.01)
        cache = ArtifactCache(disk_dir=str(tmp_path), disk_max_entries=2)
        cache.store("k1", "artifact")
        assert len(_disk_pickles(tmp_path)) == 2


class TestContains:
    def test_membership_sees_disk_layer(self, tmp_path):
        # `key in cache` must agree with lookup() for artifacts that
        # only live in the disk layer (a fresh process, or a memory
        # eviction).
        writer = ArtifactCache(disk_dir=str(tmp_path))
        writer.store("k1", "artifact")
        reader = ArtifactCache(disk_dir=str(tmp_path))  # cold memory
        assert "k1" in reader
        assert "missing" not in reader
        hit, _ = reader.lookup("k1")
        assert hit

    def test_membership_has_no_side_effects(self, tmp_path):
        cache = ArtifactCache(max_entries=2, disk_dir=str(tmp_path))
        cache.store("a", 1, persist=False)
        cache.store("b", 2, persist=False)
        assert "a" in cache and "b" in cache and "zzz" not in cache
        # No counter moved, and no disk entry was promoted to memory.
        assert cache.stats() == {
            "entries": 2, "hits": 0, "misses": 0, "evictions": 0,
            "disk_hits": 0,
        }
        # No LRU refresh either: "a" is still the oldest entry, so a
        # third store evicts it (lookup() would have refreshed it).
        cache.store("c", 3, persist=False)
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_membership_agrees_with_lookup_on_corrupt_entry(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        path = cache._disk_path("bad")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert ("bad" in cache) is False
        hit, _ = cache.lookup("bad")
        assert not hit
