"""Unit tests for the content-addressed artifact cache layer."""

import dataclasses
import os
import time

import pytest

from repro.flow.cache import STALE_TMP_SECONDS, ArtifactCache, fingerprint


@dataclasses.dataclass(frozen=True)
class _Token:
    name: str
    value: float


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint("a", 1, 2.5) == fingerprint("a", 1, 2.5)

    def test_order_sensitive(self):
        assert fingerprint("a", "b") != fingerprint("b", "a")

    def test_type_tags_distinguish_lookalikes(self):
        # "1", 1, 1.0 and True must not collide.
        digests = {
            fingerprint("1"),
            fingerprint(1),
            fingerprint(1.0),
            fingerprint(True),
        }
        assert len(digests) == 4

    def test_dict_iteration_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_nested_containers_and_none(self):
        a = fingerprint((1, [2, 3], {"k": None}, frozenset({4, 5})))
        b = fingerprint((1, [2, 3], {"k": None}, frozenset({5, 4})))
        assert a == b

    def test_dataclass_tokens(self):
        assert fingerprint(_Token("x", 1.0)) == fingerprint(_Token("x", 1.0))
        assert fingerprint(_Token("x", 1.0)) != fingerprint(_Token("x", 2.0))

    def test_unfingerprintable_value_rejected(self):
        with pytest.raises(TypeError):
            fingerprint(object())


class TestArtifactCache:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        hit, value = cache.lookup("k1")
        assert not hit and value is None
        cache.store("k1", "artifact")
        hit, value = cache.lookup("k1")
        assert hit and value == "artifact"
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "evictions": 0,
            "disk_hits": 0,
        }

    def test_lru_eviction(self):
        cache = ArtifactCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("a")  # refresh "a": "b" becomes least-recent
        cache.store("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)

    def test_pinned_entry_survives_eviction_pressure(self):
        cache = ArtifactCache(max_entries=2)
        cache.store("prefetch", "batched", pin=True)
        cache.store("b", 2)
        cache.store("c", 3)
        cache.store("d", 4)
        # "prefetch" is the LRU-oldest entry yet outlives the churn;
        # the unpinned entries get evicted around it.
        hit, value = cache.lookup("prefetch")
        assert hit and value == "batched"

    def test_pin_drops_after_first_lookup(self):
        cache = ArtifactCache(max_entries=2)
        cache.store("prefetch", "batched", pin=True)
        cache.lookup("prefetch")  # consumed: now plain LRU
        cache.store("b", 2)
        cache.store("c", 3)
        assert "prefetch" not in cache

    def test_all_pinned_overflows_rather_than_evicts(self):
        cache = ArtifactCache(max_entries=1)
        cache.store("p1", 1, pin=True)
        cache.store("p2", 2, pin=True)
        assert len(cache) == 2 and cache.evictions == 0
        assert cache.lookup("p1") == (True, 1)
        assert cache.lookup("p2") == (True, 2)

    def test_clear_drops_pins(self):
        cache = ArtifactCache(max_entries=1)
        cache.store("p", 1, pin=True)
        cache.clear()
        cache.store("a", 1)
        cache.store("b", 2)  # would overflow if "p"'s pin leaked
        assert len(cache) == 1

    def test_clear_drops_memory(self):
        cache = ArtifactCache()
        cache.store("a", 1)
        cache.clear()
        assert len(cache) == 0
        hit, _ = cache.lookup("a")
        assert not hit


class TestDiskLayer:
    def test_disk_round_trip_across_instances(self, tmp_path):
        writer = ArtifactCache(disk_dir=str(tmp_path))
        writer.store("k1", {"payload": [1, 2, 3]})
        reader = ArtifactCache(disk_dir=str(tmp_path))  # cold memory
        hit, value = reader.lookup("k1")
        assert hit and value == {"payload": [1, 2, 3]}
        assert reader.disk_hits == 1
        # Promoted to memory: the next lookup is served without disk.
        hit, _ = reader.lookup("k1")
        assert hit and reader.disk_hits == 1

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        with open(os.path.join(str(tmp_path), "bad.pkl"), "wb") as handle:
            handle.write(b"not a pickle")
        hit, value = cache.lookup("bad")
        assert not hit and value is None

    def test_unpicklable_artifact_stays_in_memory(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.store("fn", lambda: None)  # pickling fails, silently
        hit, value = cache.lookup("fn")
        assert hit and callable(value)
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        hit, _ = fresh.lookup("fn")
        assert not hit

    def test_persist_false_stays_memory_only(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.store("mem", "value", persist=False)
        hit, _ = cache.lookup("mem")
        assert hit
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        hit, _ = fresh.lookup("mem")
        assert not hit

    def test_disk_prune_bounds_directory(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path), disk_max_entries=2)
        for index in range(5):
            cache.store(f"k{index}", index)
        pickles = [
            name for name in os.listdir(str(tmp_path))
            if name.endswith(".pkl")
        ]
        assert len(pickles) == 2

    def test_memory_eviction_keeps_disk_copy(self, tmp_path):
        cache = ArtifactCache(max_entries=1, disk_dir=str(tmp_path))
        cache.store("a", 1)
        cache.store("b", 2)  # evicts "a" from memory
        hit, value = cache.lookup("a")  # ... but disk still has it
        assert hit and value == 1
        assert cache.disk_hits == 1

    def test_stale_tmp_orphans_pruned_on_write(self, tmp_path):
        # A writer that dies between mkstemp and os.replace leaves a
        # .tmp file behind; the next prune must sweep it (but leave
        # fresh ones alone — they may belong to a live writer).
        stale = os.path.join(str(tmp_path), "deadbeef0000.tmp")
        fresh = os.path.join(str(tmp_path), "cafebabe0000.tmp")
        for path in (stale, fresh):
            with open(path, "wb") as handle:
                handle.write(b"partial pickle")
        old = time.time() - STALE_TMP_SECONDS - 60
        os.utime(stale, (old, old))
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.store("k1", "artifact")  # store triggers _disk_prune
        names = set(os.listdir(str(tmp_path)))
        assert os.path.basename(stale) not in names
        assert os.path.basename(fresh) in names
        assert "k1.pkl" in names


class TestContains:
    def test_membership_sees_disk_layer(self, tmp_path):
        # `key in cache` must agree with lookup() for artifacts that
        # only live in the disk layer (a fresh process, or a memory
        # eviction).
        writer = ArtifactCache(disk_dir=str(tmp_path))
        writer.store("k1", "artifact")
        reader = ArtifactCache(disk_dir=str(tmp_path))  # cold memory
        assert "k1" in reader
        assert "missing" not in reader
        hit, _ = reader.lookup("k1")
        assert hit

    def test_membership_has_no_side_effects(self, tmp_path):
        cache = ArtifactCache(max_entries=2, disk_dir=str(tmp_path))
        cache.store("a", 1, persist=False)
        cache.store("b", 2, persist=False)
        assert "a" in cache and "b" in cache and "zzz" not in cache
        # No counter moved, and no disk entry was promoted to memory.
        assert cache.stats() == {
            "entries": 2, "hits": 0, "misses": 0, "evictions": 0,
            "disk_hits": 0,
        }
        # No LRU refresh either: "a" is still the oldest entry, so a
        # third store evicts it (lookup() would have refreshed it).
        cache.store("c", 3, persist=False)
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_membership_agrees_with_lookup_on_corrupt_entry(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        with open(os.path.join(str(tmp_path), "bad.pkl"), "wb") as handle:
            handle.write(b"not a pickle")
        assert ("bad" in cache) is False
        hit, _ = cache.lookup("bad")
        assert not hit
