"""Unit tests for the content-addressed artifact cache layer."""

import dataclasses
import os

import pytest

from repro.flow.cache import ArtifactCache, fingerprint


@dataclasses.dataclass(frozen=True)
class _Token:
    name: str
    value: float


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint("a", 1, 2.5) == fingerprint("a", 1, 2.5)

    def test_order_sensitive(self):
        assert fingerprint("a", "b") != fingerprint("b", "a")

    def test_type_tags_distinguish_lookalikes(self):
        # "1", 1, 1.0 and True must not collide.
        digests = {
            fingerprint("1"),
            fingerprint(1),
            fingerprint(1.0),
            fingerprint(True),
        }
        assert len(digests) == 4

    def test_dict_iteration_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_nested_containers_and_none(self):
        a = fingerprint((1, [2, 3], {"k": None}, frozenset({4, 5})))
        b = fingerprint((1, [2, 3], {"k": None}, frozenset({5, 4})))
        assert a == b

    def test_dataclass_tokens(self):
        assert fingerprint(_Token("x", 1.0)) == fingerprint(_Token("x", 1.0))
        assert fingerprint(_Token("x", 1.0)) != fingerprint(_Token("x", 2.0))

    def test_unfingerprintable_value_rejected(self):
        with pytest.raises(TypeError):
            fingerprint(object())


class TestArtifactCache:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        hit, value = cache.lookup("k1")
        assert not hit and value is None
        cache.store("k1", "artifact")
        hit, value = cache.lookup("k1")
        assert hit and value == "artifact"
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "evictions": 0,
            "disk_hits": 0,
        }

    def test_lru_eviction(self):
        cache = ArtifactCache(max_entries=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("a")  # refresh "a": "b" becomes least-recent
        cache.store("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)

    def test_clear_drops_memory(self):
        cache = ArtifactCache()
        cache.store("a", 1)
        cache.clear()
        assert len(cache) == 0
        hit, _ = cache.lookup("a")
        assert not hit


class TestDiskLayer:
    def test_disk_round_trip_across_instances(self, tmp_path):
        writer = ArtifactCache(disk_dir=str(tmp_path))
        writer.store("k1", {"payload": [1, 2, 3]})
        reader = ArtifactCache(disk_dir=str(tmp_path))  # cold memory
        hit, value = reader.lookup("k1")
        assert hit and value == {"payload": [1, 2, 3]}
        assert reader.disk_hits == 1
        # Promoted to memory: the next lookup is served without disk.
        hit, _ = reader.lookup("k1")
        assert hit and reader.disk_hits == 1

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        with open(os.path.join(str(tmp_path), "bad.pkl"), "wb") as handle:
            handle.write(b"not a pickle")
        hit, value = cache.lookup("bad")
        assert not hit and value is None

    def test_unpicklable_artifact_stays_in_memory(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.store("fn", lambda: None)  # pickling fails, silently
        hit, value = cache.lookup("fn")
        assert hit and callable(value)
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        hit, _ = fresh.lookup("fn")
        assert not hit

    def test_persist_false_stays_memory_only(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path))
        cache.store("mem", "value", persist=False)
        hit, _ = cache.lookup("mem")
        assert hit
        fresh = ArtifactCache(disk_dir=str(tmp_path))
        hit, _ = fresh.lookup("mem")
        assert not hit

    def test_disk_prune_bounds_directory(self, tmp_path):
        cache = ArtifactCache(disk_dir=str(tmp_path), disk_max_entries=2)
        for index in range(5):
            cache.store(f"k{index}", index)
        pickles = [
            name for name in os.listdir(str(tmp_path))
            if name.endswith(".pkl")
        ]
        assert len(pickles) == 2

    def test_memory_eviction_keeps_disk_copy(self, tmp_path):
        cache = ArtifactCache(max_entries=1, disk_dir=str(tmp_path))
        cache.store("a", 1)
        cache.store("b", 2)  # evicts "a" from memory
        hit, value = cache.lookup("a")  # ... but disk still has it
        assert hit and value == 1
        assert cache.disk_hits == 1
