"""Differential test: direct flow vs the sweep engine.

``compare_binders`` (the paper-methodology entry point) and a 1x1
sweep must be the same computation — same schedules, same shared
registers/ports, same SA values — so their PowerReport/MuxReport
numbers must be *identical*, not merely close.
"""

import pytest

from repro import benchmark_spec, list_schedule, load_benchmark, run_sweep
from repro.binding import SATable
from repro.binding.sa_table import SATableConfig
from repro.flow import BinderConfig, FlowConfig, SweepSpec, compare_binders

WIDTH = 4
VECTORS = 32
SEED = 7


@pytest.fixture(scope="module")
def direct_results():
    spec = benchmark_spec("pr")
    schedule = list_schedule(load_benchmark("pr"), spec.constraints)
    config = FlowConfig(
        width=WIDTH,
        n_vectors=VECTORS,
        vector_seed=SEED,
        alpha=0.5,
        sa_table=SATable(SATableConfig(width=3)),
    )
    return compare_binders(schedule, spec.constraints, config)


@pytest.fixture(scope="module")
def sweep_results():
    spec = SweepSpec(
        benchmarks=["pr"],
        configs=[
            BinderConfig("lopass", "lopass", 0.5),
            BinderConfig("hlpower", "hlpower", 0.5),
        ],
        widths=(WIDTH,),
        vector_seeds=(SEED,),
        n_vectors=VECTORS,
    )
    return run_sweep(
        spec,
        jobs=1,
        sa_table=SATable(SATableConfig(width=3)),
        keep_results=True,
    )


@pytest.mark.parametrize("binder", ["lopass", "hlpower"])
class TestDirectVsSweep:
    def test_power_report_identical(self, direct_results, sweep_results,
                                    binder):
        direct = direct_results[binder].power
        via_sweep = sweep_results.result_of("pr", binder).power
        assert direct == via_sweep  # dataclass equality, every field

    def test_mux_report_identical(self, direct_results, sweep_results,
                                  binder):
        direct = direct_results[binder].muxes
        via_sweep = sweep_results.result_of("pr", binder).muxes
        assert direct == via_sweep

    def test_timing_and_area_identical(self, direct_results, sweep_results,
                                       binder):
        direct = direct_results[binder]
        via_sweep = sweep_results.result_of("pr", binder)
        assert direct.timing == via_sweep.timing
        assert direct.area_luts == via_sweep.area_luts
        assert direct.controller_luts == via_sweep.controller_luts

    def test_cell_metrics_match_flow_result(self, sweep_results, binder):
        """The serialized record is the FlowResult, flattened."""
        cell = sweep_results.cell("pr", binder)
        result = sweep_results.result_of("pr", binder)
        assert cell.metrics == result.metrics()
