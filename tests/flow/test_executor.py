"""Resident-executor tests: warm state across submissions, byte-identical
results versus transient sweeps, stats accounting, and lifecycle."""

import pytest

from repro.errors import ConfigError
from repro.flow import CacheStats, FlowExecutor, SweepSpec, run_sweep
from repro.flow.executor import DEFAULT_CACHE_ENTRIES
from repro.flow.grid import expand_grid


def small_spec(**overrides):
    """A pr-only grid small enough for full in-test execution."""
    kwargs = dict(
        benchmarks=["pr"],
        binders=("lopass", "hlpower"),
        alphas=(0.5,),
        widths=(4,),
        vector_seeds=(7, 8),
        n_vectors=16,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestWarmState:
    def test_memos_survive_across_submissions(self):
        """A second identical submission must be all warm: every stage
        served from the resident cache, every schedule from the memo."""
        spec = small_spec()
        with FlowExecutor() as executor:
            first = executor.run_jobs(spec, expand_grid(spec))
            second = executor.run_jobs(spec, expand_grid(spec))
        cold_hits = sum(len(c.cache_hits) for c in first.cells)
        warm_hits = sum(len(c.cache_hits) for c in second.cells)
        warm_total = sum(len(c.stage_timings) for c in second.cells)
        assert warm_hits == warm_total > cold_hits
        # Simulate artifacts are memory-only but resident, so even the
        # seed-specific stages hit on the second pass.
        assert all(c.schedule_cache_hit for c in second.cells)
        assert second.sa_new_entries == 0

    def test_warm_submission_metrics_identical(self):
        """Warm state only ever substitutes byte-identical work."""
        spec = small_spec()
        with FlowExecutor() as executor:
            first = executor.run_jobs(spec, expand_grid(spec))
            second = executor.run_jobs(spec, expand_grid(spec))
        assert [c.metrics for c in first.cells] == \
            [c.metrics for c in second.cells]

    def test_resident_matches_transient_run_sweep(self):
        """run_sweep through a resident executor is byte-identical to
        the default transient path."""
        spec = small_spec()
        transient = run_sweep(spec, jobs=1)
        with FlowExecutor() as executor:
            resident = run_sweep(spec, executor=executor)
            rewarm = run_sweep(spec, executor=executor)
        for other in (resident, rewarm):
            assert [c.metrics for c in other.cells] == \
                [c.metrics for c in transient.cells]
        # The transient baseline starts cold every call; the resident
        # executor's second sweep is entirely cache-served.
        assert transient.stage_cache_hits == resident.stage_cache_hits
        assert rewarm.stage_cache_misses == 0

    def test_run_sweep_default_state_stays_fresh(self):
        """The historical contract: without executor=, consecutive
        run_sweep calls share nothing in-process."""
        spec = small_spec()
        first = run_sweep(spec, jobs=1)
        second = run_sweep(spec, jobs=1)
        assert first.stage_cache_hits == second.stage_cache_hits
        assert second.schedule_cache_misses > 0


class TestStats:
    def test_executor_stats_accumulate(self):
        spec = small_spec(binders=("lopass",), vector_seeds=(7,))
        with FlowExecutor() as executor:
            executor.run_jobs(spec, expand_grid(spec))
            executor.run_jobs(spec, expand_grid(spec))
            stats = executor.stats
        assert stats.submissions == 2
        assert stats.cells == 2
        assert stats.chunks == 2
        assert stats.schedule_cache_hits == 1  # second submission only
        assert stats.wall_s > 0.0

    def test_submission_carries_cache_delta(self):
        spec = small_spec(binders=("lopass",), vector_seeds=(7,))
        with FlowExecutor() as executor:
            cold = executor.run_jobs(spec, expand_grid(spec))
            warm = executor.run_jobs(spec, expand_grid(spec))
        assert isinstance(cold.cache, CacheStats)
        assert cold.cache.hits == 0 and cold.cache.misses > 0
        assert warm.cache.misses == 0 and warm.cache.hits > 0
        assert warm.cache.hit_rate == 1.0

    def test_lifetime_cache_stats_merge_submissions(self):
        spec = small_spec(binders=("lopass",), vector_seeds=(7,))
        with FlowExecutor() as executor:
            cold = executor.run_jobs(spec, expand_grid(spec))
            warm = executor.run_jobs(spec, expand_grid(spec))
            total = executor.cache_stats()
        assert total.hits == cold.cache.hits + warm.cache.hits
        assert total.misses == cold.cache.misses + warm.cache.misses

    def test_stats_to_dict_round_trips_cache(self):
        spec = small_spec(binders=("lopass",), vector_seeds=(7,))
        with FlowExecutor() as executor:
            executor.run_jobs(spec, expand_grid(spec))
            data = executor.stats.to_dict()
        assert data["submissions"] == 1
        assert data["cache"]["misses"] > 0
        assert 0.0 <= data["cache"]["hit_rate"] <= 1.0


class TestLifecycle:
    def test_shutdown_rejects_further_submissions(self):
        executor = FlowExecutor()
        spec = small_spec(binders=("lopass",), vector_seeds=(7,))
        executor.run_jobs(spec, expand_grid(spec))
        executor.shutdown()
        with pytest.raises(ConfigError):
            executor.run_jobs(spec, expand_grid(spec))
        with pytest.raises(ConfigError):
            executor.start()

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigError):
            FlowExecutor(jobs=0)
        with pytest.raises(ConfigError):
            FlowExecutor(use_cache=False, cache_dir="/tmp/nope")

    def test_keep_results_requires_in_process(self):
        executor = FlowExecutor(jobs=2)
        spec = small_spec()
        try:
            with pytest.raises(ConfigError):
                executor.run_jobs(spec, expand_grid(spec), keep_results=True)
        finally:
            executor.shutdown()

    def test_run_sweep_executor_conflicts_rejected(self):
        with FlowExecutor() as executor:
            spec = small_spec(binders=("lopass",), vector_seeds=(7,))
            with pytest.raises(ConfigError):
                run_sweep(spec, jobs=2, executor=executor)
            with pytest.raises(ConfigError):
                run_sweep(spec, cache_dir="/tmp/nope", executor=executor)
            with pytest.raises(ConfigError):
                run_sweep(spec, use_cache=False, executor=executor)
            with pytest.raises(ConfigError):
                run_sweep(
                    spec, cache_entries=DEFAULT_CACHE_ENTRIES + 1,
                    executor=executor,
                )

    def test_keep_results_retains_flow_results(self):
        spec = small_spec(binders=("lopass",), vector_seeds=(7,))
        with FlowExecutor() as executor:
            submission = executor.run_jobs(
                spec, expand_grid(spec), keep_results=True
            )
        assert len(submission.results) == 1
        (result,) = submission.results.values()
        assert result.metrics() == submission.cells[0].metrics


@pytest.mark.slow
class TestResidentPool:
    def test_pool_children_stay_warm_across_submissions(self):
        """jobs>1: the second submission lands on already-warmed children.

        Chunk-to-child assignment is scheduler-dependent, so not every
        cell is guaranteed a cache hit — but the children keep their
        state, so the second pass must be strictly warmer than the
        first (which starts from zero) and byte-identical.
        """
        spec = small_spec()
        with FlowExecutor(jobs=2) as executor:
            first = executor.run_jobs(spec, expand_grid(spec))
            second = executor.run_jobs(spec, expand_grid(spec))
        assert [c.metrics for c in first.cells] == \
            [c.metrics for c in second.cells]
        cold_hits = sum(len(c.cache_hits) for c in first.cells)
        warm_hits = sum(len(c.cache_hits) for c in second.cells)
        assert warm_hits > cold_hits
        assert any(c.schedule_cache_hit for c in second.cells)
