"""Golden regression: the mapper's numbers on the default flow.

Freezes, per paper benchmark, the cover size (LUT count), mapped
depth, and the Equation-(3) switching-activity total produced by the
default flow's techmap stage (lopass binder, width 8, K=4, control
activity 0.1). Any mapper change that silently drifts the paper's
numbers — a reordered tie-break, a float reassociation, a cut-cap
tweak — fails here before it can contaminate downstream tables.

The SA totals are pinned *exactly* (``==``, no tolerance): the fast
mapper's contract is bit-identical floats, and the differential suite
(`test_mapper_differential.py`) separately proves fast == reference.
If a deliberate algorithm change moves these numbers, regenerate the
table below and say so in the commit that does it.

The large benchmarks are slow-marked; two small ones stay in tier-1.
"""

import pytest

from repro import benchmark_spec
from repro.cdfg import load_benchmark
from repro.flow.run import FlowConfig, build_pipeline
from repro.scheduling import list_schedule

#: benchmark -> (cover size, depth, Equation-(3) SA total).
GOLDEN = {
    "chem": (5980, 26, 6034.203807400913),
    "dir": (1957, 25, 1744.7027031810687),
    "honda": (1753, 24, 1780.103321250167),
    "mcm": (1353, 24, 1221.7430659744984),
    "pr": (811, 23, 795.4239556498293),
    "steam": (3821, 25, 3981.51808154523),
    "wang": (882, 22, 817.1613431743874),
}

FAST_SUBSET = ("pr", "wang")


def check(bench_name: str) -> None:
    spec = benchmark_spec(bench_name)
    schedule = list_schedule(load_benchmark(bench_name), spec.constraints)
    pipe = build_pipeline(
        schedule, spec.constraints, "lopass", FlowConfig()
    )
    mapping = pipe.artifact("techmap").mapping
    area, depth, total_sa = GOLDEN[bench_name]
    assert mapping.area == area
    assert mapping.depth == depth
    assert mapping.total_sa == total_sa
    # Internal consistency the frozen numbers rely on.
    assert mapping.total_sa == pytest.approx(sum(mapping.lut_sa.values()))
    assert 0.0 <= mapping.glitch_fraction <= 1.0


@pytest.mark.parametrize("bench_name", FAST_SUBSET)
def test_golden_mapping_fast_subset(bench_name):
    check(bench_name)


@pytest.mark.slow
@pytest.mark.parametrize(
    "bench_name", sorted(set(GOLDEN) - set(FAST_SUBSET))
)
def test_golden_mapping_full(bench_name):
    check(bench_name)
